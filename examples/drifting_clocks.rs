//! Drifting clocks and the resynchronization cadence.
//!
//! Run with: `cargo run --example drifting_clocks`
//!
//! The paper assumes drift-free clocks; its footnote 1 points at the
//! practical answer (Kopetz–Ochsenreiter): hardware drifts by ppm, so you
//! widen the declared delay assumptions slightly and resynchronize
//! periodically. This example runs the full story: secret per-processor
//! drift rates, views recorded by the drifting clocks, widened
//! declarations, synchronization, and then the slow decay of the
//! corrected clocks — from which the resync period falls out.

use clocksync_apps::{fmt_ext_us, fmt_us, row, section};
use clocksync_sim::{run_with_drift, Simulation, Topology};
use clocksync_time::{Nanos, RealTime};

fn main() {
    let sim = Simulation::builder(5)
        .uniform_links(
            Topology::Ring(5),
            Nanos::from_micros(100),
            Nanos::from_micros(500),
            2,
        )
        .probes(3)
        .spacing(Nanos::from_millis(10))
        .build();

    let ppm = 20; // a mediocre crystal oscillator
    let run = run_with_drift(&sim, ppm, 2026).expect("truthful ring scenario synchronizes");

    section(&format!("5-node ring, clocks drifting up to ±{ppm} ppm"));
    row("secret drift rates (ppm)", format!("{:?}", run.drift_ppm));
    row("declaration widening", format!("{}", run.margin));
    row("certificate at sync", fmt_ext_us(run.outcome.precision()));

    section("corrected-clock spread as drift accumulates");
    let t0 = run.sync_time();
    for (label, dt) in [
        ("at the sync point", 0i64),
        ("+1 second", 1),
        ("+10 seconds", 10),
        ("+60 seconds", 60),
        ("+10 minutes", 600),
    ] {
        row(
            label,
            fmt_us(run.logical_spread_at(t0 + Nanos::from_secs(dt))),
        );
    }

    // Resync cadence for a 1ms target.
    let target_us = 1_000.0;
    let cert_us = run
        .outcome
        .precision()
        .finite()
        .map(|r| r.to_f64() / 1_000.0)
        .unwrap_or(0.0);
    let relative_ppm = 2.0 * ppm as f64; // worst-case pair divergence rate
    let secs = (target_us - cert_us) / relative_ppm; // us per second = ppm
    section("deployment advice");
    row(
        &format!("resync period for {}us target", target_us as i64),
        format!("~{secs:.1}s"),
    );
    println!("\nThe widened declarations keep the certificate sound at the");
    println!("sync point; after that, clocks diverge at their relative drift");
    println!("rate until the next round — exactly the periodic scheme the");
    println!("paper's footnote 1 defers to.");
    let _ = RealTime::ZERO;
}
