//! A WAN under fire: message loss, a link-down window and a crash-stopped
//! processor — and the guarantees that survive all of it.
//!
//! Run with: `cargo run --example flaky_wan`
//! (add `--trace out.jsonl` to record a full observability trace of both
//! the simulated run and the live threaded-cluster segment, then render
//! it with `clocksync trace summarize --in out.jsonl`)
//!
//! Topology (5 sites, a ring):
//!
//! ```text
//!   hub0 ── edge1 ── edge2 ── edge3 ── edge4 ── hub0
//! ```
//!
//! Faults injected (see `DESIGN.md` §5 for the degradation contract):
//!
//! * link 1–2 loses 30% of its messages;
//! * link 0–4 is **down** for a window in the middle of the probe phase;
//! * edge3 **crash-stops** mid-protocol.
//!
//! The synchronizer is a pure function of evidence, so none of this makes
//! the run fail — links slide down the degradation lattice (bounds →
//! no-bounds → dropped → component split) and the outcome reports where
//! each one landed, with per-component corrections that remain optimal
//! for whatever evidence survived.

use clocksync_apps::{fmt_ext_us, row, section, trace_flag};
use clocksync_model::ProcessorId;
use clocksync_net::{ClusterConfig, LinkConfig};
use clocksync_obs::Recorder;
use clocksync_sim::{FaultPlan, Simulation, Topology};
use clocksync_time::{Nanos, RealTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace_path = trace_flag();
    let recorder = if trace_path.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let us = RealTime::from_micros;
    let plan = FaultPlan::new()
        .drop_messages(ProcessorId(1), ProcessorId(2), 0.3)
        .link_down(ProcessorId(0), ProcessorId(4), us(100), us(4_000))
        .crash(ProcessorId(3), us(2_500));

    let sim = Simulation::builder(5)
        .uniform_links(
            Topology::Ring(5),
            Nanos::from_micros(20),
            Nanos::from_micros(200),
            1,
        )
        .probes(3)
        .faults(plan)
        .recorder(recorder.clone())
        .build();

    let faulty = sim.run_with_faults(7);
    section("what actually went wrong (engine ground truth)");
    row("messages dropped", faulty.log.dropped.len().to_string());
    row(
        "messages duplicated",
        faulty.log.duplicated.len().to_string(),
    );
    for &(p, at) in &faulty.log.crashed {
        row("crash-stop", format!("{p} at {at}"));
    }

    // The faulty execution is still a perfectly valid execution of the
    // model — the processors just saw less.
    assert!(faulty.run.is_admissible(), "faults never forge evidence");
    let outcome = faulty.run.synchronize_traced(&recorder)?;

    section("degradation report");
    if outcome.degradations().is_empty() {
        println!("  (every link delivered evidence both ways)");
    }
    for d in outcome.degradations() {
        println!("  {d}");
    }

    section("surviving guarantees, per component");
    for (k, c) in outcome.components().iter().enumerate() {
        let members: Vec<String> = c.members.iter().map(|p| p.to_string()).collect();
        row(
            &format!("component {k} = {{{}}}", members.join(", ")),
            format!(
                "precision {}",
                fmt_ext_us(clocksync_time::Ext::Finite(c.precision))
            ),
        );
    }
    if !outcome.is_fully_synchronized() {
        println!("\n  cross-component bounds are honestly infinite: no evidence");
        println!("  connects the components, so no algorithm could do better.");
    }

    section("pairwise bounds (hub0 against everyone)");
    for i in 1..5 {
        row(
            &format!("hub0 vs edge{i}"),
            fmt_ext_us(outcome.pair_bound(ProcessorId(0), ProcessorId(i))),
        );
    }

    println!("\nEvery surviving pair keeps the tightest bound its remaining");
    println!("evidence supports (optimal per instance); the crashed site and");
    println!("the starved links are reported, not papered over.");

    // The same story on real threads: a 3-site cluster whose middle link
    // loses 40% of its messages, so retries and backoff fire before the
    // probe rounds land. With `--trace`, this segment contributes the
    // per-link retry counters, RTT/backoff histograms and link-health
    // events to the trace.
    section("live threaded cluster with a lossy link");
    let net = ClusterConfig::new(3)
        .link(
            0,
            1,
            LinkConfig::uniform(Nanos::from_micros(200), Nanos::from_millis(1)),
        )
        .link(
            1,
            2,
            LinkConfig::uniform(Nanos::from_micros(200), Nanos::from_millis(1)).loss(400_000),
        )
        .probes(2)
        .probe_deadline(Nanos::from_millis(8))
        .retries(5)
        .with_recorder(recorder.clone())
        .run(7);
    for h in &net.health {
        row(&format!("link {}–{}", h.a, h.b), h.state.to_string());
    }
    let live = net.synchronize()?;
    row("live precision", fmt_ext_us(live.precision()));

    if let Some(path) = trace_path {
        std::fs::write(&path, recorder.snapshot().to_jsonl())?;
        println!("\ntrace written to {path}");
        println!("render it with: clocksync trace summarize --in {path}");
    }
    Ok(())
}
