//! A WAN under fire: message loss, a link-down window and a crash-stopped
//! processor — and the guarantees that survive all of it.
//!
//! Run with: `cargo run --example flaky_wan`
//!
//! Topology (5 sites, a ring):
//!
//! ```text
//!   hub0 ── edge1 ── edge2 ── edge3 ── edge4 ── hub0
//! ```
//!
//! Faults injected (see `DESIGN.md` §5 for the degradation contract):
//!
//! * link 1–2 loses 30% of its messages;
//! * link 0–4 is **down** for a window in the middle of the probe phase;
//! * edge3 **crash-stops** mid-protocol.
//!
//! The synchronizer is a pure function of evidence, so none of this makes
//! the run fail — links slide down the degradation lattice (bounds →
//! no-bounds → dropped → component split) and the outcome reports where
//! each one landed, with per-component corrections that remain optimal
//! for whatever evidence survived.

use clocksync_apps::{fmt_ext_us, row, section};
use clocksync_model::ProcessorId;
use clocksync_sim::{FaultPlan, Simulation, Topology};
use clocksync_time::{Nanos, RealTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let us = RealTime::from_micros;
    let plan = FaultPlan::new()
        .drop_messages(ProcessorId(1), ProcessorId(2), 0.3)
        .link_down(ProcessorId(0), ProcessorId(4), us(100), us(4_000))
        .crash(ProcessorId(3), us(2_500));

    let sim = Simulation::builder(5)
        .uniform_links(
            Topology::Ring(5),
            Nanos::from_micros(20),
            Nanos::from_micros(200),
            1,
        )
        .probes(3)
        .faults(plan)
        .build();

    let faulty = sim.run_with_faults(7);
    section("what actually went wrong (engine ground truth)");
    row("messages dropped", faulty.log.dropped.len().to_string());
    row(
        "messages duplicated",
        faulty.log.duplicated.len().to_string(),
    );
    for &(p, at) in &faulty.log.crashed {
        row("crash-stop", format!("{p} at {at}"));
    }

    // The faulty execution is still a perfectly valid execution of the
    // model — the processors just saw less.
    assert!(faulty.run.is_admissible(), "faults never forge evidence");
    let outcome = faulty.synchronize()?;

    section("degradation report");
    if outcome.degradations().is_empty() {
        println!("  (every link delivered evidence both ways)");
    }
    for d in outcome.degradations() {
        println!("  {d}");
    }

    section("surviving guarantees, per component");
    for (k, c) in outcome.components().iter().enumerate() {
        let members: Vec<String> = c.members.iter().map(|p| p.to_string()).collect();
        row(
            &format!("component {k} = {{{}}}", members.join(", ")),
            format!(
                "precision {}",
                fmt_ext_us(clocksync_time::Ext::Finite(c.precision))
            ),
        );
    }
    if !outcome.is_fully_synchronized() {
        println!("\n  cross-component bounds are honestly infinite: no evidence");
        println!("  connects the components, so no algorithm could do better.");
    }

    section("pairwise bounds (hub0 against everyone)");
    for i in 1..5 {
        row(
            &format!("hub0 vs edge{i}"),
            fmt_ext_us(outcome.pair_bound(ProcessorId(0), ProcessorId(i))),
        );
    }

    println!("\nEvery surviving pair keeps the tightest bound its remaining");
    println!("evidence supports (optimal per instance); the crashed site and");
    println!("the starved links are reported, not papered over.");
    Ok(())
}
