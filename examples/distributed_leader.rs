//! The paper's §7 distributed protocol, running inside the simulator.
//!
//! Run with: `cargo run --example distributed_leader`
//!
//! No processor ever sees another's view: links are probed pairwise with
//! timestamped messages, per-link shift estimates travel up a spanning
//! tree to a leader, the leader runs GLOBAL ESTIMATES + SHIFTS, and each
//! correction is routed back to its owner. The outside observer then
//! audits the result against the hidden true start times.

use clocksync_apps::{fmt_ext_us, fmt_us, row, section};
use clocksync_model::ProcessorId;
use clocksync_sim::{DistributedSync, Simulation, Topology};
use clocksync_time::{Ext, Nanos, RealTime};

fn main() {
    let sim = Simulation::builder(6)
        .uniform_links(
            Topology::RandomConnected {
                n: 6,
                extra_per_mille: 350,
            },
            Nanos::from_micros(80),
            Nanos::from_micros(600),
            5,
        )
        .probes(3)
        .start_spread(Nanos::from_millis(8))
        .build();

    let run = DistributedSync::new(sim).run(2026);

    section("distributed leader protocol, 6 processors");
    row(
        "messages exchanged (total)",
        run.execution.messages().len().to_string(),
    );
    row("leader-certified precision", fmt_ext_us(run.precision));
    let err = run.execution.discrepancy(&run.corrections);
    row("true discrepancy (hidden)", fmt_us(err));
    assert!(Ext::Finite(err) <= run.precision);

    section("per-processor results");
    for i in 0..6 {
        let p = ProcessorId(i);
        row(
            &format!("{p}"),
            format!(
                "started {:>12}   received correction {}",
                (run.execution.start(p) - RealTime::ZERO).to_string(),
                fmt_us(run.corrections[i]),
            ),
        );
    }

    // How much optimality did distribution cost? An omniscient centralized
    // run also exploits the report/correction traffic.
    let central = clocksync::Synchronizer::new(run.network.clone())
        .synchronize(run.execution.views())
        .expect("consistent");
    section("cost of distribution (the paper's §7 caveat)");
    row("distributed certificate", fmt_ext_us(run.precision));
    row("omniscient certificate", fmt_ext_us(central.precision()));
    println!("\nThe distributed protocol is optimal for the probe-phase views;");
    println!("the report traffic itself carries timing information it cannot");
    println!("use — exactly the open problem the paper states in §7.");
}
