//! Quickstart: synchronize a 4-node ring with known delay bounds.
//!
//! Run with: `cargo run --example quickstart`
//! (add `--trace out.jsonl` to record an observability trace)
//!
//! The flow is the library's standard loop:
//! 1. describe the network (who is linked, what is assumed about delays);
//! 2. obtain views (here: from the discrete-event simulator);
//! 3. `synchronize` → corrections + an optimal per-instance precision;
//! 4. audit the result against the simulator's hidden ground truth.

use clocksync_apps::{fmt_ext_us, fmt_us, row, section, trace_flag};
use clocksync_model::ProcessorId;
use clocksync_obs::Recorder;
use clocksync_sim::{Simulation, Topology};
use clocksync_time::{Ext, Nanos};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace_path = trace_flag();
    let recorder = if trace_path.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    // 4 processors in a ring; every link has uniform delays in
    // [100us, 400us] and the synchronizer is told exactly those bounds.
    let sim = Simulation::builder(4)
        .uniform_links(
            Topology::Ring(4),
            Nanos::from_micros(100),
            Nanos::from_micros(400),
            1,
        )
        .probes(3)
        .start_spread(Nanos::from_millis(5))
        .recorder(recorder.clone())
        .build();

    let run = sim.run(2026);
    let outcome = run.synchronize_traced(&recorder)?;

    section("quickstart: 4-node ring, bounds [100us, 400us]");
    row("guaranteed precision", fmt_ext_us(outcome.precision()));
    let achieved = run.true_discrepancy(outcome.corrections());
    row("true discrepancy (hidden)", fmt_us(achieved));
    assert!(Ext::Finite(achieved) <= outcome.precision());

    section("per-processor corrections");
    for i in 0..4 {
        let p = ProcessorId(i);
        row(&format!("offset for {p}"), fmt_us(outcome.correction(p)));
    }

    section("diagnosis");
    if let Some((p, q)) = outcome.bottleneck_pair() {
        row("bottleneck pair", format!("{p} vs {q}"));
        row("its tight bound", fmt_ext_us(outcome.pair_bound(p, q)));
    }
    let cycle = &outcome.components()[0].critical_cycle;
    row(
        "critical cycle",
        cycle
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(" -> "),
    );
    println!("\nThe corrected clocks of all four processors agree to within");
    println!("the guaranteed precision in EVERY execution consistent with");
    println!("what the processors observed — and no algorithm can do better.");

    if let Some(path) = trace_path {
        std::fs::write(&path, recorder.snapshot().to_jsonl())?;
        println!("\ntrace written to {path}");
        println!("render it with: clocksync trace summarize --in {path}");
    }
    Ok(())
}
