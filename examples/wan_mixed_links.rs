//! A heterogeneous WAN where every link obeys a *different* delay
//! assumption — the headline capability of the PODC'93 framework.
//!
//! Run with: `cargo run --example wan_mixed_links`
//!
//! Topology (5 sites):
//!
//! ```text
//!   lab0 ── lab1        two LAN hops with tight known bounds
//!    │        │
//!   dc2 ═══ dc3         a WAN pair: no usable bounds, but traffic in the
//!    │                  two directions is symmetric (round-trip bias)
//!   sat4                a satellite uplink: only a lower bound is known
//! ```
//!
//! Previous formal work required upper AND lower bounds on every link; the
//! mixture below is handled optimally, per instance, by one algorithm.

use clocksync::{DelayRange, LinkAssumption};
use clocksync_apps::{fmt_ext_us, fmt_us, row, section};
use clocksync_model::ProcessorId;
use clocksync_sim::{DelayDistribution, LinkModel, Simulation};
use clocksync_time::{Ext, Nanos};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let us = Nanos::from_micros;

    // LAN links: genuine uniform delays inside declared bounds.
    let lan = LinkModel::symmetric(DelayDistribution::uniform(us(50), us(250)));
    let lan_assumption = LinkAssumption::symmetric_bounds(DelayRange::new(us(50), us(250)));

    // WAN pair: a congested route with a large unknown base delay shared by
    // both directions; only the bias (±300us) is promised.
    let wan = LinkModel::Correlated {
        base: DelayDistribution::uniform(us(2_000), us(30_000)),
        spread: us(300),
    };
    let wan_assumption = LinkAssumption::rtt_bias(us(300));

    // Satellite: heavy-tailed, no upper bound exists; declare the floor.
    let sat = LinkModel::symmetric(DelayDistribution::heavy_tail(us(120_000), us(5_000), 1.3));
    let sat_assumption = LinkAssumption::symmetric_bounds(DelayRange::at_least(us(120_000)));

    let sim = Simulation::builder(5)
        .link(0, 1, lan.clone(), lan_assumption.clone())
        .link(0, 2, lan.clone(), lan_assumption.clone())
        .link(1, 3, lan, lan_assumption)
        .link(2, 3, wan, wan_assumption)
        .link(2, 4, sat, sat_assumption)
        .probes(4)
        .start_spread(Nanos::from_millis(20))
        .build();

    let run = sim.run(7);
    assert!(run.is_admissible(), "scenario declares only truths");
    let outcome = run.synchronize()?;

    section("mixed-assumption WAN, 5 sites");
    row("guaranteed precision", fmt_ext_us(outcome.precision()));
    let achieved = run.true_discrepancy(outcome.corrections());
    row("true discrepancy (hidden)", fmt_us(achieved));
    assert!(Ext::Finite(achieved) <= outcome.precision());

    section("pairwise guarantees (tight per pair)");
    let names = ["lab0", "lab1", "dc2", "dc3", "sat4"];
    for i in 0..5 {
        for j in (i + 1)..5 {
            row(
                &format!("{} vs {}", names[i], names[j]),
                fmt_ext_us(outcome.pair_bound(ProcessorId(i), ProcessorId(j))),
            );
        }
    }

    println!("\nEvery link contributed exactly the constraint its assumption");
    println!("supports: bounds where bounds exist, bias where only symmetry");
    println!("is known, and a bare delay floor on the satellite hop — and");
    println!("the combination is still optimal per instance.");
    Ok(())
}
