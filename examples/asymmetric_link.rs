//! Where NTP goes wrong and the bias model does not: asymmetric links.
//!
//! Run with: `cargo run --example asymmetric_link`
//!
//! NTP estimates a peer's offset as half the difference of the two
//! directions' best delays — exact only if delays are symmetric. On a
//! DSL-like link (fast downstream, slow upstream) that estimate is biased
//! by half the asymmetry *and NTP cannot know by how much*. The PODC'93
//! round-trip-bias model instead takes a declared bound `b` on the
//! direction difference and produces corrections with a certified,
//! per-instance-optimal error bar.

use clocksync::{LinkAssumption, Network, Synchronizer};
use clocksync_apps::{fmt_ext_us, fmt_us, row, section};
use clocksync_baselines::{Baseline, NtpMinFilter};
use clocksync_model::{ExecutionBuilder, ProcessorId};
use clocksync_time::{Nanos, RealTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let us = Nanos::from_micros;
    let client = ProcessorId(0);
    let server = ProcessorId(1);

    // Ground truth: the server started 5ms after the client; the link is
    // asymmetric (upstream 9ms, downstream 3ms) but its bias is bounded by
    // 7ms and delays move together within that bound.
    let true_offset = Nanos::from_millis(5);
    let exec = ExecutionBuilder::new(2)
        .start(server, RealTime::ZERO + true_offset)
        // First round trip: light load (up 9ms, down 3ms).
        .round_trips(
            client,
            server,
            1,
            RealTime::from_millis(50),
            Nanos::from_millis(20),
            us(9_000),
            us(3_000),
        )
        // Second round trip: congestion raises both directions together
        // (up 10ms, down 8ms) — every pairwise bias stays within 7ms.
        .round_trips(
            client,
            server,
            1,
            RealTime::from_millis(150),
            Nanos::from_millis(20),
            us(10_000),
            us(8_000),
        )
        .build()?;

    // The bias-model network: the only promise is |d_up − d_down| ≤ 7ms.
    let net = Network::builder(2)
        .link(client, server, LinkAssumption::rtt_bias(us(7_000)))
        .build();
    assert!(net.admits(&exec));

    let outcome = Synchronizer::new(net.clone()).synchronize(exec.views())?;
    let ntp = NtpMinFilter::new().corrections(&net, exec.views())?;

    section("asymmetric link: upstream 9ms, downstream 3ms, bias <= 7ms");
    row("true offset (hidden)", format!("{true_offset}"));

    section("optimal (rtt-bias model)");
    row("guaranteed precision", fmt_ext_us(outcome.precision()));
    row(
        "true error",
        fmt_us(exec.discrepancy(outcome.corrections())),
    );
    row(
        "certified bound honored",
        format!(
            "{}",
            clocksync_time::Ext::Finite(exec.discrepancy(outcome.corrections()))
                <= outcome.precision()
        ),
    );

    section("NTP (assumes symmetry, no certificate)");
    row("true error", fmt_us(exec.discrepancy(&ntp)));
    row(
        "worst case over equivalent runs",
        fmt_ext_us(outcome.rho_bar(&ntp)),
    );

    println!("\nNTP's symmetric-delay midpoint is off by half the (3ms vs");
    println!("9ms) asymmetry and offers no error bar. The bias model gives");
    println!("a certified bound, and ρ̄ shows NTP's corrections are also");
    println!("worse against an adversarial-but-consistent execution.");
    Ok(())
}
