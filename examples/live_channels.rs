//! Live run: real OS threads, real channels, real (injected) delays.
//!
//! Run with: `cargo run --example live_channels`
//!
//! Three processor threads start at secret offsets, probe each other over
//! crossbeam channels whose messages are held for a sampled delay, and
//! record only what the model allows them to see. The harvested views go
//! through the same optimal synchronizer as the simulator-driven examples;
//! the harness compares against the measured true start offsets.

use clocksync_apps::{fmt_ext_us, fmt_us, row, section};
use clocksync_model::ProcessorId;
use clocksync_net::{ClusterConfig, LinkConfig};
use clocksync_time::{Ext, Nanos, RealTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = Nanos::from_millis;
    let run = ClusterConfig::new(3)
        .link(0, 1, LinkConfig::uniform(ms(1), ms(3)))
        .link(1, 2, LinkConfig::uniform(ms(2), ms(5)))
        .link(0, 2, LinkConfig::uniform(ms(1), ms(6)))
        .probes(3)
        .start_spread(ms(4))
        .run(2026);

    assert!(run.network.admits(&run.execution));
    let outcome = run.synchronize()?;

    section("live channel cluster: 3 threads, injected delays");
    row(
        "messages exchanged",
        run.execution.messages().len().to_string(),
    );
    row("guaranteed precision", fmt_ext_us(outcome.precision()));
    let achieved = run.execution.discrepancy(outcome.corrections());
    row("true discrepancy (measured)", fmt_us(achieved));
    assert!(Ext::Finite(achieved) <= outcome.precision());

    section("measured thread starts vs corrections");
    for i in 0..3 {
        let p = ProcessorId(i);
        row(
            &format!("{p}"),
            format!(
                "started at {}  correction {}",
                run.execution.start(p) - RealTime::ZERO,
                fmt_us(outcome.correction(p)),
            ),
        );
    }

    println!("\nThe synchronizer never saw a real time or a true delay —");
    println!("only the threads' own clock readings — yet its certificate");
    println!("holds against the measured ground truth.");
    Ok(())
}
