//! Cross-crate guarantees of the observability layer (DESIGN.md §6):
//! recording is a pure *observer* — attaching a recorder never changes a
//! sync result — and every emitted trace round-trips through the strict
//! JSONL schema.

use clocksync_obs::{FieldValue, Recorder, Trace};
use clocksync_sim::{FaultPlan, Simulation, Topology};
use clocksync_time::Nanos;
use proptest::prelude::*;

fn ring_sim(n: usize, recorder: Recorder) -> Simulation {
    Simulation::builder(n)
        .uniform_links(
            Topology::Ring(n),
            Nanos::from_micros(50),
            Nanos::from_micros(400),
            11,
        )
        .probes(2)
        .recorder(recorder)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline determinism contract: for any seed and ring size, the
    /// outcome with an enabled recorder is bit-for-bit the outcome with a
    /// disabled one, which is bit-for-bit the recorder-free outcome.
    #[test]
    fn recorder_never_changes_the_outcome(seed in any::<u64>(), n in 3usize..7) {
        let plain = ring_sim(n, Recorder::disabled()).run(seed);
        let baseline = plain.synchronize().unwrap();

        let noop = Recorder::disabled();
        let with_noop = ring_sim(n, noop.clone()).run(seed);
        prop_assert_eq!(
            with_noop.synchronize_traced(&noop).unwrap(),
            baseline.clone()
        );

        let live = Recorder::enabled();
        let with_live = ring_sim(n, live.clone()).run(seed);
        prop_assert_eq!(
            with_live.synchronize_traced(&live).unwrap(),
            baseline
        );
        // ... and the live run actually recorded something.
        prop_assert!(!live.snapshot().records.is_empty());
    }

    /// Every trace a real run emits survives the strict JSONL decoder,
    /// and re-encoding the decoded trace is a fixpoint.
    #[test]
    fn emitted_traces_round_trip_through_jsonl(seed in any::<u64>()) {
        let recorder = Recorder::enabled();
        let run = ring_sim(4, recorder.clone()).run(seed);
        run.synchronize_traced(&recorder).unwrap();
        let jsonl = recorder.snapshot().to_jsonl();
        let decoded = Trace::from_jsonl(&jsonl).unwrap();
        let again = decoded.to_jsonl();
        prop_assert_eq!(Trace::from_jsonl(&again).unwrap(), decoded);
        prop_assert_eq!(again.clone(), Trace::from_jsonl(&again).unwrap().to_jsonl());
    }
}

#[test]
fn traced_pipeline_reports_stages_kernel_and_counters() {
    let recorder = Recorder::enabled();
    let run = ring_sim(5, recorder.clone()).run(7);
    run.synchronize_traced(&recorder).unwrap();
    let trace = recorder.snapshot();

    let spans = trace.span_names();
    for expected in [
        "sim.run",
        "sync.local_estimates",
        "sync.global_estimates",
        "sync.shifts",
        "sync.degradations",
    ] {
        assert!(spans.contains(&expected), "missing span {expected}");
    }
    // The closure-kernel choice is recorded on the global-estimates span.
    match trace.span_field("sync.global_estimates", "kernel") {
        Some(FieldValue::Str(kernel)) => {
            assert!(
                [
                    "scaled-i64",
                    "sparse-johnson",
                    "hier-components",
                    "rational-generic"
                ]
                .contains(&kernel.as_str()),
                "unexpected kernel {kernel}"
            );
        }
        other => panic!("kernel field missing or mistyped: {other:?}"),
    }
    // Engine counters are self-consistent: a ring of 5 with 2 probe
    // rounds delivers every message it sends, fault-free.
    let sent = trace.counter("sim.messages_sent").unwrap();
    let delivered = trace.counter("sim.messages_delivered").unwrap();
    assert_eq!(sent, delivered);
    assert!(trace.counter("sim.timers_fired").unwrap() > 0);
    assert!(trace.events_named("sim.probe_round").count() > 0);
}

#[test]
fn scaling_bailout_is_reported_not_silent() {
    use clocksync::global_estimates_traced;
    use clocksync_graph::{SquareMatrix, Weight};
    use clocksync_time::{Ext, Ratio};

    // An entry too large for the scaled-i64 kernels: the stage must fall
    // back to the generic kernel AND say so — span fields for the kernel
    // and reason, plus a `sync.closure_fallback` event — instead of
    // silently eating the O(n³) rational cost.
    let huge = Ext::Finite(Ratio::from_int(1i128 << 80));
    let m = SquareMatrix::from_fn(3, |i, j| {
        if i == j {
            <Ext<Ratio> as Weight>::zero()
        } else {
            huge
        }
    });
    let recorder = Recorder::enabled();
    global_estimates_traced(&m, &recorder).unwrap();
    let trace = recorder.snapshot();

    assert_eq!(
        trace.span_field("sync.global_estimates", "kernel"),
        Some(&FieldValue::Str("rational-generic".into()))
    );
    assert_eq!(
        trace.span_field("sync.global_estimates", "fallback_reason"),
        Some(&FieldValue::Str("magnitude-overflow".into()))
    );
    let events: Vec<_> = trace.events_named("sync.closure_fallback").collect();
    assert_eq!(events.len(), 1, "exactly one fallback event");
    let field = |key: &str| {
        events[0]
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    };
    assert_eq!(
        field("kernel"),
        Some(FieldValue::Str("rational-generic".into()))
    );
    assert_eq!(
        field("reason"),
        Some(FieldValue::Str("magnitude-overflow".into()))
    );
    assert_eq!(field("n"), Some(FieldValue::Int(3)));

    // A scalable matrix must NOT emit the fallback event.
    let ok = SquareMatrix::from_fn(3, |i, j| {
        if i == j {
            <Ext<Ratio> as Weight>::zero()
        } else {
            Ext::Finite(Ratio::from_int(5))
        }
    });
    let recorder = Recorder::enabled();
    global_estimates_traced(&ok, &recorder).unwrap();
    let trace = recorder.snapshot();
    assert_eq!(trace.events_named("sync.closure_fallback").count(), 0);
    assert_eq!(
        trace.span_field("sync.global_estimates", "kernel"),
        Some(&FieldValue::Str("scaled-i64".into()))
    );
}

#[test]
fn faulty_run_counters_reflect_the_fault_log() {
    use clocksync_model::ProcessorId;
    let plan = FaultPlan::new().drop_messages(ProcessorId(0), ProcessorId(1), 0.5);
    let recorder = Recorder::enabled();
    let sim = Simulation::builder(4)
        .uniform_links(
            Topology::Ring(4),
            Nanos::from_micros(50),
            Nanos::from_micros(400),
            11,
        )
        .probes(4)
        .faults(plan)
        .recorder(recorder.clone())
        .build();
    let faulty = sim.run_with_faults(3);
    let trace = recorder.snapshot();
    // The engine's dropped counter is exactly the fault log's count.
    assert_eq!(
        trace.counter("sim.messages_dropped").unwrap_or(0),
        faulty.log.dropped.len() as u64
    );
}
