//! Tier-1 regression tests for the deterministic scenario fuzzer.
//!
//! The vopr crate has its own unit tests; these are the cross-crate
//! guarantees the rest of the repo leans on:
//!
//! * the determinism contract — one seed, one byte-identical journal and
//!   one outcome, across process lifetimes (the corpus and every replay
//!   command depend on this);
//! * the shrinker's fixed points — passing input comes back unchanged,
//!   failing input converges under a bounded budget;
//! * the committed corpus — every reproducer and pinned seed runs clean
//!   on the fixed build (the buggy-build direction lives in
//!   `crates/vopr/tests/bug_window0.rs` behind the `bug-window0`
//!   feature).

use std::path::Path;

use clocksync_vopr::{generate, run_scenario, shrink, with_quiet_panics, Event, Scenario};

/// Same seed, twice: byte-identical journal, identical outcome summary.
#[test]
fn determinism_same_seed_same_trace_and_outcome() {
    for seed in [1u64, 42, 11, 777, 4096] {
        let scenario = generate(seed);
        let a = with_quiet_panics(|| run_scenario(&scenario));
        let b = with_quiet_panics(|| run_scenario(&scenario));
        assert_eq!(
            a.journal.to_jsonl(),
            b.journal.to_jsonl(),
            "seed {seed}: journals diverged"
        );
        assert_eq!(a.failure, b.failure, "seed {seed}: outcomes diverged");
        assert_eq!(a.steps, b.steps);
        assert_eq!(
            (a.probes_applied, a.probes_dropped, a.probes_skipped),
            (b.probes_applied, b.probes_dropped, b.probes_skipped),
            "seed {seed}: probe accounting diverged"
        );
    }
}

/// The scenario JSON is part of the determinism contract: a round trip
/// through the corpus format must replay to the same journal.
#[test]
fn determinism_survives_the_json_round_trip() {
    let scenario = generate(42);
    let direct = with_quiet_panics(|| run_scenario(&scenario));
    let back = Scenario::from_json_str(&scenario.to_json_pretty()).unwrap();
    assert_eq!(back, scenario);
    let replayed = with_quiet_panics(|| run_scenario(&back));
    assert_eq!(direct.journal.to_jsonl(), replayed.journal.to_jsonl());
}

/// A passing scenario is a fixed point of the shrinker.
#[test]
fn shrinker_leaves_passing_scenarios_alone() {
    let scenario = generate(7);
    assert!(with_quiet_panics(|| run_scenario(&scenario)).passed());
    let (shrunk, stats) = with_quiet_panics(|| shrink(scenario.clone(), 100));
    assert_eq!(shrunk, scenario);
    assert_eq!(stats.runs, 1, "one confirming run, no exploration");
}

/// ddmin against a synthetic predicate: of a long event stream, only two
/// probes matter; the shrinker must isolate exactly those under budget.
#[test]
fn shrinker_isolates_the_relevant_events() {
    let mut events = vec![Event::AddLink {
        a: 0,
        b: 1,
        lo: 100,
        hi: 200,
    }];
    for i in 0..30 {
        events.push(Event::Probe {
            src: 0,
            dst: 1,
            at: 1_000 + 100 * i,
            delay: 150,
        });
    }
    let scenario = Scenario {
        seed: 1,
        n: 2,
        shards: 1,
        window: 8,
        margin: 0,
        offsets: vec![0, 0],
        events,
    };
    // "Fails" iff the probes at t=1500 and t=2500 are both still present.
    let needs = |s: &Scenario, at: i64| {
        s.events
            .iter()
            .any(|e| matches!(e, Event::Probe { at: t, .. } if *t == at))
    };
    let (shrunk, stats) =
        clocksync_vopr::shrink_with(scenario, 1_000, |s| needs(s, 1_500) && needs(s, 2_500));
    let probes = shrunk
        .events
        .iter()
        .filter(|e| matches!(e, Event::Probe { .. }))
        .count();
    assert_eq!(probes, 2, "kept exactly the two needles: {shrunk:?}");
    assert!(stats.runs <= 1_000);
    assert!(stats.to_events < stats.from_events);
}

/// Every committed reproducer must run clean on the fixed build — that
/// is what "fixed" means. Pinned seeds likewise.
#[test]
fn corpus_passes_on_the_fixed_build() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    assert!(
        !files.is_empty(),
        "the corpus ships at least one reproducer"
    );
    for file in files {
        let text = std::fs::read_to_string(&file).unwrap();
        let scenario =
            Scenario::from_json_str(&text).unwrap_or_else(|e| panic!("{}: {e}", file.display()));
        let report = with_quiet_panics(|| run_scenario(&scenario));
        assert!(report.passed(), "{}: {:?}", file.display(), report.failure);
    }

    let seeds = std::fs::read_to_string(dir.join("seeds.txt")).expect("seeds.txt exists");
    for line in seeds.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let seed: u64 = line.parse().expect("seeds.txt holds decimal u64 seeds");
        let report = with_quiet_panics(|| run_scenario(&generate(seed)));
        assert!(report.passed(), "pinned seed {seed}: {:?}", report.failure);
    }
}
