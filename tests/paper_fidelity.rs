//! One executable check per numbered statement of the paper — the
//! reproduction's "theorem index". Each test constructs a small instance
//! with hand-computable values and verifies the statement *as stated*.

use clocksync::{
    estimated_local_shifts, global_estimates, DelayRange, LinkAssumption, Network, Synchronizer,
};
use clocksync_graph::{karp_max_cycle_mean, SquareMatrix, Weight};
use clocksync_model::{Execution, ExecutionBuilder, LinkEvidence, MsgSample, ProcessorId, ViewSet};
use clocksync_time::{Ext, ExtRatio, Nanos, Ratio, RealTime};

const P: ProcessorId = ProcessorId(0);
const Q: ProcessorId = ProcessorId(1);
const R: ProcessorId = ProcessorId(2);

fn bounds(lo: i64, hi: i64) -> LinkAssumption {
    LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(lo), Nanos::new(hi)))
}

/// The standard instance used across several checks: bounds [0,100] on
/// P–Q, one message each way with delay 40, true offset σ = 30.
fn standard() -> (Network, Execution) {
    let net = Network::builder(2).link(P, Q, bounds(0, 100)).build();
    let exec = ExecutionBuilder::new(2)
        .start(Q, RealTime::from_nanos(30))
        .message(P, Q, RealTime::from_nanos(1_000), Nanos::new(40))
        .message(Q, P, RealTime::from_nanos(2_000), Nanos::new(40))
        .build()
        .unwrap();
    (net, exec)
}

/// The closure of TRUE maximal local shifts (Lemmas 6.2/6.5 on true
/// delays), for the lemmas that talk about `ms` rather than `m̃s`.
fn true_closure(net: &Network, exec: &Execution) -> SquareMatrix<ExtRatio> {
    let samples = |src: ProcessorId, dst: ProcessorId| -> Vec<MsgSample> {
        exec.link_messages(src, dst)
            .into_iter()
            .map(|m| MsgSample {
                send_clock: m.send_clock,
                recv_clock: m.send_clock + m.delay,
            })
            .collect()
    };
    let n = exec.n();
    let mut m = SquareMatrix::from_fn(n, |i, j| {
        if i == j {
            <ExtRatio as Weight>::zero()
        } else {
            <ExtRatio as Weight>::infinity()
        }
    });
    for (a, b, assumption) in net.links() {
        let fwd = samples(a, b);
        let bwd = samples(b, a);
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        m[(a.index(), b.index())] = assumption.estimated_mls(&ev);
        m[(b.index(), a.index())] = assumption.reversed().estimated_mls(&ev.reversed());
    }
    global_estimates(&m).unwrap()
}

/// Lemma 4.1 (Lundelius–Lynch): `shift(π, s)` is a history of `p` with
/// `S' = S − s`.
#[test]
fn lemma_4_1_shift_produces_histories() {
    let (_, exec) = standard();
    let shifted = exec.shift(&[Nanos::ZERO, Nanos::new(25)]);
    // Still a valid execution (views validate on reconstruction)…
    assert!(ViewSet::new(shifted.views().iter().cloned().collect()).is_ok());
    // …with the start moved by −s.
    assert_eq!(shifted.start(Q), exec.start(Q) - Nanos::new(25));
}

/// Claim 3.1: correction functions cannot distinguish equivalent
/// executions.
#[test]
fn claim_3_1_corrections_are_view_determined() {
    let (net, exec) = standard();
    let shifted = exec.shift(&[Nanos::ZERO, Nanos::new(25)]);
    assert!(exec.is_equivalent_to(&shifted));
    let sync = Synchronizer::new(net);
    assert_eq!(
        sync.synchronize(exec.views()).unwrap().corrections(),
        sync.synchronize(shifted.views()).unwrap().corrections()
    );
}

/// Claim 4.2: if `shift(α, S)` is admissible then `s_q − s_p ≤ ms(p,q)`,
/// i.e. no admissible shift exceeds the maximum.
#[test]
fn claim_4_2_admissible_shifts_are_bounded() {
    let (net, exec) = standard();
    // True mls here: min(d, ub−d) = 40 each way.
    for s in -100..=100i64 {
        let shifted = exec.shift(&[Nanos::ZERO, Nanos::new(s)]);
        let admissible = net.admits(&shifted);
        assert_eq!(admissible, (-40..=40).contains(&s), "s = {s}");
    }
}

/// Theorem 4.4 (lower bound): every correction vector suffers
/// `ρ̄ ≥ A_max` — over the constructed extreme executions.
#[test]
fn theorem_4_4_lower_bound() {
    let (net, exec) = standard();
    let outcome = Synchronizer::new(net.clone())
        .synchronize(exec.views())
        .unwrap();
    let a_max = outcome.precision().expect_finite("bounded");
    assert_eq!(a_max, Ratio::from_int(40));
    let late = exec.shift(&[Nanos::ZERO, Nanos::new(40)]);
    let early = exec.shift(&[Nanos::ZERO, Nanos::new(-40)]);
    assert!(net.admits(&late) && net.admits(&early));
    for xq in (-200..=200).step_by(7) {
        let x = vec![Ratio::ZERO, Ratio::from_int(xq)];
        assert!(late.discrepancy(&x).max(early.discrepancy(&x)) >= a_max);
    }
}

/// Lemma 4.5: the maximum average cycle weight is the same under true
/// shifts and under estimates (the start terms telescope away on cycles).
#[test]
fn lemma_4_5_estimates_preserve_cycle_means() {
    let net = Network::builder(3)
        .link(P, Q, bounds(0, 400_000))
        .link(Q, R, bounds(0, 600_000))
        .build();
    let exec = ExecutionBuilder::new(3)
        .start(Q, RealTime::from_micros(55))
        .start(R, RealTime::from_micros(-20))
        .round_trips(
            P,
            Q,
            1,
            RealTime::from_millis(2),
            Nanos::new(10),
            Nanos::from_micros(150),
            Nanos::from_micros(250),
        )
        .round_trips(
            Q,
            R,
            1,
            RealTime::from_millis(4),
            Nanos::new(10),
            Nanos::from_micros(100),
            Nanos::from_micros(480),
        )
        .build()
        .unwrap();
    let estimated = global_estimates(&estimated_local_shifts(
        &net,
        &exec.views().link_observations(),
    ))
    .unwrap();
    let truth = true_closure(&net, &exec);
    let a_est = karp_max_cycle_mean(&estimated).unwrap().mean;
    let a_true = karp_max_cycle_mean(&truth).unwrap().mean;
    assert_eq!(a_est, a_true);
    // The matrices themselves differ (by the start offsets)…
    assert!(estimated != truth);
}

/// Theorem 4.6 (upper bound): SHIFTS achieves `ρ̄ = A_max` exactly.
#[test]
fn theorem_4_6_upper_bound() {
    let (net, exec) = standard();
    let outcome = Synchronizer::new(net).synchronize(exec.views()).unwrap();
    assert_eq!(outcome.rho_bar(outcome.corrections()), outcome.precision());
}

/// Lemma 5.2 / Lemma 5.3: a shift vector is admissible iff every pairwise
/// difference is a locally admissible shift, and global maxima are the
/// shortest-path composition of local ones.
#[test]
fn lemmas_5_2_and_5_3_local_to_global() {
    let net = Network::builder(3)
        .link(P, Q, bounds(0, 100))
        .link(Q, R, bounds(0, 100))
        .build();
    let exec = ExecutionBuilder::new(3)
        .round_trips(
            P,
            Q,
            1,
            RealTime::from_nanos(1_000),
            Nanos::new(10),
            Nanos::new(50),
            Nanos::new(50),
        )
        .round_trips(
            Q,
            R,
            1,
            RealTime::from_nanos(2_000),
            Nanos::new(10),
            Nanos::new(50),
            Nanos::new(50),
        )
        .build()
        .unwrap();
    // True local maxima are 50 everywhere; ms(P,R) = 100 by composition.
    let truth = true_closure(&net, &exec);
    assert_eq!(truth[(0, 2)], Ext::Finite(Ratio::from_int(100)));
    // Admissible iff BOTH pairwise differences are locally admissible:
    // shifting R by 100 requires shifting Q by 50 on the way.
    assert!(net.admits(&exec.shift(&[Nanos::ZERO, Nanos::new(50), Nanos::new(100)])));
    assert!(!net.admits(&exec.shift(&[Nanos::ZERO, Nanos::ZERO, Nanos::new(100)])));
    // And 100 is maximal: nothing beyond it is admissible at all.
    for sq in -200..=200 {
        assert!(!net.admits(&exec.shift(&[Nanos::ZERO, Nanos::new(sq), Nanos::new(101)])));
    }
}

/// Theorem 5.5: GLOBAL ESTIMATES computes `m̃s` (estimates compose along
/// shortest paths like true shifts do).
#[test]
fn theorem_5_5_global_estimates() {
    let (net, exec) = standard();
    let local = estimated_local_shifts(&net, &exec.views().link_observations());
    let closure = global_estimates(&local).unwrap();
    // Two processors: closure == local off-diagonal.
    assert_eq!(closure[(0, 1)], local[(0, 1)]);
    // m̃ls = mls + S_p − S_q: mls = 40, σ = 30 ⇒ m̃ls(P,Q) = 10, m̃ls(Q,P) = 70.
    assert_eq!(closure[(0, 1)], Ext::Finite(Ratio::from_int(10)));
    assert_eq!(closure[(1, 0)], Ext::Finite(Ratio::from_int(70)));
}

/// Theorem 5.6 (decomposition): `mls` under an intersection is the min of
/// the parts' `mls`.
#[test]
fn theorem_5_6_decomposition() {
    let fwd = [MsgSample {
        send_clock: clocksync_time::ClockTime::from_nanos(0),
        recv_clock: clocksync_time::ClockTime::from_nanos(300),
    }];
    let bwd = [MsgSample {
        send_clock: clocksync_time::ClockTime::from_nanos(500),
        recv_clock: clocksync_time::ClockTime::from_nanos(840),
    }];
    let ev = LinkEvidence::from_samples(&fwd, &bwd);
    let a1 = bounds(250, 400);
    let a2 = LinkAssumption::rtt_bias(Nanos::new(50));
    let both = LinkAssumption::all(vec![a1.clone(), a2.clone()]);
    assert_eq!(
        both.estimated_mls(&ev),
        a1.estimated_mls(&ev).min(a2.estimated_mls(&ev))
    );
}

/// Lemma 6.1: the estimated delay is computable from the two views —
/// concretely, it IS the receiver-clock minus sender-clock.
#[test]
fn lemma_6_1_estimated_delay_from_views() {
    let (_, exec) = standard();
    for m in exec.messages() {
        assert_eq!(m.estimated_delay, m.recv_clock - m.send_clock);
        let s_p = exec.start(m.src) - RealTime::ZERO;
        let s_q = exec.start(m.dst) - RealTime::ZERO;
        assert_eq!(m.estimated_delay, m.delay + s_p - s_q);
    }
}

/// Lemma 6.2 / Corollary 6.3: the bounds-model closed form.
#[test]
fn lemma_6_2_bounds_closed_form() {
    let (net, exec) = standard();
    let local = estimated_local_shifts(&net, &exec.views().link_observations());
    // d̃(P→Q) = 10, d̃(Q→P) = 70; m̃ls(P,Q) = min(100−70, 10−0) = 10.
    assert_eq!(local[(0, 1)], Ext::Finite(Ratio::from_int(10)));
    // m̃ls(Q,P) = min(100−10, 70−0) = 70.
    assert_eq!(local[(1, 0)], Ext::Finite(Ratio::from_int(70)));
}

/// Corollary 6.4: with no bounds at all, `m̃ls(p,q) = d̃min(p,q)` — and the
/// paper's headline: asynchronous links still admit finite per-instance
/// precision.
#[test]
fn corollary_6_4_no_bounds() {
    let net = Network::builder(2)
        .link(P, Q, LinkAssumption::no_bounds())
        .build();
    let exec = ExecutionBuilder::new(2)
        .start(Q, RealTime::from_nanos(30))
        .message(P, Q, RealTime::from_nanos(1_000), Nanos::new(40))
        .message(Q, P, RealTime::from_nanos(2_000), Nanos::new(40))
        .build()
        .unwrap();
    let outcome = Synchronizer::new(net).synchronize(exec.views()).unwrap();
    // m̃ls(P,Q) = d̃min = 10, m̃ls(Q,P) = 70 ⇒ A_max = 40 = RTT/2.
    assert_eq!(outcome.precision(), Ext::Finite(Ratio::from_int(40)));
}

/// Lemma 6.5 / Corollary 6.6: the round-trip-bias closed form.
#[test]
fn lemma_6_5_bias_closed_form() {
    let b = 20i64;
    let net = Network::builder(2)
        .link(P, Q, LinkAssumption::rtt_bias(Nanos::new(b)))
        .build();
    let exec = ExecutionBuilder::new(2)
        .start(Q, RealTime::from_nanos(30))
        .message(P, Q, RealTime::from_nanos(1_000), Nanos::new(40))
        .message(Q, P, RealTime::from_nanos(2_000), Nanos::new(50))
        .build()
        .unwrap();
    assert!(net.admits(&exec));
    let local = estimated_local_shifts(&net, &exec.views().link_observations());
    // d̃(P→Q) = 10, d̃(Q→P) = 80.
    // m̃ls(P,Q) = min(10, (20 + 10 − 80)/2) = −25.
    assert_eq!(local[(0, 1)], Ext::Finite(Ratio::new(-25, 1)));
    // m̃ls(Q,P) = min(80, (20 + 80 − 10)/2) = 45.
    assert_eq!(local[(1, 0)], Ext::Finite(Ratio::from_int(45)));
    // A_max = (−25 + 45)/2 = 10: the bias model pins the pair to ±10ns
    // even though no delay bound exists at all.
    let outcome = Synchronizer::new(net).synchronize(exec.views()).unwrap();
    assert_eq!(outcome.precision(), Ext::Finite(Ratio::from_int(10)));
}
