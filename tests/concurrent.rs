//! Cross-crate integration tests of the concurrent worker-per-shard
//! ingestion engine: under arbitrary interleavings, queue depths and
//! group-commit sizes, every domain observes exactly the receipts,
//! errors and outcomes that sequential ingestion of its own batch stream
//! would produce — concurrency changes throughput, never answers. Plus
//! the drain-on-shutdown contract: no enqueued batch is dropped and no
//! receipt is lost, even when shutdown races the producers.

use clocksync::{BatchObservation, DelayRange, LinkAssumption, Network, Network as Net};
use clocksync_model::ProcessorId;
use clocksync_service::{
    ConcurrentService, ObservationBatch, PendingReceipt, ServiceConfig, SyncService,
};
use clocksync_time::{ClockTime, Nanos};
use proptest::prelude::*;

fn obs(src: usize, dst: usize, send: i64, recv: i64) -> BatchObservation {
    BatchObservation {
        src: ProcessorId(src),
        dst: ProcessorId(dst),
        send_clock: ClockTime::from_nanos(send),
        recv_clock: ClockTime::from_nanos(recv),
    }
}

/// A random bounds-only network plus a pre-chunked observation stream,
/// optionally poisoned with one overflow batch (clock readings whose
/// difference exceeds `i64` nanoseconds) so typed-error batches are part
/// of every equivalence statement, not a separate case.
#[derive(Debug, Clone)]
struct StreamInput {
    n: usize,
    links: Vec<(usize, usize, i64, i64)>,
    batches: Vec<Vec<BatchObservation>>,
}

impl StreamInput {
    fn network(&self) -> Network {
        let mut b = Net::builder(self.n);
        for &(p, q, lo, width) in &self.links {
            b = b.link(
                ProcessorId(p),
                ProcessorId(q),
                LinkAssumption::symmetric_bounds(DelayRange::new(
                    Nanos::new(lo),
                    Nanos::new(lo + width),
                )),
            );
        }
        b.build()
    }
}

fn stream_input() -> impl Strategy<Value = StreamInput> {
    (2usize..5).prop_flat_map(|n| {
        let links = proptest::collection::vec((0..n, 0..n, 0i64..500_000, 1i64..1_000_000), 1..5);
        let messages =
            proptest::collection::vec((0..n, 0..n, 0i64..10_000_000, 0i64..2_000_000), 1..40);
        // Vendored proptest has no `option` strategy: the upper half of
        // the range means "no poison batch".
        let poison = 0usize..80;
        (links, messages, 1usize..6, poison).prop_map(move |(links, messages, batch, poison)| {
            let poison = (poison < 40).then_some(poison);
            let mut seen = std::collections::HashSet::new();
            let links: Vec<_> = links
                .into_iter()
                .filter(|&(a, b, _, _)| a != b && seen.insert((a.min(b), a.max(b))))
                .collect();
            let mut batches: Vec<Vec<_>> = messages
                .iter()
                .filter(|&&(src, dst, _, _)| src != dst)
                .map(|&(src, dst, send, delay)| obs(src, dst, send, send + delay))
                .collect::<Vec<_>>()
                .chunks(batch)
                .map(<[_]>::to_vec)
                .collect();
            if let Some(at) = poison {
                if !batches.is_empty() {
                    let at = at % batches.len();
                    batches[at].push(obs(0, 1, i64::MIN, i64::MAX));
                }
            }
            StreamInput { n, links, batches }
        })
    })
}

/// The sequential reference: one domain's batch stream through a
/// synchronous single-owner service, as `(applied | error-string)` per
/// batch.
fn sequential_receipts(
    input: &StreamInput,
    shards: usize,
    window: usize,
    name: &str,
) -> (Vec<Result<usize, String>>, SyncService) {
    let mut svc = SyncService::new(shards, window);
    svc.register_domain(name, input.network()).unwrap();
    let receipts = input
        .batches
        .iter()
        .map(|batch| {
            svc.ingest(&ObservationBatch::new(name, batch.clone()))
                .map(|r| r.applied)
                .map_err(|e| e.to_string())
        })
        .collect();
    (receipts, svc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// The tentpole invariant of the concurrent engine: for every domain,
    /// the receipt sequence (applied counts *and* typed errors, in enqueue
    /// order), the final outcome, and the retention statistics are
    /// bit-identical to sequential ingestion of that domain's stream —
    /// across shard counts, queue depths (including depth 1, where every
    /// enqueue backpressures), and group-commit sizes (including 1, which
    /// disables merging, and sizes that force the merged-apply fallback
    /// when a poisoned batch lands mid-group).
    #[test]
    fn concurrent_ingestion_is_observationally_sequential(
        input in stream_input(),
        shards in 1usize..4,
        window in 0usize..5,
        domains in 1usize..4,
        queue_depth in 1usize..8,
        max_coalesce in 1usize..64,
    ) {
        prop_assume!(!input.links.is_empty());
        prop_assume!(!input.batches.is_empty());
        let names: Vec<String> = (0..domains).map(|d| format!("d{d}")).collect();

        let svc = ConcurrentService::start(ServiceConfig {
            shards,
            window,
            queue_depth,
            max_coalesce,
        });
        for name in &names {
            svc.register_domain(name.as_str(), input.network()).unwrap();
        }
        // One producer thread per domain, enqueueing that domain's
        // stream in order; receipts are redeemed after the producer is
        // done so batches genuinely pile up in the queues and coalesce.
        let got: Vec<Vec<Result<usize, String>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = names
                .iter()
                .map(|name| {
                    let input = &input;
                    let svc = &svc;
                    scope.spawn(move || {
                        let pending: Vec<PendingReceipt> = input
                            .batches
                            .iter()
                            .map(|batch| {
                                svc.ingest(ObservationBatch::new(
                                    name.as_str(),
                                    batch.clone(),
                                ))
                                .expect("enqueue failed")
                            })
                            .collect();
                        pending
                            .into_iter()
                            .map(|p| p.wait().map(|r| r.applied).map_err(|e| e.to_string()))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for (name, got) in names.iter().zip(&got) {
            let (expected, mut reference) =
                sequential_receipts(&input, shards, window, name);
            prop_assert_eq!(got, &expected, "receipts diverged for {}", name);
            let concurrent_outcome = svc.outcome(name).map_err(|e| e.to_string());
            let sequential_outcome = reference.outcome(name).map_err(|e| e.to_string());
            prop_assert_eq!(concurrent_outcome, sequential_outcome,
                "outcome diverged for {}", name);
            let stats = svc.domain_stats(name).unwrap();
            let ref_stats = reference.domain_stats(name).unwrap();
            prop_assert_eq!(stats.ingested, ref_stats.ingested);
            // Group commit runs one GC per coalesced run instead of one
            // per batch, so the exact retained counts may differ from the
            // per-batch reference in either direction (the GC's
            // keep-the-recency-tail rule is not confluent). What is
            // invariant is the analytic retention cap: window + 2
            // witnesses per observed directed pair for the message
            // window, with sample compaction additionally limited to
            // declared links (evidence on undeclared pairs is retained in
            // full), for both engines.
            let declared: std::collections::HashSet<(usize, usize)> = input
                .links
                .iter()
                .flat_map(|&(p, q, _, _)| [(p, q), (q, p)])
                .collect();
            let mut applied_per_pair: std::collections::HashMap<(usize, usize), usize> =
                std::collections::HashMap::new();
            for (batch, r) in input.batches.iter().zip(&expected) {
                if r.is_ok() {
                    for o in batch {
                        *applied_per_pair
                            .entry((o.src.index(), o.dst.index()))
                            .or_insert(0) += 1;
                    }
                }
            }
            let msg_cap: usize = applied_per_pair
                .values()
                .map(|&c| c.min(window + 2))
                .sum();
            let sample_cap: usize = applied_per_pair
                .iter()
                .map(|(pair, &c)| {
                    if declared.contains(pair) {
                        c.min(window + 2)
                    } else {
                        c
                    }
                })
                .sum();
            for (engine, s) in [("concurrent", &stats), ("sequential", &ref_stats)] {
                prop_assert!(s.retained_messages <= msg_cap,
                    "{} retained {} messages over cap {}", engine, s.retained_messages, msg_cap);
                prop_assert!(s.retained_samples <= sample_cap,
                    "{} retained {} samples over cap {}", engine, s.retained_samples, sample_cap);
            }
        }
        svc.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drain-on-shutdown: producers enqueue without redeeming receipts
    /// and shutdown races in immediately afterwards. Every receipt must
    /// still arrive (no batch dropped, none applied twice), and the
    /// worker statistics must account for exactly the applied batches.
    #[test]
    fn shutdown_drains_every_enqueued_batch(
        input in stream_input(),
        shards in 1usize..4,
        queue_depth in 1usize..4,
    ) {
        prop_assume!(!input.links.is_empty());
        prop_assume!(!input.batches.is_empty());
        let svc = ConcurrentService::start(ServiceConfig {
            shards,
            window: 4,
            queue_depth,
            max_coalesce: 8,
        });
        svc.register_domain("d", input.network()).unwrap();
        let pending: Vec<PendingReceipt> = input
            .batches
            .iter()
            .map(|b| svc.ingest(ObservationBatch::new("d", b.clone())).unwrap())
            .collect();
        // Shut down with receipts still unredeemed: the contract is that
        // the workers drain the queues before exiting.
        let stats = svc.shutdown();

        let (expected, _) = sequential_receipts(&input, shards, 4, "d");
        let got: Vec<Result<usize, String>> = pending
            .into_iter()
            .map(|p| p.wait().map(|r| r.applied).map_err(|e| e.to_string()))
            .collect();
        prop_assert_eq!(&got, &expected);
        let applied: u64 = expected
            .iter()
            .map(|r| *r.as_ref().unwrap_or(&0) as u64)
            .sum();
        let failed: u64 = expected.iter().filter(|r| r.is_err()).count() as u64;
        prop_assert_eq!(stats.messages(), applied);
        prop_assert_eq!(stats.errors(), failed);
        prop_assert_eq!(
            stats.batches(),
            expected.len() as u64,
            "every batch processed exactly once (errored ones included)"
        );
    }
}

/// The deterministic regression for the drain contract: a full queue at
/// shutdown time (queue depth 1, slow consumer) still yields every
/// receipt.
#[test]
fn shutdown_with_full_queues_loses_nothing() {
    let net = Net::builder(2)
        .link(
            ProcessorId(0),
            ProcessorId(1),
            LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(1_000))),
        )
        .build();
    let svc = ConcurrentService::start(ServiceConfig {
        shards: 2,
        window: 2,
        queue_depth: 1,
        max_coalesce: 1,
    });
    svc.register_domain("d", net).unwrap();
    let pending: Vec<PendingReceipt> = (0..200)
        .map(|i| {
            let batch = ObservationBatch::new("d", vec![obs(0, 1, i * 1_000, i * 1_000 + 400)]);
            svc.ingest(batch).unwrap()
        })
        .collect();
    let stats = svc.shutdown();
    assert_eq!(stats.messages(), 200);
    for p in pending {
        assert_eq!(p.wait().unwrap().applied, 1);
    }
}
