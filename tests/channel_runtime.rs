//! End-to-end runs of the threaded channel runtime.
//!
//! These tests run real OS threads with injected delays; they use small
//! delay budgets to stay fast but generous declared margins so scheduler
//! jitter can never falsify the declared assumptions.

use clocksync_model::ProcessorId;
use clocksync_net::{ClusterConfig, LinkConfig};
use clocksync_time::{Ext, Nanos};

fn ms(x: i64) -> Nanos {
    Nanos::from_millis(x)
}

#[test]
fn triangle_cluster_guarantee_holds_against_measured_truth() {
    let run = ClusterConfig::new(3)
        .link(0, 1, LinkConfig::uniform(ms(1), ms(2)))
        .link(1, 2, LinkConfig::uniform(ms(1), ms(3)))
        .link(0, 2, LinkConfig::uniform(ms(2), ms(4)))
        .probes(2)
        .start_spread(ms(3))
        .run(11);
    assert!(run.network.admits(&run.execution), "margin exceeded?");
    let outcome = run.synchronize().unwrap();
    assert!(outcome.precision().is_finite());
    let err = run.execution.discrepancy(outcome.corrections());
    assert!(Ext::Finite(err) <= outcome.precision());
    assert_eq!(outcome.rho_bar(outcome.corrections()), outcome.precision());
}

#[test]
fn line_cluster_produces_expected_traffic() {
    let probes = 3;
    let run = ClusterConfig::new(3)
        .link(0, 1, LinkConfig::uniform(ms(1), ms(1)))
        .link(1, 2, LinkConfig::uniform(ms(1), ms(1)))
        .probes(probes)
        .run(5);
    // Each link: `probes` probes + `probes` echoes.
    assert_eq!(run.execution.messages().len(), 2 * 2 * probes);
    let p01 = run
        .execution
        .link_delays(ProcessorId(0), ProcessorId(1))
        .len();
    assert_eq!(p01, probes);
    // Injected floor respected even under real scheduling.
    for m in run.execution.messages() {
        assert!(m.delay >= ms(1));
    }
}

#[test]
fn cluster_runs_are_view_valid_and_deterministically_structured() {
    let run = ClusterConfig::new(2)
        .link(0, 1, LinkConfig::uniform(ms(1), ms(2)))
        .probes(2)
        .run(99);
    // Reconstructing the view set re-validates every model axiom.
    let views = run.execution.views().clone();
    assert_eq!(views.len(), 2);
    assert_eq!(views.message_observations().len(), 4);
}
