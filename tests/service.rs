//! Cross-crate integration tests of the sharded ingestion service:
//! bounded-memory retention never changes any synchronization result
//! (the Lemma 6.2 estimators depend only on extremal observations), the
//! scoped cache invalidation is indistinguishable from a full flush, and
//! adversarial clock readings surface as typed errors, never panics.

use clocksync::{
    BatchObservation, DelayRange, LinkAssumption, Network, OnlineSynchronizer, SyncError,
};
use clocksync_model::ProcessorId;
use clocksync_service::{run_soak, ObservationBatch, SoakConfig, SyncService};
use clocksync_sim::{Simulation, Topology};
use clocksync_time::{ClockTime, Nanos};
use proptest::prelude::*;

fn obs(src: usize, dst: usize, send: i64, recv: i64) -> BatchObservation {
    BatchObservation {
        src: ProcessorId(src),
        dst: ProcessorId(dst),
        send_clock: ClockTime::from_nanos(send),
        recv_clock: ClockTime::from_nanos(recv),
    }
}

/// A random bounds-only network over `n` processors plus a random
/// observation stream on it, pre-chunked into batches.
#[derive(Debug, Clone)]
struct StreamInput {
    n: usize,
    links: Vec<(usize, usize, i64, i64)>,
    batches: Vec<Vec<BatchObservation>>,
}

impl StreamInput {
    fn network(&self) -> Network {
        let mut b = Network::builder(self.n);
        for &(p, q, lo, width) in &self.links {
            b = b.link(
                ProcessorId(p),
                ProcessorId(q),
                LinkAssumption::symmetric_bounds(DelayRange::new(
                    Nanos::new(lo),
                    Nanos::new(lo + width),
                )),
            );
        }
        b.build()
    }
}

fn stream_input() -> impl Strategy<Value = StreamInput> {
    (2usize..5).prop_flat_map(|n| {
        let links = proptest::collection::vec((0..n, 0..n, 0i64..500_000, 1i64..1_000_000), 1..5);
        let messages =
            proptest::collection::vec((0..n, 0..n, 0i64..10_000_000, 0i64..2_000_000), 1..40);
        (links, messages, 1usize..6).prop_map(move |(links, messages, batch)| {
            let mut seen = std::collections::HashSet::new();
            let links: Vec<_> = links
                .into_iter()
                .filter(|&(a, b, _, _)| a != b && seen.insert((a.min(b), a.max(b))))
                .collect();
            let batches = messages
                .iter()
                .filter(|&&(src, dst, _, _)| src != dst)
                .map(|&(src, dst, send, delay)| obs(src, dst, send, send + delay))
                .collect::<Vec<_>>()
                .chunks(batch)
                .map(<[_]>::to_vec)
                .collect();
            StreamInput { n, links, batches }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// The tentpole invariant: windowed compaction never loosens any
    /// estimate. A synchronizer that compacts its evidence down to the
    /// retention window after every batch produces the bit-identical
    /// `SyncOutcome` (or the identical typed error) as one that keeps
    /// full history, because the dominated-evidence GC always retains
    /// each directed link's extremal witnesses.
    #[test]
    fn compaction_never_loosens(input in stream_input(), window in 0usize..5) {
        prop_assume!(!input.links.is_empty());
        let mut full = OnlineSynchronizer::new(input.network());
        let mut compacted = OnlineSynchronizer::new(input.network());
        for batch in &input.batches {
            let a = full.ingest_batch(batch);
            let b = compacted.ingest_batch(batch);
            prop_assert_eq!(&a, &b);
            compacted.compact_evidence(window);
            if a.is_err() {
                continue;
            }
            prop_assert_eq!(full.outcome(), compacted.outcome());
        }
        prop_assert!(compacted.retained_samples() <= full.retained_samples());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Scoped cache invalidation is observationally equivalent to the
    /// full flush: interleaving evidence retraction (`forget_link`, the
    /// loosening path that triggers component-scoped invalidation) with
    /// batched ingestion gives the same outcomes as a reference that
    /// drops every cache after every operation.
    #[test]
    fn scoped_invalidation_matches_full_flush(
        input in stream_input(),
        forget_at in proptest::collection::vec(0usize..1_000, 0..3),
    ) {
        prop_assume!(!input.links.is_empty());
        let mut scoped = OnlineSynchronizer::new(input.network());
        let mut reference = OnlineSynchronizer::new(input.network());
        let forget: Vec<usize> = forget_at
            .iter()
            .map(|ix| ix % input.links.len())
            .collect();
        for (step, batch) in input.batches.iter().enumerate() {
            let a = scoped.ingest_batch(batch);
            let b = reference.ingest_batch(batch);
            prop_assert_eq!(&a, &b);
            reference.invalidate_caches();
            if a.is_err() {
                continue;
            }
            prop_assert_eq!(scoped.outcome(), reference.outcome());
            for &l in forget.iter().filter(|&&l| l % input.batches.len() == step) {
                let (p, q, _, _) = input.links[l];
                let dropped = scoped.forget_link(ProcessorId(p), ProcessorId(q));
                let dropped_ref = reference.forget_link(ProcessorId(p), ProcessorId(q));
                prop_assert_eq!(dropped, dropped_ref);
                reference.invalidate_caches();
                prop_assert_eq!(scoped.outcome(), reference.outcome());
            }
        }
    }
}

/// The windowed service agrees with a full-history synchronizer on real
/// simulated traffic, and its outcome is identical across window sizes
/// (the E5-style identity: the window never changes results, only
/// memory), while batch-over-batch precision only tightens.
#[test]
fn windowed_service_matches_full_history_across_window_sizes() {
    let sim = Simulation::builder(5)
        .uniform_links(
            Topology::Ring(5),
            Nanos::from_micros(20),
            Nanos::from_micros(400),
            11,
        )
        .probes(6)
        .build();
    let run = sim.run(23);
    let pool: Vec<BatchObservation> = run
        .execution
        .views()
        .message_observations()
        .into_iter()
        .map(|m| BatchObservation {
            src: m.src,
            dst: m.dst,
            send_clock: m.send_clock,
            recv_clock: m.recv_clock,
        })
        .collect();
    assert!(
        pool.len() > 40,
        "simulation produced {} messages",
        pool.len()
    );

    let mut reference = OnlineSynchronizer::new(run.network.clone());
    reference.ingest_batch(&pool).unwrap();
    let expected = reference.outcome().unwrap();

    for window in [1, 4, 64] {
        let mut svc = SyncService::new(3, window);
        svc.register_domain("d", run.network.clone()).unwrap();
        let mut last_precision = None;
        for chunk in pool.chunks(16) {
            svc.ingest(&ObservationBatch::new("d", chunk.to_vec()))
                .unwrap();
            let precision = svc.outcome("d").unwrap().precision();
            if let Some(prev) = last_precision {
                assert!(
                    precision <= prev,
                    "precision loosened within window {window}"
                );
            }
            last_precision = Some(precision);
        }
        assert_eq!(
            svc.outcome("d").unwrap(),
            expected,
            "window {window} changed the outcome"
        );
        let stats = svc.domain_stats("d").unwrap();
        // 5 ring links, both directions, window + 2 witnesses each.
        assert!(
            stats.retained_messages <= 10 * (window + 2),
            "window {window} retained {}",
            stats.retained_messages
        );
    }
}

/// The CI soak smoke, as a test: 10⁵ batched messages across 4 shards
/// stay under the analytic retention cap, and resident memory stays
/// bounded where the platform can measure it.
#[test]
fn soak_smoke_bounded_memory() {
    let config = SoakConfig {
        shards: 4,
        threads: 1,
        queue_depth: 256,
        domains: 8,
        n: 4,
        messages: 100_000,
        batch_size: 64,
        window: 32,
        seed: 7,
    };
    let report = run_soak(&config);
    assert!(report.messages >= 100_000);
    assert!(
        report.peak_retained_messages <= report.retained_cap,
        "peak {} exceeded cap {}",
        report.peak_retained_messages,
        report.retained_cap
    );
    if let Some(rss) = report.rss_end_bytes {
        assert!(
            rss < 512 * 1024 * 1024,
            "soak ended at {} bytes resident",
            rss
        );
    }
}

/// The adversarial-trace regression for the overflow sweep: clock
/// readings that are individually valid but whose difference overflows
/// `i64` nanoseconds used to panic inside `Nanos` subtraction; they must
/// surface as `SyncError::Overflow` and leave no partial state behind.
#[test]
fn adversarial_clock_readings_are_typed_errors() {
    let net = Network::builder(2)
        .link(
            ProcessorId(0),
            ProcessorId(1),
            LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(1_000))),
        )
        .build();
    let mut online = OnlineSynchronizer::new(net.clone());
    online
        .ingest_batch(&[obs(0, 1, 100, 400), obs(1, 0, 500, 900)])
        .unwrap();
    let before = online.outcome().unwrap();

    for bad in [
        obs(0, 1, i64::MIN, i64::MAX),
        obs(1, 0, i64::MIN + 5, i64::MAX - 3),
        obs(0, 1, -1, i64::MAX),
    ] {
        let err = online
            .ingest_batch(&[obs(0, 1, 1_000, 1_300), bad])
            .unwrap_err();
        assert!(
            matches!(err, SyncError::Overflow { .. }),
            "expected Overflow, got {err:?}"
        );
        // Atomic: the valid observation in the same batch was not applied.
        assert_eq!(online.outcome().unwrap(), before);
    }

    // The same trace through the sharded service is a typed error too.
    let mut svc = SyncService::new(2, 8);
    svc.register_domain("d", net).unwrap();
    let err = svc
        .ingest(&ObservationBatch::new(
            "d",
            vec![obs(0, 1, i64::MIN, i64::MAX)],
        ))
        .unwrap_err();
    assert!(err.to_string().contains("overflow"), "{err}");
    assert_eq!(svc.domain_stats("d").unwrap().ingested, 0);
}
