//! End-to-end pipeline tests: every topology × delay model × assumption
//! combination must produce sound, tight, finite guarantees.

use clocksync::{DelayRange, LinkAssumption};
use clocksync_sim::{DelayDistribution, LinkModel, Simulation, Topology};
use clocksync_time::{Ext, Nanos};

fn us(x: i64) -> Nanos {
    Nanos::from_micros(x)
}

/// Checks the three pillars on a run: admissibility of the generated
/// execution, soundness (true error ≤ guarantee) and tightness
/// (ρ̄(ours) = guarantee).
fn check_run(run: &clocksync_sim::SimRun, label: &str) {
    assert!(run.is_admissible(), "{label}: scenario not admissible");
    let outcome = run.synchronize().expect(label);
    assert!(
        outcome.precision().is_finite(),
        "{label}: precision not finite"
    );
    let achieved = run.true_discrepancy(outcome.corrections());
    assert!(
        Ext::Finite(achieved) <= outcome.precision(),
        "{label}: guarantee violated ({achieved} > {})",
        outcome.precision()
    );
    assert_eq!(
        outcome.rho_bar(outcome.corrections()),
        outcome.precision(),
        "{label}: corrections not tight"
    );
}

#[test]
fn uniform_bounds_on_every_topology() {
    let topologies = [
        Topology::Path(5),
        Topology::Ring(6),
        Topology::Star(5),
        Topology::Complete(5),
        Topology::Grid { rows: 2, cols: 3 },
        Topology::RandomConnected {
            n: 8,
            extra_per_mille: 250,
        },
    ];
    for topo in topologies {
        let sim = Simulation::builder(topo.n())
            .uniform_links(topo, us(50), us(450), 13)
            .probes(2)
            .build();
        for seed in 0..3 {
            check_run(&sim.run(seed), &format!("{topo:?} seed {seed}"));
        }
    }
}

#[test]
fn heavy_tailed_links_with_lower_bounds_only() {
    // Model 2: no upper bounds exist at all, worst case unbounded — yet
    // each instance gets a finite certificate.
    let model = || LinkModel::symmetric(DelayDistribution::heavy_tail(us(100), us(400), 1.2));
    let mut b = Simulation::builder(5);
    for (x, y) in [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)] {
        b = b.truthful_link(x, y, model());
    }
    let sim = b.probes(4).build();
    for seed in 0..5 {
        check_run(&sim.run(seed), &format!("heavy-tail seed {seed}"));
    }
}

#[test]
fn correlated_links_under_the_bias_model() {
    let model = || LinkModel::Correlated {
        base: DelayDistribution::uniform(us(500), us(20_000)),
        spread: us(250),
    };
    let mut b = Simulation::builder(4);
    for (x, y) in [(0, 1), (1, 2), (2, 3), (0, 3)] {
        b = b.truthful_link(x, y, model());
    }
    let sim = b.probes(3).build();
    for seed in 0..5 {
        check_run(&sim.run(seed), &format!("bias seed {seed}"));
    }
}

#[test]
fn fully_mixed_assumptions() {
    // Every assumption family in one network (the paper's headline).
    let sim = Simulation::builder(6)
        .link(
            0,
            1,
            LinkModel::symmetric(DelayDistribution::uniform(us(100), us(300))),
            LinkAssumption::symmetric_bounds(DelayRange::new(us(100), us(300))),
        )
        .link(
            1,
            2,
            LinkModel::symmetric(DelayDistribution::heavy_tail(us(200), us(300), 1.4)),
            LinkAssumption::symmetric_bounds(DelayRange::at_least(us(200))),
        )
        .link(
            2,
            3,
            LinkModel::Correlated {
                base: DelayDistribution::uniform(us(1_000), us(40_000)),
                spread: us(150),
            },
            LinkAssumption::rtt_bias(us(150)),
        )
        .link(
            3,
            4,
            // A link obeying BOTH bounds and bias simultaneously.
            LinkModel::Correlated {
                base: DelayDistribution::uniform(us(500), us(700)),
                spread: us(100),
            },
            LinkAssumption::all(vec![
                LinkAssumption::rtt_bias(us(100)),
                LinkAssumption::symmetric_bounds(DelayRange::new(us(500), us(800))),
            ]),
        )
        .link(
            4,
            5,
            LinkModel::symmetric(DelayDistribution::uniform(us(10), us(5_000))),
            LinkAssumption::no_bounds(),
        )
        .probes(3)
        .build();
    for seed in 0..5 {
        check_run(&sim.run(seed), &format!("mixed seed {seed}"));
    }
}

#[test]
fn more_observations_never_hurt() {
    // Monotonicity: within one execution, longer message prefixes can only
    // tighten (or keep) the guarantee — estimated extrema move inward.
    let sim = Simulation::builder(4)
        .uniform_links(Topology::Ring(4), us(50), us(950), 3)
        .probes(8)
        .build();
    for seed in 0..5 {
        let run = sim.run(seed);
        let total = run.execution.messages().len() as u64;
        let sync = clocksync::Synchronizer::new(run.network.clone());
        let mut last = None;
        for cutoff in [total / 8, total / 4, total / 2, total] {
            let views = run.execution.views().retain_messages(|id| id.0 < cutoff);
            let p = sync.synchronize(&views).unwrap().precision();
            if let Some(prev) = last {
                assert!(
                    p <= prev,
                    "seed {seed}: precision worsened from {prev} to {p} at cutoff {cutoff}"
                );
            }
            last = Some(p);
        }
    }
}

#[test]
fn declared_but_silent_links_do_not_break_anything() {
    // A link declared with tight bounds that carries no traffic places no
    // constraint (both estimator terms are infinite); synchronization must
    // fall back to the probed path unchanged.
    let sim = Simulation::builder(3)
        .uniform_links(Topology::Path(3), us(100), us(200), 1)
        .probes(2)
        .build();
    let run = sim.run(9);
    let mut b = clocksync::Network::builder(3);
    for l in sim.links() {
        b = b.link(
            clocksync_model::ProcessorId(l.a),
            clocksync_model::ProcessorId(l.b),
            l.assumption.clone(),
        );
    }
    let net = b
        .link(
            clocksync_model::ProcessorId(0),
            clocksync_model::ProcessorId(2),
            LinkAssumption::symmetric_bounds(DelayRange::new(us(1), us(2))),
        )
        .build();
    let with_silent = clocksync::Synchronizer::new(net)
        .synchronize(run.execution.views())
        .unwrap();
    let without = run.synchronize().unwrap();
    assert_eq!(with_silent.precision(), without.precision());
    let achieved = run.true_discrepancy(with_silent.corrections());
    assert!(Ext::Finite(achieved) <= with_silent.precision());
}

#[test]
fn shifts_kernels_are_interchangeable_end_to_end() {
    // The SHIFTS stage has three A_max engines (Howard by default, scaled
    // and exact Karp behind it); on real pipeline closures they must yield
    // identical precisions AND identical corrections, and every kernel's
    // critical cycle must certify the same precision.
    use clocksync::{shifts_with_kernel, synchronizable_components, ShiftsKernel};
    use clocksync_graph::SquareMatrix;
    use clocksync_time::Ratio;

    let topologies = [
        Topology::Path(5),
        Topology::Ring(6),
        Topology::Complete(5),
        Topology::RandomConnected {
            n: 8,
            extra_per_mille: 250,
        },
    ];
    for topo in topologies {
        let sim = Simulation::builder(topo.n())
            .uniform_links(topo, us(50), us(450), 13)
            .probes(2)
            .build();
        for seed in 0..3 {
            let run = sim.run(seed);
            let outcome = run.synchronize().expect("consistent run");
            let closure = outcome.global_shift_estimates();
            for members in synchronizable_components(closure) {
                let k = members.len();
                let sub = SquareMatrix::from_fn(k, |a, b| {
                    closure[(members[a].index(), members[b].index())]
                });
                let reference = shifts_with_kernel(&sub, 0, ShiftsKernel::KarpExact);
                for kernel in [ShiftsKernel::Howard, ShiftsKernel::KarpScaled] {
                    let r = shifts_with_kernel(&sub, 0, kernel);
                    assert_eq!(
                        r.precision, reference.precision,
                        "{topo:?} seed {seed}: {kernel:?} precision diverged"
                    );
                    assert_eq!(
                        r.corrections, reference.corrections,
                        "{topo:?} seed {seed}: {kernel:?} corrections diverged"
                    );
                    let cycle = &r.critical_cycle;
                    let mut total = Ratio::ZERO;
                    for t in 0..cycle.len() {
                        let (from, to) = (cycle[t], cycle[(t + 1) % cycle.len()]);
                        total += sub[(from, to)].finite().expect("finite closure");
                    }
                    assert_eq!(
                        total * Ratio::new(1, cycle.len() as i128),
                        r.precision,
                        "{topo:?} seed {seed}: {kernel:?} witness does not certify"
                    );
                }
            }
        }
    }
}

#[test]
fn single_processor_system_is_trivially_precise() {
    let sim = Simulation::builder(1).probes(1).build();
    let run = sim.run(0);
    let outcome = run.synchronize().unwrap();
    assert_eq!(
        outcome.precision(),
        Ext::Finite(clocksync_time::Ratio::ZERO)
    );
}
