//! Robustness fuzzing: arbitrary (valid) views against arbitrary —
//! possibly false — declarations must produce either an outcome or a
//! typed error, never a panic, and every produced outcome must satisfy
//! the library's internal identities.

use clocksync::{DelayRange, LinkAssumption, Network, SyncError, Synchronizer};
use clocksync_model::{ExecutionBuilder, ProcessorId};
use clocksync_sim::{DistributedSync, Simulation, Topology};
use clocksync_time::{Ext, Nanos, Ratio, RealTime};
use proptest::prelude::*;

/// Arbitrary assumption, not necessarily related to any actual delays.
fn assumption() -> impl Strategy<Value = LinkAssumption> {
    let range = (0i64..1_000_000, 0i64..1_000_000)
        .prop_map(|(lo, w)| DelayRange::new(Nanos::new(lo), Nanos::new(lo + w)));
    let bounds = (range.clone(), range.clone()).prop_map(|(f, b)| LinkAssumption::bounds(f, b));
    let lower_only = (0i64..1_000_000)
        .prop_map(|lo| LinkAssumption::symmetric_bounds(DelayRange::at_least(Nanos::new(lo))));
    let bias = (1i64..1_000_000).prop_map(|b| LinkAssumption::rtt_bias(Nanos::new(b)));
    let paired = (1i64..1_000_000, 1i64..10_000_000)
        .prop_map(|(b, w)| LinkAssumption::paired_rtt_bias(Nanos::new(b), Nanos::new(w)));
    let leaf = prop_oneof![bounds, lower_only, bias, paired];
    leaf.clone().prop_recursive(2, 6, 3, |inner| {
        proptest::collection::vec(inner, 1..3).prop_map(LinkAssumption::all)
    })
}

#[derive(Debug, Clone)]
struct FuzzInput {
    n: usize,
    starts: Vec<i64>,
    messages: Vec<(usize, usize, i64, i64)>,
    links: Vec<(usize, usize, LinkAssumption)>,
}

fn fuzz_input() -> impl Strategy<Value = FuzzInput> {
    (2usize..6).prop_flat_map(|n| {
        let starts = proptest::collection::vec(0i64..5_000_000, n);
        let messages =
            proptest::collection::vec((0..n, 0..n, 0i64..10_000_000, 0i64..2_000_000), 0..15);
        let links = proptest::collection::vec((0..n, 0..n, assumption()), 0..6);
        (starts, messages, links).prop_map(move |(starts, messages, links)| FuzzInput {
            n,
            starts,
            messages: messages
                .into_iter()
                .filter(|&(a, b, _, _)| a != b)
                .collect(),
            links: links.into_iter().filter(|(a, b, _)| a != b).collect(),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The synchronizer is total over valid views: Ok or a typed error.
    #[test]
    fn synchronize_never_panics(input in fuzz_input()) {
        let mut eb = ExecutionBuilder::new(input.n);
        for (i, &s) in input.starts.iter().enumerate() {
            eb = eb.start(ProcessorId(i), RealTime::from_nanos(s));
        }
        let base = 10_000_000i64;
        for &(src, dst, at, delay) in &input.messages {
            eb = eb.message(
                ProcessorId(src),
                ProcessorId(dst),
                RealTime::from_nanos(base + at),
                Nanos::new(delay),
            );
        }
        let Ok(exec) = eb.build() else { return Ok(()); };

        let mut nb = Network::builder(input.n);
        for (a, b, asm) in &input.links {
            nb = nb.link(ProcessorId(*a), ProcessorId(*b), asm.clone());
        }
        let net = nb.build();
        match Synchronizer::new(net).synchronize(exec.views()) {
            Ok(outcome) => {
                // Internal identities hold for whatever was declared.
                prop_assert!(outcome.precision() >= Ext::Finite(Ratio::ZERO));
                prop_assert_eq!(
                    outcome.rho_bar(outcome.corrections()),
                    outcome.precision()
                );
                for i in 0..input.n {
                    for j in 0..input.n {
                        let (p, q) = (ProcessorId(i), ProcessorId(j));
                        prop_assert_eq!(outcome.pair_bound(p, q), outcome.pair_bound(q, p));
                        prop_assert!(outcome.pair_bound(p, q) <= outcome.precision());
                    }
                }
                // Components partition the processors.
                let mut seen = vec![false; input.n];
                for c in outcome.components() {
                    for m in &c.members {
                        prop_assert!(!seen[m.index()], "component overlap");
                        seen[m.index()] = true;
                    }
                }
                prop_assert!(seen.into_iter().all(|s| s));
            }
            Err(SyncError::InconsistentObservations { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// The distributed protocol completes and stays sound on random
    /// connected topologies and probe counts.
    #[test]
    fn distributed_protocol_fuzz(
        n in 3usize..7,
        extra in 0u32..400,
        probes in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let sim = Simulation::builder(n)
            .uniform_links(
                Topology::RandomConnected { n, extra_per_mille: extra },
                Nanos::from_micros(10),
                Nanos::from_micros(300),
                seed ^ 0xBEEF,
            )
            .probes(probes)
            .build();
        let run = DistributedSync::new(sim).run(seed);
        prop_assert!(run.precision.is_finite());
        prop_assert_eq!(run.corrections.len(), n);
        let err = run.execution.discrepancy(&run.corrections);
        prop_assert!(Ext::Finite(err) <= run.precision);
    }
}
