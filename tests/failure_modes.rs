//! Failure injection: every misuse and every inconsistent input must be
//! rejected with a precise, typed error — never garbage corrections.

use clocksync::{DelayRange, LinkAssumption, Network, SyncError, Synchronizer};
use clocksync_baselines::{Baseline, BaselineError, NtpMinFilter, TreeMidpoint};
use clocksync_model::{ExecutionBuilder, MessageId, ModelError, ProcessorId, View, ViewSet};
use clocksync_time::{ClockTime, Ext, Nanos, Ratio, RealTime};

const P: ProcessorId = ProcessorId(0);
const Q: ProcessorId = ProcessorId(1);

#[test]
fn observed_delays_outside_declared_bounds_are_inconsistent() {
    // Promise: every delay in [100, 110]. Observation: a round trip whose
    // total is far too small. No execution satisfies both.
    let net = Network::builder(2)
        .link(
            P,
            Q,
            LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(100), Nanos::new(110))),
        )
        .build();
    let exec = ExecutionBuilder::new(2)
        .round_trips(
            P,
            Q,
            1,
            RealTime::from_nanos(1_000),
            Nanos::new(10),
            Nanos::new(20),
            Nanos::new(20),
        )
        .build()
        .unwrap();
    let err = Synchronizer::new(net)
        .synchronize(exec.views())
        .unwrap_err();
    assert!(matches!(err, SyncError::InconsistentObservations { .. }));
    assert!(err.to_string().contains("contradict"));
}

#[test]
fn rtt_bias_violations_are_inconsistent() {
    let net = Network::builder(2)
        .link(P, Q, LinkAssumption::rtt_bias(Nanos::new(10)))
        .build();

    // A large *cross-direction* asymmetry alone is always explainable by a
    // clock offset, so it must remain consistent…
    let explainable = ExecutionBuilder::new(2)
        .round_trips(
            P,
            Q,
            1,
            RealTime::from_nanos(2_000),
            Nanos::new(10),
            Nanos::new(500),
            Nanos::new(50),
        )
        .build()
        .unwrap();
    // (The true execution violates the bias, but the *views* do not prove
    // it: an equivalent execution with offset ≈ −225ns satisfies it.)
    assert!(Synchronizer::new(net.clone())
        .synchronize(explainable.views())
        .is_ok());

    // …whereas a *same-direction* spread > 2·b is provably impossible:
    // d̃ differences within one direction are offset-free.
    let impossible = ExecutionBuilder::new(2)
        .message(P, Q, RealTime::from_nanos(2_000), Nanos::new(500))
        .message(P, Q, RealTime::from_nanos(3_000), Nanos::new(100))
        .message(Q, P, RealTime::from_nanos(4_000), Nanos::new(50))
        .build()
        .unwrap();
    let err = Synchronizer::new(net)
        .synchronize(impossible.views())
        .unwrap_err();
    assert!(matches!(err, SyncError::InconsistentObservations { .. }));
}

#[test]
fn wrong_view_count_is_a_typed_error() {
    let net = Network::builder(3).build();
    let exec = ExecutionBuilder::new(2).build().unwrap();
    match Synchronizer::new(net).synchronize(exec.views()) {
        Err(SyncError::WrongProcessorCount { expected, actual }) => {
            assert_eq!((expected, actual), (3, 2));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn unbounded_pairs_report_infinite_precision_not_panic() {
    // One-directional traffic on a no-bounds link: the silent direction
    // leaves the pair unboundable.
    let net = Network::builder(2)
        .link(P, Q, LinkAssumption::no_bounds())
        .build();
    let exec = ExecutionBuilder::new(2)
        .message(P, Q, RealTime::from_nanos(1_000), Nanos::new(50))
        .build()
        .unwrap();
    let outcome = Synchronizer::new(net).synchronize(exec.views()).unwrap();
    assert_eq!(outcome.precision(), Ext::PosInf);
    assert_eq!(outcome.components().len(), 2);
    // Per-pair bound is still one-sidedly informative via rho_bar…
    assert_eq!(outcome.pair_bound(P, Q), Ext::PosInf);
    // …and corrections exist (zeros are as optimal as anything here).
    assert_eq!(outcome.corrections().len(), 2);
}

#[test]
fn malformed_views_are_rejected_by_the_model_layer() {
    // Receive with no matching send.
    let mut v0 = View::new(P);
    v0.record_recv(Q, MessageId(7), ClockTime::from_nanos(10));
    let v1 = View::new(Q);
    let err = ViewSet::new(vec![v0, v1]).unwrap_err();
    assert_eq!(
        err,
        ModelError::OrphanReceive {
            id: MessageId(7),
            receiver: P
        }
    );

    // Unordered clocks.
    let mut v0 = View::new(P);
    v0.record_timer(ClockTime::from_nanos(10));
    v0.record_timer(ClockTime::from_nanos(5));
    assert_eq!(
        ViewSet::new(vec![v0]).unwrap_err(),
        ModelError::UnorderedView { processor: P }
    );
}

#[test]
fn baselines_report_disconnection_and_missing_traffic() {
    // Disconnected declared network.
    let net = Network::builder(3)
        .link(P, Q, LinkAssumption::no_bounds())
        .build();
    let exec = ExecutionBuilder::new(3)
        .round_trips(
            P,
            Q,
            1,
            RealTime::from_nanos(1_000),
            Nanos::new(10),
            Nanos::new(5),
            Nanos::new(5),
        )
        .build()
        .unwrap();
    let err = NtpMinFilter::new()
        .corrections(&net, exec.views())
        .unwrap_err();
    assert_eq!(
        err,
        BaselineError::Disconnected {
            processor: ProcessorId(2)
        }
    );

    // Connected but silent link.
    let net = Network::builder(2)
        .link(P, Q, LinkAssumption::no_bounds())
        .build();
    let silent = ExecutionBuilder::new(2).build().unwrap();
    let err = TreeMidpoint::new()
        .corrections(&net, silent.views())
        .unwrap_err();
    assert_eq!(err, BaselineError::MissingTraffic { a: P, b: Q });
}

#[test]
fn optimal_synchronizer_survives_what_baselines_cannot() {
    // The optimal algorithm needs no spanning tree: a disconnected
    // assumption graph degrades to per-component answers instead of
    // failing outright.
    let net = Network::builder(4)
        .link(P, Q, LinkAssumption::no_bounds())
        .link(ProcessorId(2), ProcessorId(3), LinkAssumption::no_bounds())
        .build();
    let exec = ExecutionBuilder::new(4)
        .round_trips(
            P,
            Q,
            1,
            RealTime::from_nanos(1_000),
            Nanos::new(10),
            Nanos::new(5),
            Nanos::new(7),
        )
        .round_trips(
            ProcessorId(2),
            ProcessorId(3),
            1,
            RealTime::from_nanos(1_000),
            Nanos::new(10),
            Nanos::new(20),
            Nanos::new(30),
        )
        .build()
        .unwrap();
    let outcome = Synchronizer::new(net).synchronize(exec.views()).unwrap();
    assert_eq!(outcome.precision(), Ext::PosInf);
    let comps = outcome.components();
    assert_eq!(comps.len(), 2);
    assert_eq!(comps[0].precision, Ratio::from_int(6)); // (5+7)/2
    assert_eq!(comps[1].precision, Ratio::from_int(25)); // (20+30)/2
}

#[test]
fn error_types_are_displayable_and_chainable() {
    let model_err: SyncError = ModelError::WrongProcessorCount {
        expected: 2,
        actual: 1,
    }
    .into();
    assert!(std::error::Error::source(&model_err).is_some());
    let boxed: Box<dyn std::error::Error> = Box::new(model_err);
    assert!(boxed.to_string().contains("invalid views"));
}
