//! Integration tests for the beyond-the-paper extensions: the distributed
//! leader protocol, the online synchronizer, the windowed bias model and
//! anchoring — exercised together and against each other.

use clocksync::{DelayRange, LinkAssumption, Network, OnlineSynchronizer, Synchronizer};
use clocksync_model::{ExecutionBuilder, ProcessorId};
use clocksync_sim::{DistributedSync, Simulation, Topology};
use clocksync_time::{Ext, Nanos, Ratio, RealTime};

fn us(x: i64) -> Nanos {
    Nanos::from_micros(x)
}

#[test]
fn distributed_protocol_on_every_topology() {
    for topo in [
        Topology::Path(4),
        Topology::Ring(5),
        Topology::Star(5),
        Topology::Complete(4),
        Topology::Grid { rows: 2, cols: 3 },
    ] {
        let sim = Simulation::builder(topo.n())
            .uniform_links(topo, us(40), us(350), 17)
            .probes(2)
            .build();
        let run = DistributedSync::new(sim).run(3);
        assert!(run.precision.is_finite(), "{topo:?}");
        let err = run.execution.discrepancy(&run.corrections);
        assert!(Ext::Finite(err) <= run.precision, "{topo:?}");
    }
}

#[test]
fn distributed_and_online_agree_with_batch_on_shared_evidence() {
    // Feed the online synchronizer the exact probe-phase evidence the
    // distributed leader saw (all probe/echo messages of the run) — the
    // two must compute identical certificates when given the same links.
    let sim = Simulation::builder(4)
        .uniform_links(Topology::Ring(4), us(40), us(350), 2)
        .probes(2)
        .build();
    let batch_run = sim.run(8);
    let batch = batch_run.synchronize().unwrap();

    let mut online = OnlineSynchronizer::new(batch_run.network.clone());
    online.ingest_views(batch_run.execution.views()).unwrap();
    let streamed = online.outcome().unwrap();
    assert_eq!(batch, streamed);
}

#[test]
fn online_synchronizer_tracks_a_live_stream() {
    let p = ProcessorId(0);
    let q = ProcessorId(1);
    let r = ProcessorId(2);
    let net = Network::builder(3)
        .link(
            p,
            q,
            LinkAssumption::symmetric_bounds(DelayRange::new(us(0), us(500))),
        )
        .link(q, r, LinkAssumption::rtt_bias(us(50)))
        .build();
    let mut online = OnlineSynchronizer::new(net);

    // Nothing observed: both pairs unbounded.
    assert_eq!(online.outcome().unwrap().precision(), Ext::PosInf);

    // p–q exchange arrives.
    online.observe_estimated_delay(p, q, us(200));
    online.observe_estimated_delay(q, p, us(250));
    let mid = online.outcome().unwrap();
    assert_eq!(mid.components().len(), 2, "r still unbounded");

    // q–r bias exchange arrives: system fully bounded now.
    online.observe_estimated_delay(q, r, us(400));
    online.observe_estimated_delay(r, q, us(430));
    let full = online.outcome().unwrap();
    assert!(full.precision().is_finite());
    assert_eq!(full.components().len(), 1);
    // The underlying p–q *constraints* did not loosen by learning about r
    // (closure entries are monotone; the corrections may re-balance, so
    // the realized pair bound legitimately can shift).
    for (i, j) in [(0usize, 1usize), (1, 0)] {
        assert!(full.global_shift_estimates()[(i, j)] <= mid.global_shift_estimates()[(i, j)]);
    }
}

#[test]
fn windowed_bias_composes_with_other_assumptions() {
    let p = ProcessorId(0);
    let q = ProcessorId(1);
    // A link that is both floor-bounded and windowed-bias-bounded.
    let assumption = LinkAssumption::all(vec![
        LinkAssumption::symmetric_bounds(DelayRange::at_least(us(100))),
        LinkAssumption::paired_rtt_bias(us(10), Nanos::from_millis(1)),
    ]);
    let exec = ExecutionBuilder::new(2)
        .start(q, RealTime::from_micros(77))
        .round_trips(p, q, 1, RealTime::from_millis(10), us(1), us(150), us(155))
        .round_trips(p, q, 1, RealTime::from_millis(60), us(1), us(400), us(395))
        .build()
        .unwrap();
    let net = Network::builder(2).link(p, q, assumption).build();
    assert!(net.admits(&exec));
    let outcome = Synchronizer::new(net).synchronize(exec.views()).unwrap();
    assert!(outcome.precision().is_finite());
    // The windowed bias pins each round trip to ±(10+5)/2-ish; far better
    // than the 50us the floor alone would leave.
    assert!(outcome.precision() < Ext::Finite(Ratio::from_int(50_000)));
    let err = exec.discrepancy(outcome.corrections());
    assert!(Ext::Finite(err) <= outcome.precision());
}

#[test]
fn anchoring_to_a_reference_clock() {
    // p0 holds a GPS-disciplined clock: its offset from real time is
    // exactly known. After anchoring, every corrected clock tracks real
    // time within the same optimal precision.
    let sim = Simulation::builder(3)
        .uniform_links(Topology::Path(3), us(10), us(90), 4)
        .probes(2)
        .build();
    let run = sim.run(6);
    let outcome = run.synchronize().unwrap();

    // The observer knows p0's true offset: S_0 (its clock reads t − S_0,
    // so adding S_0 makes it real time).
    let s0 = Ratio::from(run.execution.start(ProcessorId(0)) - RealTime::ZERO);
    let anchored = outcome.anchored_corrections(ProcessorId(0), s0);

    // Every corrected clock now approximates real time: |S_i − x_i| ≤ ε.
    for (i, &x) in anchored.iter().enumerate() {
        let si = Ratio::from(run.execution.start(ProcessorId(i)) - RealTime::ZERO);
        let abs_err = (si - x).abs();
        assert!(
            Ext::Finite(abs_err) <= outcome.precision(),
            "p{i} drifted from real time by {abs_err}"
        );
    }
}

#[test]
fn distributed_protocol_handles_mixed_assumptions() {
    let sim = Simulation::builder(4)
        .truthful_link(
            0,
            1,
            clocksync_sim::LinkModel::symmetric(clocksync_sim::DelayDistribution::uniform(
                us(50),
                us(200),
            )),
        )
        .truthful_link(
            1,
            2,
            clocksync_sim::LinkModel::Correlated {
                base: clocksync_sim::DelayDistribution::uniform(us(500), us(5_000)),
                spread: us(100),
            },
        )
        .truthful_link(
            2,
            3,
            clocksync_sim::LinkModel::symmetric(clocksync_sim::DelayDistribution::heavy_tail(
                us(300),
                us(100),
                1.5,
            )),
        )
        .probes(3)
        .build();
    let run = DistributedSync::new(sim).run(12);
    assert!(run.precision.is_finite());
    let err = run.execution.discrepancy(&run.corrections);
    assert!(Ext::Finite(err) <= run.precision);
}
