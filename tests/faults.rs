//! Fault-injection properties: the pipeline must stay *total* (no panic,
//! no wedge) and *sound* (certificates hold, degradation is reported, and
//! survivors lose nothing) under arbitrary drop / duplication /
//! reordering / churn / crash-stop schedules.
//!
//! The headline property mirrors the failure-semantics contract
//! (DESIGN.md §5): crash-stopping any single non-leader processor in the
//! distributed protocol leaves every survivor with exactly the correction
//! a fault-free batch run would compute from the evidence that reached
//! the leader.

use std::collections::HashSet;

use clocksync::{global_estimates, SyncOutcome, Synchronizer};
use clocksync_graph::{SquareMatrix, Weight};
use clocksync_model::ProcessorId;
use clocksync_sim::{DistributedSync, FaultPlan, Simulation, Topology};
use clocksync_time::{Ext, ExtRatio, Nanos, RealTime};
use proptest::prelude::*;

/// A random fault schedule over the links of an `n`-ring, with an
/// optional crash of a non-leader processor.
fn fault_plan(n: usize) -> impl Strategy<Value = FaultPlan> {
    let link_faults =
        proptest::collection::vec((0..n, 0.0f64..0.5, 0.0f64..0.5, 0.0f64..0.5), 0..4);
    let crash = prop_oneof![Just(None), (1..n, 1_000i64..30_000).prop_map(Some),];
    (link_faults, crash).prop_map(move |(faults, crash)| {
        let mut plan = FaultPlan::new();
        for (a, drop, dup, reorder) in faults {
            let b = (a + 1) % n;
            plan = plan
                .drop_messages(ProcessorId(a), ProcessorId(b), drop)
                .duplicate_messages(ProcessorId(a), ProcessorId(b), dup)
                .reorder_messages(ProcessorId(a), ProcessorId(b), reorder);
        }
        if let Some((p, at)) = crash {
            plan = plan.crash(ProcessorId(p), RealTime::from_micros(at));
        }
        plan
    })
}

fn ring_sim(n: usize, probes: usize, seed: u64, plan: FaultPlan) -> Simulation {
    Simulation::builder(n)
        .uniform_links(
            Topology::Ring(n),
            Nanos::from_micros(20),
            Nanos::from_micros(200),
            seed ^ 0xFA17,
        )
        .probes(probes)
        .faults(plan)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the plan does, the batch pipeline terminates, the
    /// recorded execution stays admissible for the truthful assumptions,
    /// the certificate holds, and degradations only name real links.
    #[test]
    fn faulty_batch_runs_stay_total_and_sound(
        n in 3usize..6,
        probes in 1usize..3,
        seed in 0u64..500,
        plan in fault_plan(6),
    ) {
        // The plan was drawn over indices < 6; keep only what fits n.
        prop_assume!(plan.max_processor_index().is_none_or(|m| m < n));
        let sim = ring_sim(n, probes, seed, plan);
        let faulty = sim.run_with_faults(seed);
        prop_assert!(faulty.run.network.admits(&faulty.run.execution));

        let outcome = faulty.synchronize().unwrap();
        let err = faulty.run.true_discrepancy(outcome.corrections());
        prop_assert!(Ext::Finite(err) <= outcome.precision());

        for d in outcome.degradations() {
            prop_assert!(
                faulty.run.network.assumption(d.a, d.b).is_some(),
                "degradation names a non-link: {d}"
            );
        }
        // Components partition the processors.
        let mut seen = vec![false; n];
        for c in outcome.components() {
            for m in &c.members {
                prop_assert!(!seen[m.index()], "component overlap");
                seen[m.index()] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// Duplicated deliveries are extra true evidence: stripping the
    /// duplicate copies and re-synchronizing can only give *looser*
    /// (or equal) bounds, never tighter — duplication must not loosen
    /// any estimate.
    #[test]
    fn duplicated_evidence_never_loosens_estimates(
        n in 3usize..6,
        seed in 0u64..500,
        dup in 0.2f64..0.9,
    ) {
        let mut plan = FaultPlan::new();
        for a in 0..n {
            plan = plan.duplicate_messages(ProcessorId(a), ProcessorId((a + 1) % n), dup);
        }
        let sim = ring_sim(n, 2, seed, plan);
        let faulty = sim.run_with_faults(seed);
        let with_dups = faulty.synchronize().unwrap();

        let copies: HashSet<_> = faulty.log.duplicate_copy_ids().collect();
        let stripped_views = faulty
            .run
            .execution
            .views()
            .retain_messages(|id| !copies.contains(&id));
        let stripped = Synchronizer::new(faulty.run.network.clone())
            .synchronize(&stripped_views)
            .unwrap();

        prop_assert!(with_dups.precision() <= stripped.precision());
        // The evidence with duplicates is a superset, so every estimated
        // global shift can only shrink. (Per-pair bounds under the chosen
        // corrections are NOT monotone — the optimizer trades pairs off
        // against each other — but the closure and the optimum are.)
        for i in 0..n {
            for j in 0..n {
                prop_assert!(
                    with_dups.global_shift_estimates()[(i, j)]
                        <= stripped.global_shift_estimates()[(i, j)],
                    "duplication loosened m\u{303}s({i}, {j})"
                );
            }
        }
        // Even re-using the duplicate-free corrections, the richer
        // evidence certifies no worse a discrepancy.
        prop_assert!(with_dups.rho_bar(stripped.corrections()) <= stripped.precision());
    }

    /// The acceptance property: crash-stop any single non-leader
    /// processor, at any time, and every correction that was actually
    /// delivered equals the one a fault-free batch computation produces
    /// from exactly the evidence the leader received.
    #[test]
    fn crash_stop_survivors_match_fault_free_restriction(
        n in 4usize..7,
        victim_and_time in (1usize..7, 500i64..40_000),
        seed in 0u64..500,
    ) {
        let (victim, at) = victim_and_time;
        prop_assume!(victim < n);
        let plan = FaultPlan::new().crash(ProcessorId(victim), RealTime::from_micros(at));
        let dist = DistributedSync::new(ring_sim(n, 2, seed, FaultPlan::new())).with_faults(plan);
        let run = dist.run_faulty(seed);

        // The leader survives, so its deadline guarantees an answer.
        let outcome = run.outcome.as_ref().expect("leader must compute");

        // Fault-free restriction: batch-synchronize the very report
        // matrix the leader saw.
        let mut m = SquareMatrix::from_fn(n, |i, j| {
            if i == j {
                <ExtRatio as Weight>::zero()
            } else {
                <ExtRatio as Weight>::infinity()
            }
        });
        for &(a, b, ab, ba) in &run.reports {
            m[(a.index(), b.index())] = ab;
            m[(b.index(), a.index())] = ba;
        }
        let expected = SyncOutcome::from_global_estimates(global_estimates(&m).unwrap());

        for p in 0..n {
            if let Some(c) = run.corrections[p] {
                prop_assert_eq!(
                    c,
                    expected.correction(ProcessorId(p)),
                    "p{} holds a correction differing from the fault-free restriction",
                    p
                );
            }
        }
        // Every link the leader never heard about is flagged, and every
        // flagged-unreported link is genuinely absent from the reports.
        let reported: HashSet<_> = run
            .reports
            .iter()
            .map(|&(a, b, _, _)| (a.index().min(b.index()), a.index().max(b.index())))
            .collect();
        for d in outcome.degradations() {
            if d.reason == clocksync::DegradationReason::Unreported {
                prop_assert!(!reported.contains(&(d.a.index(), d.b.index())));
            }
        }
        for (a, b, _) in run.network.links() {
            let key = (a.index().min(b.index()), a.index().max(b.index()));
            if !reported.contains(&key) {
                prop_assert!(
                    outcome
                        .degradations()
                        .iter()
                        .any(|d| (d.a, d.b) == (ProcessorId(key.0), ProcessorId(key.1))),
                    "unreported link {}-{} not flagged",
                    key.0,
                    key.1
                );
            }
        }
    }
}
