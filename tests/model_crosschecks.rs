//! Cross-checks between the three execution sources (analytic builder,
//! discrete-event engine, threaded runtime) and the formal model.

use std::collections::HashMap;

use clocksync::{DelayRange, LinkAssumption, Network, Synchronizer};
use clocksync_model::{ExecutionBuilder, ProcessorId, ViewEvent};
use clocksync_sim::{
    DelayDistribution, Engine, LinkModel, ProbeProcess, Process, Simulation, Topology,
};
use clocksync_time::{Ext, Nanos, RealTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

const P: ProcessorId = ProcessorId(0);
const Q: ProcessorId = ProcessorId(1);

/// The engine with constant delays must reproduce, event for event, what
/// the analytic builder predicts.
#[test]
fn engine_matches_analytic_builder_on_constant_delays() {
    let mut links = HashMap::new();
    links.insert(
        (0usize, 1usize),
        LinkModel::symmetric(DelayDistribution::constant(Nanos::new(300)))
            .resolve(&mut StdRng::seed_from_u64(0)),
    );
    let starts = vec![RealTime::from_nanos(500), RealTime::ZERO];
    let engine = Engine::new(starts.clone(), links);
    let mk = || {
        Box::new(ProbeProcess::new(
            2,
            Nanos::from_micros(50),
            Nanos::from_micros(10),
        )) as Box<dyn Process>
    };
    let from_engine = engine.run(vec![mk(), mk()], &mut StdRng::seed_from_u64(1));

    // Analytic reconstruction: p0 starts at 500, probes at clock 10us and
    // 60us; echoes return after 300ns each way.
    let analytic = ExecutionBuilder::new(2)
        .start(P, RealTime::from_nanos(500))
        .round_trips(
            P,
            Q,
            2,
            RealTime::from_nanos(500) + Nanos::from_micros(10),
            Nanos::from_micros(50),
            Nanos::new(300),
            Nanos::new(300),
        )
        .build()
        .unwrap();

    // Same message structure (delays, estimated delays, directions).
    let a = from_engine.messages();
    let b = analytic.messages();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!((x.src, x.dst), (y.src, y.dst));
        assert_eq!(x.delay, y.delay);
        assert_eq!(x.estimated_delay, y.estimated_delay);
        assert_eq!(x.sent_at, y.sent_at);
    }
}

/// Identical views must yield identical corrections regardless of where
/// the views came from (Claim 3.1: correction functions cannot
/// distinguish equivalent executions).
#[test]
fn correction_function_is_view_determined() {
    let net = Network::builder(2)
        .link(
            P,
            Q,
            LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(1_000))),
        )
        .build();
    let base = ExecutionBuilder::new(2)
        .start(Q, RealTime::from_nanos(100))
        .round_trips(
            P,
            Q,
            1,
            RealTime::from_nanos(5_000),
            Nanos::new(10),
            Nanos::new(400),
            Nanos::new(300),
        )
        .build()
        .unwrap();
    // An equivalent execution: shift q by 250 (still admissible:
    // delays become 150/550, inside [0, 1000]).
    let shifted = base.shift(&[Nanos::ZERO, Nanos::new(250)]);
    assert!(net.admits(&shifted));
    let sync = Synchronizer::new(net);
    let o1 = sync.synchronize(base.views()).unwrap();
    let o2 = sync.synchronize(shifted.views()).unwrap();
    assert_eq!(o1.corrections(), o2.corrections());
    assert_eq!(o1.precision(), o2.precision());
}

/// The simulator's executions satisfy every model axiom and the network's
/// admissibility predicate agrees with per-link delay checks.
#[test]
fn simulator_runs_are_model_admissible() {
    let sim = Simulation::builder(6)
        .uniform_links(
            Topology::RandomConnected {
                n: 6,
                extra_per_mille: 400,
            },
            Nanos::from_micros(10),
            Nanos::from_micros(500),
            21,
        )
        .probes(2)
        .build();
    for seed in 0..5 {
        let run = sim.run(seed);
        assert!(run.is_admissible());
        // Manual re-check: every link's true delays inside the declared
        // uniform support.
        for l in sim.links() {
            for dir in [(l.a, l.b), (l.b, l.a)] {
                for d in run
                    .execution
                    .link_delays(ProcessorId(dir.0), ProcessorId(dir.1))
                {
                    assert!(d >= Nanos::from_micros(10) && d <= Nanos::from_micros(500));
                }
            }
        }
        // Every view starts with Start at clock 0 and is clock-ordered.
        for view in run.execution.views().iter() {
            assert!(view.validate().is_ok());
            assert!(matches!(view.events()[0], ViewEvent::Start { .. }));
        }
    }
}

/// Timer events appear in views (they are part of the paper's histories)
/// but are ignored by the estimators: removing them must not change the
/// outcome.
#[test]
fn timers_do_not_affect_synchronization() {
    let sim = Simulation::builder(3)
        .uniform_links(
            Topology::Path(3),
            Nanos::from_micros(10),
            Nanos::from_micros(90),
            2,
        )
        .probes(2)
        .build();
    let run = sim.run(3);
    let outcome_with = run.synchronize().unwrap();

    // Strip timers from the views and re-synchronize.
    let stripped: Vec<_> = run
        .execution
        .views()
        .iter()
        .map(|v| {
            clocksync_model::View::from_events(
                v.processor(),
                v.events()
                    .iter()
                    .filter(|e| !matches!(e, ViewEvent::Timer { .. }))
                    .copied()
                    .collect(),
            )
        })
        .collect();
    let stripped = clocksync_model::ViewSet::new(stripped).unwrap();
    let outcome_without = Synchronizer::new(run.network.clone())
        .synchronize(&stripped)
        .unwrap();
    assert_eq!(outcome_with.corrections(), outcome_without.corrections());
    assert_eq!(outcome_with.precision(), outcome_without.precision());
}

/// Estimated delays are exactly the clock differences, for all three
/// sources of executions (Lemma 6.1 as an identity).
#[test]
fn estimated_delay_identity_across_sources() {
    let sim = Simulation::builder(4)
        .uniform_links(
            Topology::Star(4),
            Nanos::from_micros(5),
            Nanos::from_micros(300),
            4,
        )
        .probes(2)
        .build();
    let run = sim.run(8);
    for m in run.execution.messages() {
        let expected = m.delay + (run.execution.start(m.src) - RealTime::ZERO)
            - (run.execution.start(m.dst) - RealTime::ZERO);
        assert_eq!(m.estimated_delay, expected);
    }
    // And the observations layer reports extrema consistent with the raw
    // messages.
    let obs = run.execution.views().link_observations();
    for m in run.execution.messages() {
        assert!(obs.estimated_min(m.src, m.dst) <= Ext::Finite(m.estimated_delay));
        assert!(obs.estimated_max(m.src, m.dst) >= Ext::Finite(m.estimated_delay));
    }
}
