//! Mechanical verification of the paper's optimality theorems (E10):
//! explicit equivalent executions realize the `A_max` lower bound, and no
//! correction vector beats SHIFTS.

use clocksync::{DelayRange, LinkAssumption, Network, Synchronizer};
use clocksync_model::{Execution, ExecutionBuilder, ProcessorId};
use clocksync_time::{Ext, Nanos, Ratio, RealTime};

const P: ProcessorId = ProcessorId(0);
const Q: ProcessorId = ProcessorId(1);
const R: ProcessorId = ProcessorId(2);

/// Two-node bounds instance with hand-computable everything.
/// Bounds [0, 100] both directions, one message each way with true delay
/// 40, true offset σ = 30.
fn two_node() -> (Network, Execution) {
    let net = Network::builder(2)
        .link(
            P,
            Q,
            LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(100))),
        )
        .build();
    let exec = ExecutionBuilder::new(2)
        .start(Q, RealTime::from_nanos(30))
        .message(P, Q, RealTime::from_nanos(1_000), Nanos::new(40))
        .message(Q, P, RealTime::from_nanos(2_000), Nanos::new(40))
        .build()
        .unwrap();
    (net, exec)
}

/// True maximal local shifts for the two-node instance:
/// mls(P,Q) = min(d(P→Q), U − d(Q→P)) = min(40, 60) = 40;
/// mls(Q,P) = min(40, 60) = 40. A_max = 40.
#[test]
fn lower_bound_is_realized_by_explicit_shifts() {
    let (net, exec) = two_node();
    let outcome = Synchronizer::new(net.clone())
        .synchronize(exec.views())
        .unwrap();
    assert_eq!(outcome.precision(), Ext::Finite(Ratio::from_int(40)));

    // Shift q as late as possible w.r.t. p (s = +40) and as early as
    // possible (s = −40): both are admissible and equivalent to exec.
    let late = exec.shift(&[Nanos::ZERO, Nanos::new(40)]);
    let early = exec.shift(&[Nanos::ZERO, Nanos::new(-40)]);
    for (name, shifted) in [("late", &late), ("early", &early)] {
        assert!(net.admits(shifted), "{name} shift must stay admissible");
        assert!(exec.is_equivalent_to(shifted), "{name} shift equivalence");
    }
    // One more nanosecond breaks admissibility — the shifts are maximal.
    assert!(!net.admits(&exec.shift(&[Nanos::ZERO, Nanos::new(41)])));
    assert!(!net.admits(&exec.shift(&[Nanos::ZERO, Nanos::new(-41)])));

    // The adversary argument: the two extreme executions together force
    // precision ≥ 40 on ANY correction vector, because the relative start
    // offset differs by 80 between them.
    let spread = (late.start(Q) - late.start(P)) - (early.start(Q) - early.start(P));
    assert_eq!(spread, Nanos::new(-80));
    for x1 in (-100..=100).step_by(10) {
        let x = vec![Ratio::ZERO, Ratio::from_int(x1)];
        let worst = late.discrepancy(&x).max(early.discrepancy(&x));
        assert!(
            worst >= Ratio::from_int(40),
            "corrections (0, {x1}) beat the lower bound: {worst}"
        );
    }

    // Our corrections meet the bound with equality on both extremes.
    let ours = outcome.corrections();
    assert!(late.discrepancy(ours) <= Ratio::from_int(40));
    assert!(early.discrepancy(ours) <= Ratio::from_int(40));
}

#[test]
fn critical_cycle_certifies_the_precision() {
    let (net, exec) = two_node();
    let outcome = Synchronizer::new(net).synchronize(exec.views()).unwrap();
    let comp = &outcome.components()[0];
    // The critical cycle's mean estimated shift equals the precision.
    let closure = outcome.global_shift_estimates();
    let cycle = &comp.critical_cycle;
    let mut total = Ratio::ZERO;
    for i in 0..cycle.len() {
        let from = cycle[i].index();
        let to = cycle[(i + 1) % cycle.len()].index();
        total += closure[(from, to)].finite().expect("finite closure");
    }
    let mean = total * Ratio::new(1, cycle.len() as i128);
    assert_eq!(mean, comp.precision);
}

#[test]
fn every_kernel_realizes_the_same_lower_bound() {
    // The optimality theorems do not care which A_max engine ran: on the
    // hand-computed two-node instance all three kernels certify exactly
    // A_max = 40 with identical corrections.
    use clocksync::{shifts_with_kernel, ShiftsKernel};
    let (net, exec) = two_node();
    let outcome = Synchronizer::new(net).synchronize(exec.views()).unwrap();
    let closure = outcome.global_shift_estimates();
    for kernel in [
        ShiftsKernel::Howard,
        ShiftsKernel::KarpScaled,
        ShiftsKernel::KarpExact,
    ] {
        let r = shifts_with_kernel(closure, 0, kernel);
        assert_eq!(r.precision, Ratio::from_int(40), "{kernel:?}");
        assert_eq!(Ext::Finite(r.precision), outcome.precision());
        assert_eq!(r.corrections, outcome.corrections(), "{kernel:?}");
    }
}

/// A path instance where the global (closure) cycle dominates any single
/// link: the 2-cycle P↔R through the closure has mean larger than each
/// link's own cycle, exercising the Karp-on-closure subtlety.
#[test]
fn closure_cycles_dominate_link_cycles() {
    let net = Network::builder(3)
        .link(
            P,
            Q,
            LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(100))),
        )
        .link(
            Q,
            R,
            LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(100))),
        )
        .build();
    // Both links balanced: mls = 50 in all four directions.
    let exec = ExecutionBuilder::new(3)
        .round_trips(
            P,
            Q,
            1,
            RealTime::from_nanos(1_000),
            Nanos::new(10),
            Nanos::new(50),
            Nanos::new(50),
        )
        .round_trips(
            Q,
            R,
            1,
            RealTime::from_nanos(2_000),
            Nanos::new(10),
            Nanos::new(50),
            Nanos::new(50),
        )
        .build()
        .unwrap();
    let outcome = Synchronizer::new(net.clone())
        .synchronize(exec.views())
        .unwrap();
    // Per-link uncertainty would suggest 50; the P–R closure cycle forces
    // (100 + 100)/2 = 100.
    assert_eq!(outcome.precision(), Ext::Finite(Ratio::from_int(100)));

    // Realize it: shift R by the full closure distance 100 — admissible.
    let shifted = exec.shift(&[Nanos::ZERO, Nanos::new(50), Nanos::new(100)]);
    assert!(net.admits(&shifted));
    assert!(exec.is_equivalent_to(&shifted));
    // And 101 is not (with any intermediate q-shift in this discrete grid).
    for sq in -200..=200 {
        let bad = exec.shift(&[Nanos::ZERO, Nanos::new(sq), Nanos::new(101)]);
        assert!(!net.admits(&bad), "sq={sq} admitted an over-shift");
    }
}

#[test]
fn rho_bar_grid_search_never_beats_shifts() {
    // Exhaustive-ish optimality check on a triangle with asymmetric mixed
    // assumptions.
    let net = Network::builder(3)
        .link(
            P,
            Q,
            LinkAssumption::bounds(
                DelayRange::new(Nanos::new(10), Nanos::new(200)),
                DelayRange::at_least(Nanos::new(10)),
            ),
        )
        .link(Q, R, LinkAssumption::rtt_bias(Nanos::new(80)))
        .link(P, R, LinkAssumption::no_bounds())
        .build();
    let exec = ExecutionBuilder::new(3)
        .start(Q, RealTime::from_nanos(55))
        .start(R, RealTime::from_nanos(-20))
        .round_trips(
            P,
            Q,
            2,
            RealTime::from_nanos(1_000),
            Nanos::new(500),
            Nanos::new(60),
            Nanos::new(90),
        )
        .round_trips(
            Q,
            R,
            2,
            RealTime::from_nanos(5_000),
            Nanos::new(500),
            Nanos::new(120),
            Nanos::new(70),
        )
        .round_trips(
            P,
            R,
            1,
            RealTime::from_nanos(9_000),
            Nanos::new(500),
            Nanos::new(40),
            Nanos::new(90),
        )
        .build()
        .unwrap();
    assert!(net.admits(&exec));
    let outcome = Synchronizer::new(net).synchronize(exec.views()).unwrap();
    let best = outcome.rho_bar(outcome.corrections());
    assert_eq!(Ext::Finite(outcome.components()[0].precision), best);

    let ours = outcome.corrections();
    let step = Ratio::new(5, 1);
    for dq in -20..=20 {
        for dr in -20..=20 {
            let x = vec![
                ours[0],
                ours[1] + step * Ratio::from_int(dq),
                ours[2] + step * Ratio::from_int(dr),
            ];
            assert!(
                outcome.rho_bar(&x) >= best,
                "grid point ({dq},{dr}) beats SHIFTS"
            );
        }
    }
}

#[test]
fn favorable_instances_get_better_certificates() {
    // Per-instance optimality beats worst-case tuning (E8): the same
    // system, probed on a lucky day (delays near the RTT that pins the
    // window), certifies better than on an unlucky one.
    let net = |u: i64| {
        Network::builder(2)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(u))),
            )
            .build()
    };
    // Lucky: tiny actual delays ⇒ mls = min(d, U−d) small.
    let lucky = ExecutionBuilder::new(2)
        .round_trips(
            P,
            Q,
            1,
            RealTime::from_nanos(1_000),
            Nanos::new(10),
            Nanos::new(5),
            Nanos::new(5),
        )
        .build()
        .unwrap();
    // Unlucky: delays in the middle of the window.
    let unlucky = ExecutionBuilder::new(2)
        .round_trips(
            P,
            Q,
            1,
            RealTime::from_nanos(1_000),
            Nanos::new(10),
            Nanos::new(500),
            Nanos::new(500),
        )
        .build()
        .unwrap();
    let p_lucky = Synchronizer::new(net(1_000))
        .synchronize(lucky.views())
        .unwrap()
        .precision();
    let p_unlucky = Synchronizer::new(net(1_000))
        .synchronize(unlucky.views())
        .unwrap()
        .precision();
    assert_eq!(p_lucky, Ext::Finite(Ratio::from_int(5)));
    assert_eq!(p_unlucky, Ext::Finite(Ratio::from_int(500)));
    // A worst-case-optimal algorithm would certify U/2 = 500 in BOTH runs.
    assert!(p_lucky < p_unlucky);
}

#[test]
fn decomposition_is_exactly_the_min_of_parts() {
    // Theorem 5.6 end-to-end: synchronize under bounds-only, bias-only and
    // the conjunction; the conjunction's closure entries are the pointwise
    // min of the parts'.
    let exec = ExecutionBuilder::new(2)
        .start(Q, RealTime::from_nanos(12))
        .round_trips(
            P,
            Q,
            2,
            RealTime::from_nanos(1_000),
            Nanos::new(777),
            Nanos::new(300),
            Nanos::new(340),
        )
        .build()
        .unwrap();
    let bounds =
        LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(250), Nanos::new(400)));
    let bias = LinkAssumption::rtt_bias(Nanos::new(50));
    let under = |a: LinkAssumption| {
        let net = Network::builder(2).link(P, Q, a).build();
        Synchronizer::new(net).synchronize(exec.views()).unwrap()
    };
    let o_bounds = under(bounds.clone());
    let o_bias = under(bias.clone());
    let o_both = under(LinkAssumption::all(vec![bounds, bias]));
    for (i, j) in [(0usize, 1usize), (1, 0)] {
        let expected =
            o_bounds.global_shift_estimates()[(i, j)].min(o_bias.global_shift_estimates()[(i, j)]);
        assert_eq!(o_both.global_shift_estimates()[(i, j)], expected);
    }
    assert!(o_both.precision() <= o_bounds.precision());
    assert!(o_both.precision() <= o_bias.precision());
}
