//! The optimal synchronizer vs practical baselines on identical runs.
//!
//! The defining property (§3): for every baseline `B` and every instance,
//! `ρ̄(B's corrections) ≥ ρ̄(SHIFTS corrections)`. The reverse is never
//! true; on specific instances we also check strict gaps and the known
//! failure modes (NTP asymmetry bias, Cristian's last-sample fragility).

use clocksync::{DelayRange, LinkAssumption, Network, Synchronizer};
use clocksync_baselines::{Baseline, CristianLast, NtpMinFilter, TreeMidpoint};
use clocksync_model::{ExecutionBuilder, ProcessorId};
use clocksync_sim::{DelayDistribution, LinkModel, Simulation, Topology};
use clocksync_time::{Ext, Nanos, Ratio, RealTime};

fn us(x: i64) -> Nanos {
    Nanos::from_micros(x)
}

fn all_baselines() -> Vec<Box<dyn Baseline>> {
    vec![
        Box::new(NtpMinFilter::new()),
        Box::new(CristianLast::new()),
        Box::new(TreeMidpoint::new()),
    ]
}

#[test]
fn no_baseline_ever_beats_optimal_on_random_runs() {
    let topologies = [
        Topology::Ring(5),
        Topology::Complete(4),
        Topology::RandomConnected {
            n: 7,
            extra_per_mille: 300,
        },
    ];
    for topo in topologies {
        let sim = Simulation::builder(topo.n())
            .uniform_links(topo, us(20), us(700), 5)
            .probes(3)
            .build();
        for seed in 0..5 {
            let run = sim.run(seed);
            let outcome = run.synchronize().unwrap();
            let best = outcome.rho_bar(outcome.corrections());
            for baseline in all_baselines() {
                let x = baseline
                    .corrections(&run.network, run.execution.views())
                    .unwrap_or_else(|e| panic!("{} failed: {e}", baseline.name()));
                assert!(
                    outcome.rho_bar(&x) >= best,
                    "{} beat the optimal on {topo:?} seed {seed}",
                    baseline.name()
                );
            }
        }
    }
}

#[test]
fn ntp_bias_grows_with_asymmetry_while_optimal_tracks_it() {
    // Declared asymmetric bounds; sweep the actual asymmetry.
    let p = ProcessorId(0);
    let q = ProcessorId(1);
    for asym_us in [0i64, 500, 1_000, 4_000] {
        let fwd = us(1_000 + asym_us);
        let bwd = us(1_000);
        let net = Network::builder(2)
            .link(
                p,
                q,
                LinkAssumption::bounds(DelayRange::new(fwd, fwd), DelayRange::new(bwd, bwd)),
            )
            .build();
        let exec = ExecutionBuilder::new(2)
            .start(q, RealTime::from_micros(333))
            .round_trips(p, q, 1, RealTime::from_millis(10), us(100), fwd, bwd)
            .build()
            .unwrap();
        let outcome = Synchronizer::new(net.clone())
            .synchronize(exec.views())
            .unwrap();
        // Exact bounds pin the instance completely: precision 0.
        assert_eq!(outcome.precision(), Ext::Finite(Ratio::ZERO));
        assert_eq!(exec.discrepancy(outcome.corrections()), Ratio::ZERO);

        let ntp = NtpMinFilter::new().corrections(&net, exec.views()).unwrap();
        let expected_bias = Ratio::from_int(asym_us as i128 * 1_000 / 2);
        assert_eq!(exec.discrepancy(&ntp), expected_bias);
    }
}

#[test]
fn cristian_degrades_with_a_bad_last_sample_ntp_does_not() {
    let p = ProcessorId(0);
    let q = ProcessorId(1);
    let net = Network::builder(2)
        .link(p, q, LinkAssumption::no_bounds())
        .build();
    let exec = ExecutionBuilder::new(2)
        .start(q, RealTime::from_micros(50))
        // Early clean symmetric round trip…
        .round_trips(p, q, 1, RealTime::from_millis(1), us(10), us(200), us(200))
        // …then a final round trip with a congested return path.
        .round_trips(
            p,
            q,
            1,
            RealTime::from_millis(50),
            us(10),
            us(200),
            us(3_200),
        )
        .build()
        .unwrap();
    let ntp = NtpMinFilter::new().corrections(&net, exec.views()).unwrap();
    let cristian = CristianLast::new().corrections(&net, exec.views()).unwrap();
    assert_eq!(exec.discrepancy(&ntp), Ratio::ZERO);
    assert_eq!(exec.discrepancy(&cristian), Ratio::from_int(1_500_000));
}

#[test]
fn tree_midpoint_equals_optimal_on_trees_but_not_on_cycles() {
    // On a star (a tree) the midpoint baseline achieves the optimum ρ̄.
    let star = Simulation::builder(5)
        .uniform_links(Topology::Star(5), us(50), us(500), 2)
        .probes(2)
        .build();
    let run = star.run(4);
    let outcome = run.synchronize().unwrap();
    let x = TreeMidpoint::new()
        .corrections(&run.network, run.execution.views())
        .unwrap();
    assert_eq!(outcome.rho_bar(&x), outcome.rho_bar(outcome.corrections()));

    // On rings a strict gap appears for typical seeds.
    let ring = Simulation::builder(6)
        .uniform_links(Topology::Ring(6), us(50), us(500), 2)
        .probes(2)
        .build();
    let mut strict = 0;
    for seed in 0..10 {
        let run = ring.run(seed);
        let outcome = run.synchronize().unwrap();
        let x = TreeMidpoint::new()
            .corrections(&run.network, run.execution.views())
            .unwrap();
        let (b, o) = (outcome.rho_bar(&x), outcome.rho_bar(outcome.corrections()));
        assert!(o <= b);
        if o < b {
            strict += 1;
        }
    }
    assert!(strict > 0, "expected a strict gap on some ring instance");
}

#[test]
fn true_error_of_optimal_is_competitive_on_symmetric_workloads() {
    // NTP is hard to beat on truly symmetric links (it happens to be
    // unbiased there); the optimal must still never be *worse certified*.
    let sim = Simulation::builder(4)
        .link(
            0,
            1,
            LinkModel::symmetric(DelayDistribution::uniform(us(100), us(200))),
            LinkAssumption::symmetric_bounds(DelayRange::new(us(100), us(200))),
        )
        .link(
            1,
            2,
            LinkModel::symmetric(DelayDistribution::uniform(us(100), us(200))),
            LinkAssumption::symmetric_bounds(DelayRange::new(us(100), us(200))),
        )
        .link(
            2,
            3,
            LinkModel::symmetric(DelayDistribution::uniform(us(100), us(200))),
            LinkAssumption::symmetric_bounds(DelayRange::new(us(100), us(200))),
        )
        .probes(4)
        .build();
    for seed in 0..5 {
        let run = sim.run(seed);
        let outcome = run.synchronize().unwrap();
        let ntp = NtpMinFilter::new()
            .corrections(&run.network, run.execution.views())
            .unwrap();
        // Certified quality: ours ≤ NTP's, always.
        assert!(outcome.rho_bar(outcome.corrections()) <= outcome.rho_bar(&ntp));
        // And our true error stays within our certificate.
        let err = run.true_discrepancy(outcome.corrections());
        assert!(Ext::Finite(err) <= outcome.precision());
    }
}
