#!/usr/bin/env bash
# Checks that every relative link in the repo's own markdown files points
# at a file or directory that exists, and that every #fragment — pure
# (`#section`) or qualified (`path.md#section`) — resolves to a real
# heading anchor, computed GitHub-style (lowercase, punctuation dropped,
# spaces to hyphens, `-N` suffixes for duplicates). External links
# (http/https/mailto) are skipped. Run from anywhere inside the repo.
set -euo pipefail

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

# GitHub-style anchors of every ATX heading in $1, one per line.
anchors_of() {
    grep -E '^#{1,6} ' "$1" | sed -E 's/^#{1,6}[[:space:]]+//' |
        tr '[:upper:]' '[:lower:]' |
        sed -E 's/[^a-z0-9 _-]//g; s/[[:space:]]+/-/g' |
        awk '{ n = seen[$0]++; if (n) print $0 "-" n; else print $0 }'
}

has_anchor() {
    anchors_of "$1" | grep -qxF "$2"
}

fail=0
# The repo's own docs: exclude vendored/generated trees.
while IFS= read -r md; do
    dir=$(dirname "$md")
    # Inline links [text](target). Markdown escapes none of the characters
    # we care about; targets with spaces are not used in this repo.
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        esac
        path=${target%%#*}
        fragment=''
        case "$target" in
        *'#'*) fragment=${target#*#} ;;
        esac
        file=$md
        if [ -n "$path" ]; then
            if [ ! -e "$dir/$path" ]; then
                echo "$md: broken link -> $target"
                fail=1
                continue
            fi
            file="$dir/$path"
        fi
        if [ -n "$fragment" ]; then
            if [ ! -f "$file" ]; then
                echo "$md: fragment on a non-file -> $target"
                fail=1
            elif ! has_anchor "$file" "$fragment"; then
                echo "$md: broken anchor -> $target"
                fail=1
            fi
        fi
    done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done < <(git ls-files '*.md')

if [ "$fail" -ne 0 ]; then
    echo "markdown link check FAILED"
    exit 1
fi
echo "markdown link check OK"
