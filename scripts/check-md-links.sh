#!/usr/bin/env bash
# Checks that every relative link in the repo's own markdown files points
# at a file or directory that exists. External links (http/https/mailto)
# and pure #fragment links are skipped; a `path#fragment` link is checked
# for the path part only. Run from anywhere inside the repo.
set -euo pipefail

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

fail=0
# The repo's own docs: exclude vendored/generated trees.
while IFS= read -r md; do
    dir=$(dirname "$md")
    # Inline links [text](target). Markdown escapes none of the characters
    # we care about; targets with spaces are not used in this repo.
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        path=${target%%#*}
        [ -z "$path" ] && continue
        if [ ! -e "$dir/$path" ]; then
            echo "$md: broken link -> $target"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done < <(git ls-files '*.md')

if [ "$fail" -ne 0 ]; then
    echo "markdown link check FAILED"
    exit 1
fi
echo "markdown link check OK"
