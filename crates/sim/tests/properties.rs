//! Property tests for the simulator: determinism, admissibility, and
//! structural invariants of generated executions.

use clocksync_sim::{DelayDistribution, LinkModel, Simulation, Topology};
use clocksync_time::{Ext, Nanos};
use proptest::prelude::*;

fn topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (3usize..8).prop_map(Topology::Path),
        (3usize..8).prop_map(Topology::Ring),
        (3usize..8).prop_map(Topology::Star),
        (3usize..6).prop_map(Topology::Complete),
        ((2usize..4), (2usize..4)).prop_map(|(rows, cols)| Topology::Grid { rows, cols }),
        (4usize..9, 0u32..500)
            .prop_map(|(n, extra_per_mille)| Topology::RandomConnected { n, extra_per_mille }),
    ]
}

fn model() -> impl Strategy<Value = LinkModel> {
    prop_oneof![
        (1i64..1_000, 0i64..100_000).prop_map(|(lo, width)| LinkModel::symmetric(
            DelayDistribution::uniform(Nanos::new(lo), Nanos::new(lo + width))
        )),
        (1i64..100_000, 1i64..50_000, 11u32..30).prop_map(|(floor, scale, alpha10)| {
            LinkModel::symmetric(DelayDistribution::heavy_tail(
                Nanos::new(floor),
                Nanos::new(scale),
                alpha10 as f64 / 10.0,
            ))
        }),
        (1i64..1_000_000, 1i64..10_000).prop_map(|(hi, spread)| LinkModel::Correlated {
            base: DelayDistribution::uniform(Nanos::new(1), Nanos::new(hi)),
            spread: Nanos::new(spread),
        }),
    ]
}

fn simulation() -> impl Strategy<Value = Simulation> {
    (topology(), model(), 1usize..4, 0u64..1_000).prop_map(|(topo, model, probes, topo_seed)| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(topo_seed);
        let mut b = Simulation::builder(topo.n());
        for (x, y) in topo.edges(&mut rng) {
            b = b.truthful_link(x, y, model.clone());
        }
        b.probes(probes).build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Equal seeds give equal executions; different seeds differ.
    #[test]
    fn seeded_runs_are_deterministic(sim in simulation(), seed in 0u64..10_000) {
        let a = sim.run(seed);
        let b = sim.run(seed);
        prop_assert_eq!(&a.execution, &b.execution);
    }

    /// Truthfully-declared scenarios always generate admissible
    /// executions, and the synchronizer's guarantee holds on them.
    #[test]
    fn truthful_scenarios_are_admissible_and_sound(sim in simulation(), seed in 0u64..10_000) {
        let run = sim.run(seed);
        prop_assert!(run.is_admissible());
        let outcome = run.synchronize().expect("truthful => consistent");
        let err = run.true_discrepancy(outcome.corrections());
        prop_assert!(Ext::Finite(err) <= outcome.precision());
    }

    /// Structural invariants: every link carries exactly `probes` round
    /// trips, and views validate.
    #[test]
    fn probe_protocol_structure(sim in simulation(), seed in 0u64..10_000) {
        let run = sim.run(seed);
        let probes = sim.probes();
        for l in sim.links() {
            let fwd = run
                .execution
                .link_delays(clocksync_model::ProcessorId(l.a), clocksync_model::ProcessorId(l.b))
                .len();
            let bwd = run
                .execution
                .link_delays(clocksync_model::ProcessorId(l.b), clocksync_model::ProcessorId(l.a))
                .len();
            prop_assert_eq!(fwd, probes);
            prop_assert_eq!(bwd, probes);
        }
        for v in run.execution.views().iter() {
            prop_assert!(v.validate().is_ok());
        }
    }
}
