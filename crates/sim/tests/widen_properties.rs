//! Property tests for drift widening: [`widen_assumption`] must never
//! *tighten* a local shift estimate — a tightened estimate would let a
//! drifted run claim a better certificate than an undrifted one, which is
//! exactly the unsoundness the widening margin exists to prevent.
//!
//! The properties run over all five assumption families (including
//! conjunctions with nested conjunctions inside) on random message
//! evidence, in both link orientations, and check that widening commutes
//! with the Theorem 5.6 minimum over a conjunction's parts.
//!
//! One carve-out, found by this very test: when evidence *contradicts* a
//! declared [`MarzulloQuorum`] (no offset is consistent with a quorum of
//! samples), the estimator degrades to "no constraint" (`+∞`) — and
//! widening the ranges can make previously-disjoint sample intervals
//! overlap, restoring a quorum and a *finite* (sound) estimate. That is
//! the assumption's documented graceful-degradation behavior, not a
//! widening bug: on evidence the original assumption actually admits,
//! widening is monotone everywhere.
//!
//! [`MarzulloQuorum`]: LinkAssumption::MarzulloQuorum

use clocksync::{DelayRange, LinkAssumption};
use clocksync_model::{LinkEvidence, MsgSample};
use clocksync_sim::widen_assumption;
use clocksync_time::{ClockTime, Nanos};
use proptest::prelude::*;

fn delay_range() -> impl Strategy<Value = DelayRange> {
    prop_oneof![
        (0i64..2_000, 0i64..2_000)
            .prop_map(|(lo, width)| DelayRange::new(Nanos::new(lo), Nanos::new(lo + width))),
        (0i64..2_000).prop_map(|lo| DelayRange::at_least(Nanos::new(lo))),
        Just(DelayRange::unbounded()),
    ]
}

fn leaf() -> impl Strategy<Value = LinkAssumption> {
    prop_oneof![
        (delay_range(), delay_range()).prop_map(|(f, b)| LinkAssumption::bounds(f, b)),
        (1i64..3_000).prop_map(|b| LinkAssumption::rtt_bias(Nanos::new(b))),
        (1i64..3_000, 1i64..8_000)
            .prop_map(|(b, w)| LinkAssumption::paired_rtt_bias(Nanos::new(b), Nanos::new(w))),
        (delay_range(), delay_range(), 0usize..3)
            .prop_map(|(f, b, k)| LinkAssumption::marzullo_quorum(f, b, k)),
    ]
}

/// Any family, including conjunctions whose parts are conjunctions.
fn assumption() -> impl Strategy<Value = LinkAssumption> {
    prop_oneof![
        4 => leaf(),
        2 => proptest::collection::vec(leaf(), 1..4).prop_map(LinkAssumption::all),
        1 => (
            proptest::collection::vec(leaf(), 1..3),
            proptest::collection::vec(leaf(), 1..3)
        )
            .prop_map(|(outer, inner)| {
                let mut parts = outer;
                parts.push(LinkAssumption::all(inner));
                LinkAssumption::all(parts)
            }),
    ]
}

/// Messages with arbitrary send times and nonnegative estimated delays
/// (drifted readings can produce any pattern the axes allow).
fn samples() -> impl Strategy<Value = Vec<MsgSample>> {
    proptest::collection::vec((0i64..100_000, 0i64..4_000), 0..8).prop_map(|raw| {
        raw.into_iter()
            .map(|(send, delay)| MsgSample {
                send_clock: ClockTime::ZERO + Nanos::new(send),
                recv_clock: ClockTime::ZERO + Nanos::new(send + delay),
            })
            .collect()
    })
}

/// Whether `ev` contradicts a Marzullo part of `a`: some quorum
/// declaration has samples but no offset consistent with a quorum of
/// them. In that (vacuous) regime the estimate is the degraded `+∞` and
/// widening may legitimately restore a finite constraint.
fn quorum_collapsed(a: &LinkAssumption, ev: &LinkEvidence<'_>) -> bool {
    match a {
        LinkAssumption::MarzulloQuorum { .. } => a
            .fusion_stats(ev)
            .is_some_and(|s| s.sources > 0 && !s.quorum_reached),
        LinkAssumption::All(parts) => parts.iter().any(|p| quorum_collapsed(p, ev)),
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// Widening by any nonnegative margin never tightens the local shift
    /// estimate, in either direction of the link, for any family — on
    /// every instance the original assumption admits (see the module doc
    /// for the contradicted-quorum carve-out).
    #[test]
    fn widening_never_tightens_any_estimate(
        a in assumption(),
        fwd in samples(),
        bwd in samples(),
        margin in 0i64..1_500,
    ) {
        let widened = widen_assumption(&a, Nanos::new(margin));
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        prop_assume!(!quorum_collapsed(&a, &ev));
        prop_assert!(
            widened.estimated_mls(&ev) >= a.estimated_mls(&ev),
            "forward estimate tightened: {a:?} margin {margin}"
        );
        // The reverse direction, exactly as the pipeline evaluates it:
        // reversed assumption against reversed evidence. Its fusion
        // region is the mirror image of the forward one, so the same
        // collapse guard applies.
        let (ar, evr) = (a.reversed(), ev.reversed());
        prop_assert!(
            widen_assumption(&ar, Nanos::new(margin)).estimated_mls(&evr)
                >= ar.estimated_mls(&evr),
            "backward estimate tightened: {a:?} margin {margin}"
        );
    }

    /// The carve-out is exactly the contradicted-quorum regime, and it is
    /// harmless there: a collapsed quorum claims nothing (`+∞` in both
    /// orientations), so any finite answer the widened assumption later
    /// produces only *adds* a sound constraint where none existed.
    #[test]
    fn a_collapsed_quorum_claims_nothing(
        f in delay_range(),
        b in delay_range(),
        k in 0usize..3,
        fwd in samples(),
        bwd in samples(),
    ) {
        let a = LinkAssumption::marzullo_quorum(f, b, k);
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        prop_assume!(quorum_collapsed(&a, &ev));
        prop_assert_eq!(a.estimated_mls(&ev), clocksync_time::Ext::PosInf);
        prop_assert_eq!(
            a.reversed().estimated_mls(&ev.reversed()),
            clocksync_time::Ext::PosInf
        );
    }

    /// Widening a margin of zero is the identity on every family.
    #[test]
    fn zero_margin_widening_is_the_identity(a in assumption()) {
        prop_assert_eq!(widen_assumption(&a, Nanos::ZERO), a);
    }

    /// Widening distributes over conjunctions: the widened conjunction's
    /// estimate is the Theorem 5.6 minimum of the widened parts — so the
    /// decomposition theorem and the drift margin compose in either order.
    #[test]
    fn widening_composes_with_the_conjunction_minimum(
        parts in proptest::collection::vec(leaf(), 1..5),
        fwd in samples(),
        bwd in samples(),
        margin in 0i64..1_500,
    ) {
        let m = Nanos::new(margin);
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        let whole = widen_assumption(&LinkAssumption::all(parts.clone()), m);
        let piecewise = parts
            .iter()
            .map(|p| widen_assumption(p, m).estimated_mls(&ev))
            .min()
            .unwrap();
        prop_assert_eq!(whole.estimated_mls(&ev), piecewise);
    }
}
