//! Network topologies: generators for the undirected link sets the
//! experiments run on.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A family of communication graphs.
///
/// Generators return undirected edges `(a, b)` with `a < b`, and every
/// generated graph is connected (random graphs are augmented with a random
/// spanning tree).
///
/// # Examples
///
/// ```
/// use clocksync_sim::Topology;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let edges = Topology::Ring(5).edges(&mut rng);
/// assert_eq!(edges.len(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// A simple path `0 — 1 — … — n−1`.
    Path(usize),
    /// A cycle through all `n` nodes.
    Ring(usize),
    /// Node 0 connected to every other node.
    Star(usize),
    /// Every pair connected.
    Complete(usize),
    /// An `r × c` grid with 4-neighbour links.
    Grid {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// A random spanning tree plus each remaining pair independently with
    /// probability `extra_per_mille / 1000`.
    RandomConnected {
        /// Number of nodes.
        n: usize,
        /// Probability (in 1/1000ths) of each non-tree edge.
        extra_per_mille: u32,
    },
}

impl Topology {
    /// The number of nodes.
    pub fn n(&self) -> usize {
        match *self {
            Topology::Path(n) | Topology::Ring(n) | Topology::Star(n) | Topology::Complete(n) => n,
            Topology::Grid { rows, cols } => rows * cols,
            Topology::RandomConnected { n, .. } => n,
        }
    }

    /// Generates the undirected edge list (pairs `(a, b)` with `a < b`).
    ///
    /// # Panics
    ///
    /// Panics if the topology has fewer than the nodes it needs (rings need
    /// `n ≥ 3`; others need `n ≥ 1`).
    pub fn edges<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<(usize, usize)> {
        match *self {
            Topology::Path(n) => {
                assert!(n >= 1, "path needs at least one node");
                (1..n).map(|i| (i - 1, i)).collect()
            }
            Topology::Ring(n) => {
                assert!(n >= 3, "ring needs at least three nodes");
                let mut e: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
                e.push((0, n - 1));
                e
            }
            Topology::Star(n) => {
                assert!(n >= 1, "star needs at least one node");
                (1..n).map(|i| (0, i)).collect()
            }
            Topology::Complete(n) => {
                assert!(n >= 1, "complete graph needs at least one node");
                let mut e = Vec::with_capacity(n * (n - 1) / 2);
                for a in 0..n {
                    for b in (a + 1)..n {
                        e.push((a, b));
                    }
                }
                e
            }
            Topology::Grid { rows, cols } => {
                assert!(rows >= 1 && cols >= 1, "grid needs positive dimensions");
                let id = |r: usize, c: usize| r * cols + c;
                let mut e = Vec::new();
                for r in 0..rows {
                    for c in 0..cols {
                        if c + 1 < cols {
                            e.push((id(r, c), id(r, c + 1)));
                        }
                        if r + 1 < rows {
                            e.push((id(r, c), id(r + 1, c)));
                        }
                    }
                }
                e
            }
            Topology::RandomConnected { n, extra_per_mille } => {
                assert!(n >= 1, "graph needs at least one node");
                // Random spanning tree: random permutation, attach each new
                // node to a random earlier one.
                let mut order: Vec<usize> = (0..n).collect();
                order.shuffle(rng);
                let mut edges: Vec<(usize, usize)> = Vec::new();
                for i in 1..n {
                    let parent = order[rng.gen_range(0..i)];
                    let child = order[i];
                    edges.push((parent.min(child), parent.max(child)));
                }
                for a in 0..n {
                    for b in (a + 1)..n {
                        if !edges.contains(&(a, b)) && rng.gen_range(0..1000u32) < extra_per_mille {
                            edges.push((a, b));
                        }
                    }
                }
                edges.sort_unstable();
                edges
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn is_connected(n: usize, edges: &[(usize, usize)]) -> bool {
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &(a, b) in edges {
                let other = if a == v {
                    Some(b)
                } else if b == v {
                    Some(a)
                } else {
                    None
                };
                if let Some(o) = other {
                    if !seen[o] {
                        seen[o] = true;
                        stack.push(o);
                    }
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    #[test]
    fn edge_counts() {
        let mut r = rng();
        assert_eq!(Topology::Path(5).edges(&mut r).len(), 4);
        assert_eq!(Topology::Ring(5).edges(&mut r).len(), 5);
        assert_eq!(Topology::Star(5).edges(&mut r).len(), 4);
        assert_eq!(Topology::Complete(5).edges(&mut r).len(), 10);
        assert_eq!(Topology::Grid { rows: 2, cols: 3 }.edges(&mut r).len(), 7);
    }

    #[test]
    fn all_topologies_are_connected_and_canonical() {
        let mut r = rng();
        let topos = [
            Topology::Path(6),
            Topology::Ring(6),
            Topology::Star(6),
            Topology::Complete(6),
            Topology::Grid { rows: 3, cols: 4 },
            Topology::RandomConnected {
                n: 12,
                extra_per_mille: 100,
            },
        ];
        for t in topos {
            let edges = t.edges(&mut r);
            assert!(is_connected(t.n(), &edges), "{t:?} disconnected");
            for &(a, b) in &edges {
                assert!(a < b, "{t:?} produced non-canonical edge ({a},{b})");
                assert!(b < t.n());
            }
        }
    }

    #[test]
    fn random_graphs_have_no_duplicate_edges() {
        let mut r = rng();
        for seed in 0..20 {
            let _ = seed;
            let t = Topology::RandomConnected {
                n: 10,
                extra_per_mille: 300,
            };
            let edges = t.edges(&mut r);
            let mut dedup = edges.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(edges.len(), dedup.len());
        }
    }

    #[test]
    fn single_node_topologies() {
        let mut r = rng();
        assert!(Topology::Path(1).edges(&mut r).is_empty());
        assert!(Topology::Complete(1).edges(&mut r).is_empty());
    }

    #[test]
    #[should_panic(expected = "three nodes")]
    fn tiny_ring_panics() {
        let _ = Topology::Ring(2).edges(&mut rng());
    }
}
