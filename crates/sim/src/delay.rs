//! Message-delay models for simulated links.

use clocksync_time::{Ext, ExtNanos, Nanos};
use rand::Rng;

/// A distribution of one-way message delays.
///
/// Distributions know their support so scenarios can declare *truthful*
/// delay assumptions (bounds that the sampled delays provably satisfy).
#[derive(Debug, Clone, PartialEq)]
pub enum DelayDistribution {
    /// Every message takes exactly this long.
    Constant(Nanos),
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Smallest possible delay.
        lo: Nanos,
        /// Largest possible delay.
        hi: Nanos,
    },
    /// `floor + scale·(U^{−1/α} − 1)` — a shifted Pareto tail. Support is
    /// `[floor, +∞)`: the model for links where a minimum delay exists
    /// (transmission + processing) but no useful upper bound does. Heavier
    /// tails for smaller `alpha`.
    HeavyTail {
        /// Minimum possible delay.
        floor: Nanos,
        /// Tail scale.
        scale: Nanos,
        /// Pareto shape (`> 0`); values near 1 are very heavy-tailed.
        alpha: f64,
    },
}

impl DelayDistribution {
    /// A constant delay.
    pub fn constant(d: Nanos) -> DelayDistribution {
        assert!(d >= Nanos::ZERO, "delays must be nonnegative");
        DelayDistribution::Constant(d)
    }

    /// A uniform delay on `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ lo ≤ hi`.
    pub fn uniform(lo: Nanos, hi: Nanos) -> DelayDistribution {
        assert!(
            Nanos::ZERO <= lo && lo <= hi,
            "uniform delay requires 0 <= lo <= hi"
        );
        DelayDistribution::Uniform { lo, hi }
    }

    /// A heavy-tailed delay with the given floor, scale and Pareto shape.
    ///
    /// # Panics
    ///
    /// Panics unless `floor ≥ 0`, `scale > 0` and `alpha > 0`.
    pub fn heavy_tail(floor: Nanos, scale: Nanos, alpha: f64) -> DelayDistribution {
        assert!(floor >= Nanos::ZERO, "delay floor must be nonnegative");
        assert!(scale > Nanos::ZERO, "scale must be positive");
        assert!(alpha > 0.0, "alpha must be positive");
        DelayDistribution::HeavyTail {
            floor,
            scale,
            alpha,
        }
    }

    /// Draws one delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Nanos {
        match *self {
            DelayDistribution::Constant(d) => d,
            DelayDistribution::Uniform { lo, hi } => {
                if lo == hi {
                    lo
                } else {
                    Nanos::new(rng.gen_range(lo.as_nanos()..=hi.as_nanos()))
                }
            }
            DelayDistribution::HeavyTail {
                floor,
                scale,
                alpha,
            } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let tail = scale.as_nanos() as f64 * (u.powf(-1.0 / alpha) - 1.0);
                // Cap the tail to keep arithmetic comfortably inside i64.
                let tail = tail.min(1e15);
                floor + Nanos::new(tail as i64)
            }
        }
    }

    /// The smallest delay this distribution can produce.
    pub fn support_min(&self) -> Nanos {
        match *self {
            DelayDistribution::Constant(d) => d,
            DelayDistribution::Uniform { lo, .. } => lo,
            DelayDistribution::HeavyTail { floor, .. } => floor,
        }
    }

    /// The largest delay this distribution can produce (`+∞` for
    /// heavy-tailed).
    pub fn support_max(&self) -> ExtNanos {
        match *self {
            DelayDistribution::Constant(d) => Ext::Finite(d),
            DelayDistribution::Uniform { hi, .. } => Ext::Finite(hi),
            DelayDistribution::HeavyTail { .. } => Ext::PosInf,
        }
    }
}

/// The delay behaviour of one bidirectional link.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkModel {
    /// Directions draw independently from their own distributions.
    Independent {
        /// Forward (`low id → high id`) delay distribution.
        forward: DelayDistribution,
        /// Backward delay distribution.
        backward: DelayDistribution,
    },
    /// Both directions share a *common unknown base* delay drawn once per
    /// execution, plus an independent per-message jitter uniform on
    /// `[0, spread]`. Any two messages (in any directions) therefore differ
    /// by at most `spread` — the workload the round-trip-bias model (§6.2)
    /// describes: congestion moves both directions together.
    Correlated {
        /// Distribution of the shared base delay.
        base: DelayDistribution,
        /// Maximum per-message jitter above the base.
        spread: Nanos,
    },
}

impl LinkModel {
    /// A symmetric independent link.
    pub fn symmetric(d: DelayDistribution) -> LinkModel {
        LinkModel::Independent {
            forward: d.clone(),
            backward: d,
        }
    }

    /// Resolves per-execution randomness (the correlated base) and returns
    /// a sampler for individual messages.
    pub fn resolve<R: Rng + ?Sized>(&self, rng: &mut R) -> ResolvedLink {
        match self {
            LinkModel::Independent { forward, backward } => ResolvedLink {
                forward: forward.clone(),
                backward: backward.clone(),
                bias_bound: None,
            },
            LinkModel::Correlated { base, spread } => {
                let b = base.sample(rng);
                let jittered = DelayDistribution::uniform(b, b + *spread);
                ResolvedLink {
                    forward: jittered.clone(),
                    backward: jittered,
                    bias_bound: Some(*spread),
                }
            }
        }
    }
}

/// A link with its per-execution randomness fixed; samples per-message
/// delays.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedLink {
    /// Forward per-message distribution.
    pub forward: DelayDistribution,
    /// Backward per-message distribution.
    pub backward: DelayDistribution,
    /// If the link is correlated, a certified bound on the round-trip bias.
    pub bias_bound: Option<Nanos>,
}

impl ResolvedLink {
    /// Samples a delay in the forward (`true`) or backward direction.
    pub fn sample<R: Rng + ?Sized>(&self, forward: bool, rng: &mut R) -> Nanos {
        if forward {
            self.forward.sample(rng)
        } else {
            self.backward.sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn constant_always_returns_itself() {
        let d = DelayDistribution::constant(Nanos::new(42));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), Nanos::new(42));
        }
        assert_eq!(d.support_min(), Nanos::new(42));
        assert_eq!(d.support_max(), Ext::Finite(Nanos::new(42)));
    }

    #[test]
    fn uniform_stays_in_support() {
        let d = DelayDistribution::uniform(Nanos::new(10), Nanos::new(20));
        let mut r = rng();
        for _ in 0..1000 {
            let s = d.sample(&mut r);
            assert!(s >= Nanos::new(10) && s <= Nanos::new(20));
        }
    }

    #[test]
    fn degenerate_uniform_is_constant() {
        let d = DelayDistribution::uniform(Nanos::new(5), Nanos::new(5));
        assert_eq!(d.sample(&mut rng()), Nanos::new(5));
    }

    #[test]
    fn heavy_tail_respects_floor_and_varies() {
        let d = DelayDistribution::heavy_tail(Nanos::new(100), Nanos::new(50), 1.5);
        let mut r = rng();
        let samples: Vec<Nanos> = (0..500).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&s| s >= Nanos::new(100)));
        assert!(samples.iter().any(|&s| s > Nanos::new(150)));
        assert_eq!(d.support_max(), Ext::PosInf);
    }

    #[test]
    #[should_panic(expected = "0 <= lo <= hi")]
    fn inverted_uniform_panics() {
        let _ = DelayDistribution::uniform(Nanos::new(5), Nanos::new(1));
    }

    #[test]
    fn correlated_link_certifies_its_bias() {
        let model = LinkModel::Correlated {
            base: DelayDistribution::uniform(Nanos::new(1_000), Nanos::new(100_000)),
            spread: Nanos::new(500),
        };
        let mut r = rng();
        let resolved = model.resolve(&mut r);
        assert_eq!(resolved.bias_bound, Some(Nanos::new(500)));
        // Every pair of samples (either direction) differs by ≤ spread.
        let samples: Vec<Nanos> = (0..200)
            .map(|i| resolved.sample(i % 2 == 0, &mut r))
            .collect();
        let min = samples.iter().copied().min().unwrap();
        let max = samples.iter().copied().max().unwrap();
        assert!(max - min <= Nanos::new(500));
    }

    #[test]
    fn independent_link_has_no_bias_certificate() {
        let model = LinkModel::symmetric(DelayDistribution::constant(Nanos::new(5)));
        let resolved = model.resolve(&mut rng());
        assert_eq!(resolved.bias_bound, None);
        assert_eq!(resolved.sample(true, &mut rng()), Nanos::new(5));
    }
}
