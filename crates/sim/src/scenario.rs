//! High-level simulation scenarios: topology + delay models + assumptions
//! → executions, ready for synchronization and evaluation.

use std::collections::HashMap;

use clocksync::{LinkAssumption, Network, SyncError, SyncOutcome, Synchronizer};
use clocksync_model::{Execution, ProcessorId};
use clocksync_obs::Recorder;
use clocksync_time::{Ext, Nanos, Ratio, RealTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::delay::{DelayDistribution, LinkModel};
use crate::engine::{Engine, Process};
use crate::faults::{FaultLog, FaultPlan};
use crate::protocol::ProbeProcess;
use crate::topology::Topology;

/// Derives the tightest delay assumption that the sampled delays of
/// `model` are guaranteed to satisfy.
///
/// * Independent directions ⇒ per-direction [`LinkAssumption::bounds`]
///   from the distribution supports (upper bound `+∞` for heavy tails);
/// * correlated directions ⇒ [`LinkAssumption::rtt_bias`] with the link's
///   jitter spread (clamped up to 1 ns — a bias bound must be positive).
pub fn truthful_assumption(model: &LinkModel) -> LinkAssumption {
    match model {
        LinkModel::Independent { forward, backward } => {
            let range = |d: &DelayDistribution| match d.support_max() {
                Ext::Finite(hi) => clocksync::DelayRange::new(d.support_min(), hi),
                _ => clocksync::DelayRange::at_least(d.support_min()),
            };
            LinkAssumption::bounds(range(forward), range(backward))
        }
        LinkModel::Correlated { spread, .. } => {
            LinkAssumption::rtt_bias((*spread).max(Nanos::new(1)))
        }
    }
}

/// One link of a scenario.
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Lower endpoint.
    pub a: usize,
    /// Higher endpoint.
    pub b: usize,
    /// How delays are actually generated.
    pub model: LinkModel,
    /// What the synchronizer is told (oriented `a → b`).
    pub assumption: LinkAssumption,
}

/// A repeatable simulation scenario.
///
/// # Examples
///
/// ```
/// use clocksync_sim::{Simulation, Topology, DelayDistribution};
/// use clocksync_time::{Ext, Nanos};
///
/// let sim = Simulation::builder(4)
///     .uniform_links(Topology::Ring(4),
///                    Nanos::from_micros(50), Nanos::from_micros(250), 7)
///     .probes(3)
///     .build();
/// let run = sim.run(42);
/// let outcome = run.synchronize()?;
/// assert!(outcome.precision().is_finite());
/// // The hidden true error never exceeds the guarantee.
/// let err = run.true_discrepancy(outcome.corrections());
/// assert!(Ext::Finite(err) <= outcome.precision());
/// # Ok::<(), clocksync::SyncError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulation {
    n: usize,
    links: Vec<LinkSpec>,
    probes: usize,
    spacing: Nanos,
    start_spread: Nanos,
    faults: FaultPlan,
    recorder: Recorder,
}

impl Simulation {
    /// Starts building a scenario over `n` processors.
    pub fn builder(n: usize) -> SimulationBuilder {
        SimulationBuilder {
            sim: Simulation {
                n,
                links: Vec::new(),
                probes: 2,
                spacing: Nanos::from_millis(10),
                start_spread: Nanos::from_millis(5),
                faults: FaultPlan::new(),
                recorder: Recorder::disabled(),
            },
        }
    }

    /// The number of processors.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The declared links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Probe round trips per link.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Spacing between probe rounds.
    pub fn spacing(&self) -> Nanos {
        self.spacing
    }

    /// Maximum random start-time skew.
    pub fn start_spread(&self) -> Nanos {
        self.start_spread
    }

    /// The fault plan (empty by default).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Builds the [`Network`] the synchronizer will be given.
    pub fn network(&self) -> Network {
        let mut b = Network::builder(self.n);
        for l in &self.links {
            b = b.link(ProcessorId(l.a), ProcessorId(l.b), l.assumption.clone());
        }
        b.build()
    }

    /// Runs the scenario with a seed: samples start offsets and delays,
    /// executes the probe protocol (under the fault plan, if one was
    /// declared), and returns the recorded run. Use
    /// [`Simulation::run_with_faults`] to also get the fault log.
    pub fn run(&self, seed: u64) -> SimRun {
        self.run_with_faults(seed).run
    }

    /// Like [`Simulation::run`], but additionally returns the
    /// [`FaultLog`] of what the fault plan actually did to this seed's
    /// execution. With an empty plan the log is empty and the run is
    /// bit-identical to the plan-free scenario under the same seed.
    pub fn run_with_faults(&self, seed: u64) -> FaultySimRun {
        let mut rng = StdRng::seed_from_u64(seed);
        let starts: Vec<RealTime> = (0..self.n)
            .map(|_| {
                let s = if self.start_spread == Nanos::ZERO {
                    0
                } else {
                    rng.gen_range(0..=self.start_spread.as_nanos())
                };
                RealTime::from_nanos(s)
            })
            .collect();
        let mut links = HashMap::new();
        for l in &self.links {
            links.insert((l.a, l.b), l.model.resolve(&mut rng));
        }
        let mut engine = Engine::new(starts, links);
        engine.set_recorder(self.recorder.clone());
        // Probes start only after every processor has started.
        let initial_delay = self.start_spread + Nanos::from_micros(100);
        let processes: Vec<Box<dyn Process>> = (0..self.n)
            .map(|_| {
                Box::new(
                    ProbeProcess::new(self.probes, self.spacing, initial_delay)
                        .with_recorder(self.recorder.clone()),
                ) as Box<dyn Process>
            })
            .collect();
        let (execution, log) = if self.faults.is_empty() {
            (engine.run(processes, &mut rng), FaultLog::default())
        } else {
            engine.run_faulty(processes, &mut rng, &self.faults)
        };
        FaultySimRun {
            run: SimRun {
                network: self.network(),
                execution,
            },
            log,
        }
    }

    /// Runs the scenario under every seed in parallel (rayon), returning
    /// the runs in seed order. Each run is seeded independently, so the
    /// results are identical to calling [`Simulation::run`] sequentially —
    /// a property the test suite checks.
    pub fn run_many(&self, seeds: &[u64]) -> Vec<SimRun> {
        use rayon::prelude::*;
        seeds.par_iter().map(|&seed| self.run(seed)).collect()
    }
}

/// Builder for [`Simulation`].
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    sim: Simulation,
}

impl SimulationBuilder {
    /// Adds one link with an explicit delay model and assumption (oriented
    /// `a → b`).
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are out of range or equal.
    pub fn link(
        mut self,
        a: usize,
        b: usize,
        model: LinkModel,
        assumption: LinkAssumption,
    ) -> Self {
        assert!(a != b, "link endpoints must differ");
        assert!(a < self.sim.n && b < self.sim.n, "endpoint out of range");
        let (a, b, model, assumption) = if a < b {
            (a, b, model, assumption)
        } else {
            let flipped = match model {
                LinkModel::Independent { forward, backward } => LinkModel::Independent {
                    forward: backward,
                    backward: forward,
                },
                sym => sym,
            };
            (b, a, flipped, assumption.reversed())
        };
        self.sim.links.push(LinkSpec {
            a,
            b,
            model,
            assumption,
        });
        self
    }

    /// Adds a link whose declared assumption is derived truthfully from
    /// its delay model ([`truthful_assumption`]).
    pub fn truthful_link(self, a: usize, b: usize, model: LinkModel) -> Self {
        let assumption = truthful_assumption(&model);
        self.link(a, b, model, assumption)
    }

    /// Adds every edge of `topology` with symmetric uniform delays in
    /// `[lo, hi]` and the matching truthful bounds assumption. The
    /// topology's randomness (if any) is drawn from `topo_seed`.
    pub fn uniform_links(self, topology: Topology, lo: Nanos, hi: Nanos, topo_seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(topo_seed);
        let edges = topology.edges(&mut rng);
        edges.into_iter().fold(self, |b, (x, y)| {
            b.truthful_link(
                x,
                y,
                LinkModel::symmetric(DelayDistribution::uniform(lo, hi)),
            )
        })
    }

    /// Sets the number of probe round trips per link (default 2).
    pub fn probes(mut self, probes: usize) -> Self {
        self.sim.probes = probes;
        self
    }

    /// Sets the spacing between probe rounds (default 10 ms).
    pub fn spacing(mut self, spacing: Nanos) -> Self {
        self.sim.spacing = spacing;
        self
    }

    /// Sets the maximum random start-time skew (default 5 ms).
    pub fn start_spread(mut self, spread: Nanos) -> Self {
        assert!(spread >= Nanos::ZERO, "spread must be nonnegative");
        self.sim.start_spread = spread;
        self
    }

    /// Attaches a fault plan: every run of the built scenario injects
    /// these faults (reproducibly, per seed). See [`FaultPlan`].
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.sim.faults = plan;
        self
    }

    /// Attaches an observability recorder: every run then emits the
    /// engine's `sim.run` span and `sim.*` counters plus per-round
    /// `sim.probe_round` events (taxonomy in DESIGN.md §6). Recording
    /// never touches the random stream, so runs are bit-identical with
    /// and without it.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.sim.recorder = recorder;
        self
    }

    /// Finishes building.
    pub fn build(self) -> Simulation {
        self.sim
    }
}

/// One executed simulation: the hidden ground truth plus everything the
/// synchronizer may see.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// The declared assumption network.
    pub network: Network,
    /// The recorded execution (views + hidden starts).
    pub execution: Execution,
}

impl SimRun {
    /// Runs the optimal synchronizer on the recorded views.
    ///
    /// # Errors
    ///
    /// Propagates [`SyncError`] (impossible for truthfully-declared
    /// scenarios).
    pub fn synchronize(&self) -> Result<SyncOutcome, SyncError> {
        Synchronizer::new(self.network.clone()).synchronize(self.execution.views())
    }

    /// Like [`SimRun::synchronize`], with per-stage spans reported to
    /// `recorder` (see [`Synchronizer::with_recorder`]). The outcome is
    /// bit-for-bit the same as the unrecorded one.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SimRun::synchronize`].
    pub fn synchronize_traced(&self, recorder: &Recorder) -> Result<SyncOutcome, SyncError> {
        Synchronizer::new(self.network.clone())
            .with_recorder(recorder.clone())
            .synchronize(self.execution.views())
    }

    /// The *true* worst pairwise disagreement of corrected clocks — the
    /// quantity only the outside observer can measure.
    pub fn true_discrepancy(&self, corrections: &[Ratio]) -> Ratio {
        self.execution.discrepancy(corrections)
    }

    /// Whether the generated execution satisfies the declared assumptions
    /// (always true for truthful scenarios; useful as a self-check).
    pub fn is_admissible(&self) -> bool {
        self.network.admits(&self.execution)
    }
}

/// A [`SimRun`] together with the record of which faults actually fired.
///
/// Injected faults keep the execution admissible for truthful
/// assumptions (drops erase evidence, duplicates and reorderings sample
/// from the genuine delay distribution), so [`SimRun::synchronize`] still
/// applies — it just sees less, or redundant, evidence and degrades per
/// the contract in `DESIGN.md` §5.
#[derive(Debug, Clone)]
pub struct FaultySimRun {
    /// The run itself (network, execution, ground truth).
    pub run: SimRun,
    /// What went wrong, message by message.
    pub log: FaultLog,
}

impl FaultySimRun {
    /// Shorthand for [`SimRun::synchronize`] on the inner run.
    ///
    /// # Errors
    ///
    /// Propagates [`SyncError`] exactly as [`SimRun::synchronize`] does
    /// (still impossible for truthfully-declared scenarios: faults never
    /// fabricate out-of-support delays).
    pub fn synchronize(&self) -> Result<SyncOutcome, SyncError> {
        self.run.synchronize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_scenario_is_admissible_and_sound() {
        let sim = Simulation::builder(5)
            .uniform_links(
                Topology::Ring(5),
                Nanos::from_micros(100),
                Nanos::from_micros(400),
                3,
            )
            .probes(2)
            .build();
        for seed in 0..5 {
            let run = sim.run(seed);
            assert!(run.is_admissible());
            let outcome = run.synchronize().unwrap();
            assert!(outcome.precision().is_finite());
            let err = run.true_discrepancy(outcome.corrections());
            assert!(Ext::Finite(err) <= outcome.precision(), "seed {seed}");
        }
    }

    #[test]
    fn truthful_heavy_tail_scenario_uses_lower_bound_only() {
        let model = LinkModel::symmetric(DelayDistribution::heavy_tail(
            Nanos::from_micros(200),
            Nanos::from_micros(100),
            1.5,
        ));
        match truthful_assumption(&model) {
            LinkAssumption::Bounds { forward, backward } => {
                assert_eq!(forward.lower(), Nanos::from_micros(200));
                assert_eq!(forward.upper(), Ext::PosInf);
                assert_eq!(backward.upper(), Ext::PosInf);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truthful_correlated_scenario_uses_rtt_bias() {
        let model = LinkModel::Correlated {
            base: DelayDistribution::uniform(Nanos::from_micros(1), Nanos::from_millis(50)),
            spread: Nanos::from_micros(30),
        };
        assert_eq!(
            truthful_assumption(&model),
            LinkAssumption::rtt_bias(Nanos::from_micros(30))
        );
    }

    #[test]
    fn runs_are_reproducible_by_seed() {
        let sim = Simulation::builder(3)
            .uniform_links(
                Topology::Path(3),
                Nanos::from_micros(10),
                Nanos::from_micros(90),
                1,
            )
            .build();
        let a = sim.run(7);
        let b = sim.run(7);
        assert_eq!(a.execution, b.execution);
        let c = sim.run(8);
        assert!(a.execution != c.execution);
    }

    #[test]
    fn run_many_matches_sequential_runs() {
        let sim = Simulation::builder(4)
            .uniform_links(
                Topology::Ring(4),
                Nanos::from_micros(50),
                Nanos::from_micros(250),
                2,
            )
            .probes(2)
            .build();
        let seeds: Vec<u64> = (0..8).collect();
        let parallel = sim.run_many(&seeds);
        assert_eq!(parallel.len(), seeds.len());
        for (run, &seed) in parallel.iter().zip(&seeds) {
            let sequential = sim.run(seed);
            assert_eq!(run.execution, sequential.execution, "seed {seed}");
        }
    }

    #[test]
    fn faulty_runs_stay_admissible_and_reproducible() {
        let plan = FaultPlan::new()
            .drop_messages(ProcessorId(0), ProcessorId(1), 0.4)
            .duplicate_messages(ProcessorId(1), ProcessorId(2), 0.4)
            .reorder_messages(ProcessorId(2), ProcessorId(3), 0.4);
        let sim = Simulation::builder(4)
            .uniform_links(
                Topology::Ring(4),
                Nanos::from_micros(50),
                Nanos::from_micros(250),
                2,
            )
            .probes(3)
            .faults(plan)
            .build();
        let mut any_fault = false;
        for seed in 0..6 {
            let faulty = sim.run_with_faults(seed);
            any_fault |= !faulty.log.is_clean();
            // Faults thin or pad the evidence but never break the model or
            // the declared assumptions.
            assert!(faulty.run.is_admissible(), "seed {seed}");
            let outcome = faulty.synchronize().unwrap();
            let err = faulty.run.true_discrepancy(outcome.corrections());
            assert!(Ext::Finite(err) <= outcome.precision(), "seed {seed}");
            // Same seed, same faults.
            let again = sim.run_with_faults(seed);
            assert_eq!(faulty.run.execution, again.run.execution);
            assert_eq!(faulty.log, again.log);
        }
        assert!(any_fault, "plan never fired across six seeds");
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let sim = Simulation::builder(3)
            .uniform_links(
                Topology::Path(3),
                Nanos::from_micros(10),
                Nanos::from_micros(90),
                1,
            )
            .build();
        let with_empty_plan = sim.clone();
        let a = sim.run(7);
        let b = with_empty_plan.run_with_faults(7);
        assert_eq!(a.execution, b.run.execution);
        assert!(b.log.is_clean());
    }

    #[test]
    fn reversed_link_declaration_matches_forward() {
        // Declaring (2, 0) with asymmetric delays must orient correctly.
        let model = LinkModel::Independent {
            forward: DelayDistribution::constant(Nanos::new(100)),
            backward: DelayDistribution::constant(Nanos::new(900)),
        };
        let sim = Simulation::builder(3)
            .truthful_link(2, 0, model)
            .uniform_links(Topology::Path(3), Nanos::new(1), Nanos::new(10), 1)
            .probes(1)
            .build();
        let run = sim.run(11);
        assert!(run.is_admissible());
        // Messages 2 → 0 take 100ns (the declared forward direction).
        let d = run.execution.link_delays(ProcessorId(2), ProcessorId(0));
        assert!(d.iter().all(|&x| x == Nanos::new(100)));
    }
}
