//! A discrete-event network simulator for clock-synchronization
//! experiments.
//!
//! The PODC'93 paper evaluates nothing empirically — it is pure theory over
//! mathematical executions. This crate is the reproduction's substitute
//! for those executions: it *generates* them, at nanosecond granularity,
//! with full ground truth retained so experiments can compare the
//! synchronizer's guaranteed precision against the true (observer-side)
//! error.
//!
//! * [`Topology`] — path/ring/star/complete/grid/random-connected link
//!   sets;
//! * [`DelayDistribution`] / [`LinkModel`] — constant, uniform,
//!   heavy-tailed (Pareto) and correlated-symmetric links (the workload
//!   motivating the paper's round-trip-bias model);
//! * [`Engine`] / [`Process`] — a deterministic discrete-event core that
//!   runs reactive processes and records paper-accurate
//!   [`clocksync_model::Execution`]s;
//! * [`ProbeProcess`] — the round-trip probe protocol used by all
//!   experiments;
//! * [`Simulation`] — the one-stop scenario API: topology + delay models +
//!   (optionally truthful) assumptions, seeded and reproducible.
//!
//! # Examples
//!
//! ```
//! use clocksync_sim::{Simulation, Topology};
//! use clocksync_time::Nanos;
//!
//! let sim = Simulation::builder(6)
//!     .uniform_links(Topology::Complete(6),
//!                    Nanos::from_micros(20), Nanos::from_micros(120), 1)
//!     .probes(2)
//!     .build();
//! let outcome = sim.run(1).synchronize()?;
//! assert!(outcome.precision().is_finite());
//! # Ok::<(), clocksync::SyncError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod distributed;
mod drift;
mod engine;
mod faults;
mod protocol;
mod scenario;
mod topology;

pub use delay::{DelayDistribution, LinkModel, ResolvedLink};
pub use distributed::{DistMsg, DistRun, DistributedSync, FaultyDistRun};
pub use drift::{
    run_continuous_resync, run_with_drift, widen_assumption, ContinuousDriftRun, DriftError,
    DriftRun, ResyncConfig,
};
pub use engine::{Engine, IdleProcess, Process, ProcessCtx};
pub use faults::{FaultLog, FaultPlan, LinkFaults};
pub use protocol::ProbeProcess;
pub use scenario::{
    truthful_assumption, FaultySimRun, LinkSpec, SimRun, Simulation, SimulationBuilder,
};
pub use topology::Topology;
