//! Fault plans: reproducible link- and processor-level failures.
//!
//! A [`FaultPlan`] describes *what goes wrong* in a simulated execution —
//! per-link message drops, duplication, reordering, timed link-down
//! windows, and crash-stop processors — while the seed still controls
//! *when*. The engine keeps the fault-free code path byte-identical (no
//! random draws are consumed unless a plan is active), so every existing
//! seeded experiment reproduces exactly, and a faulty run is itself fully
//! reproducible from `(seed, plan)`.
//!
//! Faults never leave the paper's model: a dropped message simply does not
//! appear in anyone's view (its send is erased at harvest — the processors
//! cannot distinguish "never sent" from "sent and lost"), a duplicate is a
//! fresh message with its own identity and an independently sampled delay,
//! and a reordered message is one whose delay was resampled towards the
//! tail of the same distribution. Executions produced under a plan
//! therefore still satisfy every axiom of `clocksync_model` and remain
//! admissible for truthful assumptions.

use std::collections::HashMap;

use clocksync_model::{MessageId, ProcessorId};
use clocksync_time::RealTime;

/// The failure behaviour of one undirected link.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability that a message on this link is silently lost.
    pub drop_prob: f64,
    /// Probability that a delivered message is delivered twice (the copy
    /// gets a fresh id and an independently sampled delay).
    pub dup_prob: f64,
    /// Probability that a message is "overtaken": its delay is resampled as
    /// the maximum of two draws, pushing it towards the tail of the same
    /// distribution (so truthful assumptions stay truthful).
    pub reorder_prob: f64,
    /// Half-open real-time windows `[from, until)` during which every
    /// message sent on the link is lost (link churn).
    pub down: Vec<(RealTime, RealTime)>,
}

impl LinkFaults {
    /// `true` when the link is inside one of its down windows at `t`.
    pub fn is_down_at(&self, t: RealTime) -> bool {
        self.down
            .iter()
            .any(|&(from, until)| from <= t && t < until)
    }

    /// `true` when no fault of any kind is configured.
    pub fn is_benign(&self) -> bool {
        self.drop_prob == 0.0
            && self.dup_prob == 0.0
            && self.reorder_prob == 0.0
            && self.down.is_empty()
    }
}

/// A complete fault schedule for one simulated execution.
///
/// Built with consuming chain calls and passed to
/// [`crate::Engine::run_faulty`] (or
/// [`Simulation::faults`](crate::SimulationBuilder::faults)):
///
/// ```
/// use clocksync_sim::FaultPlan;
/// use clocksync_model::ProcessorId;
/// use clocksync_time::RealTime;
///
/// let plan = FaultPlan::new()
///     .drop_messages(ProcessorId(0), ProcessorId(1), 0.2)
///     .link_down(ProcessorId(1), ProcessorId(2),
///                RealTime::from_micros(100), RealTime::from_micros(300))
///     .crash(ProcessorId(3), RealTime::from_micros(250));
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    links: HashMap<(usize, usize), LinkFaults>,
    crashes: HashMap<usize, RealTime>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    fn entry(&mut self, a: ProcessorId, b: ProcessorId) -> &mut LinkFaults {
        assert_ne!(a, b, "a link needs two distinct endpoints");
        let key = (a.index().min(b.index()), a.index().max(b.index()));
        self.links.entry(key).or_default()
    }

    fn check_prob(prob: f64) {
        assert!(
            (0.0..=1.0).contains(&prob),
            "fault probability must be in [0, 1], got {prob}"
        );
    }

    /// Drops each message on link `{a, b}` independently with probability
    /// `prob`.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]` or `a == b`.
    pub fn drop_messages(mut self, a: ProcessorId, b: ProcessorId, prob: f64) -> FaultPlan {
        Self::check_prob(prob);
        self.entry(a, b).drop_prob = prob;
        self
    }

    /// Duplicates each delivered message on link `{a, b}` independently
    /// with probability `prob`.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]` or `a == b`.
    pub fn duplicate_messages(mut self, a: ProcessorId, b: ProcessorId, prob: f64) -> FaultPlan {
        Self::check_prob(prob);
        self.entry(a, b).dup_prob = prob;
        self
    }

    /// Delays ("reorders past later traffic") each message on link `{a, b}`
    /// independently with probability `prob`.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]` or `a == b`.
    pub fn reorder_messages(mut self, a: ProcessorId, b: ProcessorId, prob: f64) -> FaultPlan {
        Self::check_prob(prob);
        self.entry(a, b).reorder_prob = prob;
        self
    }

    /// Takes link `{a, b}` down for the half-open real-time window
    /// `[from, until)`; messages sent during the window are lost. Multiple
    /// windows may be declared per link.
    ///
    /// # Panics
    ///
    /// Panics if `from > until` or `a == b`.
    pub fn link_down(
        mut self,
        a: ProcessorId,
        b: ProcessorId,
        from: RealTime,
        until: RealTime,
    ) -> FaultPlan {
        assert!(from <= until, "down window must have from <= until");
        self.entry(a, b).down.push((from, until));
        self
    }

    /// Crash-stops processor `p` at real time `at`: it takes no step at or
    /// after `at` and messages arriving from then on are lost. A crash at
    /// or before `p`'s start leaves it with a bare start-only view (it
    /// booted, then died before doing anything).
    pub fn crash(mut self, p: ProcessorId, at: RealTime) -> FaultPlan {
        self.crashes.insert(p.index(), at);
        self
    }

    /// The fault behaviour of the canonical link `key = (low, high)`, if
    /// any was declared.
    pub fn link_faults(&self, key: (usize, usize)) -> Option<&LinkFaults> {
        self.links.get(&key)
    }

    /// Every declared link's fault behaviour, ascending by canonical key
    /// `(low, high)` — a deterministic iteration order for schedulers and
    /// serializers that must not depend on `HashMap` ordering (the
    /// scenario fuzzer's journal is byte-reproducible because of this).
    pub fn link_fault_entries(&self) -> Vec<((usize, usize), &LinkFaults)> {
        let mut out: Vec<_> = self.links.iter().map(|(&k, v)| (k, v)).collect();
        out.sort_by_key(|&(k, _)| k);
        out
    }

    /// Overlays `other` onto this plan: per link, `other`'s probabilities
    /// replace this plan's where `other` declares them (a declared zero
    /// replaces too — that is how a scenario turns a fault *off*), down
    /// windows accumulate, and `other`'s crash times replace this plan's
    /// for the processors it crashes. The event-sourced composition the
    /// scenario fuzzer folds `SetFaults`/`LinkDown`/`Crash` events with.
    pub fn merge(mut self, other: FaultPlan) -> FaultPlan {
        for (key, theirs) in other.links {
            let ours = self.links.entry(key).or_default();
            ours.drop_prob = theirs.drop_prob;
            ours.dup_prob = theirs.dup_prob;
            ours.reorder_prob = theirs.reorder_prob;
            ours.down.extend(theirs.down);
        }
        for (p, at) in other.crashes {
            self.crashes.insert(p, at);
        }
        self
    }

    /// The crash-stop time of processor `p`, if scheduled.
    pub fn crash_time(&self, p: ProcessorId) -> Option<RealTime> {
        self.crashes.get(&p.index()).copied()
    }

    /// All scheduled crashes, ascending by processor.
    pub fn crashes(&self) -> Vec<(ProcessorId, RealTime)> {
        let mut out: Vec<_> = self
            .crashes
            .iter()
            .map(|(&p, &t)| (ProcessorId(p), t))
            .collect();
        out.sort_by_key(|&(p, _)| p);
        out
    }

    /// `true` when the plan schedules no fault at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.links.values().all(LinkFaults::is_benign)
    }

    /// The largest processor index referenced anywhere in the plan, used by
    /// the engine to validate the plan against the system size.
    pub fn max_processor_index(&self) -> Option<usize> {
        self.links
            .keys()
            .map(|&(_, b)| b)
            .chain(self.crashes.keys().copied())
            .max()
    }
}

/// What actually went wrong during one faulty run — the ground truth the
/// engine records as it injects each fault.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Messages that were sent but never delivered (random drop, down
    /// window, or receiver crash). Their send events are erased from the
    /// harvested views, so these ids do not appear in the execution.
    pub dropped: Vec<MessageId>,
    /// `(original, copy)` pairs for duplicated deliveries. The copy is a
    /// real message of the execution with its own id — unless its receiver
    /// crashed first, in which case it also appears in `dropped`.
    pub duplicated: Vec<(MessageId, MessageId)>,
    /// Messages whose delay was resampled towards the tail (reordering).
    pub reordered: Vec<MessageId>,
    /// Processors that were crash-stopped, with their crash times.
    pub crashed: Vec<(ProcessorId, RealTime)>,
}

impl FaultLog {
    /// `true` when no fault fired (a plan with low probabilities can come
    /// up clean).
    pub fn is_clean(&self) -> bool {
        self.dropped.is_empty()
            && self.duplicated.is_empty()
            && self.reordered.is_empty()
            && self.crashed.is_empty()
    }

    /// The ids of duplicate *copies* (not originals); stripping these from
    /// a view set via `retain_messages` recovers the duplicate-free
    /// evidence.
    pub fn duplicate_copy_ids(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.duplicated.iter().map(|&(_, copy)| copy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: ProcessorId = ProcessorId(0);
    const Q: ProcessorId = ProcessorId(1);

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(FaultPlan::new().drop_messages(P, Q, 0.0).is_empty());
        assert!(!FaultPlan::new().drop_messages(P, Q, 0.5).is_empty());
        assert!(!FaultPlan::new().crash(P, RealTime::ZERO).is_empty());
    }

    #[test]
    fn links_are_canonicalized() {
        let plan = FaultPlan::new().drop_messages(Q, P, 0.25);
        assert_eq!(plan.link_faults((0, 1)).unwrap().drop_prob, 0.25);
        assert!(plan.link_faults((1, 0)).is_none());
    }

    #[test]
    fn down_windows_are_half_open() {
        let plan =
            FaultPlan::new().link_down(P, Q, RealTime::from_nanos(100), RealTime::from_nanos(200));
        let lf = plan.link_faults((0, 1)).unwrap();
        assert!(!lf.is_down_at(RealTime::from_nanos(99)));
        assert!(lf.is_down_at(RealTime::from_nanos(100)));
        assert!(lf.is_down_at(RealTime::from_nanos(199)));
        assert!(!lf.is_down_at(RealTime::from_nanos(200)));
    }

    #[test]
    fn merge_replaces_probs_and_accumulates_windows() {
        let base = FaultPlan::new()
            .drop_messages(P, Q, 0.5)
            .duplicate_messages(P, Q, 0.25)
            .link_down(P, Q, RealTime::from_nanos(10), RealTime::from_nanos(20))
            .crash(P, RealTime::from_nanos(100));
        let overlay = FaultPlan::new()
            .drop_messages(P, Q, 0.0) // declared zero turns the fault off
            .link_down(P, Q, RealTime::from_nanos(30), RealTime::from_nanos(40))
            .crash(P, RealTime::from_nanos(50));
        let merged = base.merge(overlay);
        let lf = merged.link_faults((0, 1)).unwrap();
        assert_eq!(lf.drop_prob, 0.0);
        assert_eq!(lf.dup_prob, 0.0, "overlay declared the link, replacing");
        assert_eq!(
            lf.down,
            vec![
                (RealTime::from_nanos(10), RealTime::from_nanos(20)),
                (RealTime::from_nanos(30), RealTime::from_nanos(40)),
            ]
        );
        assert_eq!(merged.crash_time(P), Some(RealTime::from_nanos(50)));
        // Links the overlay does not mention are untouched.
        let untouched = FaultPlan::new()
            .drop_messages(P, Q, 0.5)
            .merge(FaultPlan::new().crash(Q, RealTime::ZERO));
        assert_eq!(untouched.link_faults((0, 1)).unwrap().drop_prob, 0.5);
    }

    #[test]
    fn link_fault_entries_are_sorted() {
        let plan = FaultPlan::new()
            .drop_messages(ProcessorId(3), ProcessorId(2), 0.1)
            .drop_messages(Q, P, 0.2)
            .drop_messages(ProcessorId(1), ProcessorId(2), 0.3);
        let keys: Vec<(usize, usize)> = plan
            .link_fault_entries()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "fault probability")]
    fn out_of_range_probability_panics() {
        let _ = FaultPlan::new().drop_messages(P, Q, 1.5);
    }

    #[test]
    fn max_index_spans_links_and_crashes() {
        let plan = FaultPlan::new()
            .drop_messages(P, Q, 0.1)
            .crash(ProcessorId(7), RealTime::ZERO);
        assert_eq!(plan.max_processor_index(), Some(7));
        assert_eq!(FaultPlan::new().max_processor_index(), None);
    }
}
