//! A discrete-event network simulator producing model [`Execution`]s.
//!
//! The engine is the workspace's stand-in for the paper's mathematical
//! executions: reactive processes exchange messages over links with sampled
//! delays, every step is recorded with the *clock time* the processor would
//! see, and the result is a fully validated [`Execution`] — views for the
//! synchronizer, hidden start times and true delays for evaluation.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use clocksync_model::{Execution, MessageId, ProcessorId, View, ViewEvent, ViewSet};
use clocksync_obs::Recorder;
#[cfg(test)]
use clocksync_time::Nanos;
use clocksync_time::{ClockTime, RealTime};
use rand::Rng;

use crate::delay::ResolvedLink;
use crate::faults::{FaultLog, FaultPlan};

/// A reactive processor behaviour.
///
/// Implementations are driven by the engine through interrupt events,
/// mirroring the paper's automaton model: each callback may emit sends and
/// set timers through the [`ProcessCtx`].
pub trait Process<P = u64> {
    /// The processor starts (its clock reads 0).
    fn on_start(&mut self, ctx: &mut ProcessCtx<P>);
    /// A message arrives.
    fn on_message(&mut self, from: ProcessorId, payload: P, ctx: &mut ProcessCtx<P>);
    /// A timer set for the current clock time fires.
    fn on_timer(&mut self, ctx: &mut ProcessCtx<P>);
}

/// The interface a [`Process`] uses to act on the world.
#[derive(Debug)]
pub struct ProcessCtx<P = u64> {
    id: ProcessorId,
    clock: ClockTime,
    neighbors: Vec<ProcessorId>,
    sends: Vec<(ProcessorId, P)>,
    timers: Vec<ClockTime>,
}

impl<P> ProcessCtx<P> {
    /// This processor's id.
    pub fn id(&self) -> ProcessorId {
        self.id
    }

    /// The current local clock reading.
    pub fn clock(&self) -> ClockTime {
        self.clock
    }

    /// The processors this one shares a link with, ascending.
    pub fn neighbors(&self) -> &[ProcessorId] {
        &self.neighbors
    }

    /// Sends `payload` to `to` (must be a neighbor).
    pub fn send(&mut self, to: ProcessorId, payload: P) {
        self.sends.push((to, payload));
    }

    /// Sets a timer to fire when the local clock reads `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not strictly in the future.
    pub fn set_timer(&mut self, at: ClockTime) {
        assert!(at > self.clock, "timers must be set for the future");
        self.timers.push(at);
    }
}

#[derive(Debug, Clone)]
enum EventKind<P> {
    Start(ProcessorId),
    Deliver {
        to: ProcessorId,
        from: ProcessorId,
        id: MessageId,
        payload: P,
    },
    Timer(ProcessorId),
}

/// The discrete-event engine.
///
/// # Examples
///
/// See [`crate::Simulation`], which wires topologies, delay models and the
/// probe protocol into the engine.
#[derive(Debug)]
pub struct Engine {
    starts: Vec<RealTime>,
    links: HashMap<(usize, usize), ResolvedLink>,
    neighbors: Vec<Vec<ProcessorId>>,
    max_events: usize,
    recorder: Recorder,
}

impl Engine {
    /// Creates an engine over `starts.len()` processors; `links` maps each
    /// undirected pair `(a, b)` with `a < b` to its resolved delay model.
    ///
    /// # Panics
    ///
    /// Panics if a link references an unknown processor or is not in
    /// canonical `(low, high)` form.
    pub fn new(starts: Vec<RealTime>, links: HashMap<(usize, usize), ResolvedLink>) -> Engine {
        let n = starts.len();
        let mut neighbors = vec![Vec::new(); n];
        for &(a, b) in links.keys() {
            assert!(a < b && b < n, "link ({a},{b}) is not canonical/in range");
            neighbors[a].push(ProcessorId(b));
            neighbors[b].push(ProcessorId(a));
        }
        for nb in &mut neighbors {
            nb.sort_unstable();
        }
        Engine {
            starts,
            links,
            neighbors,
            max_events: 1_000_000,
            recorder: Recorder::disabled(),
        }
    }

    /// Replaces the runaway-protocol safety cap (default one million
    /// events).
    pub fn set_max_events(&mut self, cap: usize) {
        self.max_events = cap;
    }

    /// Attaches an observability recorder; each run then emits a
    /// `sim.run` span and the `sim.*` delivery counters (taxonomy in
    /// DESIGN.md §6). Recording never touches the random stream, so runs
    /// are bit-identical with and without it.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Runs the processes until no events remain and returns the recorded
    /// execution.
    ///
    /// # Panics
    ///
    /// Panics if `processes.len()` differs from the processor count, if a
    /// process sends to a non-neighbor, or if the event cap is exceeded
    /// (a non-terminating protocol).
    pub fn run<R: Rng + ?Sized>(&self, processes: Vec<Box<dyn Process>>, rng: &mut R) -> Execution {
        self.run_with_payload(processes, rng)
    }

    /// Like [`Engine::run`], but injects the faults scheduled in `plan` and
    /// additionally returns the [`FaultLog`] of what actually fired.
    ///
    /// The produced execution still satisfies every model axiom: sends of
    /// lost messages are erased from the views at harvest (the processors
    /// cannot tell "lost" from "never sent"), duplicates are fresh messages
    /// with their own ids, and crash-stopped processors simply have short
    /// views. With an empty plan this is exactly [`Engine::run`], random
    /// stream included.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Engine::run`], plus a plan referencing an
    /// out-of-range processor.
    pub fn run_faulty<R: Rng + ?Sized>(
        &self,
        processes: Vec<Box<dyn Process>>,
        rng: &mut R,
        plan: &FaultPlan,
    ) -> (Execution, FaultLog) {
        self.run_with_payload_faulty(processes, rng, plan)
    }

    /// Like [`Engine::run`] but with an arbitrary message payload type,
    /// enabling protocols that carry structured data (timestamps, shift
    /// reports, corrections — see [`crate::DistributedSync`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Engine::run`].
    pub fn run_with_payload<P: Clone, R: Rng + ?Sized>(
        &self,
        processes: Vec<Box<dyn Process<P>>>,
        rng: &mut R,
    ) -> Execution {
        self.run_inner(processes, rng, None).0
    }

    /// [`Engine::run_with_payload`] with fault injection — the payload-typed
    /// version of [`Engine::run_faulty`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Engine::run_faulty`].
    pub fn run_with_payload_faulty<P: Clone, R: Rng + ?Sized>(
        &self,
        processes: Vec<Box<dyn Process<P>>>,
        rng: &mut R,
        plan: &FaultPlan,
    ) -> (Execution, FaultLog) {
        self.run_inner(processes, rng, Some(plan))
    }

    /// The single event loop behind all `run_*` entry points. When `plan`
    /// is `None`, no fault bookkeeping touches the random stream, so
    /// fault-free runs are bit-identical to the pre-fault engine.
    fn run_inner<P: Clone, R: Rng + ?Sized>(
        &self,
        mut processes: Vec<Box<dyn Process<P>>>,
        rng: &mut R,
        plan: Option<&FaultPlan>,
    ) -> (Execution, FaultLog) {
        let n = self.starts.len();
        assert_eq!(processes.len(), n, "one process per processor required");
        let mut run_span = self.recorder.span("sim.run");
        run_span.field("n", n);
        let mut log = FaultLog::default();
        if let Some(plan) = plan {
            if let Some(max) = plan.max_processor_index() {
                assert!(max < n, "fault plan references processor {max}, n = {n}");
            }
            log.crashed = plan.crashes();
        }

        // Min-heap on (time, sequence) for deterministic tie-breaking.
        let mut queue: BinaryHeap<Reverse<(RealTime, u64)>> = BinaryHeap::new();
        let mut payloads: HashMap<u64, EventKind<P>> = HashMap::new();
        let mut seq = 0u64;
        let push = |queue: &mut BinaryHeap<_>,
                    payloads: &mut HashMap<u64, EventKind<P>>,
                    seq: &mut u64,
                    at: RealTime,
                    kind: EventKind<P>| {
            queue.push(Reverse((at, *seq)));
            payloads.insert(*seq, kind);
            *seq += 1;
        };

        for (i, &s) in self.starts.iter().enumerate() {
            push(
                &mut queue,
                &mut payloads,
                &mut seq,
                s,
                EventKind::Start(ProcessorId(i)),
            );
        }

        let mut events: Vec<Vec<ViewEvent>> = vec![Vec::new(); n];
        let mut next_msg_id = 0u64;
        let mut processed = 0usize;

        while let Some(Reverse((now, s))) = queue.pop() {
            processed += 1;
            assert!(
                processed <= self.max_events,
                "event cap exceeded: protocol does not terminate"
            );
            let kind = payloads.remove(&s).expect("event payload present");
            let p = match &kind {
                EventKind::Start(p) | EventKind::Timer(p) => *p,
                EventKind::Deliver { to, .. } => *to,
            };
            let clock = ClockTime::ZERO + (now - self.starts[p.index()]);
            let crashed = plan
                .and_then(|pl| pl.crash_time(p))
                .is_some_and(|t| now >= t);
            if crashed {
                match kind {
                    // The processor booted, then died: keep the mandatory
                    // start event so its (empty) view stays well-formed.
                    EventKind::Start(_) => events[p.index()].push(ViewEvent::Start { clock }),
                    // A message into the void; the sender's send event is
                    // erased at harvest.
                    EventKind::Deliver { id, .. } => {
                        self.recorder.incr("sim.messages_dropped", 1);
                        log.dropped.push(id);
                    }
                    EventKind::Timer(_) => {}
                }
                continue;
            }
            let mut ctx = ProcessCtx {
                id: p,
                clock,
                neighbors: self.neighbors[p.index()].clone(),
                sends: Vec::new(),
                timers: Vec::new(),
            };

            match kind {
                EventKind::Start(_) => {
                    events[p.index()].push(ViewEvent::Start { clock });
                    processes[p.index()].on_start(&mut ctx);
                }
                EventKind::Timer(_) => {
                    self.recorder.incr("sim.timers_fired", 1);
                    events[p.index()].push(ViewEvent::Timer { clock });
                    processes[p.index()].on_timer(&mut ctx);
                }
                EventKind::Deliver {
                    from, id, payload, ..
                } => {
                    self.recorder.incr("sim.messages_delivered", 1);
                    events[p.index()].push(ViewEvent::Recv { from, id, clock });
                    processes[p.index()].on_message(from, payload, &mut ctx);
                }
            }

            // Apply the actions the process requested.
            for (to, payload) in ctx.sends {
                let key = (p.index().min(to.index()), p.index().max(to.index()));
                let link = self
                    .links
                    .get(&key)
                    .unwrap_or_else(|| panic!("{p} sent to non-neighbor {to}"));
                let forward = p.index() < to.index();
                let mut delay = link.sample(forward, rng);
                let id = MessageId(next_msg_id);
                next_msg_id += 1;
                self.recorder.incr("sim.messages_sent", 1);
                events[p.index()].push(ViewEvent::Send { to, id, clock });
                let faults = plan.and_then(|pl| pl.link_faults(key));
                let mut deliver = true;
                let mut duplicate = false;
                if let Some(lf) = faults {
                    if lf.is_down_at(now) || (lf.drop_prob > 0.0 && rng.gen_bool(lf.drop_prob)) {
                        deliver = false;
                        self.recorder.incr("sim.messages_dropped", 1);
                        log.dropped.push(id);
                    } else {
                        if lf.reorder_prob > 0.0 && rng.gen_bool(lf.reorder_prob) {
                            // "Overtaken" by later traffic: resample as the
                            // max of two draws — still inside the link's
                            // support, so truthful assumptions stay valid.
                            delay = delay.max(link.sample(forward, rng));
                            log.reordered.push(id);
                        }
                        duplicate = lf.dup_prob > 0.0 && rng.gen_bool(lf.dup_prob);
                    }
                }
                if !deliver {
                    continue;
                }
                if duplicate {
                    // The copy is a genuine extra message: fresh id, its
                    // own send event (same clock) and its own delay draw.
                    let copy = MessageId(next_msg_id);
                    next_msg_id += 1;
                    events[p.index()].push(ViewEvent::Send {
                        to,
                        id: copy,
                        clock,
                    });
                    let copy_delay = link.sample(forward, rng);
                    self.recorder.incr("sim.messages_duplicated", 1);
                    log.duplicated.push((id, copy));
                    push(
                        &mut queue,
                        &mut payloads,
                        &mut seq,
                        now + copy_delay,
                        EventKind::Deliver {
                            to,
                            from: p,
                            id: copy,
                            payload: payload.clone(),
                        },
                    );
                }
                push(
                    &mut queue,
                    &mut payloads,
                    &mut seq,
                    now + delay,
                    EventKind::Deliver {
                        to,
                        from: p,
                        id,
                        payload,
                    },
                );
            }
            for at in ctx.timers {
                push(
                    &mut queue,
                    &mut payloads,
                    &mut seq,
                    self.starts[p.index()] + (at - ClockTime::ZERO),
                    EventKind::Timer(p),
                );
            }
        }

        if plan.is_some() {
            // Erase the sends of messages that were never delivered (drop,
            // down window, receiver crash): to the survivors, a lost
            // message is indistinguishable from one never sent, and the
            // view-set axioms require matched send/recv pairs.
            let delivered: HashSet<MessageId> = events
                .iter()
                .flat_map(|evts| {
                    evts.iter().filter_map(|e| match e {
                        ViewEvent::Recv { id, .. } => Some(*id),
                        _ => None,
                    })
                })
                .collect();
            for evts in &mut events {
                evts.retain(|e| match e {
                    ViewEvent::Send { id, .. } => delivered.contains(id),
                    _ => true,
                });
            }
        }
        let views: Vec<View> = events
            .into_iter()
            .enumerate()
            .map(|(i, evts)| View::from_events(ProcessorId(i), evts))
            .collect();
        let views = ViewSet::new(views).expect("engine produces valid views");
        let execution =
            Execution::new(self.starts.clone(), views).expect("engine start/view counts match");
        run_span.field("events", processed);
        run_span.finish();
        (execution, log)
    }

    /// Convenience: per-processor start times.
    pub fn starts(&self) -> &[RealTime] {
        &self.starts
    }
}

/// Silence-is-golden process: never sends anything. Useful for tests and
/// for modelling passive processors.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdleProcess;

impl<P> Process<P> for IdleProcess {
    fn on_start(&mut self, _ctx: &mut ProcessCtx<P>) {}
    fn on_message(&mut self, _from: ProcessorId, _payload: P, _ctx: &mut ProcessCtx<P>) {}
    fn on_timer(&mut self, _ctx: &mut ProcessCtx<P>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{DelayDistribution, LinkModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn link(d: i64) -> ResolvedLink {
        LinkModel::symmetric(DelayDistribution::constant(Nanos::new(d)))
            .resolve(&mut StdRng::seed_from_u64(0))
    }

    /// Sends one ping to every higher-id neighbor at start; echoes pings.
    #[derive(Debug, Default)]
    struct Ping;

    impl Process for Ping {
        fn on_start(&mut self, ctx: &mut ProcessCtx) {
            for &nb in &ctx.neighbors().to_vec() {
                if nb > ctx.id() {
                    ctx.send(nb, 0);
                }
            }
        }
        fn on_message(&mut self, from: ProcessorId, payload: u64, ctx: &mut ProcessCtx) {
            if payload == 0 {
                ctx.send(from, 1);
            }
        }
        fn on_timer(&mut self, _ctx: &mut ProcessCtx) {}
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut links = HashMap::new();
        links.insert((0usize, 1usize), link(250));
        // The initiator starts last so its ping cannot arrive before the
        // responder's start (the model has no pre-start queueing).
        let engine = Engine::new(vec![RealTime::from_nanos(1_000), RealTime::ZERO], links);
        let exec = engine.run(
            vec![Box::new(Ping), Box::new(Ping)],
            &mut StdRng::seed_from_u64(1),
        );
        let msgs = exec.messages();
        assert_eq!(msgs.len(), 2);
        assert!(msgs.iter().all(|m| m.delay == Nanos::new(250)));
        // The echo happened at the receiver's receive time.
        let ping = msgs.iter().find(|m| m.src == ProcessorId(0)).unwrap();
        let pong = msgs.iter().find(|m| m.src == ProcessorId(1)).unwrap();
        assert_eq!(pong.sent_at, ping.received_at);
    }

    #[test]
    fn idle_processes_produce_start_only_views() {
        let engine = Engine::new(vec![RealTime::ZERO, RealTime::ZERO], HashMap::new());
        let exec = engine.run(
            vec![Box::new(IdleProcess), Box::new(IdleProcess)],
            &mut StdRng::seed_from_u64(1),
        );
        assert!(exec.messages().is_empty());
        assert_eq!(exec.views().view(ProcessorId(0)).events().len(), 1);
    }

    /// A process that sets a timer and sends on fire.
    #[derive(Debug, Default)]
    struct TimedSender;

    impl Process for TimedSender {
        fn on_start(&mut self, ctx: &mut ProcessCtx) {
            if ctx.id() == ProcessorId(0) {
                ctx.set_timer(ClockTime::from_nanos(500));
            }
        }
        fn on_message(&mut self, _f: ProcessorId, _p: u64, _ctx: &mut ProcessCtx) {}
        fn on_timer(&mut self, ctx: &mut ProcessCtx) {
            ctx.send(ProcessorId(1), 7);
        }
    }

    #[test]
    fn timers_fire_at_their_clock_time() {
        let mut links = HashMap::new();
        links.insert((0usize, 1usize), link(100));
        let engine = Engine::new(vec![RealTime::from_nanos(10_000), RealTime::ZERO], links);
        let exec = engine.run(
            vec![Box::new(TimedSender), Box::new(TimedSender)],
            &mut StdRng::seed_from_u64(1),
        );
        let msgs = exec.messages();
        assert_eq!(msgs.len(), 1);
        // Sent when p0's clock read 500, i.e. real 10_500.
        assert_eq!(msgs[0].sent_at, RealTime::from_nanos(10_500));
        // p0's view contains the timer event.
        assert!(exec
            .views()
            .view(ProcessorId(0))
            .events()
            .iter()
            .any(|e| matches!(e, ViewEvent::Timer { .. })));
    }

    #[test]
    fn empty_fault_plan_matches_fault_free_run() {
        let mut links = HashMap::new();
        links.insert((0usize, 1usize), link(250));
        let engine = Engine::new(vec![RealTime::ZERO, RealTime::ZERO], links);
        let clean = engine.run(
            vec![Box::new(Ping), Box::new(Ping)],
            &mut StdRng::seed_from_u64(5),
        );
        let (faulty, log) = engine.run_faulty(
            vec![Box::new(Ping), Box::new(Ping)],
            &mut StdRng::seed_from_u64(5),
            &FaultPlan::new(),
        );
        assert_eq!(clean, faulty);
        assert!(log.is_clean());
    }

    #[test]
    fn dropped_messages_leave_no_trace_in_views() {
        let mut links = HashMap::new();
        links.insert((0usize, 1usize), link(250));
        let engine = Engine::new(vec![RealTime::ZERO, RealTime::ZERO], links);
        let plan = FaultPlan::new().drop_messages(ProcessorId(0), ProcessorId(1), 1.0);
        let (exec, log) = engine.run_faulty(
            vec![Box::new(Ping), Box::new(Ping)],
            &mut StdRng::seed_from_u64(2),
            &plan,
        );
        // The ping was lost; no echo ever happened, and the sender's view
        // shows no send (it cannot know the loss occurred — but the model
        // requires matched pairs, so the send is erased).
        assert!(exec.messages().is_empty());
        assert_eq!(log.dropped.len(), 1);
        assert_eq!(exec.views().view(ProcessorId(0)).events().len(), 1);
    }

    #[test]
    fn duplicated_messages_are_fresh_messages() {
        let mut links = HashMap::new();
        links.insert((0usize, 1usize), link(250));
        let engine = Engine::new(vec![RealTime::ZERO, RealTime::ZERO], links);
        let plan = FaultPlan::new().duplicate_messages(ProcessorId(0), ProcessorId(1), 1.0);
        let (exec, log) = engine.run_faulty(
            vec![Box::new(Ping), Box::new(Ping)],
            &mut StdRng::seed_from_u64(3),
            &plan,
        );
        // Ping duplicated → two pings delivered → two echoes, each also
        // duplicated → 6 messages, all with distinct ids (ViewSet::new
        // would have rejected reuse).
        assert_eq!(exec.messages().len(), 6);
        assert_eq!(log.duplicated.len(), 3);
        assert!(log.dropped.is_empty());
    }

    #[test]
    fn crash_stop_silences_a_processor() {
        let mut links = HashMap::new();
        links.insert((0usize, 1usize), link(250));
        let engine = Engine::new(vec![RealTime::ZERO, RealTime::ZERO], links);
        // p1 crashes before the ping can arrive.
        let plan = FaultPlan::new().crash(ProcessorId(1), RealTime::from_nanos(100));
        let (exec, log) = engine.run_faulty(
            vec![Box::new(Ping), Box::new(Ping)],
            &mut StdRng::seed_from_u64(4),
            &plan,
        );
        assert!(exec.messages().is_empty());
        assert_eq!(log.dropped.len(), 1);
        assert_eq!(
            log.crashed,
            vec![(ProcessorId(1), RealTime::from_nanos(100))]
        );
        // The crashed processor still has its mandatory start event.
        assert_eq!(exec.views().view(ProcessorId(1)).events().len(), 1);
    }

    #[test]
    fn link_down_window_swallows_sends() {
        let mut links = HashMap::new();
        links.insert((0usize, 1usize), link(250));
        let engine = Engine::new(vec![RealTime::ZERO, RealTime::ZERO], links);
        // The link is down exactly when the start-time ping is sent, but
        // back up for the echo — which never happens, since the ping died.
        let plan = FaultPlan::new().link_down(
            ProcessorId(0),
            ProcessorId(1),
            RealTime::ZERO,
            RealTime::from_nanos(10),
        );
        let (exec, log) = engine.run_faulty(
            vec![Box::new(Ping), Box::new(Ping)],
            &mut StdRng::seed_from_u64(5),
            &plan,
        );
        assert!(exec.messages().is_empty());
        assert_eq!(log.dropped.len(), 1);
    }

    #[test]
    fn reordering_keeps_delays_in_support() {
        let mut links = HashMap::new();
        links.insert(
            (0usize, 1usize),
            LinkModel::symmetric(DelayDistribution::uniform(Nanos::new(100), Nanos::new(500)))
                .resolve(&mut StdRng::seed_from_u64(0)),
        );
        let engine = Engine::new(vec![RealTime::ZERO, RealTime::ZERO], links);
        let plan = FaultPlan::new().reorder_messages(ProcessorId(0), ProcessorId(1), 1.0);
        let (exec, log) = engine.run_faulty(
            vec![Box::new(Ping), Box::new(Ping)],
            &mut StdRng::seed_from_u64(6),
            &plan,
        );
        assert_eq!(exec.messages().len(), 2);
        assert_eq!(log.reordered.len(), 2);
        assert!(exec
            .messages()
            .iter()
            .all(|m| m.delay >= Nanos::new(100) && m.delay <= Nanos::new(500)));
    }

    #[test]
    #[should_panic(expected = "references processor")]
    fn out_of_range_fault_plan_panics() {
        let engine = Engine::new(vec![RealTime::ZERO], HashMap::new());
        let plan = FaultPlan::new().crash(ProcessorId(5), RealTime::ZERO);
        let _ = engine.run_faulty(
            vec![Box::new(IdleProcess)],
            &mut StdRng::seed_from_u64(0),
            &plan,
        );
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sending_off_link_panics() {
        #[derive(Debug)]
        struct Rogue;
        impl Process for Rogue {
            fn on_start(&mut self, ctx: &mut ProcessCtx) {
                ctx.send(ProcessorId(1), 0);
            }
            fn on_message(&mut self, _f: ProcessorId, _p: u64, _c: &mut ProcessCtx) {}
            fn on_timer(&mut self, _c: &mut ProcessCtx) {}
        }
        let engine = Engine::new(vec![RealTime::ZERO, RealTime::ZERO], HashMap::new());
        let _ = engine.run(
            vec![Box::new(Rogue), Box::new(IdleProcess)],
            &mut StdRng::seed_from_u64(1),
        );
    }

    #[test]
    #[should_panic(expected = "event cap")]
    fn infinite_protocols_hit_the_cap() {
        #[derive(Debug)]
        struct Chatter;
        impl Process for Chatter {
            fn on_start(&mut self, ctx: &mut ProcessCtx) {
                ctx.send(ProcessorId(1 - ctx.id().index()), 0);
            }
            fn on_message(&mut self, from: ProcessorId, _p: u64, ctx: &mut ProcessCtx) {
                ctx.send(from, 0);
            }
            fn on_timer(&mut self, _c: &mut ProcessCtx) {}
        }
        let mut links = HashMap::new();
        links.insert((0usize, 1usize), link(10));
        let mut engine = Engine::new(vec![RealTime::ZERO, RealTime::ZERO], links);
        engine.set_max_events(1_000);
        let _ = engine.run(
            vec![Box::new(Chatter), Box::new(Chatter)],
            &mut StdRng::seed_from_u64(1),
        );
    }
}
