//! A distributed implementation of the synchronizer — the centralized
//! leader protocol the paper sketches in its Discussion (§7).
//!
//! The paper's algorithm is a *correction function*: it assumes the views
//! are available in one place. §7 outlines how to distribute it:
//!
//! > "Each pair of neighboring processors p and q compute mls(p,q) and
//! > mls(q,p) using the estimated delays (which can be deduced from their
//! > views). All processors send the estimated maximum local shifts to a
//! > distinguished processor (leader). The leader computes the estimated
//! > maximum global shifts using function GLOBAL ESTIMATES, and a
//! > correction value for each processor according to function SHIFTS.
//! > Finally, the leader sends the corrections to the processors."
//!
//! [`DistributedSync`] runs exactly that protocol *inside* the simulator:
//!
//! 1. **Probe phase** — each link's lower endpoint sends timestamped
//!    probes; the peer echoes, returning its receive/send clock readings,
//!    so the initiator reconstructs both directions' samples (this is how
//!    real protocols sidestep the fact that one view alone cannot compute
//!    an estimated delay).
//! 2. **Report phase** — when a link's probes complete, the initiator
//!    evaluates the link's `m̃ls` in both orientations and sends the pair
//!    up a spanning tree to the leader (processor 0).
//! 3. **Compute & distribute** — the leader assembles the estimate
//!    matrix, runs GLOBAL ESTIMATES + SHIFTS
//!    ([`SyncOutcome::from_global_estimates`]) and routes each correction
//!    back down the tree.
//!
//! As §7 notes, the result is optimal with respect to the *probe-phase*
//! views: the report/correction traffic itself carries timing information
//! the corrections do not exploit (an inherent chicken-and-egg the paper
//! leaves open). The tests verify both that the guarantee holds against
//! ground truth and that an omniscient centralized run (which *does* see
//! the report traffic) is at least as precise.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use clocksync::{DegradationReason, LinkAssumption, LinkDegradation, Network, SyncOutcome};
use clocksync_graph::{SquareMatrix, Weight};
use clocksync_model::{Execution, LinkEvidence, MsgSample, ProcessorId};
use clocksync_obs::{FieldValue, Recorder};
use clocksync_time::{ClockTime, ExtRatio, Nanos, Ratio, RealTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{Engine, Process, ProcessCtx};
use crate::faults::{FaultLog, FaultPlan};
use crate::scenario::Simulation;

/// Messages of the distributed protocol.
#[derive(Debug, Clone)]
pub enum DistMsg {
    /// A timestamped probe from a link initiator.
    Probe {
        /// Round number.
        seq: u32,
        /// Initiator's clock at the send step.
        sent_clock: ClockTime,
    },
    /// The responder's echo, carrying everything the initiator needs to
    /// reconstruct both directions' samples.
    Echo {
        /// Round number (matches the probe).
        seq: u32,
        /// The probe's original send clock (echoed back).
        probe_sent_clock: ClockTime,
        /// Responder's clock when the probe arrived.
        probe_recv_clock: ClockTime,
        /// Responder's clock when this echo left.
        sent_clock: ClockTime,
    },
    /// A link's estimated maximal local shifts, en route to the leader.
    Report {
        /// Lower endpoint of the link.
        a: ProcessorId,
        /// Higher endpoint of the link.
        b: ProcessorId,
        /// `m̃ls(a, b)`.
        mls_ab: ExtRatio,
        /// `m̃ls(b, a)`.
        mls_ba: ExtRatio,
    },
    /// A correction on its way from the leader to `target`.
    Correction {
        /// The processor this correction belongs to.
        target: ProcessorId,
        /// The correction value.
        value: Ratio,
    },
}

/// What the protocol run produced, as recorded by the participants.
#[derive(Debug, Default)]
struct SharedOutcome {
    corrections: Vec<Option<Ratio>>,
    precision: Option<ExtRatio>,
    outcome: Option<SyncOutcome>,
    reports: Vec<(ProcessorId, ProcessorId, ExtRatio, ExtRatio)>,
}

/// One protocol participant.
struct Node {
    probes: usize,
    spacing: Nanos,
    initial_delay: Nanos,
    rounds_fired: usize,
    /// Links this node initiates: peer → assumption oriented self → peer.
    initiate: HashMap<ProcessorId, LinkAssumption>,
    fwd_samples: HashMap<ProcessorId, Vec<MsgSample>>,
    bwd_samples: HashMap<ProcessorId, Vec<MsgSample>>,
    /// Peers whose link report was already produced (guards against
    /// duplicated echoes triggering a second report).
    reported: HashSet<ProcessorId>,
    /// The clock at which the pending probe-round timer will fire.
    next_probe_at: Option<ClockTime>,
    /// Next hop toward the leader (None at the leader).
    parent: Option<ProcessorId>,
    /// Next hop toward each processor in this node's subtree.
    route_down: HashMap<ProcessorId, ProcessorId>,
    /// Leader-only state.
    n: usize,
    expected_reports: usize,
    reports: Vec<(ProcessorId, ProcessorId, ExtRatio, ExtRatio)>,
    /// Canonical keys of the links already reported (duplicate reports on a
    /// lossy network must not double-count toward `expected_reports`).
    report_keys: HashSet<(usize, usize)>,
    /// Every declared link, for diagnosing the unreported ones.
    all_links: Vec<(ProcessorId, ProcessorId)>,
    /// Leader-side report deadline (set only under a fault plan): if not
    /// every report arrived by this clock reading, compute from what's
    /// there — a partial-but-optimal answer for the reachable part.
    deadline_at: Option<ClockTime>,
    /// Whether the leader has already computed and distributed.
    computed: bool,
    /// Immutable copy of the armed report deadline (never cleared), so the
    /// leader can report its deadline margin when it computes.
    deadline_clock: Option<ClockTime>,
    sink: Arc<Mutex<SharedOutcome>>,
    recorder: Recorder,
}

impl Node {
    fn is_leader(&self) -> bool {
        self.parent.is_none()
    }

    fn deliver_report(
        &mut self,
        report: (ProcessorId, ProcessorId, ExtRatio, ExtRatio),
        via: ProcessorId,
        ctx: &mut ProcessCtx<DistMsg>,
    ) {
        if self.is_leader() {
            if self.computed {
                // The deadline already fired: the answer is out. A late
                // report cannot be folded in retroactively.
                return;
            }
            let key = (
                report.0.index().min(report.1.index()),
                report.0.index().max(report.1.index()),
            );
            if self.report_keys.insert(key) {
                if self.recorder.is_enabled() {
                    // Report latency per subtree: `via` is the leader's
                    // child whose subtree produced this link's report, and
                    // `clock_ns` is the leader clock at arrival.
                    self.recorder.event(
                        "dist.report",
                        [
                            ("a", FieldValue::from(report.0.index())),
                            ("b", FieldValue::from(report.1.index())),
                            ("via", FieldValue::from(via.index())),
                            ("clock_ns", FieldValue::from(ctx.clock().as_nanos())),
                        ],
                    );
                }
                self.reports.push(report);
            }
            if self.report_keys.len() == self.expected_reports {
                self.leader_compute(ctx);
            }
        } else {
            let parent = self.parent.expect("non-leader has a parent");
            ctx.send(
                parent,
                DistMsg::Report {
                    a: report.0,
                    b: report.1,
                    mls_ab: report.2,
                    mls_ba: report.3,
                },
            );
        }
    }

    fn leader_compute(&mut self, ctx: &mut ProcessCtx<DistMsg>) {
        self.computed = true;
        if self.recorder.is_enabled() {
            let mut fields = vec![
                ("reports", FieldValue::from(self.reports.len())),
                ("expected", FieldValue::from(self.expected_reports)),
            ];
            if let Some(deadline) = self.deadline_clock {
                // Positive margin: the leader finished before its deadline;
                // zero: the deadline itself forced a partial compute.
                let margin = deadline.as_nanos() - ctx.clock().as_nanos();
                fields.push(("deadline_margin_ns", FieldValue::from(margin)));
            }
            self.recorder.event("dist.compute", fields);
        }
        let mut m = SquareMatrix::from_fn(self.n, |i, j| {
            if i == j {
                <ExtRatio as Weight>::zero()
            } else {
                <ExtRatio as Weight>::infinity()
            }
        });
        for &(a, b, ab, ba) in &self.reports {
            m[(a.index(), b.index())] = ab;
            m[(b.index(), a.index())] = ba;
        }
        // Reachability audit: this expect is a real invariant, not a
        // reachable panic. Reports are extremal estimates computed from a
        // genuine execution, so the generating clock offsets satisfy every
        // constraint and no negative cycle can exist (Lemma 6.2 direction
        // of Theorem 5.2); fault injection only *removes* reports (drops,
        // link-down, crashes), leaving +∞ entries, which cannot create
        // inconsistency either.
        let closure =
            clocksync::global_estimates(&m).expect("honest reports cannot be inconsistent");
        let mut outcome = SyncOutcome::from_global_estimates(closure);
        // Links that never reported stayed +∞ in the matrix; record why.
        let degradations: Vec<LinkDegradation> = self
            .all_links
            .iter()
            .filter(|(a, b)| {
                let key = (a.index().min(b.index()), a.index().max(b.index()));
                !self.report_keys.contains(&key)
            })
            .map(|&(a, b)| LinkDegradation {
                a,
                b,
                reason: DegradationReason::Unreported,
            })
            .collect();
        outcome.set_degradations(degradations);
        {
            let mut sink = self.sink.lock().expect("sink lock");
            sink.precision = Some(outcome.precision());
            sink.corrections[ctx.id().index()] = Some(outcome.correction(ctx.id()));
            sink.reports = self.reports.clone();
            sink.outcome = Some(outcome.clone());
        }
        for i in 0..self.n {
            let target = ProcessorId(i);
            if target == ctx.id() {
                continue;
            }
            let hop = self.route_down[&target];
            ctx.send(
                hop,
                DistMsg::Correction {
                    target,
                    value: outcome.correction(target),
                },
            );
        }
    }
}

impl Process<DistMsg> for Node {
    fn on_start(&mut self, ctx: &mut ProcessCtx<DistMsg>) {
        if let Some(at) = self.deadline_at {
            ctx.set_timer(at);
        }
        if !self.initiate.is_empty() {
            let at = ClockTime::ZERO + self.initial_delay;
            self.next_probe_at = Some(at);
            ctx.set_timer(at);
        } else if self.is_leader() && self.expected_reports == 0 {
            // Degenerate linkless system: nothing to wait for.
            self.leader_compute(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut ProcessCtx<DistMsg>) {
        // Two kinds of timer can be pending (the next probe round, and at
        // the leader the report deadline); the firing clock tells them
        // apart, since timers fire exactly at the clock they were set for.
        if self.next_probe_at == Some(ctx.clock()) {
            self.next_probe_at = None;
            let seq = self.rounds_fired as u32;
            // Sorted so the send order (and hence the engine's delay-rng
            // draw order) is independent of the map's hash state.
            let mut peers: Vec<ProcessorId> = self.initiate.keys().copied().collect();
            peers.sort_unstable();
            for peer in peers {
                ctx.send(
                    peer,
                    DistMsg::Probe {
                        seq,
                        sent_clock: ctx.clock(),
                    },
                );
            }
            self.rounds_fired += 1;
            if self.rounds_fired < self.probes {
                let at = ctx.clock() + self.spacing;
                self.next_probe_at = Some(at);
                ctx.set_timer(at);
            }
        } else if self.deadline_at == Some(ctx.clock()) {
            self.deadline_at = None;
            if !self.computed {
                // Whoever has not reported by now is presumed unreachable:
                // answer with the evidence that made it through.
                self.leader_compute(ctx);
            }
        }
    }

    fn on_message(&mut self, from: ProcessorId, payload: DistMsg, ctx: &mut ProcessCtx<DistMsg>) {
        match payload {
            DistMsg::Probe { seq, sent_clock } => {
                ctx.send(
                    from,
                    DistMsg::Echo {
                        seq,
                        probe_sent_clock: sent_clock,
                        probe_recv_clock: ctx.clock(),
                        sent_clock: ctx.clock(),
                    },
                );
            }
            DistMsg::Echo {
                probe_sent_clock,
                probe_recv_clock,
                sent_clock,
                ..
            } => {
                self.fwd_samples.entry(from).or_default().push(MsgSample {
                    send_clock: probe_sent_clock,
                    recv_clock: probe_recv_clock,
                });
                self.bwd_samples.entry(from).or_default().push(MsgSample {
                    send_clock: sent_clock,
                    recv_clock: ctx.clock(),
                });
                if self.fwd_samples[&from].len() >= self.probes && !self.reported.contains(&from) {
                    self.reported.insert(from);
                    let assumption = self.initiate[&from].clone();
                    let ev = LinkEvidence::from_samples(
                        &self.fwd_samples[&from],
                        &self.bwd_samples[&from],
                    );
                    let mls_ab = assumption.estimated_mls(&ev);
                    let mls_ba = assumption.reversed().estimated_mls(&ev.reversed());
                    let report = (ctx.id(), from, mls_ab, mls_ba);
                    self.deliver_report(report, ctx.id(), ctx);
                }
            }
            DistMsg::Report {
                a,
                b,
                mls_ab,
                mls_ba,
            } => {
                self.deliver_report((a, b, mls_ab, mls_ba), from, ctx);
            }
            DistMsg::Correction { target, value } => {
                if target == ctx.id() {
                    self.sink.lock().expect("sink lock").corrections[target.index()] = Some(value);
                } else {
                    let hop = self.route_down[&target];
                    ctx.send(hop, DistMsg::Correction { target, value });
                }
            }
        }
    }
}

/// A completed distributed run.
#[derive(Debug, Clone)]
pub struct DistRun {
    /// The full recorded execution (probes, echoes, reports, corrections).
    pub execution: Execution,
    /// The declared network.
    pub network: Network,
    /// The corrections each processor ended up holding.
    pub corrections: Vec<Ratio>,
    /// The precision the leader certified (from probe-phase evidence).
    pub precision: ExtRatio,
}

/// The distributed leader protocol over a [`Simulation`] scenario.
///
/// # Examples
///
/// ```
/// use clocksync_sim::{DistributedSync, Simulation, Topology};
/// use clocksync_time::{Ext, Nanos};
///
/// let sim = Simulation::builder(5)
///     .uniform_links(Topology::Ring(5),
///                    Nanos::from_micros(50), Nanos::from_micros(250), 3)
///     .probes(2)
///     .build();
/// let run = DistributedSync::new(sim).run(7);
/// // Every processor received a correction; the certificate holds.
/// let err = run.execution.discrepancy(&run.corrections);
/// assert!(Ext::Finite(err) <= run.precision);
/// ```
#[derive(Debug, Clone)]
pub struct DistributedSync {
    sim: Simulation,
    faults: Option<FaultPlan>,
    report_timeout: Nanos,
    recorder: Recorder,
}

impl DistributedSync {
    /// Wraps a scenario; the protocol will use its links, assumptions,
    /// probe counts and timing.
    pub fn new(sim: Simulation) -> DistributedSync {
        DistributedSync {
            sim,
            faults: None,
            report_timeout: Nanos::from_millis(50),
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches an observability recorder. The engine emits its `sim.*`
    /// counters and `sim.run` span; the leader emits a `dist.report` event
    /// per link report it accepts (with the subtree it arrived through)
    /// and one `dist.compute` event with its report tally and deadline
    /// margin. Recording never touches the delay random stream, so runs
    /// are bit-for-bit identical with or without it.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> DistributedSync {
        self.recorder = recorder;
        self
    }

    /// Attaches a fault plan for [`DistributedSync::run_faulty`]. Arms the
    /// leader's report deadline: reports still missing when it expires are
    /// presumed lost and the leader answers for the survivors.
    pub fn with_faults(mut self, plan: FaultPlan) -> DistributedSync {
        self.faults = Some(plan);
        self
    }

    /// Sets how long past the last scheduled probe round the leader waits
    /// for reports before computing from what arrived (default 50 ms; only
    /// meaningful for [`DistributedSync::run_faulty`]).
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is not positive.
    pub fn report_timeout(mut self, timeout: Nanos) -> DistributedSync {
        assert!(timeout > Nanos::ZERO, "report timeout must be positive");
        self.report_timeout = timeout;
        self
    }

    /// Runs the full protocol, fault-free, and harvests the participants'
    /// results.
    ///
    /// # Panics
    ///
    /// Panics if the declared links do not connect all processors to the
    /// leader (processor 0), if a processor never received its correction
    /// (a protocol bug), or if a fault plan was attached — a faulty run can
    /// leave processors without corrections by design, so it must go
    /// through [`DistributedSync::run_faulty`], whose result type can say
    /// so.
    pub fn run(&self, seed: u64) -> DistRun {
        assert!(
            self.faults.is_none(),
            "a fault plan is attached: use run_faulty"
        );
        let (execution, _log, shared, network) = self.run_inner(seed, None);
        let corrections: Vec<Ratio> = shared
            .corrections
            .into_iter()
            .enumerate()
            .map(|(i, c)| c.unwrap_or_else(|| panic!("p{i} never received its correction")))
            .collect();
        DistRun {
            execution,
            network,
            corrections,
            precision: shared.precision.expect("leader computed"),
        }
    }

    /// Runs the protocol under the attached fault plan (empty if none was
    /// attached — the deadline machinery still arms, which is useful for
    /// testing it) and reports whatever the survivors achieved.
    ///
    /// # Panics
    ///
    /// Panics if the declared links do not connect all processors to the
    /// leader (crash faults may *partition* the run, but the declared
    /// topology must be connected).
    pub fn run_faulty(&self, seed: u64) -> FaultyDistRun {
        let plan = self.faults.clone().unwrap_or_default();
        let (execution, log, shared, network) = self.run_inner(seed, Some(&plan));
        FaultyDistRun {
            execution,
            network,
            corrections: shared.corrections,
            outcome: shared.outcome,
            reports: shared.reports,
            log,
        }
    }

    /// Shared protocol body; `plan` switches the engine's fault path and
    /// arms the leader's report deadline.
    fn run_inner(
        &self,
        seed: u64,
        plan: Option<&FaultPlan>,
    ) -> (Execution, FaultLog, SharedOutcome, Network) {
        let n = self.sim.n();
        let mut rng = StdRng::seed_from_u64(seed);
        let starts: Vec<RealTime> = (0..n)
            .map(|_| {
                let spread = self.sim.start_spread();
                let s = if spread == Nanos::ZERO {
                    0
                } else {
                    rng.gen_range(0..=spread.as_nanos())
                };
                RealTime::from_nanos(s)
            })
            .collect();
        let mut links = HashMap::new();
        for l in self.sim.links() {
            links.insert((l.a, l.b), l.model.resolve(&mut rng));
        }

        // Spanning tree rooted at the leader, with per-node down-routing.
        let mut adjacency = vec![Vec::new(); n];
        for l in self.sim.links() {
            adjacency[l.a].push(l.b);
            adjacency[l.b].push(l.a);
        }
        let mut parent: Vec<Option<ProcessorId>> = vec![None; n];
        let mut order = vec![0usize];
        let mut seen = vec![false; n];
        seen[0] = true;
        let mut head = 0;
        while head < order.len() {
            let v = order[head];
            head += 1;
            let mut nbs = adjacency[v].clone();
            nbs.sort_unstable();
            for nb in nbs {
                if !seen[nb] {
                    seen[nb] = true;
                    parent[nb] = Some(ProcessorId(v));
                    order.push(nb);
                }
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "declared links must connect every processor to the leader"
        );
        // route_down[v][target] = child of v on the path to target.
        let mut route_down: Vec<HashMap<ProcessorId, ProcessorId>> = vec![HashMap::new(); n];
        for t in 1..n {
            // Walk up from t; each ancestor routes to the child just below.
            let mut below = ProcessorId(t);
            let mut cur = parent[t];
            while let Some(anc) = cur {
                route_down[anc.index()].insert(ProcessorId(t), below);
                below = anc;
                cur = parent[anc.index()];
            }
        }

        let sink = Arc::new(Mutex::new(SharedOutcome {
            corrections: vec![None; n],
            precision: None,
            outcome: None,
            reports: Vec::new(),
        }));
        let initial_delay = self.sim.start_spread() + Nanos::from_micros(100);
        let all_links: Vec<(ProcessorId, ProcessorId)> = self
            .sim
            .links()
            .iter()
            .map(|l| (ProcessorId(l.a), ProcessorId(l.b)))
            .collect();
        // Under a fault plan the leader arms a report deadline: the last
        // probe round is scheduled at initial_delay + (probes−1)·spacing,
        // and the timeout budgets for its round trip plus report routing.
        let leader_deadline = plan.map(|_| {
            ClockTime::ZERO
                + initial_delay
                + Nanos::new(
                    self.sim.spacing().as_nanos() * self.sim.probes().saturating_sub(1) as i64,
                )
                + self.report_timeout
        });
        let processes: Vec<Box<dyn Process<DistMsg>>> = (0..n)
            .map(|i| {
                let mut initiate = HashMap::new();
                for l in self.sim.links() {
                    if l.a == i {
                        initiate.insert(ProcessorId(l.b), l.assumption.clone());
                    }
                }
                Box::new(Node {
                    probes: self.sim.probes(),
                    spacing: self.sim.spacing(),
                    initial_delay,
                    rounds_fired: 0,
                    initiate,
                    fwd_samples: HashMap::new(),
                    bwd_samples: HashMap::new(),
                    reported: HashSet::new(),
                    next_probe_at: None,
                    parent: parent[i],
                    route_down: route_down[i].clone(),
                    n,
                    expected_reports: self.sim.links().len(),
                    reports: Vec::new(),
                    report_keys: HashSet::new(),
                    all_links: all_links.clone(),
                    deadline_at: if i == 0 { leader_deadline } else { None },
                    computed: false,
                    deadline_clock: if i == 0 { leader_deadline } else { None },
                    sink: Arc::clone(&sink),
                    recorder: if i == 0 {
                        self.recorder.clone()
                    } else {
                        Recorder::disabled()
                    },
                }) as Box<dyn Process<DistMsg>>
            })
            .collect();

        let mut engine = Engine::new(starts, links);
        engine.set_recorder(self.recorder.clone());
        let (execution, log) = match plan {
            None => (
                engine.run_with_payload(processes, &mut rng),
                FaultLog::default(),
            ),
            Some(pl) => engine.run_with_payload_faulty(processes, &mut rng, pl),
        };

        let shared = Arc::try_unwrap(sink)
            .expect("engine dropped all process handles")
            .into_inner()
            .expect("sink lock");
        (execution, log, shared, self.sim.network())
    }
}

/// A completed distributed run under faults: what the *survivors* ended up
/// with.
///
/// Unlike [`DistRun`], nothing here is guaranteed total: a crashed (or
/// partitioned-off) processor holds no correction, and if the leader
/// itself crashed before its deadline there is no outcome at all.
#[derive(Debug, Clone)]
pub struct FaultyDistRun {
    /// The full recorded execution, faults applied.
    pub execution: Execution,
    /// The declared network.
    pub network: Network,
    /// The correction each processor ended up holding (`None`: crashed, or
    /// the correction message never reached it).
    pub corrections: Vec<Option<Ratio>>,
    /// The leader's computed outcome — corrections, per-component
    /// precision, and [`Unreported`](DegradationReason::Unreported)
    /// degradations for links whose report missed the deadline. `None` if
    /// the leader crashed before computing.
    pub outcome: Option<SyncOutcome>,
    /// The per-link estimate reports that reached the leader in time —
    /// exactly the evidence the outcome was computed from.
    pub reports: Vec<(ProcessorId, ProcessorId, ExtRatio, ExtRatio)>,
    /// What the fault plan actually did.
    pub log: FaultLog,
}

impl FaultyDistRun {
    /// The processors that hold a correction, ascending.
    pub fn survivors(&self) -> Vec<ProcessorId> {
        self.corrections
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|_| ProcessorId(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;
    use clocksync_time::Ext;

    fn ring_sim(probes: usize) -> Simulation {
        Simulation::builder(5)
            .uniform_links(
                Topology::Ring(5),
                Nanos::from_micros(50),
                Nanos::from_micros(400),
                11,
            )
            .probes(probes)
            .build()
    }

    #[test]
    fn every_processor_receives_a_sound_correction() {
        let dist = DistributedSync::new(ring_sim(2));
        for seed in 0..4 {
            let run = dist.run(seed);
            assert!(run.precision.is_finite());
            assert!(run.network.admits(&run.execution));
            let err = run.execution.discrepancy(&run.corrections);
            assert!(
                Ext::Finite(err) <= run.precision,
                "seed {seed}: {err} > {}",
                run.precision
            );
        }
    }

    #[test]
    fn omniscient_centralized_run_is_at_least_as_precise() {
        // The centralized synchronizer sees the report/correction traffic
        // too, so its certificate can only be tighter or equal (§7's
        // observation about the distributed protocol's optimality gap).
        let dist = DistributedSync::new(ring_sim(2));
        for seed in 0..4 {
            let run = dist.run(seed);
            let central = clocksync::Synchronizer::new(run.network.clone())
                .synchronize(run.execution.views())
                .unwrap();
            assert!(central.precision() <= run.precision, "seed {seed}");
        }
    }

    #[test]
    fn protocol_works_on_trees_and_with_many_probes() {
        let sim = Simulation::builder(6)
            .uniform_links(
                Topology::Star(6),
                Nanos::from_micros(10),
                Nanos::from_micros(200),
                3,
            )
            .probes(4)
            .build();
        let run = DistributedSync::new(sim).run(0);
        assert!(run.precision.is_finite());
        let err = run.execution.discrepancy(&run.corrections);
        assert!(Ext::Finite(err) <= run.precision);
    }

    #[test]
    fn crashed_subtree_degrades_to_survivor_component() {
        // Ring of 5, p3 crashes mid-protocol: links (2,3) and (3,4) cannot
        // report, the survivors {0,1,2,4} stay connected through the rest
        // of the ring and still get corrections.
        let plan = FaultPlan::new().crash(ProcessorId(3), RealTime::from_micros(5_200));
        let dist = DistributedSync::new(ring_sim(2)).with_faults(plan);
        let run = dist.run_faulty(3);
        assert!(run.corrections[3].is_none(), "crashed node holds nothing");
        for i in [0usize, 1, 2, 4] {
            assert!(run.corrections[i].is_some(), "survivor p{i} corrected");
        }
        let outcome = run.outcome.as_ref().expect("leader computed");
        assert!(!outcome.degradations().is_empty());
        assert!(outcome
            .degradations()
            .iter()
            .all(|d| d.reason == clocksync::DegradationReason::Unreported
                && (d.a == ProcessorId(3) || d.b == ProcessorId(3))));
        // The leader's answer is exactly the batch pipeline over the
        // surviving reports.
        let mut m = clocksync_graph::SquareMatrix::from_fn(5, |i, j| {
            if i == j {
                <ExtRatio as clocksync_graph::Weight>::zero()
            } else {
                <ExtRatio as clocksync_graph::Weight>::infinity()
            }
        });
        for &(a, b, ab, ba) in &run.reports {
            m[(a.index(), b.index())] = ab;
            m[(b.index(), a.index())] = ba;
        }
        let expected = SyncOutcome::from_global_estimates(clocksync::global_estimates(&m).unwrap());
        for p in run.survivors() {
            assert_eq!(run.corrections[p.index()], Some(expected.correction(p)));
        }
    }

    #[test]
    fn fault_free_faulty_run_matches_plain_run() {
        // run_faulty with no plan attached arms the deadline but injects
        // nothing; every correction must match the plain protocol's.
        let dist = DistributedSync::new(ring_sim(2));
        let plain = dist.run(5);
        let armed = dist.run_faulty(5);
        assert!(armed.log.is_clean());
        for (i, c) in plain.corrections.iter().enumerate() {
            assert_eq!(armed.corrections[i], Some(*c));
        }
        assert_eq!(
            armed.outcome.expect("leader computed").precision(),
            plain.precision
        );
    }

    #[test]
    fn report_traffic_is_present_in_the_execution() {
        // The execution records the whole protocol, not just probes:
        // 5 links × 2 probes × 2 (probe+echo) = 20 probe messages, plus
        // reports and corrections > 0.
        let run = DistributedSync::new(ring_sim(2)).run(1);
        assert!(run.execution.messages().len() > 20);
    }
}
