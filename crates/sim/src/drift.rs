//! Clock drift and periodic resynchronization.
//!
//! The paper assumes drift-free clocks and defends the assumption by the
//! practice it cites (footnote 1, after Kopetz–Ochsenreiter): real
//! hardware clocks drift by parts-per-million, and deployments rerun the
//! synchronization periodically, declaring delay assumptions *widened* by
//! the drift a clock can accumulate over one period.
//!
//! This module makes that story concrete:
//!
//! * [`run_with_drift`] executes a scenario, then lets each processor's
//!   clock run at its own secret rate `1 + ρ_i` (ρ in ppm): views are
//!   re-expressed in drifted clock readings, exactly what a drifting
//!   processor would have recorded;
//! * declared assumptions are widened by the worst drift the run horizon
//!   allows ([`widen_assumption`]), so the declarations remain *true* and
//!   the synchronizer stays sound;
//! * the returned [`DriftRun`] can evaluate the corrected clocks at any
//!   later real time, quantifying how the guarantee decays as drift
//!   accumulates after the synchronization point — the measurement behind
//!   experiment E13 and behind the advice "resync every T".

use clocksync::{DelayRange, LinkAssumption, Network, SyncOutcome, Synchronizer};
use clocksync_model::{Execution, ProcessorId, View, ViewEvent, ViewSet};
use clocksync_time::{ClockTime, Ext, Nanos, Ratio, RealTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scenario::Simulation;

const PPM: i128 = 1_000_000;

/// Scales a clock reading by `1 + ppm/10⁶`, rounding to whole ns.
fn drift_clock(clock: ClockTime, ppm: i64) -> ClockTime {
    let raw = clock.as_nanos() as i128;
    let scaled = Ratio::new(raw * (PPM + ppm as i128), PPM).round_nanos();
    ClockTime::ZERO + scaled
}

/// Re-expresses a view in the readings of a clock running at `1 + ppm/10⁶`.
fn drift_view(view: &View, ppm: i64) -> View {
    let events = view
        .events()
        .iter()
        .map(|e| match *e {
            ViewEvent::Start { clock } => ViewEvent::Start { clock },
            ViewEvent::Send { to, id, clock } => ViewEvent::Send {
                to,
                id,
                clock: drift_clock(clock, ppm),
            },
            ViewEvent::Recv { from, id, clock } => ViewEvent::Recv {
                from,
                id,
                clock: drift_clock(clock, ppm),
            },
            ViewEvent::Timer { clock } => ViewEvent::Timer {
                clock: drift_clock(clock, ppm),
            },
        })
        .collect();
    View::from_events(view.processor(), events)
}

/// Widens a (truthful, drift-free) assumption so it stays truthful when
/// every estimated delay may be off by up to `margin` due to drift:
/// bounds gain `margin` on both sides, bias bounds gain `2·margin`.
pub fn widen_assumption(a: &LinkAssumption, margin: Nanos) -> LinkAssumption {
    match a {
        LinkAssumption::Bounds { forward, backward } => {
            let widen = |r: &DelayRange| {
                let lower = (r.lower() - margin).max(Nanos::ZERO);
                match r.upper() {
                    Ext::Finite(ub) => DelayRange::new(lower, ub + margin),
                    _ => DelayRange::at_least(lower),
                }
            };
            LinkAssumption::bounds(widen(forward), widen(backward))
        }
        LinkAssumption::RttBias { bound } => LinkAssumption::rtt_bias(*bound + margin * 2),
        LinkAssumption::PairedRttBias { bound, window } => {
            LinkAssumption::paired_rtt_bias(*bound + margin * 2, *window + margin)
        }
        LinkAssumption::MarzulloQuorum {
            forward,
            backward,
            max_faulty,
        } => {
            let widen = |r: &DelayRange| {
                let lower = (r.lower() - margin).max(Nanos::ZERO);
                match r.upper() {
                    Ext::Finite(ub) => DelayRange::new(lower, ub + margin),
                    _ => DelayRange::at_least(lower),
                }
            };
            LinkAssumption::marzullo_quorum(widen(forward), widen(backward), *max_faulty)
        }
        LinkAssumption::All(parts) => {
            LinkAssumption::all(parts.iter().map(|p| widen_assumption(p, margin)).collect())
        }
    }
}

/// A synchronization performed on drifting clocks.
#[derive(Debug, Clone)]
pub struct DriftRun {
    /// The drift-free ground-truth execution.
    pub execution: Execution,
    /// The views as the drifting processors actually recorded them.
    pub drifted_views: ViewSet,
    /// The widened network the synchronizer was given.
    pub network: Network,
    /// Secret clock rates, ppm per processor.
    pub drift_ppm: Vec<i64>,
    /// The margin used to widen the declarations.
    pub margin: Nanos,
    /// The synchronization outcome (certificate valid at sync time).
    pub outcome: SyncOutcome,
}

impl DriftRun {
    /// The drifting logical clock of `p` at real time `t`:
    /// `(t − S_p)·(1 + ρ_p/10⁶) + x_p`.
    pub fn logical_clock_at(&self, p: ProcessorId, t: RealTime) -> Ratio {
        let elapsed = (t - self.execution.start(p)).as_nanos() as i128;
        let reading = Ratio::new(elapsed * (PPM + self.drift_ppm[p.index()] as i128), PPM);
        reading + self.outcome.correction(p)
    }

    /// The worst pairwise disagreement of the corrected (still drifting)
    /// clocks at real time `t`.
    pub fn logical_spread_at(&self, t: RealTime) -> Ratio {
        let values: Vec<Ratio> = (0..self.execution.n())
            .map(|i| self.logical_clock_at(ProcessorId(i), t))
            .collect();
        match (values.iter().max(), values.iter().min()) {
            (Some(hi), Some(lo)) => *hi - *lo,
            _ => Ratio::ZERO,
        }
    }

    /// The real time of the last recorded event (the synchronization
    /// point for decay measurements).
    pub fn sync_time(&self) -> RealTime {
        self.execution
            .messages()
            .iter()
            .map(|m| m.received_at)
            .max()
            .unwrap_or(RealTime::ZERO)
    }
}

/// Runs `sim` under clock drift: rates are sampled uniformly in
/// `[−max_ppm, +max_ppm]`, views are re-expressed in drifted readings,
/// declarations are widened just enough to stay truthful, and the
/// synchronizer runs on what the drifting processors saw.
///
/// # Panics
///
/// Panics if the widened declarations are still violated (a bug: the
/// margin is derived from the run's actual horizon) or if the scenario
/// itself is invalid.
pub fn run_with_drift(sim: &Simulation, max_ppm: i64, seed: u64) -> DriftRun {
    assert!(max_ppm >= 0, "drift magnitude must be nonnegative");
    let base = sim.run(seed);
    let n = sim.n();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD21F7);
    let drift_ppm: Vec<i64> = (0..n)
        .map(|_| {
            if max_ppm == 0 {
                0
            } else {
                rng.gen_range(-max_ppm..=max_ppm)
            }
        })
        .collect();

    // Drifted views.
    let drifted_views = ViewSet::new(
        base.execution
            .views()
            .iter()
            .map(|v| drift_view(v, drift_ppm[v.processor().index()]))
            .collect(),
    )
    .expect("drift preserves view validity");

    // Worst-case reading error over the run horizon, conservatively from
    // the largest clock reading any processor recorded.
    let horizon = base
        .execution
        .views()
        .iter()
        .flat_map(|v| v.events().iter().map(|e| e.clock().as_nanos()))
        .max()
        .unwrap_or(0);
    let worst_err = Ratio::new(horizon as i128 * max_ppm as i128, PPM).ceil_nanos();
    // An estimated delay mixes two clocks: up to 2× the reading error.
    let margin = worst_err * 2 + Nanos::new(1);

    let mut b = Network::builder(n);
    for l in sim.links() {
        b = b.link(
            ProcessorId(l.a),
            ProcessorId(l.b),
            widen_assumption(&l.assumption, margin),
        );
    }
    let network = b.build();
    let outcome = Synchronizer::new(network.clone())
        .synchronize(&drifted_views)
        .expect("widened declarations absorb the drift");

    DriftRun {
        execution: base.execution,
        drifted_views,
        network,
        drift_ppm,
        margin,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    fn sim() -> Simulation {
        Simulation::builder(4)
            .uniform_links(
                Topology::Ring(4),
                Nanos::from_micros(100),
                Nanos::from_micros(400),
                5,
            )
            .probes(2)
            .spacing(Nanos::from_millis(5))
            .build()
    }

    #[test]
    fn zero_drift_matches_the_plain_pipeline_guarantee() {
        let run = run_with_drift(&sim(), 0, 3);
        assert_eq!(run.drift_ppm, vec![0; 4]);
        let spread = run.logical_spread_at(run.sync_time());
        assert!(Ext::Finite(spread) <= run.outcome.precision());
    }

    #[test]
    fn drifted_run_is_sound_at_sync_time_within_drift_allowance() {
        for seed in 0..4 {
            let run = run_with_drift(&sim(), 50, seed); // 50 ppm
            assert!(run.outcome.precision().is_finite());
            let spread = run.logical_spread_at(run.sync_time());
            // At sync time the corrected clocks agree within the
            // certificate plus the residual reading error the certificate
            // cannot see (bounded by the margin).
            let allowance = run.outcome.precision() + Ext::Finite(Ratio::from(run.margin));
            assert!(
                Ext::Finite(spread) <= allowance,
                "seed {seed}: {spread} > {allowance}"
            );
        }
    }

    #[test]
    fn spread_grows_as_drift_accumulates() {
        let run = run_with_drift(&sim(), 100, 7);
        if run.drift_ppm.iter().all(|&d| d == run.drift_ppm[0]) {
            return; // identical rates never diverge; astronomically rare
        }
        let t0 = run.sync_time();
        let at = |secs: i64| run.logical_spread_at(t0 + Nanos::from_secs(secs));
        assert!(at(100) > at(1));
        // ~100ppm relative drift over 100s is ~10ms of divergence.
        assert!(at(100) > Ratio::from_int(1_000_000));
    }

    #[test]
    fn widening_covers_every_assumption_family() {
        let m = Nanos::new(10);
        let b = widen_assumption(
            &LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(5), Nanos::new(50))),
            m,
        );
        match b {
            LinkAssumption::Bounds { forward, .. } => {
                assert_eq!(forward.lower(), Nanos::ZERO);
                assert_eq!(forward.upper(), Ext::Finite(Nanos::new(60)));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            widen_assumption(&LinkAssumption::rtt_bias(Nanos::new(7)), m),
            LinkAssumption::rtt_bias(Nanos::new(27))
        );
        match widen_assumption(&LinkAssumption::all(vec![LinkAssumption::no_bounds()]), m) {
            LinkAssumption::All(parts) => assert_eq!(parts.len(), 1),
            other => panic!("{other:?}"),
        }
    }
}
