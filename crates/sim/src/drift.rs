//! Clock drift and periodic resynchronization.
//!
//! The paper assumes drift-free clocks and defends the assumption by the
//! practice it cites (footnote 1, after Kopetz–Ochsenreiter): real
//! hardware clocks drift by parts-per-million, and deployments rerun the
//! synchronization periodically, declaring delay assumptions *widened* by
//! the drift a clock can accumulate over one period.
//!
//! This module makes that story concrete:
//!
//! * [`run_with_drift`] executes a scenario, then lets each processor's
//!   clock run at its own secret rate `1 + ρ_i` (ρ in ppm): views are
//!   re-expressed in drifted clock readings, exactly what a drifting
//!   processor would have recorded;
//! * declared assumptions are widened by the worst drift the run horizon
//!   allows ([`widen_assumption`]), so the declarations remain *true* and
//!   the synchronizer stays sound;
//! * the returned [`DriftRun`] can evaluate the corrected clocks at any
//!   later real time, quantifying how the guarantee decays as drift
//!   accumulates after the synchronization point — the measurement behind
//!   experiment E13 and behind the advice "resync every T";
//! * [`run_continuous_resync`] closes the loop: instead of one
//!   synchronization over a frozen trace, drifting processors keep
//!   probing, an [`OnlineSynchronizer`] re-synchronizes every
//!   [`ResyncConfig::period`], and each round yields a decaying
//!   [`DriftingOutcome`] certificate — the workload behind the
//!   `drift-soundness` vopr oracle and the E13 decay curves.

use std::error::Error;
use std::fmt;

use clocksync::{
    BatchObservation, DelayRange, DriftingOutcome, LinkAssumption, Network, OnlineSynchronizer,
    SyncError, SyncOutcome, Synchronizer,
};
use clocksync_model::{Execution, ModelError, ProcessorId, View, ViewEvent, ViewSet};
use clocksync_time::{ClockTime, DriftBound, Ext, Nanos, Ratio, RealTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::delay::ResolvedLink;
use crate::scenario::Simulation;

const PPM: i128 = 1_000_000;

/// Failure modes of the drift workloads.
///
/// Both [`run_with_drift`] and [`run_continuous_resync`] used to panic on
/// these paths; they are ordinary, reachable conditions (a caller can ask
/// for an absurd rate, a scenario can declare untruthfully tight
/// assumptions) and are now reported as values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriftError {
    /// The requested drift magnitude is negative or at least 10⁶ ppm
    /// (a clock "drifting" by a million ppm or more runs backwards or
    /// not at all — outside the bounded-drift model).
    RateOutOfRange {
        /// The offending magnitude.
        ppm: i64,
    },
    /// Re-expressing the views in drifted readings violated a model
    /// axiom (only reachable if the base execution was already invalid).
    InvalidViews(ModelError),
    /// The synchronizer rejected the drifted observations — the widened
    /// declarations did not absorb the drift, typically because the
    /// scenario declared assumptions that were untruthful even before
    /// drifting.
    Sync(SyncError),
}

impl fmt::Display for DriftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriftError::RateOutOfRange { ppm } => {
                write!(f, "drift magnitude {ppm} ppm outside [0, 10^6)")
            }
            DriftError::InvalidViews(e) => write!(f, "drifted views are invalid: {e}"),
            DriftError::Sync(e) => write!(f, "synchronization of drifted views failed: {e}"),
        }
    }
}

impl Error for DriftError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DriftError::RateOutOfRange { .. } => None,
            DriftError::InvalidViews(e) => Some(e),
            DriftError::Sync(e) => Some(e),
        }
    }
}

impl From<ModelError> for DriftError {
    fn from(e: ModelError) -> DriftError {
        DriftError::InvalidViews(e)
    }
}

impl From<SyncError> for DriftError {
    fn from(e: SyncError) -> DriftError {
        DriftError::Sync(e)
    }
}

fn check_rate(max_ppm: i64) -> Result<(), DriftError> {
    if (0..PPM as i64).contains(&max_ppm) {
        Ok(())
    } else {
        Err(DriftError::RateOutOfRange { ppm: max_ppm })
    }
}

/// Scales the time elapsed since `start` by `1 + ppm/10⁶`, rounding to
/// whole ns. Drift distorts *elapsed* time only: a clock read at its own
/// start shows the start reading no matter how fast it runs. (Scaling the
/// absolute reading happened to coincide for views starting at clock 0,
/// the only kind [`clocksync_model::View::validate`] admits, but was
/// wrong for any other origin.)
fn drift_clock(clock: ClockTime, start: ClockTime, ppm: i64) -> ClockTime {
    let elapsed = (clock - start).as_nanos() as i128;
    let scaled = Ratio::new(elapsed * (PPM + ppm as i128), PPM).round_nanos();
    start + scaled
}

/// Re-expresses a view in the readings of a clock running at `1 + ppm/10⁶`
/// since the view's start event.
fn drift_view(view: &View, ppm: i64) -> View {
    let start = view
        .events()
        .iter()
        .find_map(|e| match *e {
            ViewEvent::Start { clock } => Some(clock),
            _ => None,
        })
        .unwrap_or(ClockTime::ZERO);
    let events = view
        .events()
        .iter()
        .map(|e| match *e {
            ViewEvent::Start { clock } => ViewEvent::Start { clock },
            ViewEvent::Send { to, id, clock } => ViewEvent::Send {
                to,
                id,
                clock: drift_clock(clock, start, ppm),
            },
            ViewEvent::Recv { from, id, clock } => ViewEvent::Recv {
                from,
                id,
                clock: drift_clock(clock, start, ppm),
            },
            ViewEvent::Timer { clock } => ViewEvent::Timer {
                clock: drift_clock(clock, start, ppm),
            },
        })
        .collect();
    View::from_events(view.processor(), events)
}

/// Widens a (truthful, drift-free) assumption so it stays truthful when
/// every estimated delay may be off by up to `margin` due to drift:
/// bounds gain `margin` on both sides, bias bounds gain `2·margin`.
/// With `margin == 0` this is the identity on every family.
///
/// On evidence the original assumption admits, widening never tightens
/// any local shift estimate (property-tested across all families). The
/// one exception is evidence that *contradicts* a declared
/// [`LinkAssumption::MarzulloQuorum`]: there the original estimator has
/// already degraded to "no constraint" (`+∞`), and widening the ranges
/// can re-form a quorum and restore a finite — still sound — estimate.
pub fn widen_assumption(a: &LinkAssumption, margin: Nanos) -> LinkAssumption {
    match a {
        LinkAssumption::Bounds { forward, backward } => {
            let widen = |r: &DelayRange| {
                // The lower bound may go negative: a drifted estimated
                // delay can dip `margin` below the true minimum, and
                // clamping at zero would keep a constraint the evidence
                // no longer supports (the fuzzer's continuous-resync
                // oracle caught exactly that as a spurious
                // InconsistentObservations once the horizon's margin
                // exceeded the link's lower bound).
                let lower = r.lower() - margin;
                match r.upper() {
                    Ext::Finite(ub) => DelayRange::new(lower, ub + margin),
                    _ => DelayRange::at_least(lower),
                }
            };
            LinkAssumption::bounds(widen(forward), widen(backward))
        }
        LinkAssumption::RttBias { bound } => LinkAssumption::rtt_bias(*bound + margin * 2),
        LinkAssumption::PairedRttBias { bound, window } => {
            // The window must SHRINK, not grow: the bias promise covers
            // only pairs truly within `window`, and drifted readings at a
            // common endpoint can be off by up to `margin` in total — so
            // only pairs observed within `window − margin` are certainly
            // covered. (Growing the window admitted pairs the original
            // assumption says nothing about: an untruthful declaration
            // and a tightened estimate — the drift-widening soundness bug
            // the widening property test caught.) When no positive
            // window survives, the honest widening is no constraint.
            if *window > margin {
                LinkAssumption::paired_rtt_bias(*bound + margin * 2, *window - margin)
            } else {
                LinkAssumption::no_bounds()
            }
        }
        LinkAssumption::MarzulloQuorum {
            forward,
            backward,
            max_faulty,
        } => {
            let widen = |r: &DelayRange| {
                // The lower bound may go negative: a drifted estimated
                // delay can dip `margin` below the true minimum, and
                // clamping at zero would keep a constraint the evidence
                // no longer supports (the fuzzer's continuous-resync
                // oracle caught exactly that as a spurious
                // InconsistentObservations once the horizon's margin
                // exceeded the link's lower bound).
                let lower = r.lower() - margin;
                match r.upper() {
                    Ext::Finite(ub) => DelayRange::new(lower, ub + margin),
                    _ => DelayRange::at_least(lower),
                }
            };
            LinkAssumption::marzullo_quorum(widen(forward), widen(backward), *max_faulty)
        }
        LinkAssumption::All(parts) => {
            LinkAssumption::all(parts.iter().map(|p| widen_assumption(p, margin)).collect())
        }
    }
}

/// The widened network a drift workload hands to the synchronizer.
fn widened_network(sim: &Simulation, margin: Nanos) -> Network {
    let mut b = Network::builder(sim.n());
    for l in sim.links() {
        b = b.link(
            ProcessorId(l.a),
            ProcessorId(l.b),
            widen_assumption(&l.assumption, margin),
        );
    }
    b.build()
}

/// A synchronization performed on drifting clocks.
#[derive(Debug, Clone)]
pub struct DriftRun {
    /// The drift-free ground-truth execution.
    pub execution: Execution,
    /// The views as the drifting processors actually recorded them.
    pub drifted_views: ViewSet,
    /// The widened network the synchronizer was given.
    pub network: Network,
    /// Secret clock rates, ppm per processor.
    pub drift_ppm: Vec<i64>,
    /// The declared drift magnitude bound (what the certificate holder
    /// knows; the secret rates satisfy `|ρ_i| ≤ max_ppm`).
    pub max_ppm: i64,
    /// The margin used to widen the declarations.
    pub margin: Nanos,
    /// The synchronization outcome (certificate valid at sync time).
    pub outcome: SyncOutcome,
}

impl DriftRun {
    /// The drifting logical clock of `p` at real time `t`:
    /// `(t − S_p)·(1 + ρ_p/10⁶) + x_p`.
    pub fn logical_clock_at(&self, p: ProcessorId, t: RealTime) -> Ratio {
        let elapsed = (t - self.execution.start(p)).as_nanos() as i128;
        let reading = Ratio::new(elapsed * (PPM + self.drift_ppm[p.index()] as i128), PPM);
        reading + self.outcome.correction(p)
    }

    /// The worst pairwise disagreement of the corrected (still drifting)
    /// clocks at real time `t`.
    pub fn logical_spread_at(&self, t: RealTime) -> Ratio {
        let values: Vec<Ratio> = (0..self.execution.n())
            .map(|i| self.logical_clock_at(ProcessorId(i), t))
            .collect();
        match (values.iter().max(), values.iter().min()) {
            (Some(hi), Some(lo)) => *hi - *lo,
            _ => Ratio::ZERO,
        }
    }

    /// The real time of the last recorded event (the synchronization
    /// point for decay measurements): the last message delivery, or — in
    /// a message-free execution — the last processor start. (Falling
    /// back to `RealTime::ZERO` understated the sync point whenever
    /// starts were spread out.)
    pub fn sync_time(&self) -> RealTime {
        self.execution
            .messages()
            .iter()
            .map(|m| m.received_at)
            .max()
            .or_else(|| self.execution.starts().iter().copied().max())
            .unwrap_or(RealTime::ZERO)
    }

    /// The run's certificate as a decaying [`DriftingOutcome`]: exact at
    /// [`DriftRun::sync_time`], every processor's rate bounded by the
    /// declared `max_ppm` (the certificate holder never learns the
    /// secret per-processor rates).
    pub fn certificate(&self) -> DriftingOutcome {
        DriftingOutcome::uniform(
            self.outcome.clone(),
            self.sync_time(),
            DriftBound::from_ppm(self.max_ppm),
        )
    }
}

/// Runs `sim` under clock drift: rates are sampled uniformly in
/// `[−max_ppm, +max_ppm]`, views are re-expressed in drifted readings,
/// declarations are widened just enough to stay truthful, and the
/// synchronizer runs on what the drifting processors saw.
///
/// With `max_ppm == 0` the margin is exactly zero, the widened network
/// equals the declared one and the run is bit-identical to the plain
/// pipeline.
///
/// # Errors
///
/// * [`DriftError::RateOutOfRange`] — `max_ppm` outside `[0, 10⁶)`;
/// * [`DriftError::InvalidViews`] — the drifted views violate a model
///   axiom (requires an already-invalid base execution);
/// * [`DriftError::Sync`] — the widened declarations are still violated,
///   e.g. because the scenario declared untruthfully tight assumptions.
pub fn run_with_drift(sim: &Simulation, max_ppm: i64, seed: u64) -> Result<DriftRun, DriftError> {
    check_rate(max_ppm)?;
    let base = sim.run(seed);
    let n = sim.n();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD21F7);
    let drift_ppm: Vec<i64> = (0..n)
        .map(|_| {
            if max_ppm == 0 {
                0
            } else {
                rng.gen_range(-max_ppm..=max_ppm)
            }
        })
        .collect();

    // Drifted views.
    let drifted_views = ViewSet::new(
        base.execution
            .views()
            .iter()
            .map(|v| drift_view(v, drift_ppm[v.processor().index()]))
            .collect(),
    )?;

    // Worst-case reading error over the run horizon, conservatively from
    // the largest clock reading any processor recorded.
    let horizon = base
        .execution
        .views()
        .iter()
        .flat_map(|v| v.events().iter().map(|e| e.clock().as_nanos()))
        .max()
        .unwrap_or(0);
    let worst_err = Ratio::new(horizon as i128 * max_ppm as i128, PPM).ceil_nanos();
    // An estimated delay mixes two clocks: up to 2× the reading error.
    // Zero drift needs no slack at all — keeping the margin exactly zero
    // keeps the zero-drift run bit-identical to the plain pipeline.
    let margin = if max_ppm == 0 {
        Nanos::ZERO
    } else {
        worst_err * 2 + Nanos::new(1)
    };

    let network = widened_network(sim, margin);
    let outcome = Synchronizer::new(network.clone()).synchronize(&drifted_views)?;

    Ok(DriftRun {
        execution: base.execution,
        drifted_views,
        network,
        drift_ppm,
        max_ppm,
        margin,
        outcome,
    })
}

/// Configuration of a [`run_continuous_resync`] workload.
#[derive(Debug, Clone)]
pub struct ResyncConfig {
    /// Resynchronization rounds to run.
    pub rounds: usize,
    /// Real-time spacing between rounds.
    pub period: Nanos,
    /// Probe round trips per link per round.
    pub probes: usize,
    /// Drift magnitude bound, ppm (secret rates are sampled within it).
    pub max_ppm: i64,
    /// Drop one (rotating) link's evidence before each round after the
    /// first, so the graph keeps changing and the incremental
    /// closure/`A_max` caches are exercised on both the tightening and
    /// the loosening path.
    pub churn: bool,
}

impl Default for ResyncConfig {
    fn default() -> ResyncConfig {
        ResyncConfig {
            rounds: 4,
            period: Nanos::from_millis(250),
            probes: 2,
            max_ppm: 100,
            churn: true,
        }
    }
}

/// A continuously-resynchronized run over drifting clocks: one decaying
/// certificate per round, plus the ground truth needed to check each
/// certificate at any later real time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContinuousDriftRun {
    /// Secret clock rates, ppm per processor.
    pub drift_ppm: Vec<i64>,
    /// Real start time per processor (each clock reads 0 at its start).
    pub starts: Vec<RealTime>,
    /// The margin the declarations were widened by.
    pub margin: Nanos,
    /// One decaying certificate per round, in round order. Each is exact
    /// at the real time of its round's last delivery and decays at the
    /// declared uniform rate bound.
    pub snapshots: Vec<DriftingOutcome>,
}

impl ContinuousDriftRun {
    /// The drifting logical clock of `p` at real time `t`, corrected by
    /// round `round`'s certificate.
    pub fn logical_clock_at(&self, round: usize, p: ProcessorId, t: RealTime) -> Ratio {
        let elapsed = (t - self.starts[p.index()]).as_nanos() as i128;
        let reading = Ratio::new(elapsed * (PPM + self.drift_ppm[p.index()] as i128), PPM);
        reading + self.snapshots[round].outcome().correction(p)
    }

    /// The true corrected-clock disagreement of `(p, q)` at real time
    /// `t` under round `round`'s corrections — the quantity the round's
    /// decayed [`DriftingOutcome::pair_bound_at`] must dominate (up to
    /// the reading-error [`ContinuousDriftRun::margin`]).
    pub fn true_skew_at(&self, round: usize, p: ProcessorId, q: ProcessorId, t: RealTime) -> Ratio {
        let d = self.logical_clock_at(round, p, t) - self.logical_clock_at(round, q, t);
        if d < Ratio::ZERO {
            Ratio::ZERO - d
        } else {
            d
        }
    }
}

/// Runs `sim`'s topology under continuous drift: each processor's clock
/// runs at a secret bounded rate *throughout*, probes are exchanged every
/// [`ResyncConfig::period`], and an [`OnlineSynchronizer`] (with its
/// incremental closure and warm `A_max` caches) re-synchronizes after
/// every round. With [`ResyncConfig::churn`] set, a rotating link's
/// evidence is dropped before each round and re-learned from that round's
/// probes, so the evidence graph keeps changing shape.
///
/// Delay models and declared assumptions are taken from `sim`;
/// declarations are widened by the drift the whole horizon can
/// accumulate, so they stay truthful for every round.
///
/// # Errors
///
/// Same contract as [`run_with_drift`].
pub fn run_continuous_resync(
    sim: &Simulation,
    cfg: &ResyncConfig,
    seed: u64,
) -> Result<ContinuousDriftRun, DriftError> {
    check_rate(cfg.max_ppm)?;
    let n = sim.n();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2E5C11D);
    let drift_ppm: Vec<i64> = (0..n)
        .map(|_| {
            if cfg.max_ppm == 0 {
                0
            } else {
                rng.gen_range(-cfg.max_ppm..=cfg.max_ppm)
            }
        })
        .collect();
    let starts: Vec<RealTime> = (0..n)
        .map(|_| {
            let spread = sim.start_spread().as_nanos();
            let s = if spread == 0 {
                0
            } else {
                rng.gen_range(0..=spread)
            };
            RealTime::ZERO + Nanos::new(s)
        })
        .collect();
    let resolved: Vec<ResolvedLink> = sim
        .links()
        .iter()
        .map(|l| l.model.resolve(&mut rng))
        .collect();

    // The reading of p's drifting clock at real time t (t ≥ start_p).
    let reading = |p: usize, t: RealTime| -> ClockTime {
        let elapsed = (t - starts[p]).as_nanos() as i128;
        ClockTime::ZERO + Ratio::new(elapsed * (PPM + drift_ppm[p] as i128), PPM).round_nanos()
    };

    // Generate every round's probe traffic first, tracking the largest
    // elapsed-since-start any reading covers — the margin must absorb
    // the drift of the *actual* horizon, exactly as run_with_drift
    // derives it from the recorded views (a probe sequence can overrun
    // its nominal period, so the schedule alone is not a safe bound).
    let origin = starts.iter().copied().max().unwrap_or(RealTime::ZERO) + Nanos::from_micros(100);
    let mut horizon = Nanos::ZERO;
    let mut rounds = Vec::with_capacity(cfg.rounds);
    for round in 0..cfg.rounds {
        let mut batch = Vec::new();
        let mut t = origin + cfg.period * round as i64;
        let mut last_delivery = t;
        for (l, link) in sim.links().iter().zip(&resolved) {
            for _ in 0..cfg.probes {
                // One round trip: a → b, then the echo b → a.
                for &(src, dst, forward) in &[(l.a, l.b, true), (l.b, l.a, false)] {
                    let delay = link.sample(forward, &mut rng);
                    let arrival = t + delay;
                    batch.push(BatchObservation {
                        src: ProcessorId(src),
                        dst: ProcessorId(dst),
                        send_clock: reading(src, t),
                        recv_clock: reading(dst, arrival),
                    });
                    horizon = horizon.max(t - starts[src]).max(arrival - starts[dst]);
                    last_delivery = last_delivery.max(arrival);
                    t = arrival + sim.spacing();
                }
            }
        }
        rounds.push((batch, last_delivery));
    }
    let worst_err = Ratio::new(
        i128::from(horizon.as_nanos()) * i128::from(cfg.max_ppm),
        PPM,
    )
    .ceil_nanos();
    let margin = if cfg.max_ppm == 0 {
        Nanos::ZERO
    } else {
        worst_err * 2 + Nanos::new(1)
    };

    let mut online = OnlineSynchronizer::new(widened_network(sim, margin));
    let rate_bound = DriftBound::from_ppm(cfg.max_ppm);
    let mut snapshots = Vec::with_capacity(cfg.rounds);
    for (round, (batch, last_delivery)) in rounds.into_iter().enumerate() {
        if cfg.churn && round > 0 && !sim.links().is_empty() {
            let l = &sim.links()[round % sim.links().len()];
            online.forget_link(ProcessorId(l.a), ProcessorId(l.b));
        }
        online.ingest_batch(&batch)?;
        let outcome = online.outcome()?;
        snapshots.push(DriftingOutcome::uniform(outcome, last_delivery, rate_bound));
    }

    Ok(ContinuousDriftRun {
        drift_ppm,
        starts,
        margin,
        snapshots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{DelayDistribution, LinkModel};
    use crate::Topology;

    fn sim() -> Simulation {
        Simulation::builder(4)
            .uniform_links(
                Topology::Ring(4),
                Nanos::from_micros(100),
                Nanos::from_micros(400),
                5,
            )
            .probes(2)
            .spacing(Nanos::from_millis(5))
            .build()
    }

    #[test]
    fn zero_drift_matches_the_plain_pipeline_guarantee() {
        let run = run_with_drift(&sim(), 0, 3).unwrap();
        assert_eq!(run.drift_ppm, vec![0; 4]);
        let spread = run.logical_spread_at(run.sync_time());
        assert!(Ext::Finite(spread) <= run.outcome.precision());
    }

    #[test]
    fn zero_drift_is_bit_identical_to_the_plain_pipeline() {
        let s = sim();
        let run = run_with_drift(&s, 0, 3).unwrap();
        assert_eq!(run.margin, Nanos::ZERO);
        assert_eq!(run.network, s.network());
        let base = s.run(3);
        assert_eq!(run.drifted_views, *base.execution.views());
        let plain = Synchronizer::new(s.network())
            .synchronize(base.execution.views())
            .unwrap();
        assert_eq!(run.outcome, plain);
    }

    #[test]
    fn absurd_drift_rates_are_typed_errors_not_panics() {
        assert_eq!(
            run_with_drift(&sim(), 2_000_000, 1).unwrap_err(),
            DriftError::RateOutOfRange { ppm: 2_000_000 }
        );
        assert_eq!(
            run_with_drift(&sim(), -5, 1).unwrap_err(),
            DriftError::RateOutOfRange { ppm: -5 }
        );
        assert!(matches!(
            run_continuous_resync(&sim(), &ResyncConfig { max_ppm: 1_000_000, ..Default::default() }, 1),
            Err(DriftError::RateOutOfRange { ppm: 1_000_000 })
        ));
    }

    #[test]
    fn untruthful_declarations_surface_as_a_sync_error() {
        // True delays are 100–400µs but the declaration claims ≤ 1µs:
        // the widened bounds cannot absorb observations that violate the
        // declaration outright, so synchronize fails with a typed error
        // instead of a panic.
        let lying = Simulation::builder(2)
            .link(
                0,
                1,
                LinkModel::symmetric(DelayDistribution::uniform(
                    Nanos::from_micros(100),
                    Nanos::from_micros(400),
                )),
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(1_000))),
            )
            .probes(2)
            .build();
        match run_with_drift(&lying, 50, 9) {
            Err(DriftError::Sync(SyncError::InconsistentObservations { .. })) => {}
            other => panic!("expected inconsistent observations, got {other:?}"),
        }
    }

    #[test]
    fn drift_scales_elapsed_time_not_absolute_readings() {
        // A view whose clock origin is 1000 (inadmissible for the full
        // pipeline, but exactly the case the old absolute scaling got
        // wrong): drifting by +1000 ppm must move a reading 1ms after
        // the origin by 1µs, not by 1.001µs-per-µs-of-absolute-reading.
        let origin = ClockTime::ZERO + Nanos::new(1_000);
        let v = View::from_events(
            ProcessorId(0),
            vec![
                ViewEvent::Start { clock: origin },
                ViewEvent::Timer {
                    clock: origin + Nanos::from_micros(1_000),
                },
            ],
        );
        let d = drift_view(&v, 1_000);
        assert_eq!(d.events()[0], ViewEvent::Start { clock: origin });
        assert_eq!(
            d.events()[1],
            ViewEvent::Timer {
                clock: origin + Nanos::from_micros(1_000) + Nanos::new(1_000),
            }
        );
        // The same reading on a zero-origin clock drifts by the same
        // elapsed-proportional amount plus the origin's share under the
        // old (wrong) rule — guard the exact value too.
        assert_eq!(
            drift_clock(origin + Nanos::from_micros(1_000), origin, 1_000),
            origin + Nanos::from_micros(1_000) + Nanos::new(1_000)
        );
    }

    #[test]
    fn sync_time_of_a_message_free_run_is_the_last_start() {
        // No probe protocol ever produces a message-free execution, but
        // nothing forbids one: only starts, spread over 2ms. sync_time
        // used to collapse to RealTime::ZERO here, understating the sync
        // point by the whole spread.
        use clocksync_model::ExecutionBuilder;
        let execution = ExecutionBuilder::new(3)
            .start(ProcessorId(1), RealTime::from_micros(2_000))
            .start(ProcessorId(2), RealTime::from_micros(750))
            .build()
            .unwrap();
        let network = Network::builder(3).build();
        let outcome = Synchronizer::new(network.clone())
            .synchronize(execution.views())
            .unwrap();
        let run = DriftRun {
            drifted_views: execution.views().clone(),
            execution,
            network,
            drift_ppm: vec![0; 3],
            max_ppm: 0,
            margin: Nanos::ZERO,
            outcome,
        };
        assert!(run.execution.messages().is_empty());
        assert_eq!(run.sync_time(), RealTime::from_micros(2_000));
        assert!(run.sync_time() > RealTime::ZERO, "spread-out starts");
    }

    #[test]
    fn drifted_run_is_sound_at_sync_time_within_drift_allowance() {
        for seed in 0..4 {
            let run = run_with_drift(&sim(), 50, seed).unwrap(); // 50 ppm
            assert!(run.outcome.precision().is_finite());
            let spread = run.logical_spread_at(run.sync_time());
            // At sync time the corrected clocks agree within the
            // certificate plus the residual reading error the certificate
            // cannot see (bounded by the margin).
            let allowance = run.outcome.precision() + Ext::Finite(Ratio::from(run.margin));
            assert!(
                Ext::Finite(spread) <= allowance,
                "seed {seed}: {spread} > {allowance}"
            );
        }
    }

    #[test]
    fn the_decaying_certificate_stays_sound_after_sync_time() {
        let run = run_with_drift(&sim(), 80, 13).unwrap();
        let cert = run.certificate();
        let allowance = Ext::Finite(Ratio::from(run.margin));
        for secs in [0, 1, 30] {
            let t = run.sync_time() + Nanos::from_secs(secs);
            let spread = run.logical_spread_at(t);
            assert!(
                Ext::Finite(spread) <= cert.precision_at(t) + allowance,
                "{secs}s after sync: {spread} vs {:?}",
                cert.precision_at(t)
            );
        }
    }

    #[test]
    fn spread_grows_as_drift_accumulates() {
        let run = run_with_drift(&sim(), 100, 7).unwrap();
        if run.drift_ppm.iter().all(|&d| d == run.drift_ppm[0]) {
            return; // identical rates never diverge; astronomically rare
        }
        let t0 = run.sync_time();
        let at = |secs: i64| run.logical_spread_at(t0 + Nanos::from_secs(secs));
        assert!(at(100) > at(1));
        // ~100ppm relative drift over 100s is ~10ms of divergence.
        assert!(at(100) > Ratio::from_int(1_000_000));
    }

    #[test]
    fn widening_covers_every_assumption_family() {
        let m = Nanos::new(10);
        let b = widen_assumption(
            &LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(5), Nanos::new(50))),
            m,
        );
        match b {
            LinkAssumption::Bounds { forward, .. } => {
                // The widened lower bound goes *negative* — clamping it
                // at zero kept a constraint drifted evidence can violate.
                assert_eq!(forward.lower(), Nanos::new(-5));
                assert_eq!(forward.upper(), Ext::Finite(Nanos::new(60)));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            widen_assumption(&LinkAssumption::rtt_bias(Nanos::new(7)), m),
            LinkAssumption::rtt_bias(Nanos::new(27))
        );
        // The pairing window shrinks (drifted readings may pair messages
        // the true readings would not); once the margin eats the whole
        // window the promise is vacuous.
        assert_eq!(
            widen_assumption(
                &LinkAssumption::paired_rtt_bias(Nanos::new(7), Nanos::new(100)),
                m
            ),
            LinkAssumption::paired_rtt_bias(Nanos::new(27), Nanos::new(90))
        );
        assert_eq!(
            widen_assumption(
                &LinkAssumption::paired_rtt_bias(Nanos::new(7), Nanos::new(10)),
                m
            ),
            LinkAssumption::no_bounds()
        );
        match widen_assumption(&LinkAssumption::all(vec![LinkAssumption::no_bounds()]), m) {
            LinkAssumption::All(parts) => assert_eq!(parts.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn continuous_resync_certificates_stay_sound_between_rounds() {
        let cfg = ResyncConfig {
            rounds: 3,
            period: Nanos::from_millis(200),
            probes: 2,
            max_ppm: 100,
            churn: true,
        };
        let run = run_continuous_resync(&sim(), &cfg, 21).unwrap();
        assert_eq!(run.snapshots.len(), 3);
        let allowance = Ext::Finite(Ratio::from(run.margin));
        for (round, snap) in run.snapshots.iter().enumerate() {
            assert!(
                snap.outcome().precision().is_finite(),
                "round {round} certificate must be finite even under churn"
            );
            for dt in [Nanos::ZERO, Nanos::from_millis(100), Nanos::from_secs(2)] {
                let t = snap.valid_at() + dt;
                for p in 0..4 {
                    for q in (p + 1)..4 {
                        let (p, q) = (ProcessorId(p), ProcessorId(q));
                        let truth = run.true_skew_at(round, p, q, t);
                        let bound = snap.pair_bound_at(p, q, t) + allowance;
                        assert!(
                            Ext::Finite(truth) <= bound,
                            "round {round}, {p:?}-{q:?}, +{dt}: {truth} > {bound}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn continuous_resync_is_deterministic() {
        let cfg = ResyncConfig::default();
        let a = run_continuous_resync(&sim(), &cfg, 5).unwrap();
        let b = run_continuous_resync(&sim(), &cfg, 5).unwrap();
        assert_eq!(a, b);
        let c = run_continuous_resync(&sim(), &cfg, 6).unwrap();
        assert_ne!(a.drift_ppm, c.drift_ppm);
    }

    #[test]
    fn zero_drift_continuous_resync_is_exact() {
        let cfg = ResyncConfig {
            max_ppm: 0,
            churn: false,
            ..Default::default()
        };
        let run = run_continuous_resync(&sim(), &cfg, 2).unwrap();
        assert_eq!(run.margin, Nanos::ZERO);
        for (round, snap) in run.snapshots.iter().enumerate() {
            let t = snap.valid_at() + Nanos::from_secs(3600);
            for p in 0..4 {
                for q in (p + 1)..4 {
                    let (p, q) = (ProcessorId(p), ProcessorId(q));
                    // No drift: an hour later the undecayed bound still
                    // holds with no allowance at all.
                    assert!(
                        Ext::Finite(run.true_skew_at(round, p, q, t))
                            <= snap.pair_bound_at(p, q, t),
                        "round {round}, {p:?}-{q:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn churn_actually_changes_the_evidence_graph() {
        let churned = run_continuous_resync(&sim(), &ResyncConfig::default(), 1).unwrap();
        let stable = run_continuous_resync(
            &sim(),
            &ResyncConfig {
                churn: false,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        // Same seed, same probes — dropping a link's history each round
        // must leave a visible trace in at least one certificate.
        assert_eq!(churned.drift_ppm, stable.drift_ppm);
        assert_ne!(churned.snapshots, stable.snapshots);
    }
}
