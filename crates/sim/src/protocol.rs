//! The probe protocol used by the experiments.
//!
//! The paper deliberately separates the *interactive* part (which messages
//! to send) from the *correction computation* and only optimizes the
//! latter. This module provides the interactive part the experiments use:
//! each link's lower-id endpoint sends `probes` probe messages, spaced
//! `spacing` apart, and the peer echoes each probe immediately — the
//! standard round-trip workload of NTP-like protocols.

use clocksync_model::ProcessorId;
use clocksync_obs::{FieldValue, Recorder};
use clocksync_time::{ClockTime, Nanos};

use crate::engine::{Process, ProcessCtx};

/// Payload tag for a probe (echo requested).
const PROBE: u64 = 0;
/// Payload tag for an echo.
const ECHO: u64 = 1;

/// A processor running the round-trip probe protocol.
///
/// * At start, if the processor initiates any links (it has higher-id
///   neighbors), it schedules `probes` timer rounds starting at
///   `initial_delay` and spaced `spacing` apart.
/// * On each timer it sends one probe to every higher-id neighbor.
/// * On receiving a probe it echoes immediately; echoes are absorbed.
///
/// `initial_delay` must exceed the largest start-time skew in the system:
/// the engine (like the paper's model) has no pre-start message queueing,
/// so a probe must not arrive before its receiver starts.
#[derive(Debug, Clone)]
pub struct ProbeProcess {
    probes: usize,
    spacing: Nanos,
    initial_delay: Nanos,
    rounds_fired: usize,
    recorder: Recorder,
}

impl ProbeProcess {
    /// Creates a probe process sending `probes` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `probes == 0`, or if `spacing` or `initial_delay` is
    /// non-positive.
    pub fn new(probes: usize, spacing: Nanos, initial_delay: Nanos) -> ProbeProcess {
        assert!(probes > 0, "at least one probe round required");
        assert!(spacing > Nanos::ZERO, "spacing must be positive");
        assert!(
            initial_delay > Nanos::ZERO,
            "initial delay must be positive"
        );
        ProbeProcess {
            probes,
            spacing,
            initial_delay,
            rounds_fired: 0,
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches an observability recorder; each probe round then emits a
    /// `sim.probe_round` event carrying the initiator and its local clock
    /// (per-round timing; taxonomy in DESIGN.md §6).
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> ProbeProcess {
        self.recorder = recorder;
        self
    }
}

impl Process for ProbeProcess {
    fn on_start(&mut self, ctx: &mut ProcessCtx) {
        let initiates = ctx.neighbors().iter().any(|&nb| nb > ctx.id());
        if initiates {
            ctx.set_timer(ClockTime::ZERO + self.initial_delay);
        }
    }

    fn on_message(&mut self, from: ProcessorId, payload: u64, ctx: &mut ProcessCtx) {
        if payload == PROBE {
            ctx.send(from, ECHO);
        }
    }

    fn on_timer(&mut self, ctx: &mut ProcessCtx) {
        let me = ctx.id();
        for &nb in &ctx.neighbors().to_vec() {
            if nb > me {
                ctx.send(nb, PROBE);
            }
        }
        if self.recorder.is_enabled() {
            self.recorder.event(
                "sim.probe_round",
                [
                    ("processor", FieldValue::from(me.index())),
                    ("round", FieldValue::from(self.rounds_fired)),
                    ("clock_ns", FieldValue::from(ctx.clock().as_nanos())),
                ],
            );
        }
        self.rounds_fired += 1;
        if self.rounds_fired < self.probes {
            ctx.set_timer(ctx.clock() + self.spacing);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{DelayDistribution, LinkModel};
    use crate::engine::Engine;
    use clocksync_time::RealTime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn run_pair(probes: usize) -> clocksync_model::Execution {
        let mut links = HashMap::new();
        links.insert(
            (0usize, 1usize),
            LinkModel::symmetric(DelayDistribution::constant(Nanos::new(100)))
                .resolve(&mut StdRng::seed_from_u64(0)),
        );
        let engine = Engine::new(vec![RealTime::ZERO, RealTime::from_nanos(2_000)], links);
        let proc = || {
            Box::new(ProbeProcess::new(
                probes,
                Nanos::from_micros(10),
                Nanos::from_micros(5),
            )) as Box<dyn crate::engine::Process>
        };
        engine.run(vec![proc(), proc()], &mut StdRng::seed_from_u64(42))
    }

    #[test]
    fn each_round_produces_one_round_trip() {
        let exec = run_pair(3);
        assert_eq!(exec.link_delays(ProcessorId(0), ProcessorId(1)).len(), 3);
        assert_eq!(exec.link_delays(ProcessorId(1), ProcessorId(0)).len(), 3);
    }

    #[test]
    fn echoes_are_immediate() {
        let exec = run_pair(1);
        let msgs = exec.messages();
        let probe = msgs.iter().find(|m| m.src == ProcessorId(0)).unwrap();
        let echo = msgs.iter().find(|m| m.src == ProcessorId(1)).unwrap();
        assert_eq!(echo.sent_at, probe.received_at);
    }

    #[test]
    fn only_the_lower_endpoint_initiates() {
        let exec = run_pair(2);
        // All probes originate at p0: p1 sends only echoes (same count).
        let from_p1 = exec.link_delays(ProcessorId(1), ProcessorId(0)).len();
        let from_p0 = exec.link_delays(ProcessorId(0), ProcessorId(1)).len();
        assert_eq!(from_p0, from_p1);
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn zero_probes_panics() {
        let _ = ProbeProcess::new(0, Nanos::new(1), Nanos::new(1));
    }
}
