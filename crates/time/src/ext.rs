//! Ordered quantities extended with `±∞`.

use std::fmt;
use std::ops::{Add, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::{Nanos, Ratio};

/// A value of `T` extended with `−∞` and `+∞`.
///
/// The synchronization theory needs all three routinely:
///
/// * a directed link that carried no message has estimated maximal delay
///   `d̃max = −∞` and estimated minimal delay `d̃min = +∞`;
/// * a link without an upper delay bound has `ub = +∞`;
/// * an instance in which some processor is unconstrained in one direction
///   has optimal precision `+∞`.
///
/// The derived ordering is `NegInf < Finite(_) < PosInf`, with finite values
/// ordered by `T`.
///
/// # Examples
///
/// ```
/// use clocksync_time::{Ext, Nanos};
///
/// let observed = Ext::Finite(Nanos::from_micros(120));
/// assert!(Ext::<Nanos>::NegInf < observed && observed < Ext::PosInf);
/// assert_eq!(observed + Ext::Finite(Nanos::from_micros(30)),
///            Ext::Finite(Nanos::from_micros(150)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Ext<T> {
    /// Negative infinity: below every finite value.
    NegInf,
    /// A finite value.
    Finite(T),
    /// Positive infinity: above every finite value.
    PosInf,
}

impl<T: Default> Default for Ext<T> {
    /// The default is `Finite(T::default())`.
    fn default() -> Self {
        Ext::Finite(T::default())
    }
}

impl<T> Ext<T> {
    /// Returns `true` for a finite value.
    pub const fn is_finite(&self) -> bool {
        matches!(self, Ext::Finite(_))
    }

    /// Returns the finite value, if any.
    pub fn finite(self) -> Option<T> {
        match self {
            Ext::Finite(v) => Some(v),
            _ => None,
        }
    }

    /// Returns a reference to the finite value, if any.
    pub const fn as_finite(&self) -> Option<&T> {
        match self {
            Ext::Finite(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the finite value or panics with `msg`.
    ///
    /// # Panics
    ///
    /// Panics if the value is infinite.
    pub fn expect_finite(self, msg: &str) -> T {
        match self {
            Ext::Finite(v) => v,
            Ext::NegInf => panic!("{msg}: value is -inf"),
            Ext::PosInf => panic!("{msg}: value is +inf"),
        }
    }

    /// Applies `f` to a finite value, preserving infinities.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Ext<U> {
        match self {
            Ext::Finite(v) => Ext::Finite(f(v)),
            Ext::NegInf => Ext::NegInf,
            Ext::PosInf => Ext::PosInf,
        }
    }
}

impl<T: Ord> Ext<T> {
    /// The smaller of two extended values.
    pub fn min(self, other: Ext<T>) -> Ext<T> {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two extended values.
    pub fn max(self, other: Ext<T>) -> Ext<T> {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl<T> From<T> for Ext<T> {
    fn from(v: T) -> Ext<T> {
        Ext::Finite(v)
    }
}

impl From<Ext<Nanos>> for Ext<Ratio> {
    fn from(v: Ext<Nanos>) -> Ext<Ratio> {
        v.map(Ratio::from)
    }
}

impl<T: Add<Output = T>> Add for Ext<T> {
    type Output = Ext<T>;

    /// Extended addition.
    ///
    /// # Panics
    ///
    /// Panics on the indeterminate form `+∞ + (−∞)`; that combination never
    /// arises from the algorithms in this workspace and indicates a bug.
    fn add(self, rhs: Ext<T>) -> Ext<T> {
        match (self, rhs) {
            (Ext::Finite(a), Ext::Finite(b)) => Ext::Finite(a + b),
            (Ext::PosInf, Ext::NegInf) | (Ext::NegInf, Ext::PosInf) => {
                panic!("indeterminate extended sum: +inf + -inf")
            }
            (Ext::PosInf, _) | (_, Ext::PosInf) => Ext::PosInf,
            (Ext::NegInf, _) | (_, Ext::NegInf) => Ext::NegInf,
        }
    }
}

impl<T: Neg<Output = T>> Neg for Ext<T> {
    type Output = Ext<T>;
    fn neg(self) -> Ext<T> {
        match self {
            Ext::Finite(v) => Ext::Finite(-v),
            Ext::NegInf => Ext::PosInf,
            Ext::PosInf => Ext::NegInf,
        }
    }
}

impl<T> Sub for Ext<T>
where
    T: Add<Output = T> + Neg<Output = T>,
{
    type Output = Ext<T>;

    /// Extended subtraction (`a − b = a + (−b)`).
    ///
    /// # Panics
    ///
    /// Panics on the indeterminate forms `+∞ − +∞` and `−∞ − −∞`.
    fn sub(self, rhs: Ext<T>) -> Ext<T> {
        self + (-rhs)
    }
}

impl<T: fmt::Display> fmt::Display for Ext<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ext::Finite(v) => write!(f, "{v}"),
            Ext::NegInf => write!(f, "-inf"),
            Ext::PosInf => write!(f, "+inf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_spans_infinities() {
        let lo: Ext<i64> = Ext::NegInf;
        let hi: Ext<i64> = Ext::PosInf;
        let mid = Ext::Finite(0i64);
        assert!(lo < mid && mid < hi);
        assert!(Ext::Finite(1) > Ext::Finite(0));
        assert_eq!(lo.min(hi), lo);
        assert_eq!(lo.max(mid), mid);
    }

    #[test]
    fn addition_absorbs_infinities() {
        let inf: Ext<i64> = Ext::PosInf;
        assert_eq!(inf + Ext::Finite(5), Ext::PosInf);
        assert_eq!(Ext::<i64>::NegInf + Ext::Finite(5), Ext::NegInf);
        assert_eq!(Ext::Finite(2) + Ext::Finite(3), Ext::Finite(5));
    }

    #[test]
    #[should_panic(expected = "indeterminate")]
    fn indeterminate_sum_panics() {
        let _ = Ext::<i64>::PosInf + Ext::NegInf;
    }

    #[test]
    fn negation_swaps_infinities() {
        assert_eq!(-Ext::<i64>::PosInf, Ext::NegInf);
        assert_eq!(-Ext::<i64>::NegInf, Ext::PosInf);
        assert_eq!(-Ext::Finite(4i64), Ext::Finite(-4));
    }

    #[test]
    fn subtraction() {
        assert_eq!(Ext::Finite(7i64) - Ext::Finite(3), Ext::Finite(4));
        assert_eq!(Ext::<i64>::PosInf - Ext::Finite(3), Ext::PosInf);
        assert_eq!(Ext::Finite(3i64) - Ext::PosInf, Ext::NegInf);
    }

    #[test]
    fn accessors() {
        let v = Ext::Finite(9i64);
        assert!(v.is_finite());
        assert_eq!(v.finite(), Some(9));
        assert_eq!(v.as_finite(), Some(&9));
        assert_eq!(v.expect_finite("should be finite"), 9);
        assert_eq!(Ext::<i64>::PosInf.finite(), None);
        assert_eq!(v.map(|x| x * 2), Ext::Finite(18));
        assert_eq!(Ext::<i64>::NegInf.map(|x| x * 2), Ext::NegInf);
    }

    #[test]
    #[should_panic(expected = "+inf")]
    fn expect_finite_panics_on_infinity() {
        Ext::<i64>::PosInf.expect_finite("boom");
    }

    #[test]
    fn conversions() {
        let n: Ext<Nanos> = Ext::Finite(Nanos::new(10));
        let q: Ext<Ratio> = n.into();
        assert_eq!(q, Ext::Finite(Ratio::from_int(10)));
        assert_eq!(Ext::from(3i64), Ext::Finite(3));
    }

    #[test]
    fn display() {
        assert_eq!(Ext::Finite(3i64).to_string(), "3");
        assert_eq!(Ext::<i64>::PosInf.to_string(), "+inf");
        assert_eq!(Ext::<i64>::NegInf.to_string(), "-inf");
    }
}
