//! Integer nanosecond quantities and the two time axes of the model.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A signed duration or offset in whole nanoseconds.
///
/// `Nanos` is the base quantity for everything measured in time units:
/// message delays, delay bounds, start offsets and clock readings all reduce
/// to it. The representation is a signed 64-bit count of nanoseconds, which
/// covers roughly ±292 years — far more than any execution this workspace
/// simulates.
///
/// Arithmetic panics on overflow (debug and release): overflowing a
/// ±292-year range indicates corrupted input, and silently wrapping would
/// destroy the exactness guarantees the rest of the workspace relies on.
///
/// # Examples
///
/// ```
/// use clocksync_time::Nanos;
///
/// let d = Nanos::from_millis(3) - Nanos::from_micros(500);
/// assert_eq!(d, Nanos::from_micros(2_500));
/// assert_eq!(d.as_nanos(), 2_500_000);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Nanos(i64);

impl Nanos {
    /// The zero duration.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable duration.
    pub const MAX: Nanos = Nanos(i64::MAX);
    /// The smallest (most negative) representable duration.
    pub const MIN: Nanos = Nanos(i64::MIN);

    /// Creates a duration from a raw nanosecond count.
    ///
    /// ```
    /// use clocksync_time::Nanos;
    /// assert_eq!(Nanos::new(1_000).as_micros_f64(), 1.0);
    /// ```
    pub const fn new(nanos: i64) -> Self {
        Nanos(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    ///
    /// # Panics
    ///
    /// Panics if the result overflows `i64` nanoseconds.
    pub const fn from_micros(micros: i64) -> Self {
        Nanos(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if the result overflows `i64` nanoseconds.
    pub const fn from_millis(millis: i64) -> Self {
        Nanos(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if the result overflows `i64` nanoseconds.
    pub const fn from_secs(secs: i64) -> Self {
        Nanos(secs * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// Returns the value in microseconds as a float (for reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the value in milliseconds as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the value in seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Absolute value.
    ///
    /// # Panics
    ///
    /// Panics if `self` is [`Nanos::MIN`] (whose absolute value is not
    /// representable).
    pub fn abs(self) -> Nanos {
        Nanos(self.0.checked_abs().expect("Nanos::abs overflow"))
    }

    /// Checked addition, returning `None` on overflow.
    pub fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_add(rhs.0).map(Nanos)
    }

    /// Checked subtraction, returning `None` on overflow.
    pub fn checked_sub(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_sub(rhs.0).map(Nanos)
    }

    /// Checked negation, returning `None` for [`Nanos::MIN`] (whose
    /// negation is not representable).
    pub fn checked_neg(self) -> Option<Nanos> {
        self.0.checked_neg().map(Nanos)
    }

    /// Checked multiplication by an integer factor, returning `None` on
    /// overflow.
    pub fn checked_mul(self, factor: i64) -> Option<Nanos> {
        self.0.checked_mul(factor).map(Nanos)
    }

    /// Checked absolute value, returning `None` for [`Nanos::MIN`].
    pub fn checked_abs(self) -> Option<Nanos> {
        self.0.checked_abs().map(Nanos)
    }

    /// Returns `true` if the duration is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, factor: i64) -> Nanos {
        Nanos(self.0.saturating_mul(factor))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Nanos) -> Nanos {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Nanos) -> Nanos {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0;
        let abs = n.unsigned_abs();
        if abs >= 1_000_000_000 && abs.is_multiple_of(1_000_000) {
            write!(f, "{}.{:03}s", n / 1_000_000_000, (abs / 1_000_000) % 1_000)
        } else if abs >= 1_000_000 && abs.is_multiple_of(1_000) {
            write!(f, "{}.{:03}ms", n / 1_000_000, (abs / 1_000) % 1_000)
        } else if abs >= 1_000 && abs.is_multiple_of(1_000) {
            write!(f, "{}us", n / 1_000)
        } else {
            write!(f, "{n}ns")
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.checked_add(rhs.0).expect("Nanos addition overflow"))
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(
            self.0
                .checked_sub(rhs.0)
                .expect("Nanos subtraction overflow"),
        )
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        *self = *self - rhs;
    }
}

impl Neg for Nanos {
    type Output = Nanos;
    fn neg(self) -> Nanos {
        Nanos(self.0.checked_neg().expect("Nanos negation overflow"))
    }
}

impl Mul<i64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: i64) -> Nanos {
        Nanos(
            self.0
                .checked_mul(rhs)
                .expect("Nanos multiplication overflow"),
        )
    }
}

impl Div<i64> for Nanos {
    type Output = Nanos;
    /// Integer division (truncating toward zero). For exact halves use
    /// [`crate::Ratio`] instead.
    fn div(self, rhs: i64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

/// A point on a processor's *local clock* axis.
///
/// In the paper's model a processor's clock starts at `0` when the processor
/// starts and advances at the rate of real time; the processor only ever
/// observes `ClockTime` values. Keeping this a distinct type from
/// [`RealTime`] makes it a compile error to conflate what a processor can
/// see with what only the outside observer can see.
///
/// ```
/// use clocksync_time::{ClockTime, Nanos};
/// let t = ClockTime::ZERO + Nanos::from_millis(5);
/// assert_eq!(t - ClockTime::ZERO, Nanos::from_millis(5));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ClockTime(Nanos);

/// A point on the *real time* axis (the outside observer's clock).
///
/// Real times appear only in the execution/simulation layers and in
/// evaluation code; the synchronization algorithm itself never reads one.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct RealTime(Nanos);

macro_rules! time_point {
    ($ty:ident) => {
        impl $ty {
            /// The origin of this time axis.
            pub const ZERO: $ty = $ty(Nanos::ZERO);

            /// Creates a time point from an offset from the axis origin.
            pub const fn from_offset(offset: Nanos) -> Self {
                $ty(offset)
            }

            /// Creates a time point `nanos` nanoseconds after the origin.
            pub const fn from_nanos(nanos: i64) -> Self {
                $ty(Nanos::new(nanos))
            }

            /// Creates a time point `micros` microseconds after the origin.
            pub const fn from_micros(micros: i64) -> Self {
                $ty(Nanos::from_micros(micros))
            }

            /// Creates a time point `millis` milliseconds after the origin.
            pub const fn from_millis(millis: i64) -> Self {
                $ty(Nanos::from_millis(millis))
            }

            /// Creates a time point `secs` seconds after the origin.
            pub const fn from_secs(secs: i64) -> Self {
                $ty(Nanos::from_secs(secs))
            }

            /// Returns the offset of this point from the axis origin.
            pub const fn offset(self) -> Nanos {
                self.0
            }

            /// Returns the raw nanosecond offset from the axis origin.
            pub const fn as_nanos(self) -> i64 {
                self.0.as_nanos()
            }

            /// Returns the earlier of two time points.
            pub fn min(self, other: $ty) -> $ty {
                if self <= other {
                    self
                } else {
                    other
                }
            }

            /// Returns the later of two time points.
            pub fn max(self, other: $ty) -> $ty {
                if self >= other {
                    self
                } else {
                    other
                }
            }

            /// Checked difference between two points on this axis,
            /// returning `None` when `self - rhs` overflows. Ingestion
            /// paths fed untrusted clock readings use this instead of the
            /// panicking `Sub` operator.
            pub fn checked_sub(self, rhs: $ty) -> Option<Nanos> {
                self.0.checked_sub(rhs.0)
            }
        }

        impl Add<Nanos> for $ty {
            type Output = $ty;
            fn add(self, rhs: Nanos) -> $ty {
                $ty(self.0 + rhs)
            }
        }

        impl AddAssign<Nanos> for $ty {
            fn add_assign(&mut self, rhs: Nanos) {
                self.0 += rhs;
            }
        }

        impl Sub<Nanos> for $ty {
            type Output = $ty;
            fn sub(self, rhs: Nanos) -> $ty {
                $ty(self.0 - rhs)
            }
        }

        impl Sub for $ty {
            type Output = Nanos;
            fn sub(self, rhs: $ty) -> Nanos {
                self.0 - rhs.0
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

time_point!(ClockTime);
time_point!(RealTime);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Nanos::from_micros(1).as_nanos(), 1_000);
        assert_eq!(Nanos::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Nanos::from_secs(-2).as_nanos(), -2_000_000_000);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Nanos::from_millis(5);
        let b = Nanos::from_millis(2);
        assert_eq!(a + b, Nanos::from_millis(7));
        assert_eq!(a - b, Nanos::from_millis(3));
        assert_eq!(-a, Nanos::from_millis(-5));
        assert_eq!(a * 3, Nanos::from_millis(15));
        assert_eq!(a / 5, Nanos::from_millis(1));
    }

    #[test]
    fn min_max_abs() {
        let a = Nanos::new(-7);
        let b = Nanos::new(3);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.abs(), Nanos::new(7));
        assert!(a.is_negative());
        assert!(!b.is_negative());
    }

    #[test]
    fn checked_ops_detect_overflow() {
        assert_eq!(Nanos::MAX.checked_add(Nanos::new(1)), None);
        assert_eq!(Nanos::MIN.checked_sub(Nanos::new(1)), None);
        assert_eq!(
            Nanos::new(1).checked_add(Nanos::new(2)),
            Some(Nanos::new(3))
        );
        assert_eq!(Nanos::MIN.checked_neg(), None);
        assert_eq!(Nanos::new(-3).checked_neg(), Some(Nanos::new(3)));
        assert_eq!(Nanos::MAX.checked_mul(2), None);
        assert_eq!(Nanos::new(4).checked_mul(3), Some(Nanos::new(12)));
        assert_eq!(Nanos::MIN.checked_abs(), None);
        assert_eq!(Nanos::new(-5).checked_abs(), Some(Nanos::new(5)));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn add_overflow_panics() {
        let _ = Nanos::MAX + Nanos::new(1);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Nanos = (1..=4).map(Nanos::new).sum();
        assert_eq!(total, Nanos::new(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Nanos::new(5).to_string(), "5ns");
        assert_eq!(Nanos::from_micros(7).to_string(), "7us");
        assert_eq!(Nanos::from_millis(1).to_string(), "1.000ms");
        assert_eq!(Nanos::from_secs(2).to_string(), "2.000s");
        assert_eq!(Nanos::from_millis(1500).to_string(), "1.500s");
        assert_eq!(Nanos::new(-5).to_string(), "-5ns");
    }

    #[test]
    fn clock_and_real_time_are_distinct_axes() {
        let c = ClockTime::from_nanos(100);
        let r = RealTime::from_nanos(100);
        assert_eq!(c + Nanos::new(50) - c, Nanos::new(50));
        assert_eq!(r - RealTime::ZERO, Nanos::new(100));
        assert_eq!(c.offset(), Nanos::new(100));
        assert_eq!(r.max(RealTime::ZERO), r);
        assert_eq!(r.min(RealTime::ZERO), RealTime::ZERO);
    }

    #[test]
    fn time_point_ordering() {
        assert!(RealTime::from_nanos(1) < RealTime::from_nanos(2));
        assert!(ClockTime::from_nanos(-1) < ClockTime::ZERO);
    }

    #[test]
    fn time_point_checked_sub() {
        let far = ClockTime::from_nanos(i64::MAX);
        let deep = ClockTime::from_nanos(i64::MIN);
        assert_eq!(far.checked_sub(deep), None);
        assert_eq!(
            ClockTime::from_nanos(10).checked_sub(ClockTime::from_nanos(3)),
            Some(Nanos::new(7))
        );
        assert_eq!(
            RealTime::from_nanos(1).checked_sub(RealTime::from_nanos(2)),
            Some(Nanos::new(-1))
        );
    }
}
