//! An exact `i128` rational number.
//!
//! The workspace avoids external big-number crates; delay observations are
//! `i64` nanoseconds and the only divisions performed by the algorithms are
//! by cycle lengths (`≤ n`) and by `2` (the round-trip bias estimator), so
//! an `i128` numerator/denominator pair normalized by gcd has enormous
//! headroom. All operations are checked and panic on (practically
//! unreachable) overflow rather than silently losing exactness.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::Nanos;

/// An exact rational number with `i128` numerator and denominator.
///
/// Invariants: the denominator is strictly positive and
/// `gcd(|num|, den) == 1`. These are established by every constructor and
/// preserved by every operation, so [`PartialEq`]/[`Hash`] agree with
/// mathematical equality.
///
/// # Examples
///
/// ```
/// use clocksync_time::Ratio;
///
/// let third = Ratio::new(1, 3);
/// assert_eq!(third + third + third, Ratio::from_int(1));
/// assert_eq!(Ratio::new(2, 6), third);
/// assert!(Ratio::new(-1, 2) < Ratio::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ratio {
    num: i128,
    den: i128,
}

const fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    if a < 0 {
        -a
    } else {
        a
    }
}

impl Ratio {
    /// The rational zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates the rational `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Ratio {
        assert!(den != 0, "Ratio denominator must be nonzero");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Ratio { num, den }
    }

    /// Creates the integer rational `n / 1`.
    pub const fn from_int(n: i128) -> Ratio {
        Ratio { num: n, den: 1 }
    }

    /// Returns the numerator (in lowest terms, sign-carrying).
    pub const fn numerator(self) -> i128 {
        self.num
    }

    /// Returns the denominator (in lowest terms, strictly positive).
    pub const fn denominator(self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is an integer.
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Returns `true` if the value is zero.
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Returns `true` if the value is strictly negative.
    pub const fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Returns `true` if the value is strictly positive.
    pub const fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Absolute value.
    pub fn abs(self) -> Ratio {
        Ratio {
            num: self.num.checked_abs().expect("Ratio::abs overflow"),
            den: self.den,
        }
    }

    /// The smaller of two rationals.
    pub fn min(self, other: Ratio) -> Ratio {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two rationals.
    pub fn max(self, other: Ratio) -> Ratio {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Converts to `f64` (for reporting only; may round).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Rounds to the nearest whole [`Nanos`] (ties away from zero).
    ///
    /// # Panics
    ///
    /// Panics if the result does not fit in `i64` nanoseconds.
    pub fn round_nanos(self) -> Nanos {
        let q = self.num / self.den;
        let r = self.num % self.den;
        let rounded = if 2 * r.abs() >= self.den {
            q + r.signum()
        } else {
            q
        };
        Nanos::new(i64::try_from(rounded).expect("Ratio does not fit in Nanos"))
    }

    /// Floor to whole nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the result does not fit in `i64` nanoseconds.
    pub fn floor_nanos(self) -> Nanos {
        let mut q = self.num / self.den;
        if self.num % self.den != 0 && self.num < 0 {
            q -= 1;
        }
        Nanos::new(i64::try_from(q).expect("Ratio does not fit in Nanos"))
    }

    /// Ceiling to whole nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the result does not fit in `i64` nanoseconds.
    pub fn ceil_nanos(self) -> Nanos {
        let mut q = self.num / self.den;
        if self.num % self.den != 0 && self.num > 0 {
            q += 1;
        }
        Nanos::new(i64::try_from(q).expect("Ratio does not fit in Nanos"))
    }

    /// Checked addition, `None` on `i128` overflow.
    pub fn checked_add(self, rhs: Ratio) -> Option<Ratio> {
        let g = gcd(self.den, rhs.den);
        let lcm_factor = rhs.den / g;
        let den = self.den.checked_mul(lcm_factor)?;
        let a = self.num.checked_mul(lcm_factor)?;
        let b = rhs.num.checked_mul(self.den / g)?;
        Some(Ratio::new(a.checked_add(b)?, den))
    }

    /// Checked multiplication, `None` on `i128` overflow.
    pub fn checked_mul(self, rhs: Ratio) -> Option<Ratio> {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Ratio::new(num, den))
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::ZERO
    }
}

impl From<Nanos> for Ratio {
    fn from(n: Nanos) -> Ratio {
        Ratio::from_int(n.as_nanos() as i128)
    }
}

impl From<i64> for Ratio {
    fn from(n: i64) -> Ratio {
        Ratio::from_int(n as i128)
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        self.checked_add(rhs).expect("Ratio addition overflow")
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self + (-rhs)
    }
}

impl SubAssign for Ratio {
    fn sub_assign(&mut self, rhs: Ratio) {
        *self = *self - rhs;
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: self.num.checked_neg().expect("Ratio negation overflow"),
            den: self.den,
        }
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        self.checked_mul(rhs)
            .expect("Ratio multiplication overflow")
    }
}

impl Div for Ratio {
    type Output = Ratio;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: Ratio) -> Ratio {
        assert!(!rhs.is_zero(), "Ratio division by zero");
        self * Ratio::new(rhs.den, rhs.num)
    }
}

impl Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ZERO, Add::add)
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // Compare a/b vs c/d via a·(d/g) vs c·(b/g); the gcd-reduced i128
        // cross products almost always fit. When they do not (adversarial
        // denominators from long exact-arithmetic chains), fall back to a
        // full 256-bit magnitude comparison — comparison can always be
        // answered exactly even when the products cannot be represented.
        let g = gcd(self.den, other.den);
        let ld = other.den / g;
        let rd = self.den / g;
        match (self.num.checked_mul(ld), other.num.checked_mul(rd)) {
            (Some(lhs), Some(rhs)) => lhs.cmp(&rhs),
            _ => {
                // Denominators are strictly positive, so each product's sign
                // is its numerator's sign; only equal-sign pairs need the
                // wide magnitude comparison.
                let (sa, sc) = (self.num.signum(), other.num.signum());
                if sa != sc {
                    return sa.cmp(&sc);
                }
                let lhs = wide_mul(self.num.unsigned_abs(), ld as u128);
                let rhs = wide_mul(other.num.unsigned_abs(), rd as u128);
                if sa >= 0 {
                    lhs.cmp(&rhs)
                } else {
                    rhs.cmp(&lhs)
                }
            }
        }
    }
}

/// Full 256-bit product of two unsigned 128-bit values as `(hi, lo)` limbs;
/// the tuple order makes lexicographic `Ord` a magnitude comparison.
fn wide_mul(a: u128, b: u128) -> (u128, u128) {
    const MASK: u128 = (1 << 64) - 1;
    let (ah, al) = (a >> 64, a & MASK);
    let (bh, bl) = (b >> 64, b & MASK);
    let ll = al * bl;
    let lh = al * bh;
    let hl = ah * bl;
    let mid = (ll >> 64) + (lh & MASK) + (hl & MASK);
    let lo = (mid << 64) | (ll & MASK);
    let hi = ah * bh + (lh >> 64) + (hl >> 64) + (mid >> 64);
    (hi, lo)
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, -4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(2, -4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(0, -7), Ratio::ZERO);
        assert_eq!(Ratio::new(6, 3).denominator(), 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Ratio::new(1, 6);
        let b = Ratio::new(1, 3);
        assert_eq!(a + b, Ratio::new(1, 2));
        assert_eq!(b - a, a);
        assert_eq!(a * b, Ratio::new(1, 18));
        assert_eq!(b / a, Ratio::from_int(2));
        assert_eq!(-a, Ratio::new(-1, 6));
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::new(-1, 3));
        assert!(Ratio::new(7, 7) == Ratio::ONE);
        assert_eq!(Ratio::new(3, 4).max(Ratio::new(2, 3)), Ratio::new(3, 4));
        assert_eq!(Ratio::new(3, 4).min(Ratio::new(2, 3)), Ratio::new(2, 3));
    }

    #[test]
    fn rounding() {
        assert_eq!(Ratio::new(5, 2).round_nanos(), Nanos::new(3));
        assert_eq!(Ratio::new(-5, 2).round_nanos(), Nanos::new(-3));
        assert_eq!(Ratio::new(7, 3).round_nanos(), Nanos::new(2));
        assert_eq!(Ratio::new(7, 3).floor_nanos(), Nanos::new(2));
        assert_eq!(Ratio::new(7, 3).ceil_nanos(), Nanos::new(3));
        assert_eq!(Ratio::new(-7, 3).floor_nanos(), Nanos::new(-3));
        assert_eq!(Ratio::new(-7, 3).ceil_nanos(), Nanos::new(-2));
        assert_eq!(Ratio::from_int(4).round_nanos(), Nanos::new(4));
    }

    #[test]
    fn predicates() {
        assert!(Ratio::ZERO.is_zero());
        assert!(Ratio::new(-1, 5).is_negative());
        assert!(Ratio::new(1, 5).is_positive());
        assert!(Ratio::from_int(3).is_integer());
        assert!(!Ratio::new(1, 3).is_integer());
        assert_eq!(Ratio::new(-3, 4).abs(), Ratio::new(3, 4));
    }

    #[test]
    fn conversions() {
        assert_eq!(Ratio::from(Nanos::new(42)), Ratio::from_int(42));
        assert_eq!(Ratio::from(7i64), Ratio::from_int(7));
        assert_eq!(Ratio::new(1, 2).to_f64(), 0.5);
    }

    #[test]
    fn display() {
        assert_eq!(Ratio::from_int(5).to_string(), "5");
        assert_eq!(Ratio::new(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn sum_of_iterator() {
        let s: Ratio = (1..=3).map(|k| Ratio::new(1, k)).sum();
        assert_eq!(s, Ratio::new(11, 6));
    }

    #[test]
    fn comparison_survives_cross_multiplication_overflow() {
        // Adversarial denominators: the gcd of 2^100 and 2^100 + 2 is only
        // 2, so the reduced cross products are ≈ 2^199 and overflow i128.
        // x = 1 + 1/2^100 and y = 1 + 1/(2^100 + 2); x is larger.
        let big = 1i128 << 100;
        let x = Ratio::new(big + 1, big);
        let y = Ratio::new(big + 3, big + 2);
        assert!(x > y);
        assert!(y < x);
        assert_eq!(x.cmp(&x), Ordering::Equal);
        assert_eq!(y.cmp(&y), Ordering::Equal);
        // Negative mirror images reverse the order.
        assert!(-x < -y);
        assert_eq!((-x).cmp(&(-y)), Ordering::Less);
        // min/max route through cmp.
        assert_eq!(x.max(y), x);
        assert_eq!((-x).min(-y), -x);
    }

    #[test]
    fn comparison_overflow_on_one_side_only() {
        // Only the right-hand cross product overflows: 3·2^100 fits but
        // (2^100 − 1)·(2^100 + 1) = 2^200 − 1 does not.
        let big = 1i128 << 100;
        let small = Ratio::new(3, big + 1);
        let near_one = Ratio::new(big - 1, big);
        assert!(small < near_one);
        assert!(near_one > small);
        // Opposite signs with unrepresentable magnitudes decide by sign.
        assert!(-near_one < small);
        assert!(Ratio::new(-(big + 1), big) < Ratio::new(big + 3, big + 2));
    }

    #[test]
    fn wide_mul_matches_known_products() {
        assert_eq!(wide_mul(0, u128::MAX), (0, 0));
        assert_eq!(wide_mul(1, u128::MAX), (0, u128::MAX));
        assert_eq!(wide_mul(1 << 64, 1 << 64), (1, 0));
        assert_eq!(wide_mul(u128::MAX, u128::MAX), (u128::MAX - 1, 1));
        assert_eq!(wide_mul(u128::MAX, 2), (1, u128::MAX - 1));
    }

    #[test]
    fn checked_ops_catch_overflow() {
        let big = Ratio::from_int(i128::MAX);
        assert!(big.checked_add(Ratio::ONE).is_none());
        assert!(big.checked_mul(Ratio::from_int(2)).is_none());
        assert_eq!(
            Ratio::new(1, 2).checked_add(Ratio::new(1, 2)),
            Some(Ratio::ONE)
        );
    }
}
