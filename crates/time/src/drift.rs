//! Drift-aware decay arithmetic: estimates that widen as clocks drift.
//!
//! The paper's estimates are *instantaneous*: an `m̃ls`/`m̃s` bound is
//! exact at the moment the views were recorded and silently assumes the
//! clocks never move again. Real oscillators drift by parts-per-million,
//! so a bound certified at time `t₀` is only sound at a later time `t`
//! if it is widened by the drift the clocks may have accumulated over
//! `Δt = t − t₀`. This module provides the two primitives that make
//! those decayed queries exact:
//!
//! * [`DriftBound`] — a declared worst-case drift rate `ρ̄` in ppm, with
//!   the exact decay product `ρ̄·Δt/10⁶` as a [`Ratio`];
//! * [`DriftingEstimate`] — an upper estimate carrying its validity
//!   timestamp and decay rate, queryable at any later (or earlier) real
//!   time; the answer is the estimate plus the accumulated decay and is
//!   therefore still a sound upper bound.
//!
//! A zero rate degenerates bit-exactly to the drift-free value: the
//! decay term is the exact rational `0`, and adding it is the identity
//! on normalized [`Ratio`]s.

use crate::{Ext, ExtRatio, Nanos, Ratio, RealTime};

/// A worst-case clock drift rate `ρ̄`, in parts per million.
///
/// `DriftBound` is a *declared bound*, not a measurement: a processor
/// whose clock runs at rate `1 + ρ/10⁶` with `|ρ| ≤ ρ̄` satisfies the
/// bound. Rates are nonnegative by construction (a bound on a
/// magnitude).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DriftBound {
    ppm: i64,
}

impl DriftBound {
    /// The drift-free bound: decays are exactly zero.
    pub const ZERO: DriftBound = DriftBound { ppm: 0 };

    /// A bound of `ppm` parts per million.
    ///
    /// # Panics
    ///
    /// Panics if `ppm` is negative — a drift *bound* is a magnitude.
    pub fn from_ppm(ppm: i64) -> DriftBound {
        assert!(ppm >= 0, "a drift bound is a magnitude, got {ppm} ppm");
        DriftBound { ppm }
    }

    /// The bound in parts per million.
    pub fn ppm(self) -> i64 {
        self.ppm
    }

    /// Whether this is the drift-free bound.
    pub fn is_zero(self) -> bool {
        self.ppm == 0
    }

    /// The larger of two bounds.
    #[must_use]
    pub fn max(self, other: DriftBound) -> DriftBound {
        if self.ppm >= other.ppm {
            self
        } else {
            other
        }
    }

    /// The combined bound of two independently drifting clocks: their
    /// mutual divergence rate is at most the sum of the individual
    /// rates.
    #[must_use]
    pub fn combined(self, other: DriftBound) -> DriftBound {
        DriftBound {
            ppm: self.ppm + other.ppm,
        }
    }

    /// The exact worst-case reading drift over an elapsed interval:
    /// `ρ̄·|Δt|/10⁶` as a rational, with no rounding. The magnitude is
    /// used so querying *before* the validity instant also widens —
    /// sound in both directions.
    pub fn decay_over(self, dt: Nanos) -> Ratio {
        Ratio::new(
            i128::from(dt.abs().as_nanos()) * i128::from(self.ppm),
            1_000_000,
        )
    }
}

/// An upper estimate with a validity timestamp and a decay rate.
///
/// `value` is sound at `valid_at`; at any other real time `t` the sound
/// bound is `value + rate·|t − valid_at|/10⁶` ([`DriftingEstimate::value_at`]).
/// The query is O(1): one multiplication and one rational addition,
/// independent of how the estimate was derived.
///
/// # Examples
///
/// ```
/// use clocksync_time::{DriftBound, DriftingEstimate, Ext, Nanos, Ratio, RealTime};
///
/// let est = DriftingEstimate::new(
///     Ext::Finite(Ratio::from_int(1_000)),
///     RealTime::ZERO,
///     DriftBound::from_ppm(100),
/// );
/// // One second later the bound has decayed by 100ppm × 1s = 100µs.
/// let later = est.value_at(RealTime::ZERO + Nanos::from_secs(1));
/// assert_eq!(later, Ext::Finite(Ratio::from_int(1_000 + 100_000)));
/// // A zero-rate estimate never decays, bit-exactly.
/// let frozen = est.with_rate(DriftBound::ZERO);
/// assert_eq!(frozen.value_at(RealTime::ZERO + Nanos::from_secs(3600)), est.value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftingEstimate {
    value: ExtRatio,
    valid_at: RealTime,
    rate: DriftBound,
}

impl DriftingEstimate {
    /// An estimate `value`, exact at `valid_at`, decaying at `rate`.
    pub fn new(value: ExtRatio, valid_at: RealTime, rate: DriftBound) -> DriftingEstimate {
        DriftingEstimate {
            value,
            valid_at,
            rate,
        }
    }

    /// A drift-free estimate (rate zero): `value_at` is constant.
    pub fn pinned(value: ExtRatio, valid_at: RealTime) -> DriftingEstimate {
        DriftingEstimate::new(value, valid_at, DriftBound::ZERO)
    }

    /// The undecayed value (exact at [`DriftingEstimate::valid_at`]).
    pub fn value(&self) -> ExtRatio {
        self.value
    }

    /// The instant at which [`DriftingEstimate::value`] is exact.
    pub fn valid_at(&self) -> RealTime {
        self.valid_at
    }

    /// The decay rate.
    pub fn rate(&self) -> DriftBound {
        self.rate
    }

    /// The same estimate with a different decay rate.
    #[must_use]
    pub fn with_rate(&self, rate: DriftBound) -> DriftingEstimate {
        DriftingEstimate { rate, ..*self }
    }

    /// The sound bound at real time `t`: the value widened by the drift
    /// accumulated since (or until) the validity instant. Infinite
    /// values stay infinite — `+∞` cannot decay further.
    pub fn value_at(&self, t: RealTime) -> ExtRatio {
        match self.value {
            Ext::Finite(v) => Ext::Finite(v + self.rate.decay_over(t - self.valid_at)),
            inf => inf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_is_exact_rational_arithmetic() {
        let rate = DriftBound::from_ppm(3);
        // 3ppm over 1ns is 3/10⁶ — not representable in integer nanos,
        // exact as a rational.
        assert_eq!(rate.decay_over(Nanos::new(1)), Ratio::new(3, 1_000_000));
        assert_eq!(
            rate.decay_over(Nanos::from_secs(2)),
            Ratio::from_int(6_000)
        );
        // Magnitude: querying before the validity instant widens too.
        assert_eq!(
            rate.decay_over(Nanos::new(-1_000_000)),
            Ratio::from_int(3)
        );
    }

    #[test]
    fn zero_rate_is_bit_exact_identity() {
        let v = Ext::Finite(Ratio::new(7, 3));
        let est = DriftingEstimate::pinned(v, RealTime::from_nanos(5));
        for dt in [0i64, 1, 1_000_000_000, -273] {
            assert_eq!(est.value_at(RealTime::from_nanos(5 + dt)), v);
        }
    }

    #[test]
    fn infinite_estimates_stay_infinite() {
        let est = DriftingEstimate::new(
            Ext::PosInf,
            RealTime::ZERO,
            DriftBound::from_ppm(1_000),
        );
        assert_eq!(est.value_at(RealTime::from_nanos(i64::MAX / 2)), Ext::PosInf);
    }

    #[test]
    fn combined_and_max_compose_rates() {
        let a = DriftBound::from_ppm(30);
        let b = DriftBound::from_ppm(50);
        assert_eq!(a.combined(b).ppm(), 80);
        assert_eq!(a.max(b), b);
        assert!(DriftBound::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    #[should_panic(expected = "magnitude")]
    fn negative_rates_are_rejected() {
        let _ = DriftBound::from_ppm(-1);
    }
}
