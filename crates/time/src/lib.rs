//! Exact time arithmetic for the `clocksync` workspace.
//!
//! The clock-synchronization algorithms of Attiya, Herzberg and Rajsbaum
//! (PODC 1993) are *exact*: the achievable precision equals a maximum cycle
//! mean, and the computed corrections achieve it with equality. Reproducing
//! those equalities with floating point would force every test to reason
//! about rounding. Instead this crate provides:
//!
//! * [`Nanos`] — a signed integer nanosecond quantity (durations, offsets),
//! * [`ClockTime`] / [`RealTime`] — newtypes distinguishing the two time
//!   axes of the paper's model (a processor's local clock vs. the outside
//!   observer's real time),
//! * [`Ratio`] — an exact `i128` rational (cycle means and the round-trip
//!   bias estimator divide by small integers),
//! * [`Ext`] — the extension of an ordered quantity with `±∞` (missing
//!   observations yield `d̃max = −∞`; absent bounds yield `ub = +∞`;
//!   unsynchronizable instances have precision `+∞`).
//!
//! # Examples
//!
//! ```
//! use clocksync_time::{Nanos, Ratio, Ext};
//!
//! let rtt = Nanos::from_micros(150) + Nanos::from_micros(250);
//! let mean = Ratio::from(rtt) / Ratio::from_int(2);
//! assert_eq!(mean, Ratio::from(Nanos::from_micros(200)));
//!
//! let ub: Ext<Nanos> = Ext::PosInf;
//! assert!(ub > Ext::Finite(Nanos::from_secs(3600)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drift;
mod ext;
mod nanos;
mod ratio;

pub use drift::{DriftBound, DriftingEstimate};
pub use ext::Ext;
pub use nanos::{ClockTime, Nanos, RealTime};
pub use ratio::Ratio;

/// Extended rational: the weight domain used by the graph substrate and the
/// synchronizer (`m̃ls`, `m̃s`, `A_max`, corrections).
pub type ExtRatio = Ext<Ratio>;

/// Extended nanoseconds: the domain of delay observations and delay bounds.
pub type ExtNanos = Ext<Nanos>;
