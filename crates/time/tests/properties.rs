//! Property-based tests for the exact arithmetic substrate.

use clocksync_time::{Ext, Nanos, Ratio};
use proptest::prelude::*;

/// Rationals with numerators/denominators small enough that arbitrary
/// three-term expressions stay far from `i128` overflow.
fn ratio() -> impl Strategy<Value = Ratio> {
    (-1_000_000_000_000i128..1_000_000_000_000, 1i128..10_000).prop_map(|(n, d)| Ratio::new(n, d))
}

fn nanos() -> impl Strategy<Value = Nanos> {
    (-1_000_000_000_000i64..1_000_000_000_000).prop_map(Nanos::new)
}

fn ext_ratio() -> impl Strategy<Value = Ext<Ratio>> {
    prop_oneof![
        1 => Just(Ext::NegInf),
        8 => ratio().prop_map(Ext::Finite),
        1 => Just(Ext::PosInf),
    ]
}

proptest! {
    #[test]
    fn ratio_addition_commutes(a in ratio(), b in ratio()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn ratio_addition_associates(a in ratio(), b in ratio(), c in ratio()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn ratio_add_sub_roundtrip(a in ratio(), b in ratio()) {
        prop_assert_eq!(a + b - b, a);
    }

    #[test]
    fn ratio_mul_distributes(a in ratio(), b in ratio(), c in ratio()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn ratio_div_inverts_mul(a in ratio(), b in ratio()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!(a * b / b, a);
    }

    #[test]
    fn ratio_normalized_invariants(a in ratio()) {
        prop_assert!(a.denominator() > 0);
        // Re-normalizing is a no-op.
        prop_assert_eq!(Ratio::new(a.numerator(), a.denominator()), a);
    }

    #[test]
    fn ratio_ordering_is_translation_invariant(a in ratio(), b in ratio(), c in ratio()) {
        prop_assert_eq!(a.cmp(&b), (a + c).cmp(&(b + c)));
    }

    #[test]
    fn ratio_floor_ceil_round_bracket(a in ratio()) {
        let fl = Ratio::from(a.floor_nanos());
        let ce = Ratio::from(a.ceil_nanos());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(ce - fl <= Ratio::ONE);
        let rd = Ratio::from(a.round_nanos());
        prop_assert!((rd - a).abs() <= Ratio::new(1, 2));
    }

    #[test]
    fn nanos_ratio_embedding_is_homomorphic(a in nanos(), b in nanos()) {
        prop_assert_eq!(Ratio::from(a) + Ratio::from(b), Ratio::from(a + b));
        prop_assert_eq!(Ratio::from(a).cmp(&Ratio::from(b)), a.cmp(&b));
    }

    #[test]
    fn ext_min_max_lattice(a in ext_ratio(), b in ext_ratio()) {
        prop_assert_eq!(a.min(b).max(a.max(b)), a.max(b));
        prop_assert!(a.min(b) <= a && a <= a.max(b));
    }

    #[test]
    fn ext_negation_is_involution(a in ext_ratio()) {
        prop_assert_eq!(-(-a), a);
    }

    #[test]
    fn ext_negation_reverses_order(a in ext_ratio(), b in ext_ratio()) {
        prop_assert_eq!(a < b, -b < -a);
    }
}
