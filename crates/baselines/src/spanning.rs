//! Spanning-tree extraction shared by the tree-propagating baselines.

use clocksync::Network;
use clocksync_model::ProcessorId;

use crate::BaselineError;

/// Computes a BFS spanning tree of the declared links, rooted at processor
/// 0, returned as `(parent, child)` pairs in visit order.
///
/// # Errors
///
/// Returns [`BaselineError::Disconnected`] if some processor is not
/// reachable from processor 0 over declared links.
pub fn spanning_tree(network: &Network) -> Result<Vec<(ProcessorId, ProcessorId)>, BaselineError> {
    let n = network.n();
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut adjacency = vec![Vec::new(); n];
    for (p, q, _) in network.links() {
        adjacency[p.index()].push(q);
        adjacency[q.index()].push(p);
    }
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::from([ProcessorId(0)]);
    seen[0] = true;
    let mut tree = Vec::with_capacity(n - 1);
    while let Some(v) = queue.pop_front() {
        let mut nbs = adjacency[v.index()].clone();
        nbs.sort_unstable();
        for nb in nbs {
            if !seen[nb.index()] {
                seen[nb.index()] = true;
                tree.push((v, nb));
                queue.push_back(nb);
            }
        }
    }
    if let Some(i) = seen.iter().position(|&s| !s) {
        return Err(BaselineError::Disconnected {
            processor: ProcessorId(i),
        });
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksync::LinkAssumption;

    fn net(n: usize, edges: &[(usize, usize)]) -> Network {
        let mut b = Network::builder(n);
        for &(x, y) in edges {
            b = b.link(ProcessorId(x), ProcessorId(y), LinkAssumption::no_bounds());
        }
        b.build()
    }

    #[test]
    fn tree_of_a_path() {
        let t = spanning_tree(&net(3, &[(0, 1), (1, 2)])).unwrap();
        assert_eq!(
            t,
            vec![
                (ProcessorId(0), ProcessorId(1)),
                (ProcessorId(1), ProcessorId(2))
            ]
        );
    }

    #[test]
    fn tree_of_a_cycle_has_n_minus_one_edges() {
        let t = spanning_tree(&net(4, &[(0, 1), (1, 2), (2, 3), (0, 3)])).unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn disconnected_network_is_reported() {
        let err = spanning_tree(&net(4, &[(0, 1), (2, 3)])).unwrap_err();
        assert_eq!(
            err,
            BaselineError::Disconnected {
                processor: ProcessorId(2)
            }
        );
    }

    #[test]
    fn trivial_networks() {
        assert!(spanning_tree(&net(0, &[])).unwrap().is_empty());
        assert!(spanning_tree(&net(1, &[])).unwrap().is_empty());
    }
}
