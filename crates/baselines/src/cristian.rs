//! Cristian's probabilistic clock reading, unfiltered.

use clocksync::Network;
use clocksync_model::{ProcessorId, ViewSet};
use clocksync_time::{Nanos, Ratio};

use crate::{spanning_tree, Baseline, BaselineError};

/// Cristian's algorithm (Dist. Comp. 1989) composed over a spanning tree.
///
/// Uses only the **most recent** round trip per link: with the latest
/// forward sample `d̃_f` and latest backward sample `d̃_b`,
/// `θ(q vs p) = (d̃_b − d̃_f)/2` — the same midpoint rule as NTP but
/// without the minimum filter, so a single slow sample degrades it. This
/// is the natural "no history" comparator for experiment E8 (more probes
/// should help the optimal algorithm monotonically; Cristian gets no such
/// benefit).
#[derive(Debug, Clone, Copy, Default)]
pub struct CristianLast;

impl CristianLast {
    /// Creates the estimator.
    pub fn new() -> CristianLast {
        CristianLast
    }
}

impl Baseline for CristianLast {
    fn name(&self) -> &'static str {
        "cristian-last"
    }

    fn corrections(&self, network: &Network, views: &ViewSet) -> Result<Vec<Ratio>, BaselineError> {
        if views.len() != network.n() {
            return Err(BaselineError::WrongProcessorCount {
                expected: network.n(),
                actual: views.len(),
            });
        }
        let messages = views.message_observations();
        // Latest estimated delay per directed pair (by sender clock).
        let latest = |src: ProcessorId, dst: ProcessorId| -> Option<Nanos> {
            messages
                .iter()
                .filter(|m| m.src == src && m.dst == dst)
                .max_by_key(|m| (m.send_clock, m.id))
                .map(|m| m.recv_clock - m.send_clock)
        };
        let tree = spanning_tree(network)?;
        let mut x = vec![Ratio::ZERO; network.n()];
        for (parent, child) in tree {
            let (Some(fwd), Some(bwd)) = (latest(parent, child), latest(child, parent)) else {
                let (a, b) = if parent < child {
                    (parent, child)
                } else {
                    (child, parent)
                };
                return Err(BaselineError::MissingTraffic { a, b });
            };
            let theta = (Ratio::from(bwd) - Ratio::from(fwd)) * Ratio::new(1, 2);
            x[child.index()] = x[parent.index()] + theta;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksync::LinkAssumption;
    use clocksync_model::ExecutionBuilder;
    use clocksync_time::RealTime;

    const P: ProcessorId = ProcessorId(0);
    const Q: ProcessorId = ProcessorId(1);

    fn net() -> Network {
        Network::builder(2)
            .link(P, Q, LinkAssumption::no_bounds())
            .build()
    }

    #[test]
    fn uses_only_the_latest_round_trip() {
        // First round trip is clean, second is skewed: Cristian follows
        // the second while NTP's filter would have kept the first.
        let exec = ExecutionBuilder::new(2)
            .round_trips(
                P,
                Q,
                1,
                RealTime::from_nanos(1_000),
                Nanos::new(10),
                Nanos::new(500),
                Nanos::new(500),
            )
            .round_trips(
                P,
                Q,
                1,
                RealTime::from_nanos(50_000),
                Nanos::new(10),
                Nanos::new(500),
                Nanos::new(2_500),
            )
            .build()
            .unwrap();
        let x = CristianLast::new()
            .corrections(&net(), exec.views())
            .unwrap();
        // Latest samples: fwd 500, bwd 2500 ⇒ θ = 1000; truth is 0.
        assert_eq!(exec.discrepancy(&x), Ratio::from_int(1_000));
    }

    #[test]
    fn clean_symmetric_round_trip_is_exact() {
        let exec = ExecutionBuilder::new(2)
            .start(Q, RealTime::from_nanos(777))
            .round_trips(
                P,
                Q,
                1,
                RealTime::from_nanos(1_000),
                Nanos::new(10),
                Nanos::new(300),
                Nanos::new(300),
            )
            .build()
            .unwrap();
        let x = CristianLast::new()
            .corrections(&net(), exec.views())
            .unwrap();
        assert_eq!(exec.discrepancy(&x), Ratio::ZERO);
    }

    #[test]
    fn missing_direction_is_an_error() {
        let exec = ExecutionBuilder::new(2)
            .message(P, Q, RealTime::from_nanos(1_000), Nanos::new(10))
            .build()
            .unwrap();
        let err = CristianLast::new()
            .corrections(&net(), exec.views())
            .unwrap_err();
        assert_eq!(err, BaselineError::MissingTraffic { a: P, b: Q });
    }
}
