//! Per-link optimal corrections composed along a spanning tree.

use clocksync::{estimated_local_shifts, Network};
#[cfg(test)]
use clocksync_model::ProcessorId;
use clocksync_model::ViewSet;
use clocksync_time::{Ext, Ratio};

use crate::{spanning_tree, Baseline, BaselineError};

/// The "locally optimal, globally naive" baseline.
///
/// Each spanning-tree link is solved *exactly* as a two-processor instance
/// of the paper — the optimal per-link correction difference is the
/// midpoint of the local feasibility window,
///
/// `x_child − x_parent = ( m̃ls(child, parent) − m̃ls(parent, child) ) / 2`
///
/// (for a single exchange under known bounds this is precisely the
/// Halpern–Megiddo–Munshi rule) — and the per-link answers are composed
/// along the tree with no global adjustment.
///
/// On a tree this coincides with the optimal algorithm. On graphs with
/// cycles it discards the cross-path information the global SHIFTS
/// computation exploits, and experiment E3 measures the resulting gap.
/// Unlike [`crate::NtpMinFilter`], it *does* use the declared assumptions,
/// so it stays unbiased on links that are asymmetric by declaration.
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeMidpoint;

impl TreeMidpoint {
    /// Creates the estimator.
    pub fn new() -> TreeMidpoint {
        TreeMidpoint
    }
}

impl Baseline for TreeMidpoint {
    fn name(&self) -> &'static str {
        "tree-midpoint"
    }

    fn corrections(&self, network: &Network, views: &ViewSet) -> Result<Vec<Ratio>, BaselineError> {
        if views.len() != network.n() {
            return Err(BaselineError::WrongProcessorCount {
                expected: network.n(),
                actual: views.len(),
            });
        }
        let local = estimated_local_shifts(network, &views.link_observations());
        let tree = spanning_tree(network)?;
        let mut x = vec![Ratio::ZERO; network.n()];
        for (parent, child) in tree {
            let fwd = local[(parent.index(), child.index())];
            let bwd = local[(child.index(), parent.index())];
            let (Ext::Finite(fwd), Ext::Finite(bwd)) = (fwd, bwd) else {
                let (a, b) = if parent < child {
                    (parent, child)
                } else {
                    (child, parent)
                };
                return Err(BaselineError::MissingTraffic { a, b });
            };
            x[child.index()] = x[parent.index()] + (bwd - fwd) * Ratio::new(1, 2);
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksync::{DelayRange, LinkAssumption, Synchronizer};
    use clocksync_model::ExecutionBuilder;
    use clocksync_time::{Nanos, RealTime};

    const P: ProcessorId = ProcessorId(0);
    const Q: ProcessorId = ProcessorId(1);
    const R: ProcessorId = ProcessorId(2);

    fn bounded(n: usize, edges: &[(usize, usize)], lo: i64, hi: i64) -> Network {
        let mut b = Network::builder(n);
        for &(x, y) in edges {
            b = b.link(
                ProcessorId(x),
                ProcessorId(y),
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(lo), Nanos::new(hi))),
            );
        }
        b.build()
    }

    #[test]
    fn matches_optimal_on_a_tree() {
        let net = bounded(3, &[(0, 1), (1, 2)], 0, 1_000);
        let exec = ExecutionBuilder::new(3)
            .start(Q, RealTime::from_nanos(123))
            .start(R, RealTime::from_nanos(-77))
            .round_trips(
                P,
                Q,
                1,
                RealTime::from_nanos(5_000),
                Nanos::new(10),
                Nanos::new(400),
                Nanos::new(300),
            )
            .round_trips(
                Q,
                R,
                1,
                RealTime::from_nanos(6_000),
                Nanos::new(10),
                Nanos::new(200),
                Nanos::new(800),
            )
            .build()
            .unwrap();
        let ours = TreeMidpoint::new().corrections(&net, exec.views()).unwrap();
        let optimal = Synchronizer::new(net.clone())
            .synchronize(exec.views())
            .unwrap();
        // On a tree the two are equally good (same ρ̄ = optimum).
        assert_eq!(
            optimal.rho_bar(&ours),
            optimal.rho_bar(optimal.corrections())
        );
    }

    #[test]
    fn handles_asymmetric_declared_bounds_exactly() {
        // Link declared asymmetric: forward [100,100], backward [900,900].
        // Unlike NTP, the midpoint of the *feasibility window* is exact.
        let net = Network::builder(2)
            .link(
                P,
                Q,
                LinkAssumption::bounds(
                    DelayRange::new(Nanos::new(100), Nanos::new(100)),
                    DelayRange::new(Nanos::new(900), Nanos::new(900)),
                ),
            )
            .build();
        let exec = ExecutionBuilder::new(2)
            .start(Q, RealTime::from_nanos(50))
            .round_trips(
                P,
                Q,
                1,
                RealTime::from_nanos(1_000),
                Nanos::new(10),
                Nanos::new(100),
                Nanos::new(900),
            )
            .build()
            .unwrap();
        let x = TreeMidpoint::new().corrections(&net, exec.views()).unwrap();
        assert_eq!(exec.discrepancy(&x), Ratio::ZERO);
    }

    #[test]
    fn suboptimal_on_cycles() {
        // Triangle where the 0–2 link is much tighter than the 0–1–2 path;
        // the tree baseline (rooted BFS) may ignore it, the optimal cannot.
        let net = bounded(3, &[(0, 1), (1, 2), (0, 2)], 0, 10_000);
        let exec = ExecutionBuilder::new(3)
            .round_trips(
                P,
                Q,
                1,
                RealTime::from_nanos(5_000),
                Nanos::new(10),
                Nanos::new(4_000),
                Nanos::new(4_100),
            )
            .round_trips(
                Q,
                R,
                1,
                RealTime::from_nanos(6_000),
                Nanos::new(10),
                Nanos::new(3_900),
                Nanos::new(4_000),
            )
            .round_trips(
                P,
                R,
                1,
                RealTime::from_nanos(7_000),
                Nanos::new(10),
                Nanos::new(100),
                Nanos::new(80),
            )
            .build()
            .unwrap();
        let base = TreeMidpoint::new().corrections(&net, exec.views()).unwrap();
        let optimal = Synchronizer::new(net).synchronize(exec.views()).unwrap();
        let rb_base = optimal.rho_bar(&base);
        let rb_opt = optimal.rho_bar(optimal.corrections());
        assert!(rb_opt <= rb_base);
        assert!(
            rb_opt < rb_base,
            "expected a strict gap: base={rb_base} opt={rb_opt}"
        );
    }

    #[test]
    fn silent_link_is_an_error() {
        let net = bounded(2, &[(0, 1)], 0, 10);
        let exec = ExecutionBuilder::new(2).build().unwrap();
        let err = TreeMidpoint::new()
            .corrections(&net, exec.views())
            .unwrap_err();
        assert_eq!(err, BaselineError::MissingTraffic { a: P, b: Q });
    }
}
