//! Baseline clock-synchronization algorithms.
//!
//! The paper's introduction positions its optimal algorithm against the
//! estimators practitioners actually deploy. This crate implements those
//! comparators over the *same* view/observation interface as the optimal
//! synchronizer, so experiments can race them head-to-head on identical
//! executions:
//!
//! * [`NtpMinFilter`] — the NTP offset estimator: per link, take the
//!   round-trip sample(s) with minimal delay and estimate the peer offset
//!   as half the difference of the two directions' estimated delays
//!   (Mills 1991). Implicitly assumes symmetric delays.
//! * [`CristianLast`] — Cristian's algorithm (1989): estimate from the most
//!   recent round trip only, no filtering.
//! * [`TreeMidpoint`] — per-link *optimal* midpoint corrections (each link
//!   solved exactly as a two-processor instance of the paper, which for a
//!   single exchange with known bounds is Halpern–Megiddo–Munshi),
//!   composed naively along a spanning tree. Optimal on trees; ignores the
//!   cross-link information a cyclic topology provides.
//!
//! Every baseline returns corrections in the same convention as
//! [`clocksync::SyncOutcome::corrections`], so
//! [`clocksync::SyncOutcome::rho_bar`] and
//! [`clocksync_model::Execution::discrepancy`] evaluate them directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cristian;
mod ntp;
mod spanning;
mod tree_midpoint;

pub use cristian::CristianLast;
pub use ntp::NtpMinFilter;
pub use spanning::spanning_tree;
pub use tree_midpoint::TreeMidpoint;

use std::error::Error;
use std::fmt;

use clocksync::Network;
use clocksync_model::{ProcessorId, ViewSet};
use clocksync_time::Ratio;

/// Failure modes shared by the baseline estimators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The declared links do not connect all processors.
    Disconnected {
        /// A processor unreachable from processor 0.
        processor: ProcessorId,
    },
    /// A spanning-tree link carried no round trip, so the estimator has no
    /// sample to work with.
    MissingTraffic {
        /// Lower endpoint of the silent link.
        a: ProcessorId,
        /// Higher endpoint of the silent link.
        b: ProcessorId,
    },
    /// The view set size does not match the network.
    WrongProcessorCount {
        /// Expected processor count.
        expected: usize,
        /// Actual processor count.
        actual: usize,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Disconnected { processor } => {
                write!(f, "{processor} is unreachable over declared links")
            }
            BaselineError::MissingTraffic { a, b } => {
                write!(f, "no usable samples on link {a}-{b}")
            }
            BaselineError::WrongProcessorCount { expected, actual } => {
                write!(f, "expected {expected} processors, got {actual}")
            }
        }
    }
}

impl Error for BaselineError {}

/// A clock-synchronization algorithm producing corrections from views.
pub trait Baseline {
    /// Human-readable algorithm name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Computes one correction per processor.
    ///
    /// # Errors
    ///
    /// Returns a [`BaselineError`] when the estimator cannot produce
    /// corrections (disconnected network, missing samples).
    fn corrections(&self, network: &Network, views: &ViewSet) -> Result<Vec<Ratio>, BaselineError>;
}
