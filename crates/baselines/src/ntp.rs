//! The NTP-style minimum-filter offset estimator.

use clocksync::Network;
#[cfg(test)]
use clocksync_model::ProcessorId;
use clocksync_model::ViewSet;
use clocksync_time::{Ext, Ratio};

use crate::{spanning_tree, Baseline, BaselineError};

/// NTP's peer-offset estimator composed over a spanning tree.
///
/// Per link `{p, q}` NTP computes, from the minimum-delay samples in each
/// direction, the offset estimate
///
/// `θ(q vs p) = ( d̃min(q,p) − d̃min(p,q) ) / 2`,
///
/// which is exact when the two directions' minimal delays happen to be
/// equal — the *symmetric delay* assumption. On asymmetric links the
/// estimate is silently biased by half the asymmetry, which is precisely
/// the failure mode the paper's round-trip-bias model quantifies and the
/// experiments measure.
///
/// # Examples
///
/// See the `baselines_vs_optimal` integration suite and experiment E4.
#[derive(Debug, Clone, Copy, Default)]
pub struct NtpMinFilter;

impl NtpMinFilter {
    /// Creates the estimator.
    pub fn new() -> NtpMinFilter {
        NtpMinFilter
    }
}

impl Baseline for NtpMinFilter {
    fn name(&self) -> &'static str {
        "ntp-min-filter"
    }

    fn corrections(&self, network: &Network, views: &ViewSet) -> Result<Vec<Ratio>, BaselineError> {
        if views.len() != network.n() {
            return Err(BaselineError::WrongProcessorCount {
                expected: network.n(),
                actual: views.len(),
            });
        }
        let obs = views.link_observations();
        let tree = spanning_tree(network)?;
        let mut x = vec![Ratio::ZERO; network.n()];
        for (parent, child) in tree {
            let fwd = obs.estimated_min(parent, child);
            let bwd = obs.estimated_min(child, parent);
            let (Ext::Finite(fwd), Ext::Finite(bwd)) = (fwd, bwd) else {
                let (a, b) = if parent < child {
                    (parent, child)
                } else {
                    (child, parent)
                };
                return Err(BaselineError::MissingTraffic { a, b });
            };
            // θ = estimate of (S_child − S_parent); corrections must keep
            // S − x aligned, so x_child = x_parent + θ.
            let theta = (Ratio::from(bwd) - Ratio::from(fwd)) * Ratio::new(1, 2);
            x[child.index()] = x[parent.index()] + theta;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksync::LinkAssumption;
    use clocksync_model::ExecutionBuilder;
    use clocksync_time::{Nanos, RealTime};

    const P: ProcessorId = ProcessorId(0);
    const Q: ProcessorId = ProcessorId(1);

    fn net(n: usize, edges: &[(usize, usize)]) -> Network {
        let mut b = Network::builder(n);
        for &(x, y) in edges {
            b = b.link(ProcessorId(x), ProcessorId(y), LinkAssumption::no_bounds());
        }
        b.build()
    }

    #[test]
    fn symmetric_delays_recover_the_true_offset() {
        // σ = 300, equal delays each way ⇒ NTP is exact.
        let exec = ExecutionBuilder::new(2)
            .start(Q, RealTime::from_nanos(300))
            .round_trips(
                P,
                Q,
                2,
                RealTime::from_nanos(1_000),
                Nanos::from_micros(10),
                Nanos::new(500),
                Nanos::new(500),
            )
            .build()
            .unwrap();
        let x = NtpMinFilter::new()
            .corrections(&net(2, &[(0, 1)]), exec.views())
            .unwrap();
        assert_eq!(exec.discrepancy(&x), Ratio::ZERO);
    }

    #[test]
    fn asymmetric_delays_bias_by_half_the_asymmetry() {
        // Forward 100, backward 900 ⇒ error = |100 − 900|/2 = 400.
        let exec = ExecutionBuilder::new(2)
            .round_trips(
                P,
                Q,
                1,
                RealTime::from_nanos(1_000),
                Nanos::from_micros(10),
                Nanos::new(100),
                Nanos::new(900),
            )
            .build()
            .unwrap();
        let x = NtpMinFilter::new()
            .corrections(&net(2, &[(0, 1)]), exec.views())
            .unwrap();
        assert_eq!(exec.discrepancy(&x), Ratio::from_int(400));
    }

    #[test]
    fn min_filter_uses_best_samples_per_direction() {
        // Two noisy round trips; the minimum of each direction is clean.
        let exec = ExecutionBuilder::new(2)
            .start(Q, RealTime::from_nanos(1_000))
            .message(P, Q, RealTime::from_nanos(10_000), Nanos::new(500))
            .message(Q, P, RealTime::from_nanos(11_000), Nanos::new(2_500))
            .message(P, Q, RealTime::from_nanos(20_000), Nanos::new(1_700))
            .message(Q, P, RealTime::from_nanos(21_000), Nanos::new(500))
            .build()
            .unwrap();
        let x = NtpMinFilter::new()
            .corrections(&net(2, &[(0, 1)]), exec.views())
            .unwrap();
        // Minimum delays are 500 both ways ⇒ exact recovery.
        assert_eq!(exec.discrepancy(&x), Ratio::ZERO);
    }

    #[test]
    fn propagates_over_a_tree() {
        let exec = ExecutionBuilder::new(3)
            .start(Q, RealTime::from_nanos(100))
            .start(ProcessorId(2), RealTime::from_nanos(-250))
            .round_trips(
                P,
                Q,
                1,
                RealTime::from_nanos(1_000),
                Nanos::new(10),
                Nanos::new(40),
                Nanos::new(40),
            )
            .round_trips(
                Q,
                ProcessorId(2),
                1,
                RealTime::from_nanos(2_000),
                Nanos::new(10),
                Nanos::new(70),
                Nanos::new(70),
            )
            .build()
            .unwrap();
        let x = NtpMinFilter::new()
            .corrections(&net(3, &[(0, 1), (1, 2)]), exec.views())
            .unwrap();
        assert_eq!(exec.discrepancy(&x), Ratio::ZERO);
    }

    #[test]
    fn silent_tree_link_is_an_error() {
        let exec = ExecutionBuilder::new(2).build().unwrap();
        let err = NtpMinFilter::new()
            .corrections(&net(2, &[(0, 1)]), exec.views())
            .unwrap_err();
        assert_eq!(err, BaselineError::MissingTraffic { a: P, b: Q });
    }

    #[test]
    fn size_mismatch_is_an_error() {
        let exec = ExecutionBuilder::new(2).build().unwrap();
        let err = NtpMinFilter::new()
            .corrections(&net(3, &[(0, 1)]), exec.views())
            .unwrap_err();
        assert!(matches!(err, BaselineError::WrongProcessorCount { .. }));
    }
}
