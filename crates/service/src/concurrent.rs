//! The concurrent ingestion engine: one dedicated worker thread per
//! shard, fed by bounded MPSC queues with explicit backpressure.
//!
//! [`SyncService`] applies batches on the caller's thread; this module
//! moves each shard onto its own worker so ingestion scales with cores.
//! The moving parts:
//!
//! * **Ownership** — every worker owns its shard's domain state outright
//!   (a single-shard [`SyncService`]); nothing is shared, nothing is
//!   locked on the apply path. The front-end routes by the placement the
//!   [`ShardMap`](crate::ShardMap) cached at registration time.
//! * **Backpressure** — each shard's queue is a bounded
//!   [`std::sync::mpsc::sync_channel`]. [`ConcurrentService::ingest`]
//!   blocks when the queue is full; [`ConcurrentService::try_ingest`]
//!   returns [`ServiceError::Backpressure`] instead, so callers that must
//!   not stall (a wire acceptor shedding load, a latency-sensitive
//!   producer) get a typed signal rather than an invisible wait.
//! * **Group commit** — a worker drains every batch already queued (up to
//!   [`ServiceConfig::max_coalesce`]) and applies the batches of each
//!   domain as **one** merged pass: one closure/`A_max` maintenance pass
//!   and one retention GC for the whole group instead of one per batch.
//!   Outcomes are bit-identical to sequential per-batch application —
//!   the estimators depend on the evidence only through per-link
//!   aggregates, which are order- and chunking-independent (proptested in
//!   `tests/concurrent.rs`) — so coalescing is pure amortization: it
//!   raises saturated throughput even on a single core, and stacks with
//!   thread parallelism on many.
//! * **Receipts** — `ingest` returns a [`PendingReceipt`] immediately
//!   (the pipeline stays full); the receipt arrives on a reply channel
//!   when the worker applies the batch. [`ConcurrentService::ingest_all`]
//!   aggregates many receipts over one shared reply channel. Within a
//!   coalesced group the GC accounting (`gc_dropped`,
//!   `samples_compacted`) is attributed to the group's last batch per
//!   domain; `applied` is always exact per batch.
//! * **Ordering** — each domain's batches apply in enqueue order (one
//!   FIFO queue per shard, one shard per domain). Queries
//!   ([`ConcurrentService::outcome`], [`ConcurrentService::domain_stats`])
//!   ride the same queue, so an outcome observes every batch enqueued
//!   before it — no stale reads.
//! * **Drain & shutdown** — dropping the senders ends the stream;
//!   workers drain everything still queued before exiting, so no receipt
//!   is lost and no batch is dropped. [`ConcurrentService::shutdown`]
//!   joins the workers and returns their final [`PoolStats`];
//!   [`ConcurrentService::stats`] is the non-destructive barrier version.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use clocksync::{Network, SyncOutcome};
use clocksync_obs::Recorder;

use crate::{
    DomainId, DomainStats, IngestReceipt, ObservationBatch, ServiceError, ShardMap, SyncService,
};

/// Parameters of a [`ConcurrentService`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Shards, each with its own worker thread and queue.
    pub shards: usize,
    /// Per-directed-link retention window (messages and samples).
    pub window: usize,
    /// Bounded depth of each shard's ingestion queue, in batches. When a
    /// queue is full, `ingest` blocks and `try_ingest` reports
    /// [`ServiceError::Backpressure`].
    pub queue_depth: usize,
    /// Most batches a worker merges into one apply pass (group commit).
    /// Larger groups amortize the per-batch closure/GC maintenance
    /// further but delay receipts; the default keeps worst-case receipt
    /// latency at one group.
    pub max_coalesce: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            shards: 4,
            window: 64,
            queue_depth: 256,
            max_coalesce: 32,
        }
    }
}

/// What one worker did, snapshotted at a barrier or at shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStats {
    /// The worker's shard.
    pub shard: usize,
    /// Domains the worker owns.
    pub domains: usize,
    /// Ingest jobs processed (including rejected batches).
    pub batches: u64,
    /// Observations applied.
    pub messages: u64,
    /// Batches rejected with a typed error.
    pub errors: u64,
    /// Coalesced apply groups flushed.
    pub groups: u64,
    /// Largest group flushed, in batches.
    pub max_group: usize,
    /// Messages retained in the worker's view windows right now.
    pub retained_messages: usize,
    /// Evidence samples retained by the worker's synchronizers right now.
    pub retained_samples: usize,
    /// Approximate bytes held by the worker's view windows right now.
    pub approx_retained_bytes: usize,
    /// Highest `retained_messages` this worker observed after any flush.
    pub peak_retained_messages: usize,
}

/// Aggregated worker statistics (from [`ConcurrentService::stats`] or
/// [`ConcurrentService::shutdown`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Per-worker statistics, indexed by shard.
    pub workers: Vec<WorkerStats>,
}

impl PoolStats {
    /// Observations applied across all workers.
    pub fn messages(&self) -> u64 {
        self.workers.iter().map(|w| w.messages).sum()
    }

    /// Ingest jobs processed across all workers.
    pub fn batches(&self) -> u64 {
        self.workers.iter().map(|w| w.batches).sum()
    }

    /// Batches rejected with typed errors across all workers.
    pub fn errors(&self) -> u64 {
        self.workers.iter().map(|w| w.errors).sum()
    }

    /// Messages retained across every worker's view windows.
    pub fn total_retained_messages(&self) -> usize {
        self.workers.iter().map(|w| w.retained_messages).sum()
    }

    /// Evidence samples retained across every worker's synchronizers.
    pub fn total_retained_samples(&self) -> usize {
        self.workers.iter().map(|w| w.retained_samples).sum()
    }

    /// Approximate bytes held across every worker's view windows.
    pub fn approx_retained_bytes(&self) -> usize {
        self.workers.iter().map(|w| w.approx_retained_bytes).sum()
    }

    /// Sum of each worker's peak retention. The workers hit their peaks
    /// at different moments, so this bounds (from above) the true global
    /// peak — the right side to compare against the analytic cap.
    pub fn peak_retained_messages(&self) -> usize {
        self.workers.iter().map(|w| w.peak_retained_messages).sum()
    }
}

/// One queued ingest: the batch, its reply slot, and enough bookkeeping
/// to aggregate receipts and measure queue latency.
struct IngestJob {
    batch: ObservationBatch,
    index: usize,
    enqueued: Instant,
    reply: mpsc::Sender<(usize, Result<IngestReceipt, ServiceError>)>,
}

enum Job {
    Ingest(IngestJob),
    Register {
        domain: DomainId,
        network: Network,
        reply: mpsc::Sender<Result<(), ServiceError>>,
    },
    Outcome {
        domain: DomainId,
        reply: mpsc::Sender<Result<SyncOutcome, ServiceError>>,
    },
    Forget {
        domain: DomainId,
        p: clocksync_model::ProcessorId,
        q: clocksync_model::ProcessorId,
        reply: mpsc::Sender<Result<crate::ForgetReceipt, ServiceError>>,
    },
    DomainStats {
        domain: DomainId,
        reply: mpsc::Sender<Option<DomainStats>>,
    },
    Stats {
        reply: mpsc::Sender<WorkerStats>,
    },
}

/// A receipt that has been enqueued but not yet applied. Obtained from
/// [`ConcurrentService::ingest`] / [`ConcurrentService::try_ingest`];
/// redeem it with [`PendingReceipt::wait`].
#[derive(Debug)]
pub struct PendingReceipt {
    shard: usize,
    rx: mpsc::Receiver<(usize, Result<IngestReceipt, ServiceError>)>,
}

impl PendingReceipt {
    /// Blocks until the worker applied (or rejected) the batch.
    ///
    /// # Errors
    ///
    /// The batch's own typed error, or [`ServiceError::Stopped`] if the
    /// worker died before replying.
    pub fn wait(self) -> Result<IngestReceipt, ServiceError> {
        match self.rx.recv() {
            Ok((_, result)) => result,
            Err(_) => Err(ServiceError::Stopped { shard: self.shard }),
        }
    }
}

/// The sharded ingestion engine with one worker thread per shard.
///
/// All methods take `&self`: the front-end is safe to share across
/// producer threads (a TCP acceptor's connection handlers, parallel load
/// drivers), and the per-shard FIFO queues serialize each domain's
/// batches regardless of which producer enqueued them.
///
/// # Examples
///
/// ```
/// use clocksync::{BatchObservation, DelayRange, LinkAssumption, Network};
/// use clocksync_model::ProcessorId;
/// use clocksync_service::{ConcurrentService, ObservationBatch, ServiceConfig};
/// use clocksync_time::{ClockTime, Nanos};
///
/// let (p, q) = (ProcessorId(0), ProcessorId(1));
/// let net = Network::builder(2)
///     .link(p, q, LinkAssumption::symmetric_bounds(
///         DelayRange::new(Nanos::ZERO, Nanos::new(1_000))))
///     .build();
/// let svc = ConcurrentService::start(ServiceConfig {
///     shards: 2,
///     ..ServiceConfig::default()
/// });
/// svc.register_domain("tenant-a", net)?;
/// let pending = svc.ingest(ObservationBatch::new("tenant-a", vec![
///     BatchObservation { src: p, dst: q,
///         send_clock: ClockTime::from_nanos(1_000),
///         recv_clock: ClockTime::from_nanos(1_400) },
///     BatchObservation { src: q, dst: p,
///         send_clock: ClockTime::from_nanos(1_500),
///         recv_clock: ClockTime::from_nanos(2_100) },
/// ]))?;
/// assert_eq!(pending.wait()?.applied, 2);
/// let outcome = svc.outcome("tenant-a")?; // observes the batch above
/// assert!(outcome.precision().is_finite());
/// let stats = svc.shutdown();
/// assert_eq!(stats.messages(), 2);
/// # Ok::<(), clocksync_service::ServiceError>(())
/// ```
#[derive(Debug)]
pub struct ConcurrentService {
    map: RwLock<ShardMap>,
    senders: Vec<SyncSender<Job>>,
    depths: Vec<Arc<AtomicUsize>>,
    handles: Mutex<Vec<JoinHandle<WorkerStats>>>,
    recorder: Recorder,
    config: ServiceConfig,
}

impl ConcurrentService {
    /// Spawns one worker thread per shard and returns the front-end.
    ///
    /// # Panics
    ///
    /// Panics if `shards`, `queue_depth` or `max_coalesce` is zero.
    pub fn start(config: ServiceConfig) -> ConcurrentService {
        ConcurrentService::start_with_recorder(config, Recorder::disabled())
    }

    /// Like [`ConcurrentService::start`], with queue metrics
    /// (`svc.queue_depth` gauge, `svc.ingest_wait` / `svc.batch_latency`
    /// histograms) reported to `recorder`. Instrumentation never changes
    /// what the service computes.
    ///
    /// # Panics
    ///
    /// Panics if `shards`, `queue_depth` or `max_coalesce` is zero.
    pub fn start_with_recorder(config: ServiceConfig, recorder: Recorder) -> ConcurrentService {
        assert!(config.shards > 0, "the service needs at least one shard");
        assert!(config.queue_depth > 0, "queues need a positive depth");
        assert!(config.max_coalesce > 0, "groups need a positive size");
        let mut senders = Vec::with_capacity(config.shards);
        let mut depths = Vec::with_capacity(config.shards);
        let mut handles = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth);
            let depth = Arc::new(AtomicUsize::new(0));
            let worker = Worker {
                shard,
                service: SyncService::new(1, config.window),
                depth: Arc::clone(&depth),
                recorder: recorder.clone(),
                max_coalesce: config.max_coalesce,
                stats: WorkerStats {
                    shard,
                    domains: 0,
                    batches: 0,
                    messages: 0,
                    errors: 0,
                    groups: 0,
                    max_group: 0,
                    retained_messages: 0,
                    retained_samples: 0,
                    approx_retained_bytes: 0,
                    peak_retained_messages: 0,
                },
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("clocksync-shard-{shard}"))
                    .spawn(move || worker.run(rx))
                    .expect("spawning a shard worker thread"),
            );
            senders.push(tx);
            depths.push(depth);
        }
        ConcurrentService {
            map: RwLock::new(ShardMap::new(config.shards)),
            senders,
            depths,
            handles: Mutex::new(handles),
            recorder,
            config,
        }
    }

    /// The number of shards (= worker threads).
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// The per-directed-link retention window.
    pub fn window(&self) -> usize {
        self.config.window
    }

    /// The bounded per-shard queue depth, in batches.
    pub fn queue_depth(&self) -> usize {
        self.config.queue_depth
    }

    /// The shard a domain is (or would be) pinned to.
    pub fn shard_of(&self, domain: &str) -> usize {
        self.map.read().expect("shard map poisoned").route(domain)
    }

    /// Registers a domain on its consistent-hash shard (a blocking
    /// round-trip to the owning worker) and caches the placement so every
    /// later batch routes without re-hashing the ring.
    ///
    /// # Errors
    ///
    /// [`ServiceError::DuplicateDomain`] if the name is taken,
    /// [`ServiceError::Stopped`] if the service is shut down.
    pub fn register_domain(
        &self,
        domain: impl Into<DomainId>,
        network: Network,
    ) -> Result<(), ServiceError> {
        let domain = domain.into();
        let shard = self
            .map
            .write()
            .expect("shard map poisoned")
            .assign(domain.as_str());
        let (tx, rx) = mpsc::channel();
        self.senders[shard]
            .send(Job::Register {
                domain,
                network,
                reply: tx,
            })
            .map_err(|_| ServiceError::Stopped { shard })?;
        rx.recv().map_err(|_| ServiceError::Stopped { shard })?
    }

    /// Enqueues a batch on its domain's shard, **blocking while the
    /// queue is full** (backpressure propagates to the producer). Returns
    /// as soon as the batch is queued; redeem the [`PendingReceipt`] for
    /// the application result.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] if the shard's worker is gone. Batch
    /// validation errors are *not* reported here — they arrive typed on
    /// the receipt, in enqueue order, exactly as sequential ingestion
    /// would report them.
    pub fn ingest(&self, batch: ObservationBatch) -> Result<PendingReceipt, ServiceError> {
        let (tx, rx) = mpsc::channel();
        let pending = self.enqueue(batch, 0, tx, true)?;
        Ok(PendingReceipt { shard: pending, rx })
    }

    /// Non-blocking [`ConcurrentService::ingest`]: if the shard's queue
    /// is full the batch is **not** enqueued and
    /// [`ServiceError::Backpressure`] names the shard and its depth.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Backpressure`] on a full queue,
    /// [`ServiceError::Stopped`] if the shard's worker is gone.
    pub fn try_ingest(&self, batch: ObservationBatch) -> Result<PendingReceipt, ServiceError> {
        let (tx, rx) = mpsc::channel();
        let pending = self.enqueue(batch, 0, tx, false)?;
        Ok(PendingReceipt { shard: pending, rx })
    }

    /// Enqueues many batches (blocking on full queues) and waits for all
    /// receipts, returned in input order. Batches are independent: one
    /// failing validation does not stop the others.
    pub fn ingest_all(
        &self,
        batches: Vec<ObservationBatch>,
    ) -> Vec<Result<IngestReceipt, ServiceError>> {
        let total = batches.len();
        let (tx, rx) = mpsc::channel();
        let mut results: Vec<Option<Result<IngestReceipt, ServiceError>>> =
            (0..total).map(|_| None).collect();
        let mut expected = 0usize;
        for (index, batch) in batches.into_iter().enumerate() {
            match self.enqueue(batch, index, tx.clone(), true) {
                Ok(_) => expected += 1,
                Err(e) => results[index] = Some(Err(e)),
            }
        }
        drop(tx);
        for _ in 0..expected {
            match rx.recv() {
                Ok((index, result)) => results[index] = Some(result),
                // A worker died mid-stream; the remaining slots stay
                // `None` and are reported as `Stopped` below.
                Err(_) => break,
            }
        }
        results
            .into_iter()
            .map(|r| r.unwrap_or(Err(ServiceError::Stopped { shard: usize::MAX })))
            .collect()
    }

    /// The current optimal outcome for one domain. The query rides the
    /// shard's FIFO queue, so it observes every batch enqueued before it.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownDomain`], [`ServiceError::Sync`] when the
    /// domain's evidence contradicts its declared assumptions, or
    /// [`ServiceError::Stopped`] if the worker is gone.
    pub fn outcome(&self, domain: &str) -> Result<SyncOutcome, ServiceError> {
        let shard = self.shard_of(domain);
        let (tx, rx) = mpsc::channel();
        self.senders[shard]
            .send(Job::Outcome {
                domain: DomainId::from(domain),
                reply: tx,
            })
            .map_err(|_| ServiceError::Stopped { shard })?;
        rx.recv().map_err(|_| ServiceError::Stopped { shard })?
    }

    /// Retracts every observation of the undirected link `{p, q}` in one
    /// domain (see [`SyncService::forget_link`]). The retraction rides
    /// the shard's FIFO queue, so it applies after every batch enqueued
    /// before it and before every batch enqueued after — exactly the
    /// sequential interleaving.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownDomain`], [`ServiceError::Model`] for an
    /// out-of-range endpoint, or [`ServiceError::Stopped`] if the worker
    /// is gone.
    pub fn forget_link(
        &self,
        domain: &str,
        p: clocksync_model::ProcessorId,
        q: clocksync_model::ProcessorId,
    ) -> Result<crate::ForgetReceipt, ServiceError> {
        let shard = self.shard_of(domain);
        let (tx, rx) = mpsc::channel();
        self.senders[shard]
            .send(Job::Forget {
                domain: DomainId::from(domain),
                p,
                q,
                reply: tx,
            })
            .map_err(|_| ServiceError::Stopped { shard })?;
        rx.recv().map_err(|_| ServiceError::Stopped { shard })?
    }

    /// Retention statistics for one domain (`None` if unregistered or the
    /// service is stopped), observing every batch enqueued before the
    /// call.
    pub fn domain_stats(&self, domain: &str) -> Option<DomainStats> {
        let shard = self.shard_of(domain);
        let (tx, rx) = mpsc::channel();
        self.senders[shard]
            .send(Job::DomainStats {
                domain: DomainId::from(domain),
                reply: tx,
            })
            .ok()?;
        rx.recv().ok().flatten()
    }

    /// A barrier + statistics snapshot: waits until every worker has
    /// applied everything enqueued before this call, then returns the
    /// aggregated per-worker statistics. The service keeps running.
    pub fn stats(&self) -> PoolStats {
        let mut pending = Vec::with_capacity(self.senders.len());
        for (shard, sender) in self.senders.iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            if sender.send(Job::Stats { reply: tx }).is_ok() {
                pending.push((shard, rx));
            }
        }
        PoolStats {
            workers: pending
                .into_iter()
                .filter_map(|(_, rx)| rx.recv().ok())
                .collect(),
        }
    }

    /// Drains and stops the service: closes every queue, waits for the
    /// workers to apply everything still enqueued (no receipt is lost, no
    /// batch is dropped), joins them, and returns their final statistics.
    pub fn shutdown(self) -> PoolStats {
        let ConcurrentService {
            senders, handles, ..
        } = self;
        drop(senders); // closes the queues; workers drain and exit
        let handles = handles
            .into_inner()
            .expect("worker handles poisoned")
            .into_iter();
        PoolStats {
            workers: handles
                .map(|h| h.join().expect("a shard worker panicked"))
                .collect(),
        }
    }

    /// Routes and enqueues one ingest job; returns the shard it went to.
    fn enqueue(
        &self,
        batch: ObservationBatch,
        index: usize,
        reply: mpsc::Sender<(usize, Result<IngestReceipt, ServiceError>)>,
        blocking: bool,
    ) -> Result<usize, ServiceError> {
        let shard = self.shard_of(batch.domain.as_str());
        let job = Job::Ingest(IngestJob {
            batch,
            index,
            enqueued: Instant::now(),
            reply,
        });
        let depth = self.depths[shard].fetch_add(1, Ordering::Relaxed) + 1;
        let traced = self.recorder.is_enabled();
        if traced {
            self.recorder.gauge("svc.queue_depth", depth as f64);
        }
        let sent = if blocking {
            let started = traced.then(Instant::now);
            let sent = self.senders[shard]
                .send(job)
                .map_err(|_| ServiceError::Stopped { shard });
            if let Some(started) = started {
                self.recorder.observe_ns(
                    "svc.ingest_wait",
                    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                );
            }
            sent
        } else {
            self.senders[shard].try_send(job).map_err(|e| match e {
                TrySendError::Full(_) => ServiceError::Backpressure {
                    shard,
                    depth: self.config.queue_depth,
                },
                TrySendError::Disconnected(_) => ServiceError::Stopped { shard },
            })
        };
        if sent.is_err() {
            self.depths[shard].fetch_sub(1, Ordering::Relaxed);
        }
        sent.map(|()| shard)
    }
}

/// A shard worker: owns its domains' state, applies queued batches in
/// coalesced groups, answers queries in queue order.
struct Worker {
    shard: usize,
    service: SyncService,
    depth: Arc<AtomicUsize>,
    recorder: Recorder,
    max_coalesce: usize,
    stats: WorkerStats,
}

impl Worker {
    fn run(mut self, rx: Receiver<Job>) -> WorkerStats {
        // A non-ingest job pulled out mid-group; processed after the
        // group flushes so queue order is preserved.
        let mut stashed: Option<Job> = None;
        loop {
            let job = match stashed.take() {
                Some(job) => job,
                None => match rx.recv() {
                    Ok(job) => job,
                    // All senders dropped and the queue is drained:
                    // everything enqueued before shutdown was applied.
                    Err(_) => break,
                },
            };
            match job {
                Job::Ingest(first) => {
                    let mut group = vec![first];
                    while group.len() < self.max_coalesce {
                        match rx.try_recv() {
                            Ok(Job::Ingest(job)) => group.push(job),
                            Ok(other) => {
                                stashed = Some(other);
                                break;
                            }
                            Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
                        }
                    }
                    self.flush(group);
                }
                Job::Register {
                    domain,
                    network,
                    reply,
                } => {
                    let result = self.service.register_domain(domain, network);
                    if result.is_ok() {
                        self.stats.domains += 1;
                    }
                    let _ = reply.send(result);
                }
                Job::Outcome { domain, reply } => {
                    let _ = reply.send(self.service.outcome(domain.as_str()));
                }
                Job::Forget {
                    domain,
                    p,
                    q,
                    reply,
                } => {
                    let _ = reply.send(self.service.forget_link(domain.as_str(), p, q));
                }
                Job::DomainStats { domain, reply } => {
                    let stats = self.service.domain_stats(domain.as_str()).map(|mut s| {
                        s.shard = self.shard;
                        s
                    });
                    let _ = reply.send(stats);
                }
                Job::Stats { reply } => {
                    self.refresh_retention();
                    let _ = reply.send(self.stats.clone());
                }
            }
        }
        self.refresh_retention();
        self.stats
    }

    /// Applies one coalesced group: the batches of each domain merge into
    /// a single apply pass (one closure/`A_max` maintenance pass, one
    /// retention GC), receipts go out per batch in enqueue order.
    fn flush(&mut self, group: Vec<IngestJob>) {
        self.depth.fetch_sub(group.len(), Ordering::Relaxed);
        self.stats.batches += group.len() as u64;
        self.stats.groups += 1;
        self.stats.max_group = self.stats.max_group.max(group.len());

        // Partition into per-domain runs, preserving enqueue order within
        // each domain (cross-domain order is immaterial: domains are
        // independent).
        let mut runs: Vec<(DomainId, Vec<IngestJob>)> = Vec::new();
        let mut index: HashMap<DomainId, usize> = HashMap::new();
        for job in group {
            match index.get(&job.batch.domain) {
                Some(&at) => runs[at].1.push(job),
                None => {
                    index.insert(job.batch.domain.clone(), runs.len());
                    runs.push((job.batch.domain.clone(), Vec::from([job])));
                }
            }
        }
        drop(index);

        let traced = self.recorder.is_enabled();
        for (domain, jobs) in runs {
            let results = self.apply_run(&domain, &jobs);
            debug_assert_eq!(results.len(), jobs.len());
            for (job, result) in jobs.into_iter().zip(results) {
                if result.is_err() {
                    self.stats.errors += 1;
                }
                if traced {
                    self.recorder.observe_ns(
                        "svc.batch_latency",
                        u64::try_from(job.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    );
                }
                let _ = job.reply.send((job.index, result));
            }
        }
        self.refresh_retention();
    }

    /// Applies one domain's run of batches, returning one result per
    /// batch in order. The fast path merges the run into a single batch;
    /// if the merged apply rejects (some batch carries invalid
    /// observations), it falls back to sequential per-batch application,
    /// which yields exactly the receipts and typed errors a sequential
    /// ingestion would — rejected batches never touch state, so the two
    /// paths leave identical evidence behind.
    fn apply_run(
        &mut self,
        domain: &DomainId,
        jobs: &[IngestJob],
    ) -> Vec<Result<IngestReceipt, ServiceError>> {
        if jobs.len() > 1 {
            let total = jobs.iter().map(|j| j.batch.observations.len()).sum();
            let mut observations = Vec::with_capacity(total);
            for job in jobs {
                observations.extend_from_slice(&job.batch.observations);
            }
            let merged = ObservationBatch::new(domain.clone(), observations);
            if let Ok(receipt) = self.service.ingest(&merged) {
                self.stats.messages += receipt.applied as u64;
                let last = jobs.len() - 1;
                return jobs
                    .iter()
                    .enumerate()
                    .map(|(i, job)| {
                        Ok(IngestReceipt {
                            domain: domain.clone(),
                            shard: self.shard,
                            applied: job.batch.observations.len(),
                            // Group totals land on the run's last batch;
                            // earlier receipts report zero (the GC ran
                            // once, after the merged apply).
                            gc_dropped: if i == last { receipt.gc_dropped } else { 0 },
                            samples_compacted: if i == last {
                                receipt.samples_compacted
                            } else {
                                0
                            },
                            retained_messages: receipt.retained_messages,
                        })
                    })
                    .collect();
            }
            // Fall through: some batch in the run is invalid; replay
            // sequentially for exact per-batch errors. The failed merged
            // apply recorded nothing (batches apply atomically).
        }
        jobs.iter()
            .map(|job| {
                let result = self.service.ingest(&job.batch).map(|mut receipt| {
                    receipt.shard = self.shard;
                    receipt
                });
                if let Ok(receipt) = &result {
                    self.stats.messages += receipt.applied as u64;
                }
                result
            })
            .collect()
    }

    fn refresh_retention(&mut self) {
        self.stats.retained_messages = self.service.total_retained_messages();
        self.stats.retained_samples = self.service.total_retained_samples();
        self.stats.approx_retained_bytes = self.service.approx_retained_bytes();
        self.stats.peak_retained_messages = self
            .stats
            .peak_retained_messages
            .max(self.stats.retained_messages);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksync::{BatchObservation, DelayRange, LinkAssumption};
    use clocksync_model::ProcessorId;
    use clocksync_time::{ClockTime, Nanos};

    const P: ProcessorId = ProcessorId(0);
    const Q: ProcessorId = ProcessorId(1);

    fn net() -> Network {
        Network::builder(2)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(1_000))),
            )
            .build()
    }

    fn obs(src: ProcessorId, dst: ProcessorId, send: i64, recv: i64) -> BatchObservation {
        BatchObservation {
            src,
            dst,
            send_clock: ClockTime::from_nanos(send),
            recv_clock: ClockTime::from_nanos(recv),
        }
    }

    fn config(shards: usize) -> ServiceConfig {
        ServiceConfig {
            shards,
            window: 8,
            queue_depth: 16,
            max_coalesce: 8,
        }
    }

    #[test]
    fn concurrent_outcome_matches_synchronous_service() {
        let svc = ConcurrentService::start(config(2));
        let mut reference = SyncService::new(2, 8);
        svc.register_domain("a", net()).unwrap();
        reference.register_domain("a", net()).unwrap();
        let mut pending = Vec::new();
        for round in 0..20i64 {
            let t = 1_000 * round;
            let batch = ObservationBatch::new(
                "a",
                vec![
                    obs(P, Q, t, t + 400 + round % 7),
                    obs(Q, P, t + 500, t + 900 - round % 5),
                ],
            );
            reference.ingest(&batch).unwrap();
            pending.push(svc.ingest(batch).unwrap());
        }
        let mut applied = 0;
        for p in pending {
            applied += p.wait().unwrap().applied;
        }
        assert_eq!(applied, 40);
        assert_eq!(svc.outcome("a").unwrap(), reference.outcome("a").unwrap());
        let stats = svc.shutdown();
        assert_eq!(stats.messages(), 40);
        assert_eq!(stats.batches(), 20);
        assert_eq!(stats.errors(), 0);
        assert_eq!(
            stats.total_retained_messages(),
            reference.total_retained_messages()
        );
    }

    #[test]
    fn unknown_and_duplicate_domains_are_typed_errors() {
        let svc = ConcurrentService::start(config(2));
        svc.register_domain("a", net()).unwrap();
        assert!(matches!(
            svc.register_domain("a", net()),
            Err(ServiceError::DuplicateDomain { .. })
        ));
        let pending = svc.ingest(ObservationBatch::new("ghost", vec![])).unwrap();
        assert!(matches!(
            pending.wait(),
            Err(ServiceError::UnknownDomain { .. })
        ));
        assert!(matches!(
            svc.outcome("ghost"),
            Err(ServiceError::UnknownDomain { .. })
        ));
        assert!(svc.domain_stats("ghost").is_none());
        assert!(svc.domain_stats("a").is_some());
        svc.shutdown();
    }

    #[test]
    fn invalid_batches_error_in_order_and_leave_no_trace() {
        let svc = ConcurrentService::start(ServiceConfig {
            shards: 1,
            ..config(1)
        });
        svc.register_domain("a", net()).unwrap();
        // Saturate the queue with a mix of valid and invalid batches so
        // the worker coalesces them into one group, then check each
        // receipt carries exactly the sequential result.
        let batches = vec![
            ObservationBatch::new("a", vec![obs(P, Q, 0, 400)]),
            ObservationBatch::new("a", vec![obs(P, Q, i64::MIN, i64::MAX)]),
            ObservationBatch::new("a", vec![obs(Q, P, 500, 900)]),
            ObservationBatch::new("a", vec![obs(P, Q, -10, 50)]),
            ObservationBatch::new("a", vec![obs(P, Q, 1_000, 1_399)]),
        ];
        let results = svc.ingest_all(batches.clone());
        assert_eq!(results.len(), 5);
        assert!(results[0].is_ok() && results[2].is_ok() && results[4].is_ok());
        assert!(matches!(
            results[1],
            Err(ServiceError::Sync(clocksync::SyncError::Overflow { .. }))
        ));
        assert!(matches!(
            results[3],
            Err(ServiceError::Model(
                clocksync_model::ModelError::UnorderedView { .. }
            ))
        ));
        // Identical to a sequential service fed the same stream.
        let mut reference = SyncService::new(1, 8);
        reference.register_domain("a", net()).unwrap();
        for batch in &batches {
            let _ = reference.ingest(batch);
        }
        assert_eq!(svc.outcome("a").unwrap(), reference.outcome("a").unwrap());
        let stats = svc.shutdown();
        assert_eq!(stats.errors(), 2);
        assert_eq!(stats.messages(), 3);
    }

    #[test]
    fn forget_link_rides_the_queue_and_matches_sequential() {
        let svc = ConcurrentService::start(config(2));
        let mut reference = SyncService::new(2, 8);
        svc.register_domain("a", net()).unwrap();
        reference.register_domain("a", net()).unwrap();
        let batch = ObservationBatch::new("a", vec![obs(P, Q, 0, 400), obs(Q, P, 500, 900)]);
        reference.ingest(&batch).unwrap();
        // Enqueue the batch and the retraction back to back without
        // waiting: FIFO order guarantees the forget observes the batch.
        let pending = svc.ingest(batch).unwrap();
        let receipt = svc.forget_link("a", P, Q).unwrap();
        pending.wait().unwrap();
        assert_eq!(receipt, reference.forget_link("a", P, Q).unwrap());
        assert_eq!(receipt.samples_dropped, 2);
        assert_eq!(svc.outcome("a").unwrap(), reference.outcome("a").unwrap());
        assert!(matches!(
            svc.forget_link("ghost", P, Q),
            Err(ServiceError::UnknownDomain { .. })
        ));
        svc.shutdown();
    }

    #[test]
    fn try_ingest_reports_backpressure_and_blocking_ingest_drains() {
        let svc = ConcurrentService::start(ServiceConfig {
            shards: 1,
            window: 8,
            queue_depth: 2,
            max_coalesce: 4,
        });
        svc.register_domain("a", net()).unwrap();
        // Fill the queue faster than the worker can drain it; eventually
        // a try_ingest must observe a full queue. (The worker may drain
        // between attempts, so loop until backpressure is seen.)
        let mut pending = Vec::new();
        let mut saw_backpressure = false;
        for round in 0..5_000i64 {
            let t = 1_000 * round;
            let batch = ObservationBatch::new("a", vec![obs(P, Q, t, t + 400)]);
            match svc.try_ingest(batch.clone()) {
                Ok(p) => pending.push(p),
                Err(ServiceError::Backpressure { shard, depth }) => {
                    assert_eq!(shard, 0);
                    assert_eq!(depth, 2);
                    saw_backpressure = true;
                    // The blocking path must still get the batch in.
                    pending.push(svc.ingest(batch).unwrap());
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
            if saw_backpressure && round > 16 {
                break;
            }
        }
        assert!(saw_backpressure, "queue of depth 2 never filled");
        let sent = pending.len() as u64;
        for p in pending {
            p.wait().unwrap();
        }
        let stats = svc.shutdown();
        assert_eq!(stats.batches(), sent);
    }

    #[test]
    fn stats_is_a_barrier() {
        let svc = ConcurrentService::start(config(2));
        svc.register_domain("a", net()).unwrap();
        svc.register_domain("b", net()).unwrap();
        let mut pending = Vec::new();
        for round in 0..50i64 {
            let t = 1_000 * round;
            for d in ["a", "b"] {
                pending.push(
                    svc.ingest(ObservationBatch::new(d, vec![obs(P, Q, t, t + 400)]))
                        .unwrap(),
                );
            }
        }
        // Without waiting any receipt: the barrier must observe all 100.
        let stats = svc.stats();
        assert_eq!(stats.batches(), 100);
        assert_eq!(stats.messages(), 100);
        assert_eq!(stats.workers.len(), 2);
        for p in pending {
            p.wait().unwrap();
        }
        svc.shutdown();
    }

    #[test]
    fn ingest_after_shutdown_is_stopped() {
        let svc = ConcurrentService::start(config(1));
        svc.register_domain("a", net()).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.workers[0].domains, 1);
        // Shutdown consumes the service, so `Stopped` is only reachable
        // through a racing clone of a sender — simulate by dropping the
        // service and checking a pre-issued pending receipt still works.
        let pending = svc
            .ingest(ObservationBatch::new("a", vec![obs(P, Q, 0, 400)]))
            .unwrap();
        let final_stats = svc.shutdown();
        assert_eq!(pending.wait().unwrap().applied, 1);
        assert_eq!(final_stats.messages(), 1);
    }
}
