//! Sharded multi-domain ingestion service for clocksync.
//!
//! This crate turns the single-network [`clocksync::OnlineSynchronizer`]
//! into a service that owns many independent *sync domains* at once:
//!
//! * a consistent-hash [`ShardMap`] pins every domain to one shard, so
//!   each domain's batches are applied by a single owner and shards can
//!   run in parallel with no cross-shard locking ([`SyncService::ingest_many`]);
//! * observations arrive as [`ObservationBatch`]es and are applied
//!   atomically in one closure/`A_max` maintenance pass per batch instead
//!   of one relaxation per message;
//! * memory is bounded: each domain keeps a windowed
//!   [`clocksync_model::ViewWindow`] and GCs messages whose evidence is
//!   dominated — the extremal d̃min/d̃max witnesses of every directed link
//!   are always retained, so compaction never loosens any estimate (the
//!   paper's Lemma 6.2 estimators depend only on extremal observations).
//!
//! [`run_soak`] drives sustained batched ingestion from simulated
//! executions and reports throughput plus steady-state retention against
//! the analytic ceiling.
//!
//! # Examples
//!
//! The concurrent engine end to end: start workers, register a domain,
//! ingest one batch, read the optimal outcome, shut down cleanly.
//!
//! ```
//! use clocksync::{BatchObservation, DelayRange, LinkAssumption, Network};
//! use clocksync_model::ProcessorId;
//! use clocksync_service::{ConcurrentService, ObservationBatch, ServiceConfig};
//! use clocksync_time::{ClockTime, Nanos};
//!
//! let (p, q) = (ProcessorId(0), ProcessorId(1));
//! let network = Network::builder(2)
//!     .link(p, q, LinkAssumption::symmetric_bounds(
//!         DelayRange::new(Nanos::new(0), Nanos::new(100))))
//!     .build();
//!
//! let svc = ConcurrentService::start(ServiceConfig {
//!     shards: 2,
//!     window: 64,
//!     queue_depth: 16,
//!     max_coalesce: 4,
//! });
//! svc.register_domain("cell-a", network)?;
//!
//! // One message each way; `ingest` hands back a receipt to wait on.
//! let batch = ObservationBatch::new("cell-a", vec![
//!     BatchObservation {
//!         src: p, dst: q,
//!         send_clock: ClockTime::from_nanos(1_000),
//!         recv_clock: ClockTime::from_nanos(1_040),
//!     },
//!     BatchObservation {
//!         src: q, dst: p,
//!         send_clock: ClockTime::from_nanos(2_000),
//!         recv_clock: ClockTime::from_nanos(2_040),
//!     },
//! ]);
//! let receipt = svc.ingest(batch)?.wait()?;
//! assert_eq!(receipt.applied, 2);
//!
//! let outcome = svc.outcome("cell-a")?;
//! println!("precision: {}", outcome.precision());
//!
//! let stats = svc.shutdown(); // drains queues, joins workers
//! assert_eq!(stats.workers.len(), 2);
//! # Ok::<(), clocksync_service::ServiceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod concurrent;
mod error;
mod service;
mod shard;
mod soak;

pub use batch::{BatchObservation, DomainId, ObservationBatch};
pub use concurrent::{ConcurrentService, PendingReceipt, PoolStats, ServiceConfig, WorkerStats};
pub use error::ServiceError;
pub use service::{DomainStats, ForgetReceipt, IngestReceipt, SyncService};
pub use shard::ShardMap;
pub use soak::{current_rss_bytes, run_soak, run_soak_with_recorder, SoakConfig, SoakReport};
