//! Sharded multi-domain ingestion service for clocksync.
//!
//! This crate turns the single-network [`clocksync::OnlineSynchronizer`]
//! into a service that owns many independent *sync domains* at once:
//!
//! * a consistent-hash [`ShardMap`] pins every domain to one shard, so
//!   each domain's batches are applied by a single owner and shards can
//!   run in parallel with no cross-shard locking ([`SyncService::ingest_many`]);
//! * observations arrive as [`ObservationBatch`]es and are applied
//!   atomically in one closure/`A_max` maintenance pass per batch instead
//!   of one relaxation per message;
//! * memory is bounded: each domain keeps a windowed
//!   [`clocksync_model::ViewWindow`] and GCs messages whose evidence is
//!   dominated — the extremal d̃min/d̃max witnesses of every directed link
//!   are always retained, so compaction never loosens any estimate (the
//!   paper's Lemma 6.2 estimators depend only on extremal observations).
//!
//! [`run_soak`] drives sustained batched ingestion from simulated
//! executions and reports throughput plus steady-state retention against
//! the analytic ceiling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod concurrent;
mod error;
mod service;
mod shard;
mod soak;

pub use batch::{BatchObservation, DomainId, ObservationBatch};
pub use concurrent::{ConcurrentService, PendingReceipt, PoolStats, ServiceConfig, WorkerStats};
pub use error::ServiceError;
pub use service::{DomainStats, IngestReceipt, SyncService};
pub use shard::ShardMap;
pub use soak::{current_rss_bytes, run_soak, run_soak_with_recorder, SoakConfig, SoakReport};
