//! Error type of the ingestion service.

use std::error::Error;
use std::fmt;

use clocksync::SyncError;
use clocksync_model::ModelError;

use crate::DomainId;

/// Failure modes of [`crate::SyncService`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The batch or query names a domain nobody registered.
    UnknownDomain {
        /// The unknown name.
        domain: DomainId,
    },
    /// A registration reused an existing domain name.
    DuplicateDomain {
        /// The taken name.
        domain: DomainId,
    },
    /// The synchronization pipeline rejected the batch (overflowing clock
    /// readings, unknown processors, contradictory evidence).
    Sync(SyncError),
    /// The view layer rejected the batch (clock readings before the start
    /// event, invalid materialized views).
    Model(ModelError),
    /// A non-blocking enqueue found the shard's ingestion queue full
    /// ([`crate::ConcurrentService::try_ingest`]). The batch was **not**
    /// enqueued; the caller decides whether to retry, shed, or fall back
    /// to the blocking path.
    Backpressure {
        /// The shard whose queue was full.
        shard: usize,
        /// The queue's bounded depth (batches).
        depth: usize,
    },
    /// The shard's worker is gone (the service was shut down, or the
    /// worker died), so the batch cannot be applied and no receipt will
    /// ever arrive.
    Stopped {
        /// The shard whose worker is gone.
        shard: usize,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownDomain { domain } => {
                write!(f, "domain `{domain}` is not registered")
            }
            ServiceError::DuplicateDomain { domain } => {
                write!(f, "domain `{domain}` is already registered")
            }
            ServiceError::Sync(e) => write!(f, "batch rejected: {e}"),
            ServiceError::Model(e) => write!(f, "batch rejected: {e}"),
            ServiceError::Backpressure { shard, depth } => write!(
                f,
                "backpressure: shard {shard}'s ingestion queue is full ({depth} batches)"
            ),
            ServiceError::Stopped { shard } => {
                write!(f, "shard {shard}'s worker is stopped")
            }
        }
    }
}

impl Error for ServiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServiceError::Sync(e) => Some(e),
            ServiceError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SyncError> for ServiceError {
    fn from(e: SyncError) -> ServiceError {
        ServiceError::Sync(e)
    }
}

impl From<ModelError> for ServiceError {
    fn from(e: ModelError) -> ServiceError {
        ServiceError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServiceError::UnknownDomain {
            domain: DomainId::from("tenant-a"),
        };
        assert!(e.to_string().contains("tenant-a"));
        assert!(e.source().is_none());
        let wrapped: ServiceError = ModelError::DuplicateMessage {
            id: clocksync_model::MessageId(7),
        }
        .into();
        assert!(wrapped.source().is_some());
        assert!(wrapped.to_string().contains("rejected"));
    }
}
