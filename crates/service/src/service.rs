//! The sharded multi-domain synchronization service.
//!
//! A [`SyncService`] owns `K` shards; each registered domain is pinned to
//! one shard by the consistent-hash [`ShardMap`], and every batch for a
//! domain is applied by that shard alone — batches for different shards
//! apply in parallel ([`SyncService::ingest_many`]) with no locking,
//! because shards share nothing.
//!
//! Per batch the shard (1) validates and applies the observations to the
//! domain's [`OnlineSynchronizer`] in one closure/`A_max` maintenance pass,
//! (2) mirrors them into the domain's bounded [`ViewWindow`], and (3) runs
//! the retention policy: dominated messages leave the window and dominated
//! samples leave the evidence store, while every `d̃min`/`d̃max` witness is
//! kept. The compaction **never loosens** any `m̃ls` — the §6 estimators
//! depend on the views only through the per-link extrema, which are
//! maintained incrementally and never recomputed from the retained
//! samples — so precision, corrections and certificates are bit-identical
//! to a full-history run (proptested in `tests/service.rs`), and memory
//! stays bounded by the window size regardless of how many messages flow
//! through.

use std::collections::{HashMap, VecDeque};

use clocksync::{Network, OnlineSynchronizer, SyncError, SyncOutcome};
use clocksync_model::{MessageId, MessageObservation, ModelError, ViewSet, ViewWindow};
use clocksync_obs::Recorder;
use clocksync_time::{ClockTime, Nanos};
use rayon::prelude::*;

use crate::{DomainId, ObservationBatch, ServiceError, ShardMap};

/// Per-domain state owned by exactly one shard.
#[derive(Debug)]
struct DomainState {
    online: OnlineSynchronizer,
    window: ViewWindow,
    next_msg_id: u64,
    ingested: u64,
}

/// One shard: the domains it owns, keyed by name.
#[derive(Debug, Default)]
struct Shard {
    domains: HashMap<DomainId, DomainState>,
}

/// What one batch application did (returned by [`SyncService::ingest`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReceipt {
    /// The domain the batch was applied to.
    pub domain: DomainId,
    /// The shard that applied it.
    pub shard: usize,
    /// Observations applied.
    pub applied: usize,
    /// Messages the window's dominated-evidence GC dropped afterwards.
    pub gc_dropped: usize,
    /// Evidence samples the synchronizer's compaction dropped afterwards.
    pub samples_compacted: usize,
    /// Messages the domain's window retains after GC.
    pub retained_messages: usize,
}

/// What one evidence retraction dropped
/// (returned by [`SyncService::forget_link`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForgetReceipt {
    /// Evidence samples dropped from the domain's synchronizer.
    pub samples_dropped: usize,
    /// Messages dropped from the domain's view window.
    pub messages_dropped: usize,
}

/// Point-in-time retention statistics for one domain
/// (see [`SyncService::domain_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainStats {
    /// The shard owning the domain.
    pub shard: usize,
    /// Observations ever ingested.
    pub ingested: u64,
    /// Messages currently retained in the view window.
    pub retained_messages: usize,
    /// Evidence samples currently retained by the synchronizer.
    pub retained_samples: usize,
    /// Approximate bytes held by the view window.
    pub approx_window_bytes: usize,
}

/// The sharded multi-domain ingestion service.
///
/// # Examples
///
/// ```
/// use clocksync::{BatchObservation, DelayRange, LinkAssumption, Network};
/// use clocksync_model::ProcessorId;
/// use clocksync_service::{ObservationBatch, SyncService};
/// use clocksync_time::{ClockTime, Nanos};
///
/// let (p, q) = (ProcessorId(0), ProcessorId(1));
/// let net = Network::builder(2)
///     .link(p, q, LinkAssumption::symmetric_bounds(
///         DelayRange::new(Nanos::ZERO, Nanos::new(1_000))))
///     .build();
/// let mut svc = SyncService::new(4, 64);
/// svc.register_domain("tenant-a", net)?;
/// let receipt = svc.ingest(&ObservationBatch::new("tenant-a", vec![
///     BatchObservation { src: p, dst: q,
///         send_clock: ClockTime::from_nanos(1_000),
///         recv_clock: ClockTime::from_nanos(1_400) },
///     BatchObservation { src: q, dst: p,
///         send_clock: ClockTime::from_nanos(1_500),
///         recv_clock: ClockTime::from_nanos(2_100) },
/// ]))?;
/// assert_eq!(receipt.applied, 2);
/// let outcome = svc.outcome("tenant-a")?;
/// assert!(outcome.precision().is_finite());
/// # Ok::<(), clocksync_service::ServiceError>(())
/// ```
#[derive(Debug)]
pub struct SyncService {
    map: ShardMap,
    shards: Vec<Shard>,
    /// Per-directed-link retention window (messages and samples).
    window: usize,
    recorder: Recorder,
}

impl SyncService {
    /// A service with `shards` shards and a per-directed-link retention
    /// window of `window` messages (plus the extremal witnesses).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, window: usize) -> SyncService {
        let map = ShardMap::new(shards);
        SyncService {
            map,
            shards: (0..shards).map(|_| Shard::default()).collect(),
            window,
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches a recorder: `svc.ingest` spans per batch plus `svc.*`
    /// gauges (shard/domain counts, retained messages and samples,
    /// approximate retained bytes, last batch depth). Instrumentation
    /// never changes what the service computes.
    pub fn with_recorder(mut self, recorder: Recorder) -> SyncService {
        self.recorder = recorder;
        self
    }

    /// The number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-directed-link retention window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The number of registered domains.
    pub fn domains(&self) -> usize {
        self.shards.iter().map(|s| s.domains.len()).sum()
    }

    /// The shard a domain is (or would be) pinned to.
    pub fn shard_of(&self, domain: &str) -> usize {
        self.map.route(domain)
    }

    /// Registers a domain with its network specification, pinning it to
    /// its consistent-hash shard.
    ///
    /// # Errors
    ///
    /// [`ServiceError::DuplicateDomain`] if the name is already taken.
    pub fn register_domain(
        &mut self,
        domain: impl Into<DomainId>,
        network: Network,
    ) -> Result<(), ServiceError> {
        let domain = domain.into();
        // Resolve the consistent-hash ring once, here; every batch for
        // this domain afterwards routes via the cached placement.
        let shard = self.map.assign(domain.as_str());
        let n = network.n();
        let slot = &mut self.shards[shard].domains;
        if slot.contains_key(&domain) {
            return Err(ServiceError::DuplicateDomain { domain });
        }
        slot.insert(
            domain,
            DomainState {
                online: OnlineSynchronizer::new(network),
                window: ViewWindow::new(n),
                next_msg_id: 0,
                ingested: 0,
            },
        );
        self.update_gauges();
        Ok(())
    }

    /// Applies one batch to its domain: one validation pass, one
    /// closure/`A_max` maintenance pass, then the bounded-retention GC.
    /// Atomic per batch — on error nothing is recorded.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownDomain`] for an unregistered domain;
    /// [`ServiceError::Sync`] / [`ServiceError::Model`] when the batch
    /// fails validation (out-of-range endpoint, delay overflow, negative
    /// clock reading).
    pub fn ingest(&mut self, batch: &ObservationBatch) -> Result<IngestReceipt, ServiceError> {
        let shard = self.map.route(batch.domain.as_str());
        let window = self.window;
        let recorder = self.recorder.clone();
        let state = self.shards[shard]
            .domains
            .get_mut(&batch.domain)
            .ok_or_else(|| ServiceError::UnknownDomain {
                domain: batch.domain.clone(),
            })?;
        let receipt = apply_batch(state, batch, shard, window, &recorder)?;
        self.update_gauges();
        if self.recorder.is_enabled() {
            self.recorder
                .gauge("svc.batch_depth", batch.observations.len() as f64);
        }
        Ok(receipt)
    }

    /// Applies many batches, parallelized across shards: each shard's
    /// batches apply sequentially in input order (a domain's evidence is
    /// single-writer), different shards apply concurrently. Results are
    /// returned in input order; batches are independent, so one failing
    /// validation does not stop the others.
    pub fn ingest_many(
        &mut self,
        batches: &[ObservationBatch],
    ) -> Vec<Result<IngestReceipt, ServiceError>> {
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, b) in batches.iter().enumerate() {
            per_shard[self.map.route(b.domain.as_str())].push(i);
        }
        let window = self.window;
        let recorder = self.recorder.clone();
        let per_shard = &per_shard;
        let shard_results: Vec<Vec<(usize, Result<IngestReceipt, ServiceError>)>> = self
            .shards
            .par_iter_mut()
            .enumerate()
            .map(|(shard, owned)| {
                per_shard[shard]
                    .iter()
                    .map(|&i| {
                        let batch = &batches[i];
                        let result = match owned.domains.get_mut(&batch.domain) {
                            Some(state) => apply_batch(state, batch, shard, window, &recorder),
                            None => Err(ServiceError::UnknownDomain {
                                domain: batch.domain.clone(),
                            }),
                        };
                        (i, result)
                    })
                    .collect()
            })
            .collect();
        let mut results: Vec<Option<Result<IngestReceipt, ServiceError>>> =
            (0..batches.len()).map(|_| None).collect();
        for (i, result) in shard_results.into_iter().flatten() {
            results[i] = Some(result);
        }
        self.update_gauges();
        if self.recorder.is_enabled() {
            if let Some(last) = batches.last() {
                self.recorder
                    .gauge("svc.batch_depth", last.observations.len() as f64);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every input index was dispatched to exactly one shard"))
            .collect()
    }

    /// Retracts every observation of the undirected link `{p, q}` in one
    /// domain — the operator action for a replaced or re-cabled link —
    /// from both the synchronizer's evidence store *and* the domain's
    /// bounded view window, so the auditable history cannot resurrect the
    /// retracted evidence. Both directions' estimates loosen back to
    /// their assumption-only values (the one loosening operation of the
    /// pipeline; it exercises the component-scoped cache invalidation).
    /// Returns what was dropped.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownDomain`] for an unregistered domain;
    /// [`ServiceError::Model`] ([`ModelError::UnknownProcessor`]) when an
    /// endpoint is out of range for the domain's network.
    pub fn forget_link(
        &mut self,
        domain: &str,
        p: clocksync_model::ProcessorId,
        q: clocksync_model::ProcessorId,
    ) -> Result<ForgetReceipt, ServiceError> {
        let state = self.domain_mut(domain)?;
        let n = state.online.network().n();
        for endpoint in [p, q] {
            if endpoint.index() >= n {
                return Err(ServiceError::Model(ModelError::UnknownProcessor {
                    processor: endpoint,
                }));
            }
        }
        let samples_dropped = state.online.forget_link(p, q);
        let messages_dropped = state.window.drop_link(p, q);
        self.update_gauges();
        Ok(ForgetReceipt {
            samples_dropped,
            messages_dropped,
        })
    }

    /// The current optimal outcome for one domain.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownDomain`], or [`ServiceError::Sync`] when the
    /// domain's evidence contradicts its declared assumptions.
    pub fn outcome(&mut self, domain: &str) -> Result<SyncOutcome, ServiceError> {
        self.domain_mut(domain)?
            .online
            .outcome()
            .map_err(ServiceError::Sync)
    }

    /// Materializes one domain's retained messages as a validated view
    /// set — the auditable bounded history behind its outcome.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownDomain`] for an unregistered domain.
    pub fn domain_views(&self, domain: &str) -> Result<ViewSet, ServiceError> {
        self.domain_ref(domain)?
            .window
            .to_view_set()
            .map_err(ServiceError::Model)
    }

    /// Retention statistics for one domain, `None` if unregistered.
    pub fn domain_stats(&self, domain: &str) -> Option<DomainStats> {
        let shard = self.map.route(domain);
        let state = self.shards[shard].domains.get(&DomainId::from(domain))?;
        Some(DomainStats {
            shard,
            ingested: state.ingested,
            retained_messages: state.window.live(),
            retained_samples: state.online.retained_samples(),
            approx_window_bytes: state.window.approx_bytes(),
        })
    }

    /// Messages retained across every domain's view window.
    pub fn total_retained_messages(&self) -> usize {
        self.for_each_domain(|s| s.window.live())
    }

    /// Evidence samples retained across every domain's synchronizer.
    pub fn total_retained_samples(&self) -> usize {
        self.for_each_domain(|s| s.online.retained_samples())
    }

    /// Approximate bytes held by every domain's view window.
    pub fn approx_retained_bytes(&self) -> usize {
        self.for_each_domain(|s| s.window.approx_bytes())
    }

    fn for_each_domain(&self, f: impl Fn(&DomainState) -> usize) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.domains.values())
            .map(f)
            .sum()
    }

    fn domain_ref(&self, domain: &str) -> Result<&DomainState, ServiceError> {
        let shard = self.map.route(domain);
        self.shards[shard]
            .domains
            .get(&DomainId::from(domain))
            .ok_or_else(|| ServiceError::UnknownDomain {
                domain: DomainId::from(domain),
            })
    }

    fn domain_mut(&mut self, domain: &str) -> Result<&mut DomainState, ServiceError> {
        let shard = self.map.route(domain);
        self.shards[shard]
            .domains
            .get_mut(&DomainId::from(domain))
            .ok_or_else(|| ServiceError::UnknownDomain {
                domain: DomainId::from(domain),
            })
    }

    fn update_gauges(&self) {
        if !self.recorder.is_enabled() {
            return;
        }
        self.recorder.gauge("svc.shards", self.shards() as f64);
        self.recorder.gauge("svc.domains", self.domains() as f64);
        self.recorder.gauge(
            "svc.retained_messages",
            self.total_retained_messages() as f64,
        );
        self.recorder
            .gauge("svc.retained_samples", self.total_retained_samples() as f64);
        self.recorder.gauge(
            "svc.approx_retained_bytes",
            self.approx_retained_bytes() as f64,
        );
    }
}

/// Batches at least this large take the pre-compaction fast path in
/// [`apply_batch`]. The threshold sits well above any interactive batch
/// size so the per-batch path keeps its exact per-message accounting;
/// only group-commit runs merged from queued-up batches cross it.
const PRECOMPACT_MIN: usize = 512;

/// Computes, for one large observation run, which entries could survive
/// the post-ingest [`ViewWindow::gc_dominated`] pass: per directed
/// pair, the last `window` arrivals plus the delay-extremal witnesses,
/// using the same tie-breaks as the GC (earliest position wins the
/// minimum, latest wins the maximum). Returns the keep-mask and the
/// number of entries masked out.
///
/// Pushing only the kept entries and GC-ing once leaves the window
/// bit-identical to pushing everything and GC-ing once: the global
/// recency tail of (prior ∪ run) is a subset of the run's own tail
/// whenever the run has ≥ `window` entries for a pair (and the whole
/// run is kept otherwise), and each global extremal witness is either a
/// prior entry (untouched) or the run's own witness under the matching
/// tie-break.
fn precompact_run(
    observations: &[crate::BatchObservation],
    n: usize,
    window: usize,
) -> (Vec<bool>, usize) {
    struct PairState {
        min: (Nanos, usize),
        max: (Nanos, usize),
        tail: VecDeque<usize>,
    }
    // Flat pair table (`src * n + dst`): the hot loop runs once per
    // coalesced message, so even hashing a pair key would show up.
    let mut pairs: Vec<Option<PairState>> = Vec::new();
    pairs.resize_with(n * n, || None);
    for (i, obs) in observations.iter().enumerate() {
        // Validated by the caller; the GC conservatively keeps an
        // overflowing entry, so refuse to compact a run holding one.
        let Some(delay) = obs.recv_clock.checked_sub(obs.send_clock) else {
            return (vec![true; observations.len()], 0);
        };
        let entry = pairs[obs.src.index() * n + obs.dst.index()].get_or_insert_with(|| PairState {
            min: (delay, i),
            max: (delay, i),
            tail: VecDeque::with_capacity(window + 1),
        });
        if delay < entry.min.0 {
            entry.min = (delay, i);
        }
        if delay >= entry.max.0 {
            entry.max = (delay, i);
        }
        entry.tail.push_back(i);
        if entry.tail.len() > window {
            entry.tail.pop_front();
        }
    }
    let mut keep = vec![false; observations.len()];
    for state in pairs.iter().flatten() {
        keep[state.min.1] = true;
        keep[state.max.1] = true;
        for &i in &state.tail {
            keep[i] = true;
        }
    }
    let dropped = keep.iter().filter(|&&k| !k).count();
    (keep, dropped)
}

/// Applies one batch to one domain's state. Free function so the
/// shard-parallel path can call it without borrowing the whole service.
fn apply_batch(
    state: &mut DomainState,
    batch: &ObservationBatch,
    shard: usize,
    window: usize,
    recorder: &Recorder,
) -> Result<IngestReceipt, ServiceError> {
    let mut span = recorder.span("svc.ingest");
    span.field("domain", batch.domain.as_str());
    span.field("shard", shard);
    span.field("batch", batch.observations.len());
    // Validate the whole batch up front, in the same order the view
    // window checks (endpoint range, then clock overflow, then readings
    // before the start event), so the synchronizer and the window cannot
    // diverge: once this passes, both apply the batch in full.
    let n = state.online.network().n();
    for obs in &batch.observations {
        if obs.src.index() >= n || obs.dst.index() >= n {
            let processor = if obs.src.index() >= n {
                obs.src
            } else {
                obs.dst
            };
            return Err(ServiceError::Model(ModelError::UnknownProcessor {
                processor,
            }));
        }
        if obs.recv_clock.checked_sub(obs.send_clock).is_none() {
            return Err(ServiceError::Sync(SyncError::Overflow {
                src: obs.src,
                dst: obs.dst,
            }));
        }
        if obs.send_clock < ClockTime::ZERO || obs.recv_clock < ClockTime::ZERO {
            let processor = if obs.send_clock < ClockTime::ZERO {
                obs.src
            } else {
                obs.dst
            };
            return Err(ServiceError::Model(ModelError::UnorderedView { processor }));
        }
    }
    let applied = state
        .online
        .ingest_batch(&batch.observations)
        .map_err(ServiceError::Sync)?;
    // Large batches (the group-commit path coalesces thousands of
    // messages into one run) are pre-compacted before touching the
    // window: dominated evidence never pays the per-message window
    // bookkeeping, which profiling puts at ~80% of ingestion cost. The
    // retained set is bit-identical to pushing everything and GC-ing
    // once. The synchronizer above has already absorbed every
    // observation, so no estimate ever sees the difference.
    let (keep, pre_dropped) = if batch.observations.len() >= PRECOMPACT_MIN {
        let (keep, dropped) = precompact_run(&batch.observations, n, window);
        (Some(keep), dropped)
    } else {
        (None, 0)
    };
    for (i, obs) in batch.observations.iter().enumerate() {
        if keep.as_ref().is_some_and(|keep| !keep[i]) {
            continue;
        }
        let id = MessageId(state.next_msg_id);
        state.next_msg_id += 1;
        state
            .window
            .push(MessageObservation {
                src: obs.src,
                dst: obs.dst,
                id,
                send_clock: obs.send_clock,
                recv_clock: obs.recv_clock,
            })
            .map_err(ServiceError::Model)?;
    }
    state.ingested += applied as u64;
    let gc_dropped = pre_dropped + state.window.gc_dominated(window);
    let samples_compacted = state.online.compact_evidence(window);
    span.field("gc_dropped", gc_dropped);
    span.field("samples_compacted", samples_compacted);
    span.finish();
    Ok(IngestReceipt {
        domain: batch.domain.clone(),
        shard,
        applied,
        gc_dropped,
        samples_compacted,
        retained_messages: state.window.live(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksync::{BatchObservation, DelayRange, LinkAssumption, SyncError};
    use clocksync_model::ProcessorId;
    use clocksync_time::Nanos;

    const P: ProcessorId = ProcessorId(0);
    const Q: ProcessorId = ProcessorId(1);

    fn net() -> Network {
        Network::builder(2)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(1_000))),
            )
            .build()
    }

    fn obs(src: ProcessorId, dst: ProcessorId, send: i64, recv: i64) -> BatchObservation {
        BatchObservation {
            src,
            dst,
            send_clock: ClockTime::from_nanos(send),
            recv_clock: ClockTime::from_nanos(recv),
        }
    }

    #[test]
    fn unknown_and_duplicate_domains_are_reported() {
        let mut svc = SyncService::new(2, 8);
        svc.register_domain("a", net()).unwrap();
        assert!(matches!(
            svc.register_domain("a", net()),
            Err(ServiceError::DuplicateDomain { .. })
        ));
        assert!(matches!(
            svc.ingest(&ObservationBatch::new("ghost", vec![])),
            Err(ServiceError::UnknownDomain { .. })
        ));
        assert!(svc.outcome("ghost").is_err());
        assert!(svc.domain_stats("ghost").is_none());
    }

    #[test]
    fn windowed_ingestion_stays_bounded_and_exact() {
        let mut svc = SyncService::new(2, 4);
        svc.register_domain("a", net()).unwrap();
        // A full-history reference synchronizer fed the same stream.
        let mut reference = OnlineSynchronizer::new(net());
        for round in 0..50i64 {
            let t = 1_000 * round;
            let batch = ObservationBatch::new(
                "a",
                vec![
                    obs(P, Q, t, t + 400 + round % 7),
                    obs(Q, P, t + 500, t + 900 - round % 5),
                ],
            );
            reference.ingest_batch(&batch.observations).unwrap();
            svc.ingest(&batch).unwrap();
        }
        // Bounded: both directions hold at most window + 2 witnesses.
        let stats = svc.domain_stats("a").unwrap();
        assert_eq!(stats.ingested, 100);
        assert!(stats.retained_messages <= 2 * (4 + 2));
        assert!(stats.retained_samples <= 2 * (4 + 2));
        // Exact: the windowed outcome equals the full-history outcome.
        assert_eq!(svc.outcome("a").unwrap(), reference.outcome().unwrap());
        // And the materialized views carry the extremal evidence.
        let views = svc.domain_views("a").unwrap();
        let link_obs = views.link_observations();
        assert_eq!(
            link_obs.estimated_min(P, Q),
            reference.observations().estimated_min(P, Q)
        );
        assert_eq!(
            link_obs.estimated_max(Q, P),
            reference.observations().estimated_max(Q, P)
        );
    }

    #[test]
    fn precompaction_matches_the_full_push_and_gc() {
        use clocksync_model::ViewWindow;
        let window = 3;
        // A run big enough for the group-commit fast path, spread over
        // both directions with repeated (tied) extremal delays.
        let run: Vec<BatchObservation> = (0..PRECOMPACT_MIN as i64 + 137)
            .map(|i| {
                let (src, dst) = if i % 3 == 0 { (P, Q) } else { (Q, P) };
                let delay = 200 + (i * 37) % 600;
                obs(src, dst, 1_000 * i, 1_000 * i + delay)
            })
            .collect();
        let (keep, dropped) = precompact_run(&run, 2, window);
        assert_eq!(dropped, keep.iter().filter(|&&k| !k).count());
        assert!(dropped > run.len() / 2, "the mask should bite");

        // Prior evidence already sitting in the window exercises the
        // prior ∪ run half of the identity argument (its delays tie the
        // run's extremes, so the witness tie-breaks are load-bearing).
        let prior = [obs(P, Q, 10, 210), obs(Q, P, 20, 819)];
        let retained = |kept_only: bool| {
            let mut w = ViewWindow::new(2);
            for (next, o) in prior
                .iter()
                .chain(
                    run.iter()
                        .zip(&keep)
                        .filter(|&(_, &k)| k || !kept_only)
                        .map(|(o, _)| o),
                )
                .enumerate()
            {
                w.push(MessageObservation {
                    src: o.src,
                    dst: o.dst,
                    id: MessageId(next as u64),
                    send_clock: o.send_clock,
                    recv_clock: o.recv_clock,
                })
                .unwrap();
            }
            w.gc_dominated(window);
            w.live_messages()
                .map(|m| (m.src, m.dst, m.send_clock, m.recv_clock))
                .collect::<Vec<_>>()
        };
        // The retained evidence (ignoring message ids, which number the
        // pushes) is bit-identical with and without the mask.
        assert_eq!(retained(true), retained(false));

        // And end-to-end: one big batch through the service agrees with
        // the same stream chunked below the threshold, on the outcome
        // and on the extremal evidence.
        let mut big = SyncService::new(1, window);
        let mut small = SyncService::new(1, window);
        big.register_domain("a", net()).unwrap();
        small.register_domain("a", net()).unwrap();
        let receipt = big
            .ingest(&ObservationBatch::new("a", run.clone()))
            .unwrap();
        assert_eq!(receipt.applied, run.len());
        let mut chunk_dropped = 0;
        for chunk in run.chunks(64) {
            chunk_dropped += small
                .ingest(&ObservationBatch::new("a", chunk.to_vec()))
                .unwrap()
                .gc_dropped;
        }
        assert_eq!(big.outcome("a").unwrap(), small.outcome("a").unwrap());
        let (b, s) = (
            big.domain_stats("a").unwrap(),
            small.domain_stats("a").unwrap(),
        );
        assert_eq!(b.ingested, s.ingested);
        assert!(b.retained_messages <= 2 * (window + 2));
        // Every message not retained is accounted as dropped, on both
        // paths.
        assert_eq!(receipt.gc_dropped, run.len() - b.retained_messages);
        assert_eq!(chunk_dropped, run.len() - s.retained_messages);
    }

    #[test]
    fn forget_link_drops_evidence_and_window_together() {
        let mut svc = SyncService::new(1, 8);
        svc.register_domain("a", net()).unwrap();
        svc.ingest(&ObservationBatch::new(
            "a",
            vec![obs(P, Q, 0, 400), obs(Q, P, 500, 900)],
        ))
        .unwrap();
        assert!(svc.outcome("a").unwrap().precision().is_finite());
        let receipt = svc.forget_link("a", Q, P).unwrap();
        assert_eq!(receipt.samples_dropped, 2);
        assert_eq!(receipt.messages_dropped, 2);
        // Estimates loosened back to assumption-only knowledge, and the
        // auditable history no longer carries the retracted messages.
        assert!(!svc.outcome("a").unwrap().precision().is_finite());
        assert_eq!(
            svc.domain_views("a").unwrap().message_observations().len(),
            0
        );
        let stats = svc.domain_stats("a").unwrap();
        assert_eq!(stats.retained_messages, 0);
        assert_eq!(stats.retained_samples, 0);
        // Typed errors for bad targets; nothing is dropped on error.
        assert!(matches!(
            svc.forget_link("ghost", P, Q),
            Err(ServiceError::UnknownDomain { .. })
        ));
        assert!(matches!(
            svc.forget_link("a", P, ProcessorId(9)),
            Err(ServiceError::Model(ModelError::UnknownProcessor { .. }))
        ));
    }

    #[test]
    fn bad_batches_leave_no_trace() {
        let mut svc = SyncService::new(1, 8);
        svc.register_domain("a", net()).unwrap();
        let overflow = ObservationBatch::new("a", vec![obs(P, Q, i64::MIN, i64::MAX)]);
        assert!(matches!(
            svc.ingest(&overflow),
            Err(ServiceError::Sync(SyncError::Overflow { .. }))
        ));
        let negative = ObservationBatch::new("a", vec![obs(P, Q, -10, 50)]);
        assert!(matches!(
            svc.ingest(&negative),
            Err(ServiceError::Model(ModelError::UnorderedView { .. }))
        ));
        let stats = svc.domain_stats("a").unwrap();
        assert_eq!(stats.ingested, 0);
        assert_eq!(stats.retained_messages, 0);
        assert_eq!(stats.retained_samples, 0);
    }

    #[test]
    fn ingest_many_matches_sequential_ingest() {
        let domains = ["a", "b", "c", "d", "e"];
        let mut parallel = SyncService::new(4, 8);
        let mut sequential = SyncService::new(4, 8);
        for d in domains {
            parallel.register_domain(d, net()).unwrap();
            sequential.register_domain(d, net()).unwrap();
        }
        let batches: Vec<ObservationBatch> = (0..20)
            .map(|i| {
                let t = 1_000 * i as i64;
                ObservationBatch::new(
                    domains[i % domains.len()],
                    vec![obs(P, Q, t, t + 300), obs(Q, P, t + 400, t + 800)],
                )
            })
            .collect();
        let receipts = parallel.ingest_many(&batches);
        assert_eq!(receipts.len(), 20);
        for (batch, receipt) in batches.iter().zip(&receipts) {
            let expected = sequential.ingest(batch).unwrap();
            assert_eq!(receipt.as_ref().unwrap(), &expected);
        }
        for d in domains {
            assert_eq!(parallel.outcome(d).unwrap(), sequential.outcome(d).unwrap());
        }
    }

    #[test]
    fn gauges_and_spans_are_recorded() {
        let recorder = Recorder::enabled();
        let mut svc = SyncService::new(2, 8).with_recorder(recorder.clone());
        svc.register_domain("a", net()).unwrap();
        svc.ingest(&ObservationBatch::new(
            "a",
            vec![obs(P, Q, 0, 400), obs(Q, P, 500, 900)],
        ))
        .unwrap();
        let trace = recorder.snapshot();
        assert!(trace.span_names().contains(&"svc.ingest"));
        assert_eq!(trace.gauge("svc.shards"), Some(2.0));
        assert_eq!(trace.gauge("svc.domains"), Some(1.0));
        assert_eq!(trace.gauge("svc.retained_messages"), Some(2.0));
        assert_eq!(trace.gauge("svc.batch_depth"), Some(2.0));
        assert!(trace.gauge("svc.approx_retained_bytes").unwrap() > 0.0);
    }
}
