//! Consistent-hash shard map: domain → shard.
//!
//! The service owns many independent sync domains and pins each to one
//! shard (one worker), so all batches of a domain are applied by a single
//! owner and no cross-shard locking is needed. The map is a classic
//! consistent-hash ring with virtual nodes: each shard contributes
//! [`VNODES_PER_SHARD`] points on a 64-bit ring, and a domain lands on the
//! first point clockwise of its hash. Adding or removing one shard then
//! remaps only `~1/shards` of the domains — the property that makes
//! resharding a live service cheap — and the placement is a pure function
//! of `(domain, shards)`, so every replica agrees without coordination.
//!
//! The ring is consulted once per domain: [`ShardMap::assign`] caches the
//! placement at registration time, and [`ShardMap::route`] is a plain
//! table lookup afterwards — the per-batch hot path never re-hashes the
//! ring (it still agrees with the ring for unregistered names, so error
//! routing stays deterministic).

/// Virtual nodes per shard. 64 keeps the assignment imbalance across
/// shards within a few percent without making ring construction or
/// binary-search lookups noticeable.
const VNODES_PER_SHARD: usize = 64;

/// Ring-placement hash: FNV-1a (64-bit) followed by a murmur3-style
/// finalizer. Plain FNV-1a disperses the *low* bits well but barely
/// avalanches the high bits on short, similar keys like `tenant-3` /
/// `tenant-4`, which clusters ring positions; the finalizer spreads the
/// entropy across the whole word.
fn ring_hash(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^ (hash >> 33)
}

/// A consistent-hash ring assigning domain names to `0..shards`.
///
/// # Examples
///
/// ```
/// use clocksync_service::ShardMap;
///
/// let map = ShardMap::new(4);
/// let shard = map.shard_of("tenant-7");
/// assert!(shard < 4);
/// // Placement is deterministic.
/// assert_eq!(shard, ShardMap::new(4).shard_of("tenant-7"));
/// ```
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: usize,
    /// `(ring position, shard)` sorted by position.
    ring: Vec<(u64, usize)>,
    /// Placements cached at registration time ([`ShardMap::assign`]);
    /// [`ShardMap::route`] reads this instead of walking the ring.
    assigned: std::collections::HashMap<String, usize>,
}

impl ShardMap {
    /// A ring over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> ShardMap {
        assert!(shards > 0, "a shard map needs at least one shard");
        let mut ring = Vec::with_capacity(shards * VNODES_PER_SHARD);
        for shard in 0..shards {
            for vnode in 0..VNODES_PER_SHARD {
                let key = format!("shard-{shard}-vnode-{vnode}");
                ring.push((ring_hash(key.as_bytes()), shard));
            }
        }
        ring.sort_unstable();
        ShardMap {
            shards,
            ring,
            assigned: std::collections::HashMap::new(),
        }
    }

    /// The number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `domain`: the first ring point clockwise of the
    /// domain's hash (wrapping to the first point past zero).
    ///
    /// This walks the ring (FNV-1a over the name plus a binary search);
    /// batch routing should go through [`ShardMap::route`], which reads
    /// the placement cached by [`ShardMap::assign`] instead.
    pub fn shard_of(&self, domain: &str) -> usize {
        let h = ring_hash(domain.as_bytes());
        let idx = self.ring.partition_point(|&(pos, _)| pos < h);
        let (_, shard) = self.ring[idx % self.ring.len()];
        shard
    }

    /// Resolves `domain` on the ring once and caches the placement, so
    /// every subsequent [`ShardMap::route`] for it is a table lookup.
    /// Called at `register_domain` time; idempotent (the ring is a pure
    /// function of the name, so re-assigning cannot move a domain).
    pub fn assign(&mut self, domain: &str) -> usize {
        match self.assigned.get(domain) {
            Some(&shard) => shard,
            None => {
                let shard = self.shard_of(domain);
                self.assigned.insert(domain.to_string(), shard);
                shard
            }
        }
    }

    /// The shard a batch for `domain` goes to: the placement cached by
    /// [`ShardMap::assign`] when the domain was registered, falling back
    /// to the ring for unregistered names (whose owner then reports
    /// `UnknownDomain` — the fallback keeps error routing deterministic).
    pub fn route(&self, domain: &str) -> usize {
        match self.assigned.get(domain) {
            Some(&shard) => shard,
            None => self.shard_of(domain),
        }
    }

    /// The number of cached placements.
    pub fn assigned_len(&self) -> usize {
        self.assigned.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_in_range() {
        let map = ShardMap::new(4);
        for i in 0..100 {
            let name = format!("domain-{i}");
            let s = map.shard_of(&name);
            assert!(s < 4);
            assert_eq!(s, ShardMap::new(4).shard_of(&name));
        }
    }

    #[test]
    fn load_spreads_across_shards() {
        let map = ShardMap::new(8);
        let mut counts = vec![0usize; 8];
        for i in 0..800 {
            counts[map.shard_of(&format!("tenant-{i}"))] += 1;
        }
        // Every shard owns someone, and none owns a majority.
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        assert!(counts.iter().all(|&c| c < 400), "{counts:?}");
    }

    #[test]
    fn resharding_moves_few_domains() {
        let before = ShardMap::new(8);
        let after = ShardMap::new(9);
        let moved = (0..1000)
            .filter(|i| {
                let name = format!("tenant-{i}");
                // Shard 8 is new; only domains that land on it should move
                // (plus ring-neighbour noise), i.e. roughly 1/9 of them.
                before.shard_of(&name) != after.shard_of(&name)
            })
            .count();
        assert!(moved < 400, "resharding moved {moved}/1000 domains");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = ShardMap::new(0);
    }

    #[test]
    fn route_agrees_with_ring_and_caches_assignments() {
        let mut map = ShardMap::new(4);
        assert_eq!(map.assigned_len(), 0);
        for i in 0..50 {
            let name = format!("tenant-{i}");
            // Unregistered names fall back to the ring.
            assert_eq!(map.route(&name), map.shard_of(&name));
            let assigned = map.assign(&name);
            assert_eq!(assigned, map.shard_of(&name));
            // Registered names hit the cache, same answer.
            assert_eq!(map.route(&name), assigned);
        }
        assert_eq!(map.assigned_len(), 50);
        // Re-assigning is idempotent.
        assert_eq!(map.assign("tenant-7"), map.shard_of("tenant-7"));
        assert_eq!(map.assigned_len(), 50);
    }
}
