//! Domains and observation batches — the service's ingestion unit.

use std::fmt;

pub use clocksync::BatchObservation;

/// The name of one sync domain: an independent processor group with its
/// own network specification, evidence and outcome. Domains are what the
/// consistent-hash map spreads across shards.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub String);

impl DomainId {
    /// The domain name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for DomainId {
    fn from(s: &str) -> DomainId {
        DomainId(s.to_string())
    }
}

impl From<String> for DomainId {
    fn from(s: String) -> DomainId {
        DomainId(s)
    }
}

/// A batch of message observations for one domain, applied atomically in
/// a single closure/`A_max` maintenance pass (see
/// [`clocksync::OnlineSynchronizer::ingest_batch`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservationBatch {
    /// The domain the observations belong to.
    pub domain: DomainId,
    /// The observed messages, as untrusted endpoint clock readings.
    pub observations: Vec<BatchObservation>,
}

impl ObservationBatch {
    /// A batch for `domain` carrying `observations`.
    pub fn new(domain: impl Into<DomainId>, observations: Vec<BatchObservation>) -> Self {
        ObservationBatch {
            domain: domain.into(),
            observations,
        }
    }
}
