//! Sustained-ingestion soak driver: the simulator feeds the service.
//!
//! [`run_soak`] builds one simulated execution per domain (ring topology,
//! truthful uniform delay bounds — the existing `clocksync-sim` runtime),
//! then replays its message observations through [`SyncService`] in
//! batches, cycling the pool with a per-cycle clock shift so the stream
//! looks like periodic resynchronization traffic of unbounded length.
//! The interesting outputs are throughput (batched messages per second)
//! and the *steady-state* retention numbers: with the dominated-evidence
//! GC on, retained messages must stay under the analytic
//! [`SoakReport::retained_cap`] no matter how many messages flow through.
//! The CI soak smoke and `tables --bench-ingest` are both thin wrappers
//! around this.

use std::time::Instant;

use clocksync::BatchObservation;
use clocksync_sim::{Simulation, Topology};
use clocksync_time::Nanos;

use crate::{ObservationBatch, SyncService};

/// Parameters of one soak run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakConfig {
    /// Shards in the service.
    pub shards: usize,
    /// Independent sync domains.
    pub domains: usize,
    /// Processors per domain (ring topology; at least 3).
    pub n: usize,
    /// Total messages to ingest across all domains.
    pub messages: u64,
    /// Observations per batch.
    pub batch_size: usize,
    /// Per-directed-link retention window.
    pub window: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            shards: 4,
            domains: 8,
            n: 4,
            messages: 100_000,
            batch_size: 64,
            window: 32,
            seed: 7,
        }
    }
}

/// What a soak run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// The configuration that ran.
    pub config: SoakConfig,
    /// Messages actually ingested (first multiple of the batching layout
    /// at or above `config.messages`).
    pub messages: u64,
    /// Wall-clock time of the ingestion loop, nanoseconds.
    pub elapsed_ns: u64,
    /// Highest `total_retained_messages` observed after any ingest round.
    pub peak_retained_messages: usize,
    /// Messages retained when the run ended.
    pub retained_messages_end: usize,
    /// Evidence samples retained when the run ended.
    pub retained_samples_end: usize,
    /// Approximate bytes held by the view windows when the run ended.
    pub approx_retained_bytes_end: usize,
    /// Analytic retention ceiling: per directed link the window plus the
    /// two extremal witnesses, summed over every link of every domain.
    /// Bounded-memory means `peak_retained_messages <= retained_cap`.
    pub retained_cap: usize,
    /// Resident set size at the end of the run, if the platform exposes
    /// it (`/proc/self/statm` on Linux).
    pub rss_end_bytes: Option<u64>,
}

impl SoakReport {
    /// Sustained ingestion rate, messages per second.
    pub fn msgs_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.messages as f64 * 1e9 / self.elapsed_ns as f64
    }
}

/// This process's resident set size in bytes, read from
/// `/proc/self/statm` (resident pages × 4096). `None` where the proc
/// filesystem is unavailable.
#[cfg(target_os = "linux")]
pub fn current_rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident * 4096)
}

/// This process's resident set size in bytes (`None` off Linux).
#[cfg(not(target_os = "linux"))]
pub fn current_rss_bytes() -> Option<u64> {
    None
}

/// A cyclic reader over one domain's simulated observation pool; each
/// full cycle shifts all clock readings forward by the pool's span, so
/// replayed messages look like the next resynchronization period.
struct PoolCursor {
    pool: Vec<BatchObservation>,
    pos: usize,
    cycle: i64,
    span: Nanos,
}

impl PoolCursor {
    fn new(pool: Vec<BatchObservation>) -> PoolCursor {
        let span = pool
            .iter()
            .map(|m| m.send_clock.as_nanos().max(m.recv_clock.as_nanos()))
            .max()
            .unwrap_or(0)
            + 1_000_000;
        PoolCursor {
            pool,
            pos: 0,
            cycle: 0,
            span: Nanos::new(span),
        }
    }

    fn next_batch(&mut self, size: usize) -> Vec<BatchObservation> {
        let mut out = Vec::with_capacity(size);
        for _ in 0..size {
            let base = self.pool[self.pos];
            let shift = self.span * self.cycle;
            out.push(BatchObservation {
                src: base.src,
                dst: base.dst,
                send_clock: base.send_clock + shift,
                recv_clock: base.recv_clock + shift,
            });
            self.pos += 1;
            if self.pos == self.pool.len() {
                self.pos = 0;
                self.cycle += 1;
            }
        }
        out
    }
}

/// Runs one soak: simulate each domain once, then replay the observation
/// pools through a [`SyncService`] in shard-parallel batches until
/// `config.messages` messages have been ingested.
///
/// # Panics
///
/// Panics if `config` is degenerate (`n < 3`, zero domains, zero batch
/// size) — soak parameters are operator input, not untrusted data.
pub fn run_soak(config: &SoakConfig) -> SoakReport {
    assert!(config.n >= 3, "soak domains need at least 3 processors");
    assert!(config.domains > 0, "soak needs at least one domain");
    assert!(config.batch_size > 0, "soak needs a positive batch size");
    let mut svc = SyncService::new(config.shards, config.window);
    let mut cursors = Vec::with_capacity(config.domains);
    let mut retained_cap = 0usize;
    for d in 0..config.domains {
        let sim = Simulation::builder(config.n)
            .uniform_links(
                Topology::Ring(config.n),
                Nanos::from_micros(50),
                Nanos::from_micros(250),
                config.seed ^ d as u64,
            )
            .probes(8)
            .build();
        let run = sim.run(config.seed.wrapping_add(d as u64).wrapping_mul(0x9e37));
        retained_cap += run.network.links().count() * 2 * (config.window + 2);
        svc.register_domain(format!("domain-{d}"), run.network.clone())
            .expect("fresh domain names cannot collide");
        let pool: Vec<BatchObservation> = run
            .execution
            .views()
            .message_observations()
            .into_iter()
            .map(|m| BatchObservation {
                src: m.src,
                dst: m.dst,
                send_clock: m.send_clock,
                recv_clock: m.recv_clock,
            })
            .collect();
        assert!(!pool.is_empty(), "simulated domain produced no messages");
        cursors.push(PoolCursor::new(pool));
    }

    let mut ingested = 0u64;
    let mut peak_retained = 0usize;
    let started = Instant::now();
    while ingested < config.messages {
        let batches: Vec<ObservationBatch> = cursors
            .iter_mut()
            .enumerate()
            .map(|(d, cursor)| {
                ObservationBatch::new(format!("domain-{d}"), cursor.next_batch(config.batch_size))
            })
            .collect();
        for result in svc.ingest_many(&batches) {
            let receipt = result.expect("simulated observations always validate");
            ingested += receipt.applied as u64;
        }
        peak_retained = peak_retained.max(svc.total_retained_messages());
    }
    let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);

    SoakReport {
        config: config.clone(),
        messages: ingested,
        elapsed_ns,
        peak_retained_messages: peak_retained,
        retained_messages_end: svc.total_retained_messages(),
        retained_samples_end: svc.total_retained_samples(),
        approx_retained_bytes_end: svc.approx_retained_bytes(),
        retained_cap,
        rss_end_bytes: current_rss_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_soak_is_bounded_and_reports_throughput() {
        let config = SoakConfig {
            shards: 2,
            domains: 3,
            n: 3,
            messages: 2_000,
            batch_size: 32,
            window: 8,
            seed: 42,
        };
        let report = run_soak(&config);
        assert!(report.messages >= 2_000);
        assert!(report.msgs_per_sec() > 0.0);
        assert!(
            report.peak_retained_messages <= report.retained_cap,
            "peak {} exceeded cap {}",
            report.peak_retained_messages,
            report.retained_cap
        );
        assert!(report.retained_messages_end <= report.peak_retained_messages);
        // Far more flowed through than is retained: memory is bounded.
        assert!((report.retained_messages_end as u64) < report.messages / 4);
    }

    #[test]
    fn soak_is_deterministic_in_retention() {
        let config = SoakConfig {
            shards: 2,
            domains: 2,
            n: 3,
            messages: 500,
            batch_size: 16,
            window: 4,
            seed: 9,
        };
        let a = run_soak(&config);
        let b = run_soak(&config);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.retained_messages_end, b.retained_messages_end);
        assert_eq!(a.retained_samples_end, b.retained_samples_end);
        assert_eq!(a.retained_cap, b.retained_cap);
    }
}
