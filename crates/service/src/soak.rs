//! Sustained-ingestion soak driver: the simulator feeds the service.
//!
//! [`run_soak`] builds one simulated execution per domain (ring topology,
//! truthful uniform delay bounds — the existing `clocksync-sim` runtime),
//! then replays its message observations through the service in batches,
//! cycling the pool with a per-cycle clock shift so the stream looks like
//! periodic resynchronization traffic of unbounded length. Two engines:
//!
//! * `threads <= 1` — the in-place [`SyncService`], batches applied on
//!   the driver thread via [`SyncService::ingest_many`];
//! * `threads > 1` — the [`ConcurrentService`] worker pool (one worker
//!   thread per shard, so `threads` must equal `shards`), driven through
//!   the bounded queues with a sliding window of pending receipts.
//!
//! The interesting outputs are throughput (batched messages per second)
//! and the *steady-state* retention numbers: with the dominated-evidence
//! GC on, retained messages must stay under the analytic
//! [`SoakReport::retained_cap`] no matter how many messages flow through.
//! For the worker engine the retention stats are **summed across the
//! workers' own counters** (each worker tracks its peak after every
//! flush), not read from the driver's side — the driver never sees the
//! workers' state directly. The CI soak smokes and `tables
//! --bench-ingest` are both thin wrappers around this.

use std::collections::VecDeque;
use std::time::Instant;

use clocksync::BatchObservation;
use clocksync_obs::Recorder;
use clocksync_sim::{Simulation, Topology};
use clocksync_time::Nanos;

use crate::{ConcurrentService, ObservationBatch, ServiceConfig, SyncService};

/// Parameters of one soak run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakConfig {
    /// Shards in the service.
    pub shards: usize,
    /// Worker threads: `<= 1` runs the in-place engine on the driver
    /// thread; `> 1` runs the [`ConcurrentService`] worker pool and must
    /// equal `shards` (one worker owns each shard).
    pub threads: usize,
    /// Bounded per-shard queue depth, in batches (worker engine only).
    pub queue_depth: usize,
    /// Independent sync domains.
    pub domains: usize,
    /// Processors per domain (ring topology; at least 3).
    pub n: usize,
    /// Total messages to ingest across all domains.
    pub messages: u64,
    /// Observations per batch.
    pub batch_size: usize,
    /// Per-directed-link retention window.
    pub window: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            shards: 4,
            threads: 1,
            queue_depth: 256,
            domains: 8,
            n: 4,
            messages: 100_000,
            batch_size: 64,
            window: 32,
            seed: 7,
        }
    }
}

/// What a soak run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// The configuration that ran.
    pub config: SoakConfig,
    /// Threads that actually applied batches, measured rather than
    /// copied from the config: the spawned worker count for the worker
    /// engine, the effective shard-parallelism of the rayon pool for the
    /// in-place engine (on a single-core box the rayon pool has one
    /// thread, so the inline engine honestly reports 1).
    pub threads: usize,
    /// Which engine ran: `"inline"` or `"workers"`.
    pub engine: &'static str,
    /// Messages actually ingested (first multiple of the batching layout
    /// at or above `config.messages`).
    pub messages: u64,
    /// Wall-clock time of the ingestion loop, nanoseconds.
    pub elapsed_ns: u64,
    /// Highest retention observed. In-place engine: the highest
    /// `total_retained_messages` after any ingest round. Worker engine:
    /// the sum of each worker's own post-flush peak — an upper bound on
    /// the true global peak, the right side to hold under the cap.
    pub peak_retained_messages: usize,
    /// Messages retained when the run ended (worker engine: summed from
    /// the workers' final statistics at shutdown).
    pub retained_messages_end: usize,
    /// Evidence samples retained when the run ended.
    pub retained_samples_end: usize,
    /// Approximate bytes held by the view windows when the run ended.
    pub approx_retained_bytes_end: usize,
    /// Analytic retention ceiling: per directed link the window plus the
    /// two extremal witnesses, summed over every link of every domain.
    /// Bounded-memory means `peak_retained_messages <= retained_cap`.
    pub retained_cap: usize,
    /// Resident set size at the end of the run, if the platform exposes
    /// it (`/proc/self/statm` on Linux).
    pub rss_end_bytes: Option<u64>,
}

impl SoakReport {
    /// Sustained ingestion rate, messages per second.
    pub fn msgs_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.messages as f64 * 1e9 / self.elapsed_ns as f64
    }
}

/// This process's resident set size in bytes, read from
/// `/proc/self/statm` (resident pages × 4096). `None` where the proc
/// filesystem is unavailable.
#[cfg(target_os = "linux")]
pub fn current_rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident * 4096)
}

/// This process's resident set size in bytes (`None` off Linux).
#[cfg(not(target_os = "linux"))]
pub fn current_rss_bytes() -> Option<u64> {
    None
}

/// A cyclic reader over one domain's simulated observation pool; each
/// full cycle shifts all clock readings forward by the pool's span, so
/// replayed messages look like the next resynchronization period.
struct PoolCursor {
    pool: Vec<BatchObservation>,
    pos: usize,
    cycle: i64,
    span: Nanos,
}

impl PoolCursor {
    fn new(pool: Vec<BatchObservation>) -> PoolCursor {
        let span = pool
            .iter()
            .map(|m| m.send_clock.as_nanos().max(m.recv_clock.as_nanos()))
            .max()
            .unwrap_or(0)
            + 1_000_000;
        PoolCursor {
            pool,
            pos: 0,
            cycle: 0,
            span: Nanos::new(span),
        }
    }

    fn next_batch(&mut self, size: usize) -> Vec<BatchObservation> {
        let mut out = Vec::with_capacity(size);
        for _ in 0..size {
            let base = self.pool[self.pos];
            let shift = self.span * self.cycle;
            out.push(BatchObservation {
                src: base.src,
                dst: base.dst,
                send_clock: base.send_clock + shift,
                recv_clock: base.recv_clock + shift,
            });
            self.pos += 1;
            if self.pos == self.pool.len() {
                self.pos = 0;
                self.cycle += 1;
            }
        }
        out
    }
}

/// One simulated domain ready to replay: its network, its observation
/// pool, and its contribution to the analytic retention ceiling.
struct SimDomain {
    name: String,
    network: clocksync::Network,
    cursor: PoolCursor,
}

fn build_domains(config: &SoakConfig) -> (Vec<SimDomain>, usize) {
    let mut domains = Vec::with_capacity(config.domains);
    let mut retained_cap = 0usize;
    for d in 0..config.domains {
        let sim = Simulation::builder(config.n)
            .uniform_links(
                Topology::Ring(config.n),
                Nanos::from_micros(50),
                Nanos::from_micros(250),
                config.seed ^ d as u64,
            )
            .probes(8)
            .build();
        let run = sim.run(config.seed.wrapping_add(d as u64).wrapping_mul(0x9e37));
        retained_cap += run.network.links().count() * 2 * (config.window + 2);
        let pool: Vec<BatchObservation> = run
            .execution
            .views()
            .message_observations()
            .into_iter()
            .map(|m| BatchObservation {
                src: m.src,
                dst: m.dst,
                send_clock: m.send_clock,
                recv_clock: m.recv_clock,
            })
            .collect();
        assert!(!pool.is_empty(), "simulated domain produced no messages");
        domains.push(SimDomain {
            name: format!("domain-{d}"),
            network: run.network.clone(),
            cursor: PoolCursor::new(pool),
        });
    }
    (domains, retained_cap)
}

/// Runs one soak: simulate each domain once, then replay the observation
/// pools through the service until `config.messages` messages have been
/// ingested. `config.threads` selects the engine (see [`SoakConfig`]).
///
/// # Panics
///
/// Panics if `config` is degenerate (`n < 3`, zero domains, zero batch
/// size, `threads > 1` but `threads != shards`) — soak parameters are
/// operator input, not untrusted data.
pub fn run_soak(config: &SoakConfig) -> SoakReport {
    run_soak_with_recorder(config, Recorder::disabled())
}

/// [`run_soak`] with queue metrics reported to `recorder` (the worker
/// engine's `svc.queue_depth` / `svc.ingest_wait` / `svc.batch_latency`,
/// or the in-place engine's `svc.ingest` spans). Instrumentation never
/// changes what the soak computes.
pub fn run_soak_with_recorder(config: &SoakConfig, recorder: Recorder) -> SoakReport {
    assert!(config.n >= 3, "soak domains need at least 3 processors");
    assert!(config.domains > 0, "soak needs at least one domain");
    assert!(config.batch_size > 0, "soak needs a positive batch size");
    if config.threads > 1 {
        assert!(
            config.threads == config.shards,
            "the worker engine pins one worker per shard: threads ({}) must equal shards ({})",
            config.threads,
            config.shards
        );
        run_soak_workers(config, recorder)
    } else {
        run_soak_inline(config, recorder)
    }
}

/// The in-place engine: batches applied on the driver thread (shards in
/// parallel through rayon inside [`SyncService::ingest_many`]).
fn run_soak_inline(config: &SoakConfig, recorder: Recorder) -> SoakReport {
    let (domains, retained_cap) = build_domains(config);
    let mut svc = SyncService::new(config.shards, config.window).with_recorder(recorder);
    let mut cursors = Vec::with_capacity(domains.len());
    for domain in domains {
        svc.register_domain(domain.name, domain.network)
            .expect("fresh domain names cannot collide");
        cursors.push(domain.cursor);
    }

    let mut ingested = 0u64;
    let mut peak_retained = 0usize;
    let started = Instant::now();
    while ingested < config.messages {
        let batches: Vec<ObservationBatch> = cursors
            .iter_mut()
            .enumerate()
            .map(|(d, cursor)| {
                ObservationBatch::new(format!("domain-{d}"), cursor.next_batch(config.batch_size))
            })
            .collect();
        for result in svc.ingest_many(&batches) {
            let receipt = result.expect("simulated observations always validate");
            ingested += receipt.applied as u64;
        }
        peak_retained = peak_retained.max(svc.total_retained_messages());
    }
    let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);

    SoakReport {
        config: config.clone(),
        threads: rayon::current_num_threads().min(config.shards),
        engine: "inline",
        messages: ingested,
        elapsed_ns,
        peak_retained_messages: peak_retained,
        retained_messages_end: svc.total_retained_messages(),
        retained_samples_end: svc.total_retained_samples(),
        approx_retained_bytes_end: svc.approx_retained_bytes(),
        retained_cap,
        rss_end_bytes: current_rss_bytes(),
    }
}

/// The worker-pool engine: the driver enqueues batches onto the bounded
/// shard queues and keeps a sliding window of pending receipts, so the
/// queues stay full (pipelining) while receipt memory stays bounded.
fn run_soak_workers(config: &SoakConfig, recorder: Recorder) -> SoakReport {
    let (domains, retained_cap) = build_domains(config);
    let svc = ConcurrentService::start_with_recorder(
        ServiceConfig {
            shards: config.shards,
            window: config.window,
            queue_depth: config.queue_depth.max(1),
            // Deep coalescing: merged runs past the service's
            // pre-compaction threshold skip the per-message window
            // bookkeeping for dominated evidence, so the soak wants the
            // largest groups the queues can supply.
            max_coalesce: 512,
        },
        recorder,
    );
    let mut cursors = Vec::with_capacity(domains.len());
    let mut names = Vec::with_capacity(domains.len());
    for domain in domains {
        svc.register_domain(domain.name.clone(), domain.network)
            .expect("fresh domain names cannot collide");
        names.push(domain.name);
        cursors.push(domain.cursor);
    }

    // Bound the receipts in flight; beyond it, wait for the oldest. The
    // queues themselves bound the unapplied batches, this only bounds the
    // driver's bookkeeping.
    let max_pending = (config.shards * config.queue_depth.max(1)).max(64);
    let mut pending = VecDeque::with_capacity(max_pending);
    let mut ingested = 0u64;
    // Enqueued observations; rounds mirror the in-place engine's batching
    // layout exactly (full rounds over all domains), so both engines feed
    // every domain the identical stream.
    let mut planned = 0u64;
    let started = Instant::now();
    while planned < config.messages {
        for (d, cursor) in cursors.iter_mut().enumerate() {
            let batch =
                ObservationBatch::new(names[d].as_str(), cursor.next_batch(config.batch_size));
            planned += batch.observations.len() as u64;
            pending.push_back(
                svc.ingest(batch)
                    .expect("workers outlive the ingestion loop"),
            );
            if pending.len() >= max_pending {
                let receipt = pending
                    .pop_front()
                    .expect("pending is non-empty at its cap")
                    .wait()
                    .expect("simulated observations always validate");
                ingested += receipt.applied as u64;
            }
        }
    }
    for receipt in pending {
        ingested += receipt
            .wait()
            .expect("simulated observations always validate")
            .applied as u64;
    }
    // Shutdown drains the queues; with every receipt redeemed above the
    // queues are already empty, so this is the workers' final snapshot.
    let stats = svc.shutdown();
    let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    debug_assert_eq!(stats.messages(), ingested);

    SoakReport {
        config: config.clone(),
        threads: stats.workers.len(),
        engine: "workers",
        messages: ingested,
        elapsed_ns,
        peak_retained_messages: stats.peak_retained_messages(),
        retained_messages_end: stats.total_retained_messages(),
        retained_samples_end: stats.total_retained_samples(),
        approx_retained_bytes_end: stats.approx_retained_bytes(),
        retained_cap,
        rss_end_bytes: current_rss_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config() -> SoakConfig {
        SoakConfig {
            shards: 2,
            threads: 1,
            queue_depth: 32,
            domains: 3,
            n: 3,
            messages: 2_000,
            batch_size: 32,
            window: 8,
            seed: 42,
        }
    }

    #[test]
    fn small_soak_is_bounded_and_reports_throughput() {
        let report = run_soak(&base_config());
        assert_eq!(report.engine, "inline");
        assert!(report.threads >= 1);
        assert!(report.messages >= 2_000);
        assert!(report.msgs_per_sec() > 0.0);
        assert!(
            report.peak_retained_messages <= report.retained_cap,
            "peak {} exceeded cap {}",
            report.peak_retained_messages,
            report.retained_cap
        );
        assert!(report.retained_messages_end <= report.peak_retained_messages);
        // Far more flowed through than is retained: memory is bounded.
        assert!((report.retained_messages_end as u64) < report.messages / 4);
    }

    #[test]
    fn soak_is_deterministic_in_retention() {
        let config = SoakConfig {
            shards: 2,
            domains: 2,
            messages: 500,
            batch_size: 16,
            window: 4,
            seed: 9,
            ..base_config()
        };
        let a = run_soak(&config);
        let b = run_soak(&config);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.retained_messages_end, b.retained_messages_end);
        assert_eq!(a.retained_samples_end, b.retained_samples_end);
        assert_eq!(a.retained_cap, b.retained_cap);
    }

    #[test]
    fn worker_soak_matches_inline_retention_and_stays_bounded() {
        let inline_config = base_config();
        let worker_config = SoakConfig {
            threads: 2,
            ..inline_config.clone()
        };
        let inline = run_soak(&inline_config);
        let workers = run_soak(&worker_config);
        assert_eq!(workers.engine, "workers");
        assert_eq!(workers.threads, 2);
        assert_eq!(workers.messages, inline.messages);
        // Same streams, same retention policy → identical steady state,
        // even though the worker engine coalesced batches.
        assert_eq!(workers.retained_messages_end, inline.retained_messages_end);
        assert_eq!(workers.retained_samples_end, inline.retained_samples_end);
        assert!(
            workers.peak_retained_messages <= workers.retained_cap,
            "worker peak {} exceeded cap {}",
            workers.peak_retained_messages,
            workers.retained_cap
        );
    }

    #[test]
    #[should_panic(expected = "threads (3) must equal shards (2)")]
    fn mismatched_worker_count_is_rejected() {
        let config = SoakConfig {
            threads: 3,
            ..base_config()
        };
        let _ = run_soak(&config);
    }
}
