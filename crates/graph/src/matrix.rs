//! A dense square matrix used for all-pairs computations.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// A dense `n × n` matrix indexed by `(row, col)` node pairs.
///
/// The synchronizer works with metric closures over the *complete* processor
/// graph (the paper's cyclic sequences range over arbitrary processor pairs,
/// not just edges of `G`), so a dense representation is the natural fit.
///
/// # Examples
///
/// ```
/// use clocksync_graph::SquareMatrix;
///
/// let mut m = SquareMatrix::filled(2, 0i64);
/// m[(0, 1)] = 7;
/// assert_eq!(m[(0, 1)], 7);
/// assert_eq!(m.n(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SquareMatrix<T> {
    n: usize,
    data: Vec<T>,
}

impl<T: Clone> SquareMatrix<T> {
    /// Creates an `n × n` matrix with every entry set to `fill`.
    pub fn filled(n: usize, fill: T) -> Self {
        SquareMatrix {
            n,
            data: vec![fill; n * n],
        }
    }
}

impl<T> SquareMatrix<T> {
    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        SquareMatrix { n, data }
    }

    /// Builds a matrix from its row-major backing vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n`.
    pub fn from_vec(n: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), n * n, "backing vector must hold n*n entries");
        SquareMatrix { n, data }
    }

    /// The dimension of the matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The row-major backing slice (row `i` occupies `i*n..(i+1)*n`).
    ///
    /// This is the entry point for kernels that want flat, cache-friendly
    /// access instead of per-element `(row, col)` indexing.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable row-major backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// One row as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= n`.
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.n, "matrix index out of range");
        &self.data[row * self.n..(row + 1) * self.n]
    }

    /// Borrowing accessor; panics on out-of-range indices like indexing.
    pub fn get(&self, row: usize, col: usize) -> &T {
        &self[(row, col)]
    }

    /// Iterates over `(row, col, &value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        self.data
            .iter()
            .enumerate()
            .map(move |(k, v)| (k / self.n, k % self.n, v))
    }

    /// Iterates over the off-diagonal entries as `(row, col, &value)`.
    pub fn iter_off_diagonal(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        self.iter().filter(|(i, j, _)| i != j)
    }
}

impl<T> Index<(usize, usize)> for SquareMatrix<T> {
    type Output = T;
    fn index(&self, (row, col): (usize, usize)) -> &T {
        assert!(row < self.n && col < self.n, "matrix index out of range");
        &self.data[row * self.n + col]
    }
}

impl<T> IndexMut<(usize, usize)> for SquareMatrix<T> {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        assert!(row < self.n && col < self.n, "matrix index out of range");
        &mut self.data[row * self.n + col]
    }
}

impl<T: fmt::Display> fmt::Display for SquareMatrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            for j in 0..self.n {
                if j > 0 {
                    write!(f, "\t")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = SquareMatrix::from_fn(3, |i, j| (i * 10 + j) as i64);
        assert_eq!(m.n(), 3);
        assert_eq!(m[(2, 1)], 21);
        assert_eq!(*m.get(0, 2), 2);
    }

    #[test]
    fn mutation() {
        let mut m = SquareMatrix::filled(2, 0i64);
        m[(1, 0)] = -5;
        assert_eq!(m[(1, 0)], -5);
        assert_eq!(m[(0, 1)], 0);
    }

    #[test]
    fn iteration_orders_and_filters() {
        let m = SquareMatrix::from_fn(2, |i, j| i * 2 + j);
        let all: Vec<_> = m.iter().map(|(i, j, v)| (i, j, *v)).collect();
        assert_eq!(all, vec![(0, 0, 0), (0, 1, 1), (1, 0, 2), (1, 1, 3)]);
        let off: Vec<_> = m.iter_off_diagonal().map(|(i, j, _)| (i, j)).collect();
        assert_eq!(off, vec![(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let m = SquareMatrix::filled(2, 0i64);
        let _ = m[(2, 0)];
    }

    #[test]
    fn flat_access_matches_indexing() {
        let mut m = SquareMatrix::from_fn(3, |i, j| (i * 3 + j) as i64);
        assert_eq!(m.as_slice()[5], m[(1, 2)]);
        assert_eq!(m.row(2), &[6, 7, 8]);
        m.as_mut_slice()[4] = -1;
        assert_eq!(m[(1, 1)], -1);
        let rebuilt = SquareMatrix::from_vec(3, m.as_slice().to_vec());
        assert_eq!(rebuilt, m);
    }

    #[test]
    #[should_panic(expected = "n*n entries")]
    fn from_vec_checks_length() {
        let _ = SquareMatrix::from_vec(2, vec![1i64, 2, 3]);
    }

    #[test]
    fn display_is_tab_separated() {
        let m = SquareMatrix::from_fn(2, |i, j| i + j);
        assert_eq!(m.to_string(), "0\t1\n1\t2\n");
    }
}
