//! The closure subsystem: a scaled fast path for one-shot closures and an
//! incrementally-maintained [`Closure`] cache for online resynchronization.
//!
//! Two complementary optimizations of the GLOBAL ESTIMATES step live here:
//!
//! * [`fast_closure`] — the drop-in replacement for
//!   [`crate::floyd_warshall_with_paths`] over [`ExtRatio`] matrices. It
//!   rescales the matrix to plain `i64` (exact, via the least common
//!   denominator) and dispatches on density: the parallel
//!   [`crate::blocked_floyd_warshall_i64`] kernel for dense inputs, the
//!   Johnson-style [`crate::sparse_closure_i64`] for large sparse ones and
//!   the per-component [`crate::hierarchical_closure_i64`] when the domain
//!   splits into several weak components (see [`plan_closure_kernel`]). It
//!   falls back to the generic reference kernel whenever exact scaling is
//!   impossible or could overflow, reporting why via [`ScaleBailout`].
//!   Distances are bit-identical to the reference on every input the fast
//!   path accepts; successor matrices are bit-identical on the dense
//!   kernel and canonically tie-broken (but still valid) on the sparse
//!   ones.
//! * [`Closure`] — a cached `(dist, next)` pair supporting
//!   [`Closure::relax_edge`]: applying a single-edge weight *decrease* in
//!   `O(n²)` instead of recomputing the full `O(n³)` closure. Online
//!   synchronizers observe one message at a time, and each observation can
//!   only tighten the estimate of the link it travelled on, so steady-state
//!   resynchronization becomes a sequence of `relax_edge` calls. The
//!   component-blocked [`crate::SparseClosure`] is its sparse-representation
//!   equivalent for domains too large to hold an `n × n` matrix.

use std::fmt;

use clocksync_time::{Ext, ExtRatio, Ratio};

use crate::{
    blocked_floyd_warshall_i64, floyd_warshall_with_paths, hierarchical_closure_i64,
    sparse_closure_i64, NegativeCycleError, SquareMatrix, Weight, UNREACHABLE,
};

/// Largest common denominator the scaling pass will build. Estimate
/// matrices produced from integer-nanosecond observations have
/// denominators 1 or 2 (the round-trip estimator halves an RTT), so this
/// is generous; it exists to bail out before `lcm` or the scaled
/// magnitudes overflow.
const MAX_SCALE: i128 = 1 << 40;

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

/// Why [`scaled_weights`] refused to rescale a matrix to `i64` — the
/// reasons the GLOBAL ESTIMATES step falls off the scaled kernels onto the
/// `O(n³)` generic rational one. Surfaced through
/// [`try_scaled_closure_explained`] so callers can make the perf cliff
/// observable instead of silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleBailout {
    /// The matrix contains a `NegInf` entry, which the sentinel encoding
    /// cannot represent.
    NegInfWeight,
    /// The least common denominator of the finite entries exceeds
    /// `MAX_SCALE` (or overflows `i128`).
    ScaleOverflow,
    /// A scaled entry's magnitude exceeds `UNREACHABLE / (4n)`, close
    /// enough to the sentinel that `n` additions could overflow into it.
    MagnitudeOverflow,
}

impl ScaleBailout {
    /// A short stable label for obs fields and log lines.
    pub fn name(self) -> &'static str {
        match self {
            ScaleBailout::NegInfWeight => "neg-inf-weight",
            ScaleBailout::ScaleOverflow => "scale-overflow",
            ScaleBailout::MagnitudeOverflow => "magnitude-overflow",
        }
    }
}

impl fmt::Display for ScaleBailout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Exactly rescales an extended-rational matrix to sentinel-encoded `i64`,
/// returning the scaled matrix and the common denominator, or the
/// [`ScaleBailout`] reason when the matrix cannot be represented safely
/// (`NegInf` entries, an oversized common denominator, or magnitudes big
/// enough that `n` additions could approach [`UNREACHABLE`]).
///
/// # Errors
///
/// Returns the [`ScaleBailout`] reason when exact scaling is impossible.
pub fn scaled_weights(
    m: &SquareMatrix<ExtRatio>,
) -> Result<(SquareMatrix<i64>, i128), ScaleBailout> {
    let n = m.n();
    let mut scale: i128 = 1;
    for (_, _, &w) in m.iter() {
        match w {
            Ext::Finite(r) => {
                let den = r.denominator();
                scale = scale
                    .checked_mul(den / gcd(scale, den))
                    .ok_or(ScaleBailout::ScaleOverflow)?;
                if scale > MAX_SCALE {
                    return Err(ScaleBailout::ScaleOverflow);
                }
            }
            Ext::PosInf => {}
            Ext::NegInf => return Err(ScaleBailout::NegInfWeight),
        }
    }
    // Any shortest path has at most n−1 edges, so the kernel's sums stay
    // within n·limit, far from the sentinel.
    let limit = UNREACHABLE / (4 * (n as i64).max(1));
    let mut out = SquareMatrix::filled(n, UNREACHABLE);
    for (i, j, &w) in m.iter() {
        if let Ext::Finite(r) = w {
            let scaled = r
                .numerator()
                .checked_mul(scale / r.denominator())
                .ok_or(ScaleBailout::MagnitudeOverflow)?;
            let v = i64::try_from(scaled).map_err(|_| ScaleBailout::MagnitudeOverflow)?;
            if !(-limit..=limit).contains(&v) {
                return Err(ScaleBailout::MagnitudeOverflow);
            }
            out[(i, j)] = v;
        }
    }
    Ok((out, scale))
}

/// The result type of the closure functions: `(dist, next)` on success,
/// the negative-cycle witness otherwise.
pub type ClosureResult = Result<(SquareMatrix<ExtRatio>, SquareMatrix<usize>), NegativeCycleError>;

/// Below this dimension the scaled fast path always uses the dense
/// blocked kernel: a sub-millisecond `n³` leaves nothing for the sparse
/// backends to win, and the dense kernel's successor matrix is
/// bit-identical to the generic reference (which the small-n equivalence
/// suites assert).
pub const SPARSE_MIN_N: usize = 192;

/// Finite off-diagonal density at or below which the Johnson backend is
/// dispatched (for `n ≥ SPARSE_MIN_N`), expressed as a fraction. Tuned
/// with `tables --bench-closure` on the WAN-ring and toroid arms: at 5%
/// density and `n = 512` the sparse kernel already wins ~4x over the
/// dense one, and the gap widens with `n`; above ~8% the dense kernel's
/// streaming row relaxations win back.
pub const SPARSE_MAX_DENSITY: f64 = 0.05;

/// Which scaled-`i64` kernel [`fast_closure`] dispatched to, reported on
/// the `sync.global_estimates` obs span (via
/// [`try_scaled_closure_explained`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClosureKernel {
    /// The parallel blocked Floyd–Warshall ([`blocked_floyd_warshall_i64`]).
    DenseBlocked,
    /// Johnson-style reweighted SSSP per source
    /// ([`crate::sparse_closure_i64`]).
    SparseJohnson,
    /// Per-weak-component closures composed through boundary nodes
    /// ([`crate::hierarchical_closure_i64`]).
    Hierarchical,
}

impl ClosureKernel {
    /// The stable obs label (the `kernel` field of the
    /// `sync.global_estimates` span). `DenseBlocked` keeps the historical
    /// `scaled-i64` label.
    pub fn name(self) -> &'static str {
        match self {
            ClosureKernel::DenseBlocked => "scaled-i64",
            ClosureKernel::SparseJohnson => "sparse-johnson",
            ClosureKernel::Hierarchical => "hier-components",
        }
    }
}

impl fmt::Display for ClosureKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Chooses the scaled kernel for a sentinel-encoded matrix — the density
/// dispatch heuristic behind [`fast_closure`]:
///
/// * `n < SPARSE_MIN_N` → [`ClosureKernel::DenseBlocked`] (bit-identical
///   to the generic reference, and fastest at small `n` anyway);
/// * more than one weak component → [`ClosureKernel::Hierarchical`]
///   (each component pays only its own closure);
/// * finite off-diagonal density `≤ SPARSE_MAX_DENSITY` →
///   [`ClosureKernel::SparseJohnson`];
/// * otherwise the dense blocked kernel.
pub fn plan_closure_kernel(scaled: &SquareMatrix<i64>) -> ClosureKernel {
    let n = scaled.n();
    if n < SPARSE_MIN_N {
        return ClosureKernel::DenseBlocked;
    }
    // One pass: count finite off-diagonal edges and union the endpoints.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut edges = 0usize;
    for (i, j, &w) in scaled.iter_off_diagonal() {
        if w == UNREACHABLE {
            continue;
        }
        edges += 1;
        let (a, b) = (find(&mut parent, i), find(&mut parent, j));
        if a != b {
            parent[a] = b;
        }
    }
    let roots = (0..n).filter(|&i| find(&mut parent, i) == i).count();
    if roots > 1 {
        return ClosureKernel::Hierarchical;
    }
    let density = edges as f64 / (n as f64 * n as f64);
    if density <= SPARSE_MAX_DENSITY {
        ClosureKernel::SparseJohnson
    } else {
        ClosureKernel::DenseBlocked
    }
}

/// Runs the [`plan_closure_kernel`]-selected kernel over a
/// sentinel-encoded matrix. All three kernels agree exactly on distances;
/// the sparse kernels' successor matrices are canonically tie-broken
/// rather than Floyd–Warshall-identical.
///
/// # Errors
///
/// Returns [`NegativeCycleError`] when the graph has a negative cycle.
pub fn dispatch_closure_i64(
    scaled: &SquareMatrix<i64>,
) -> Result<(SquareMatrix<i64>, SquareMatrix<usize>), NegativeCycleError> {
    match plan_closure_kernel(scaled) {
        ClosureKernel::DenseBlocked => blocked_floyd_warshall_i64(scaled),
        ClosureKernel::SparseJohnson => sparse_closure_i64(scaled),
        ClosureKernel::Hierarchical => hierarchical_closure_i64(scaled),
    }
}

/// Runs a scaled `i64` kernel if the matrix admits exact scaling,
/// reporting which kernel the density dispatch chose, or the
/// [`ScaleBailout`] reason when it does not (the caller should use the
/// generic kernel, and knows why the fast path was lost).
///
/// # Errors
///
/// Returns the [`ScaleBailout`] reason when exact scaling is impossible.
pub fn try_scaled_closure_explained(
    m: &SquareMatrix<ExtRatio>,
) -> Result<(ClosureKernel, ClosureResult), ScaleBailout> {
    let (scaled, scale) = scaled_weights(m)?;
    let kernel = plan_closure_kernel(&scaled);
    let result = match kernel {
        ClosureKernel::DenseBlocked => blocked_floyd_warshall_i64(&scaled),
        ClosureKernel::SparseJohnson => sparse_closure_i64(&scaled),
        ClosureKernel::Hierarchical => hierarchical_closure_i64(&scaled),
    };
    let result = result.map(|(dist, next)| {
        let dist = SquareMatrix::from_fn(m.n(), |i, j| {
            let v = dist[(i, j)];
            if v == UNREACHABLE {
                Ext::PosInf
            } else {
                Ext::Finite(Ratio::new(v as i128, scale))
            }
        });
        (dist, next)
    });
    Ok((kernel, result))
}

/// Runs a scaled `i64` kernel if the matrix admits exact scaling.
/// Returns `None` when it does not (the caller should use the generic
/// kernel). Exposed so the equivalence test suite can tell "fast path
/// taken" apart from "silently fell back"; use
/// [`try_scaled_closure_explained`] to also learn the kernel choice or
/// the bailout reason.
pub fn try_scaled_closure(m: &SquareMatrix<ExtRatio>) -> Option<ClosureResult> {
    try_scaled_closure_explained(m)
        .ok()
        .map(|(_, result)| result)
}

/// The all-pairs shortest-path closure with path successors — same
/// contract as [`crate::floyd_warshall_with_paths`], computed via a
/// scaled-`i64` kernel whenever the input can be exactly rescaled (the
/// common case for estimate matrices), and via the generic exact kernel
/// otherwise. The scaled path density-dispatches between the dense
/// blocked kernel and the sparse/hierarchical backends (see
/// [`plan_closure_kernel`]). On every input all routes produce identical
/// distance matrices; on dense-kernel inputs the successor matrix is
/// identical to the generic reference too, while the sparse kernels
/// produce canonically tie-broken (still valid) successors.
///
/// # Errors
///
/// Returns [`NegativeCycleError`] when the graph contains a negative
/// cycle.
///
/// # Examples
///
/// ```
/// use clocksync_graph::{fast_closure, SquareMatrix, Weight};
/// use clocksync_time::{Ext, ExtRatio, Ratio};
///
/// let mut m = SquareMatrix::from_fn(3, |i, j| {
///     if i == j { <ExtRatio as Weight>::zero() } else { Ext::PosInf }
/// });
/// m[(0, 1)] = Ext::Finite(Ratio::new(1, 2));
/// m[(1, 2)] = Ext::Finite(Ratio::from_int(2));
/// let (dist, _next) = fast_closure(&m)?;
/// assert_eq!(dist[(0, 2)], Ext::Finite(Ratio::new(5, 2)));
/// # Ok::<(), clocksync_graph::NegativeCycleError>(())
/// ```
pub fn fast_closure(m: &SquareMatrix<ExtRatio>) -> ClosureResult {
    match try_scaled_closure_explained(m) {
        Ok((_, result)) => result,
        Err(_) => floyd_warshall_with_paths(m),
    }
}

/// What a [`Closure::relax_edge`] call did — and, crucially, whether the
/// cache may now be stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelaxOutcome {
    /// At least one closure entry tightened; the cache is exact for the
    /// updated graph.
    Tightened,
    /// Nothing changed and nothing can be stale: `w` equals the cached
    /// `dist[(u, v)]`, is `+∞` over an already-unreachable pair, or is a
    /// non-negative self-loop. The cache remains exact.
    Unchanged,
    /// `w` is strictly looser than the cached `dist[(u, v)]`, so the
    /// relaxation **was not applied**. The cache cannot tell two callers
    /// apart: one probing a redundant heavier edge (a new chord whose
    /// weight exceeds an existing path — harmless, the closure is
    /// unchanged and still exact), and one whose underlying edge weight
    /// *increased* from a value the cached entries may depend on — in
    /// which case the cache is stale and too tight. Callers that cannot
    /// rule out a genuine loosening (e.g. after evidence retraction) MUST
    /// discard the cache or patch the affected component before the next
    /// query; callers that only ever tighten may safely ignore this
    /// outcome.
    StaleLoosening,
}

impl RelaxOutcome {
    /// Whether the relaxation changed any cached entry.
    pub fn changed(self) -> bool {
        matches!(self, RelaxOutcome::Tightened)
    }
}

/// A cached metric closure that can absorb single-edge weight decreases in
/// `O(n²)` — the incremental engine behind online resynchronization.
///
/// The invariant: `dist` is the exact all-pairs shortest-path closure of
/// some weighted digraph, and `next` is a valid successor matrix for it
/// (`next[(i, j)]` begins a shortest `i → j` path; `usize::MAX` iff
/// unreachable or `i == j`). [`Closure::relax_edge`] preserves the
/// invariant under edge insertions/decreases; any other change requires a
/// rebuild with [`Closure::new`].
///
/// # Examples
///
/// ```
/// use clocksync_graph::{Closure, SquareMatrix};
/// use clocksync_time::Ext;
///
/// let mut m = SquareMatrix::filled(3, Ext::PosInf);
/// for i in 0..3 { m[(i, i)] = Ext::Finite(0i64); }
/// m[(0, 1)] = Ext::Finite(3);
/// m[(1, 2)] = Ext::Finite(3);
/// let mut c = Closure::new(&m)?;
/// assert_eq!(c.dist()[(0, 2)], Ext::Finite(6));
/// // A tighter 0 → 1 estimate arrives: every pair through it improves.
/// assert!(c.relax_edge(0, 1, Ext::Finite(1))?.changed());
/// assert_eq!(c.dist()[(0, 2)], Ext::Finite(4));
/// # Ok::<(), clocksync_graph::NegativeCycleError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Closure<W> {
    dist: SquareMatrix<W>,
    next: SquareMatrix<usize>,
}

impl<W: Weight> Closure<W> {
    /// Builds the closure of a weight matrix with the generic exact kernel
    /// (conventions of [`crate::floyd_warshall_with_paths`]).
    ///
    /// # Errors
    ///
    /// Returns [`NegativeCycleError`] when the graph has a negative cycle.
    pub fn new(m: &SquareMatrix<W>) -> Result<Closure<W>, NegativeCycleError> {
        floyd_warshall_with_paths(m).map(|(dist, next)| Closure { dist, next })
    }

    /// Wraps an already-computed `(dist, next)` pair — e.g. the output of
    /// [`fast_closure`]. The pair must satisfy the closure invariant.
    ///
    /// # Panics
    ///
    /// Panics if the two matrices disagree on dimension.
    pub fn from_parts(dist: SquareMatrix<W>, next: SquareMatrix<usize>) -> Closure<W> {
        assert_eq!(
            dist.n(),
            next.n(),
            "dist and next must have equal dimension"
        );
        Closure { dist, next }
    }

    /// The dimension.
    pub fn n(&self) -> usize {
        self.dist.n()
    }

    /// The closure distances.
    pub fn dist(&self) -> &SquareMatrix<W> {
        &self.dist
    }

    /// The successor matrix (see [`crate::reconstruct_path`]).
    pub fn next(&self) -> &SquareMatrix<usize> {
        &self.next
    }

    /// Consumes the cache, returning `(dist, next)`.
    pub fn into_parts(self) -> (SquareMatrix<W>, SquareMatrix<usize>) {
        (self.dist, self.next)
    }

    /// Incorporates a new edge `u → v` of weight `w` (equivalently: lowers
    /// the existing edge to `w`), updating the cached closure in `O(n²)`:
    ///
    /// `dist[i][j] ← min(dist[i][j], dist[i][u] + w + dist[v][j])`.
    ///
    /// This is exact because a weight *decrease* cannot lengthen any
    /// shortest path, and any path improved by the change uses the new
    /// edge, splitting into an old shortest `i → u` prefix and `v → j`
    /// suffix — both of which the cached closure already knows.
    ///
    /// The [`RelaxOutcome`] makes the staleness contract explicit:
    /// [`RelaxOutcome::Tightened`] when entries changed,
    /// [`RelaxOutcome::Unchanged`] when `w` equals the cached `dist[(u,
    /// v)]` (or is a harmless non-negative self-loop / `+∞` over an
    /// already-unreachable pair — cases that can never hide a stale
    /// cache), and [`RelaxOutcome::StaleLoosening`] when `w` is *strictly
    /// looser* than the cached entry. A `StaleLoosening` relaxation is
    /// **not applied**; see that variant's documentation for the caller's
    /// obligation. All three no-op verdicts are detected in `O(1)`.
    ///
    /// # Errors
    ///
    /// Returns [`NegativeCycleError`] when the new edge closes a negative
    /// cycle (`w + dist[(v, u)] < 0`). The cache is left in an unspecified
    /// partially-updated state and must be discarded or rebuilt; this
    /// mirrors the full kernels, which also reject such graphs.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn relax_edge(
        &mut self,
        u: usize,
        v: usize,
        w: W,
    ) -> Result<RelaxOutcome, NegativeCycleError> {
        self.relax_edge_impl(u, v, w, None)
    }

    /// Like [`Closure::relax_edge`], but restricts the `O(n²)` update loop
    /// to `members` — exact whenever `members` contains every node `x`
    /// with finite `dist[(x, u)]` and every node `y` with finite
    /// `dist[(v, y)]` (a superset of the weak component of `{u, v}` in the
    /// closure's underlying graph always qualifies: finiteness demands an
    /// undirected finite path). Steady-state resynchronization on a
    /// multi-component domain then costs `O(k²)` per tightening, `k` the
    /// component size, instead of `O(n²)`.
    ///
    /// # Errors
    ///
    /// Same as [`Closure::relax_edge`].
    ///
    /// # Panics
    ///
    /// Panics if `u`, `v` or any member is out of range.
    pub fn relax_edge_within(
        &mut self,
        u: usize,
        v: usize,
        w: W,
        members: &[usize],
    ) -> Result<RelaxOutcome, NegativeCycleError> {
        self.relax_edge_impl(u, v, w, Some(members))
    }

    fn relax_edge_impl(
        &mut self,
        u: usize,
        v: usize,
        w: W,
        members: Option<&[usize]>,
    ) -> Result<RelaxOutcome, NegativeCycleError> {
        let n = self.dist.n();
        assert!(u < n && v < n, "edge endpoint out of range");
        if u == v {
            // A self-loop only matters when negative (a 1-cycle); the
            // closure diagonal is pinned at zero, so a non-negative one can
            // never have been baked into any entry — not a staleness risk.
            return if w < W::zero() {
                Err(NegativeCycleError { witness: u })
            } else {
                Ok(RelaxOutcome::Unchanged)
            };
        }
        let cached = self.dist[(u, v)];
        if w == cached || (!w.is_reachable() && !cached.is_reachable()) {
            return Ok(RelaxOutcome::Unchanged);
        }
        if !w.is_reachable() || w > cached {
            return Ok(RelaxOutcome::StaleLoosening);
        }
        // Snapshots: the new edge cannot change column u or row v unless it
        // closes a negative cycle (w + dist[(v, u)] ≥ 0 ⇒ no i → u path
        // improves by detouring through u → v → … → u), so reading the old
        // values below is exact; a closed negative cycle instead surfaces
        // as a negative diagonal entry, reported as the error.
        let mut changed = false;
        let mut negative = None;
        match members {
            None => {
                let col_u: Vec<W> = (0..n).map(|i| self.dist[(i, u)]).collect();
                let row_v: Vec<W> = (0..n).map(|j| self.dist[(v, j)]).collect();
                let next_u: Vec<usize> = (0..n).map(|i| self.next[(i, u)]).collect();
                for i in 0..n {
                    let diu = col_u[i];
                    if !diu.is_reachable() {
                        continue;
                    }
                    let base = diu + w;
                    let first_hop = if i == u { v } else { next_u[i] };
                    for (j, &dvj) in row_v.iter().enumerate() {
                        if !dvj.is_reachable() {
                            continue;
                        }
                        let cand = base + dvj;
                        if cand < self.dist[(i, j)] {
                            self.dist[(i, j)] = cand;
                            self.next[(i, j)] = first_hop;
                            changed = true;
                            if i == j && negative.is_none() {
                                negative = Some(i);
                            }
                        }
                    }
                }
            }
            Some(indices) => {
                let col_u: Vec<W> = indices.iter().map(|&i| self.dist[(i, u)]).collect();
                let row_v: Vec<W> = indices.iter().map(|&j| self.dist[(v, j)]).collect();
                let next_u: Vec<usize> = indices.iter().map(|&i| self.next[(i, u)]).collect();
                for (ii, &i) in indices.iter().enumerate() {
                    let diu = col_u[ii];
                    if !diu.is_reachable() {
                        continue;
                    }
                    let base = diu + w;
                    let first_hop = if i == u { v } else { next_u[ii] };
                    for (jj, &dvj) in row_v.iter().enumerate() {
                        if !dvj.is_reachable() {
                            continue;
                        }
                        let j = indices[jj];
                        let cand = base + dvj;
                        if cand < self.dist[(i, j)] {
                            self.dist[(i, j)] = cand;
                            self.next[(i, j)] = first_hop;
                            changed = true;
                            if i == j && negative.is_none() {
                                negative = Some(i);
                            }
                        }
                    }
                }
            }
        }
        match negative {
            Some(witness) => Err(NegativeCycleError { witness }),
            None if changed => Ok(RelaxOutcome::Tightened),
            None => Ok(RelaxOutcome::Unchanged),
        }
    }
}

impl Closure<ExtRatio> {
    /// Builds the closure via [`fast_closure`] (the parallel scaled-`i64`
    /// kernel with generic fallback).
    ///
    /// # Errors
    ///
    /// Returns [`NegativeCycleError`] when the graph has a negative cycle.
    pub fn fast(m: &SquareMatrix<ExtRatio>) -> Result<Closure<ExtRatio>, NegativeCycleError> {
        fast_closure(m).map(|(dist, next)| Closure { dist, next })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstruct_path;

    fn ratio_matrix(n: usize, edges: &[(usize, usize, i128, i128)]) -> SquareMatrix<ExtRatio> {
        let mut m = SquareMatrix::from_fn(n, |i, j| {
            if i == j {
                <ExtRatio as Weight>::zero()
            } else {
                Ext::PosInf
            }
        });
        for &(a, b, num, den) in edges {
            m[(a, b)] = Ext::Finite(Ratio::new(num, den));
        }
        m
    }

    #[test]
    fn fast_closure_matches_generic_on_rationals() {
        let m = ratio_matrix(
            4,
            &[
                (0, 1, 1, 2),
                (1, 2, 3, 2),
                (2, 3, -1, 2),
                (0, 3, 10, 1),
                (3, 0, 5, 1),
            ],
        );
        assert!(
            try_scaled_closure(&m).is_some(),
            "should take the fast path"
        );
        let (fd, fnext) = fast_closure(&m).unwrap();
        let (gd, gnext) = floyd_warshall_with_paths(&m).unwrap();
        assert_eq!(fd, gd);
        assert_eq!(fnext, gnext);
    }

    #[test]
    fn scaling_rejects_neg_inf_and_huge_denominators() {
        let mut m = ratio_matrix(2, &[(0, 1, 1, 1)]);
        m[(1, 0)] = Ext::NegInf;
        assert!(try_scaled_closure(&m).is_none());
        let mut m = ratio_matrix(2, &[(0, 1, 1, 1)]);
        m[(1, 0)] = Ext::Finite(Ratio::new(1, MAX_SCALE * 2 + 1));
        assert!(try_scaled_closure(&m).is_none());
    }

    #[test]
    fn fast_closure_falls_back_when_unscalable() {
        let mut m = ratio_matrix(2, &[(0, 1, 3, 1)]);
        m[(1, 0)] = Ext::Finite(Ratio::new(1, MAX_SCALE * 2 + 1));
        let (d, _) = fast_closure(&m).unwrap();
        assert_eq!(d[(0, 1)], Ext::Finite(Ratio::from_int(3)));
    }

    #[test]
    fn fast_closure_reports_negative_cycles() {
        let m = ratio_matrix(2, &[(0, 1, 1, 1), (1, 0, -2, 1)]);
        assert!(fast_closure(&m).is_err());
    }

    #[test]
    fn relax_edge_matches_full_recompute() {
        let mut m = ratio_matrix(4, &[(0, 1, 4, 1), (1, 2, 4, 1), (2, 3, 4, 1), (3, 0, 4, 1)]);
        let mut c = Closure::new(&m).unwrap();
        // Tighten 1 → 2, then add a brand-new chord 0 → 2.
        for (u, v, w) in [
            (1usize, 2usize, Ratio::from_int(1)),
            (0, 2, Ratio::from_int(2)),
        ] {
            m[(u, v)] = Ext::Finite(w);
            c.relax_edge(u, v, Ext::Finite(w)).unwrap();
            let fresh = Closure::new(&m).unwrap();
            assert_eq!(c.dist(), fresh.dist());
        }
    }

    #[test]
    fn relax_edge_no_op_cases() {
        let m = ratio_matrix(3, &[(0, 1, 2, 1), (1, 2, 2, 1)]);
        let mut c = Closure::new(&m).unwrap();
        let before = c.clone();
        // Worse than the existing estimate: not applied, and flagged so a
        // caller that cannot rule out a genuine loosening knows to rebuild.
        assert_eq!(
            c.relax_edge(0, 1, Ext::Finite(Ratio::from_int(7))).unwrap(),
            RelaxOutcome::StaleLoosening
        );
        // Equal to it, unreachable-over-unreachable, and a nonnegative
        // self-loop: provably harmless no-ops.
        assert_eq!(
            c.relax_edge(0, 1, Ext::Finite(Ratio::from_int(2))).unwrap(),
            RelaxOutcome::Unchanged
        );
        assert_eq!(
            c.relax_edge(2, 0, Ext::PosInf).unwrap(),
            RelaxOutcome::Unchanged
        );
        assert_eq!(
            c.relax_edge(1, 1, Ext::Finite(Ratio::ZERO)).unwrap(),
            RelaxOutcome::Unchanged
        );
        assert_eq!(c, before);
    }

    #[test]
    fn relax_edge_flags_stale_loosenings() {
        // dist(0, 2) = 4 rides on the direct edge 0 → 1 of weight 2. An
        // operator retracts the evidence: the edge loosens to 9. The cache
        // cannot absorb that; it must say so, leave itself untouched (still
        // claiming the now-too-tight 4), and the caller's mandated rebuild
        // must agree with a fresh recompute.
        let mut m = ratio_matrix(3, &[(0, 1, 2, 1), (1, 2, 2, 1)]);
        let mut c = Closure::new(&m).unwrap();
        m[(0, 1)] = Ext::Finite(Ratio::from_int(9));
        assert_eq!(
            c.relax_edge(0, 1, Ext::Finite(Ratio::from_int(9))).unwrap(),
            RelaxOutcome::StaleLoosening
        );
        // The stale cache still serves the outdated bound — which is
        // exactly why the contract demands a rebuild now.
        assert_eq!(c.dist()[(0, 2)], Ext::Finite(Ratio::from_int(4)));
        let rebuilt = Closure::fast(&m).unwrap();
        let fresh = Closure::new(&m).unwrap();
        assert_eq!(rebuilt.dist(), fresh.dist());
        assert_eq!(rebuilt.dist()[(0, 2)], Ext::Finite(Ratio::from_int(11)));
        // A loosening to +∞ (forgotten link) over a finite entry is flagged
        // the same way.
        let mut c2 = fresh.clone();
        assert_eq!(
            c2.relax_edge(1, 2, Ext::PosInf).unwrap(),
            RelaxOutcome::StaleLoosening
        );
    }

    #[test]
    fn relax_edge_within_matches_unscoped() {
        // Two weak components {0, 1, 2} and {3, 4}; tighten 0 → 1 scoped to
        // its component and compare against the unscoped relaxation.
        let edges = [
            (0, 1, 4, 1),
            (1, 2, 4, 1),
            (2, 0, 1, 1),
            (3, 4, 2, 1),
            (4, 3, 5, 1),
        ];
        let m = ratio_matrix(5, &edges);
        let mut scoped = Closure::new(&m).unwrap();
        let mut full = scoped.clone();
        let w = Ext::Finite(Ratio::from_int(1));
        let a = scoped.relax_edge_within(0, 1, w, &[0, 1, 2]).unwrap();
        let b = full.relax_edge(0, 1, w).unwrap();
        assert_eq!(a, b);
        assert_eq!(scoped, full);
        // And a scoped negative-cycle detection agrees too.
        let bad = Ext::Finite(Ratio::from_int(-9));
        assert!(scoped.relax_edge_within(1, 0, bad, &[0, 1, 2]).is_err());
        assert!(full.relax_edge(1, 0, bad).is_err());
    }

    #[test]
    fn relax_edge_detects_negative_cycles() {
        let m = ratio_matrix(3, &[(0, 1, 2, 1), (1, 2, 2, 1), (2, 0, 2, 1)]);
        let mut c = Closure::new(&m).unwrap();
        // dist(1, 0) = 4; an edge 0 → 1 of weight −5 closes a −1 cycle.
        let err = c
            .relax_edge(0, 1, Ext::Finite(Ratio::from_int(-5)))
            .unwrap_err();
        let _ = err.witness;
        // Negative self-loops are 1-cycles.
        let mut c2 = Closure::new(&m).unwrap();
        assert!(c2
            .relax_edge(1, 1, Ext::Finite(Ratio::from_int(-1)))
            .is_err());
    }

    #[test]
    fn relax_edge_keeps_successors_valid() {
        let m = ratio_matrix(4, &[(0, 1, 4, 1), (1, 2, 4, 1), (2, 3, 4, 1)]);
        let mut c = Closure::new(&m).unwrap();
        c.relax_edge(0, 2, Ext::Finite(Ratio::from_int(3))).unwrap();
        c.relax_edge(1, 3, Ext::Finite(Ratio::from_int(5))).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                match reconstruct_path(c.next(), i, j) {
                    Some(path) => {
                        assert_eq!(path.first(), Some(&i));
                        assert_eq!(path.last(), Some(&j));
                        assert!(c.dist()[(i, j)].is_reachable());
                    }
                    None => assert!(!c.dist()[(i, j)].is_reachable()),
                }
            }
        }
    }

    #[test]
    fn scaling_bailout_reasons_are_reported() {
        let mut m = ratio_matrix(2, &[(0, 1, 1, 1)]);
        m[(1, 0)] = Ext::NegInf;
        assert_eq!(
            try_scaled_closure_explained(&m).unwrap_err(),
            ScaleBailout::NegInfWeight
        );
        let mut m = ratio_matrix(2, &[(0, 1, 1, 1)]);
        m[(1, 0)] = Ext::Finite(Ratio::new(1, MAX_SCALE * 2 + 1));
        assert_eq!(
            try_scaled_closure_explained(&m).unwrap_err(),
            ScaleBailout::ScaleOverflow
        );
        assert_eq!(ScaleBailout::MagnitudeOverflow.name(), "magnitude-overflow");
    }

    #[test]
    fn scaling_boundary_at_max_scale() {
        // A common denominator of exactly MAX_SCALE is the last one the
        // scaling pass accepts; one step beyond bails with ScaleOverflow.
        let mut m = ratio_matrix(2, &[(0, 1, 1, 1)]);
        m[(1, 0)] = Ext::Finite(Ratio::new(1, MAX_SCALE));
        let (_, result) = try_scaled_closure_explained(&m).expect("MAX_SCALE itself is admissible");
        let (d, _) = result.unwrap();
        assert_eq!(d[(1, 0)], Ext::Finite(Ratio::new(1, MAX_SCALE)));
        // MAX_SCALE * 2 stays a power of two times two — still a single
        // denominator, but past the cap.
        let mut m = ratio_matrix(2, &[(0, 1, 1, 1)]);
        m[(1, 0)] = Ext::Finite(Ratio::new(1, MAX_SCALE * 2));
        assert_eq!(
            try_scaled_closure_explained(&m).unwrap_err(),
            ScaleBailout::ScaleOverflow
        );
    }

    #[test]
    fn scaling_boundary_at_magnitude_limit() {
        // The per-entry magnitude bound is UNREACHABLE / (4n): exactly at
        // the limit scales fine, one past it bails with MagnitudeOverflow
        // (and fast_closure still answers, via the generic kernel).
        let limit = (UNREACHABLE / (4 * 2)) as i128;
        let mut m = ratio_matrix(2, &[]);
        m[(0, 1)] = Ext::Finite(Ratio::from_int(limit));
        let (_, result) = try_scaled_closure_explained(&m).expect("limit itself is admissible");
        let (d, _) = result.unwrap();
        assert_eq!(d[(0, 1)], Ext::Finite(Ratio::from_int(limit)));
        m[(0, 1)] = Ext::Finite(Ratio::from_int(limit + 1));
        assert_eq!(
            try_scaled_closure_explained(&m).unwrap_err(),
            ScaleBailout::MagnitudeOverflow
        );
        let (d, _) = fast_closure(&m).unwrap();
        assert_eq!(d[(0, 1)], Ext::Finite(Ratio::from_int(limit + 1)));
    }

    #[test]
    fn kernel_dispatch_boundaries() {
        let ring = |n: usize| {
            let mut m = SquareMatrix::filled(n, UNREACHABLE);
            for i in 0..n {
                m[(i, i)] = 0;
                m[(i, (i + 1) % n)] = 1;
                m[((i + 1) % n, i)] = 1;
            }
            m
        };
        // Below SPARSE_MIN_N the dense kernel is chosen however sparse the
        // input (keeping small-n successor matrices bit-identical to the
        // generic reference).
        assert_eq!(
            plan_closure_kernel(&ring(SPARSE_MIN_N - 1)),
            ClosureKernel::DenseBlocked
        );
        // At SPARSE_MIN_N a ring is far below the density threshold.
        assert_eq!(
            plan_closure_kernel(&ring(SPARSE_MIN_N)),
            ClosureKernel::SparseJohnson
        );
        // A fully dense matrix of the same size stays on the dense kernel.
        let mut dense = SquareMatrix::filled(SPARSE_MIN_N, 1);
        for i in 0..SPARSE_MIN_N {
            dense[(i, i)] = 0;
        }
        assert_eq!(plan_closure_kernel(&dense), ClosureKernel::DenseBlocked);
        // Two disjoint rings dispatch to the hierarchical backend.
        let half = SPARSE_MIN_N / 2;
        let mut split = SquareMatrix::filled(SPARSE_MIN_N, UNREACHABLE);
        for i in 0..SPARSE_MIN_N {
            split[(i, i)] = 0;
        }
        for c in 0..2 {
            let base = c * half;
            for i in 0..half {
                split[(base + i, base + (i + 1) % half)] = 1;
            }
        }
        assert_eq!(plan_closure_kernel(&split), ClosureKernel::Hierarchical);
        assert_eq!(ClosureKernel::DenseBlocked.name(), "scaled-i64");
        assert_eq!(ClosureKernel::SparseJohnson.name(), "sparse-johnson");
        assert_eq!(ClosureKernel::Hierarchical.name(), "hier-components");
    }

    #[test]
    fn from_parts_round_trips() {
        let m = ratio_matrix(3, &[(0, 1, 1, 1), (1, 2, 1, 1)]);
        let c = Closure::fast(&m).unwrap();
        assert_eq!(c.n(), 3);
        let (d, next) = c.clone().into_parts();
        assert_eq!(Closure::from_parts(d, next), c);
    }
}
