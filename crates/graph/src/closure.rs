//! The closure subsystem: a scaled fast path for one-shot closures and an
//! incrementally-maintained [`Closure`] cache for online resynchronization.
//!
//! Two complementary optimizations of the GLOBAL ESTIMATES step live here:
//!
//! * [`fast_closure`] — the drop-in replacement for
//!   [`crate::floyd_warshall_with_paths`] over [`ExtRatio`] matrices. It
//!   rescales the matrix to plain `i64` (exact, via the least common
//!   denominator) and runs the parallel
//!   [`crate::blocked_floyd_warshall_i64`] kernel, falling back to the
//!   generic reference kernel whenever exact scaling is impossible or
//!   could overflow. Results are bit-identical to the reference on every
//!   input the fast path accepts.
//! * [`Closure`] — a cached `(dist, next)` pair supporting
//!   [`Closure::relax_edge`]: applying a single-edge weight *decrease* in
//!   `O(n²)` instead of recomputing the full `O(n³)` closure. Online
//!   synchronizers observe one message at a time, and each observation can
//!   only tighten the estimate of the link it travelled on, so steady-state
//!   resynchronization becomes a sequence of `relax_edge` calls.

use clocksync_time::{Ext, ExtRatio, Ratio};

use crate::{
    blocked_floyd_warshall_i64, floyd_warshall_with_paths, NegativeCycleError, SquareMatrix,
    Weight, UNREACHABLE,
};

/// Largest common denominator the scaling pass will build. Estimate
/// matrices produced from integer-nanosecond observations have
/// denominators 1 or 2 (the round-trip estimator halves an RTT), so this
/// is generous; it exists to bail out before `lcm` or the scaled
/// magnitudes overflow.
const MAX_SCALE: i128 = 1 << 40;

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

/// Exactly rescales an extended-rational matrix to sentinel-encoded `i64`,
/// returning the scaled matrix and the common denominator, or `None` when
/// the matrix cannot be represented safely (`NegInf` entries, an oversized
/// common denominator, or magnitudes big enough that `n` additions could
/// approach [`UNREACHABLE`]).
fn scaled_weights(m: &SquareMatrix<ExtRatio>) -> Option<(SquareMatrix<i64>, i128)> {
    let n = m.n();
    let mut scale: i128 = 1;
    for (_, _, &w) in m.iter() {
        match w {
            Ext::Finite(r) => {
                let den = r.denominator();
                scale = scale.checked_mul(den / gcd(scale, den))?;
                if scale > MAX_SCALE {
                    return None;
                }
            }
            Ext::PosInf => {}
            Ext::NegInf => return None,
        }
    }
    // Any shortest path has at most n−1 edges, so the kernel's sums stay
    // within n·limit, far from the sentinel.
    let limit = UNREACHABLE / (4 * (n as i64).max(1));
    let mut out = SquareMatrix::filled(n, UNREACHABLE);
    for (i, j, &w) in m.iter() {
        if let Ext::Finite(r) = w {
            let scaled = r.numerator().checked_mul(scale / r.denominator())?;
            let v = i64::try_from(scaled).ok()?;
            if !(-limit..=limit).contains(&v) {
                return None;
            }
            out[(i, j)] = v;
        }
    }
    Some((out, scale))
}

/// The result type of the closure functions: `(dist, next)` on success,
/// the negative-cycle witness otherwise.
pub type ClosureResult = Result<(SquareMatrix<ExtRatio>, SquareMatrix<usize>), NegativeCycleError>;

/// Runs the scaled `i64` kernel if the matrix admits exact scaling.
/// Returns `None` when it does not (the caller should use the generic
/// kernel). Exposed so the equivalence test suite can tell "fast path
/// taken" apart from "silently fell back".
pub fn try_scaled_closure(m: &SquareMatrix<ExtRatio>) -> Option<ClosureResult> {
    let (scaled, scale) = scaled_weights(m)?;
    Some(blocked_floyd_warshall_i64(&scaled).map(|(dist, next)| {
        let dist = SquareMatrix::from_fn(m.n(), |i, j| {
            let v = dist[(i, j)];
            if v == UNREACHABLE {
                Ext::PosInf
            } else {
                Ext::Finite(Ratio::new(v as i128, scale))
            }
        });
        (dist, next)
    }))
}

/// The all-pairs shortest-path closure with path successors — same
/// contract as [`crate::floyd_warshall_with_paths`], computed via the
/// parallel scaled-`i64` kernel whenever the input can be exactly
/// rescaled (the common case for estimate matrices), and via the generic
/// exact kernel otherwise. On every input both routes produce identical
/// distance matrices; on fast-path inputs the successor matrices are
/// identical too.
///
/// # Errors
///
/// Returns [`NegativeCycleError`] when the graph contains a negative
/// cycle.
///
/// # Examples
///
/// ```
/// use clocksync_graph::{fast_closure, SquareMatrix, Weight};
/// use clocksync_time::{Ext, ExtRatio, Ratio};
///
/// let mut m = SquareMatrix::from_fn(3, |i, j| {
///     if i == j { <ExtRatio as Weight>::zero() } else { Ext::PosInf }
/// });
/// m[(0, 1)] = Ext::Finite(Ratio::new(1, 2));
/// m[(1, 2)] = Ext::Finite(Ratio::from_int(2));
/// let (dist, _next) = fast_closure(&m)?;
/// assert_eq!(dist[(0, 2)], Ext::Finite(Ratio::new(5, 2)));
/// # Ok::<(), clocksync_graph::NegativeCycleError>(())
/// ```
pub fn fast_closure(m: &SquareMatrix<ExtRatio>) -> ClosureResult {
    match try_scaled_closure(m) {
        Some(result) => result,
        None => floyd_warshall_with_paths(m),
    }
}

/// A cached metric closure that can absorb single-edge weight decreases in
/// `O(n²)` — the incremental engine behind online resynchronization.
///
/// The invariant: `dist` is the exact all-pairs shortest-path closure of
/// some weighted digraph, and `next` is a valid successor matrix for it
/// (`next[(i, j)]` begins a shortest `i → j` path; `usize::MAX` iff
/// unreachable or `i == j`). [`Closure::relax_edge`] preserves the
/// invariant under edge insertions/decreases; any other change requires a
/// rebuild with [`Closure::new`].
///
/// # Examples
///
/// ```
/// use clocksync_graph::{Closure, SquareMatrix};
/// use clocksync_time::Ext;
///
/// let mut m = SquareMatrix::filled(3, Ext::PosInf);
/// for i in 0..3 { m[(i, i)] = Ext::Finite(0i64); }
/// m[(0, 1)] = Ext::Finite(3);
/// m[(1, 2)] = Ext::Finite(3);
/// let mut c = Closure::new(&m)?;
/// assert_eq!(c.dist()[(0, 2)], Ext::Finite(6));
/// // A tighter 0 → 1 estimate arrives: every pair through it improves.
/// assert!(c.relax_edge(0, 1, Ext::Finite(1))?);
/// assert_eq!(c.dist()[(0, 2)], Ext::Finite(4));
/// # Ok::<(), clocksync_graph::NegativeCycleError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Closure<W> {
    dist: SquareMatrix<W>,
    next: SquareMatrix<usize>,
}

impl<W: Weight> Closure<W> {
    /// Builds the closure of a weight matrix with the generic exact kernel
    /// (conventions of [`crate::floyd_warshall_with_paths`]).
    ///
    /// # Errors
    ///
    /// Returns [`NegativeCycleError`] when the graph has a negative cycle.
    pub fn new(m: &SquareMatrix<W>) -> Result<Closure<W>, NegativeCycleError> {
        floyd_warshall_with_paths(m).map(|(dist, next)| Closure { dist, next })
    }

    /// Wraps an already-computed `(dist, next)` pair — e.g. the output of
    /// [`fast_closure`]. The pair must satisfy the closure invariant.
    ///
    /// # Panics
    ///
    /// Panics if the two matrices disagree on dimension.
    pub fn from_parts(dist: SquareMatrix<W>, next: SquareMatrix<usize>) -> Closure<W> {
        assert_eq!(
            dist.n(),
            next.n(),
            "dist and next must have equal dimension"
        );
        Closure { dist, next }
    }

    /// The dimension.
    pub fn n(&self) -> usize {
        self.dist.n()
    }

    /// The closure distances.
    pub fn dist(&self) -> &SquareMatrix<W> {
        &self.dist
    }

    /// The successor matrix (see [`crate::reconstruct_path`]).
    pub fn next(&self) -> &SquareMatrix<usize> {
        &self.next
    }

    /// Consumes the cache, returning `(dist, next)`.
    pub fn into_parts(self) -> (SquareMatrix<W>, SquareMatrix<usize>) {
        (self.dist, self.next)
    }

    /// Incorporates a new edge `u → v` of weight `w` (equivalently: lowers
    /// the existing edge to `w`), updating the cached closure in `O(n²)`:
    ///
    /// `dist[i][j] ← min(dist[i][j], dist[i][u] + w + dist[v][j])`.
    ///
    /// This is exact because a weight *decrease* cannot lengthen any
    /// shortest path, and any path improved by the change uses the new
    /// edge, splitting into an old shortest `i → u` prefix and `v → j`
    /// suffix — both of which the cached closure already knows. Returns
    /// whether any entry changed; `Ok(false)` when `w` is no better than
    /// the current `dist[(u, v)]` (the common steady-state case, detected
    /// in `O(1)`).
    ///
    /// # Errors
    ///
    /// Returns [`NegativeCycleError`] when the new edge closes a negative
    /// cycle (`w + dist[(v, u)] < 0`). The cache is left in an unspecified
    /// partially-updated state and must be discarded or rebuilt; this
    /// mirrors the full kernels, which also reject such graphs.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn relax_edge(&mut self, u: usize, v: usize, w: W) -> Result<bool, NegativeCycleError> {
        let n = self.dist.n();
        assert!(u < n && v < n, "edge endpoint out of range");
        if u == v {
            // A self-loop only matters when negative (a 1-cycle).
            return if w < W::zero() {
                Err(NegativeCycleError { witness: u })
            } else {
                Ok(false)
            };
        }
        if !w.is_reachable() || w >= self.dist[(u, v)] {
            return Ok(false);
        }
        // Snapshots: the new edge cannot change column u or row v unless it
        // closes a negative cycle (w + dist[(v, u)] ≥ 0 ⇒ no i → u path
        // improves by detouring through u → v → … → u), so reading the old
        // values below is exact; a closed negative cycle instead surfaces
        // as a negative diagonal entry, reported as the error.
        let col_u: Vec<W> = (0..n).map(|i| self.dist[(i, u)]).collect();
        let row_v: Vec<W> = (0..n).map(|j| self.dist[(v, j)]).collect();
        let next_u: Vec<usize> = (0..n).map(|i| self.next[(i, u)]).collect();
        let mut changed = false;
        let mut negative = None;
        for i in 0..n {
            let diu = col_u[i];
            if !diu.is_reachable() {
                continue;
            }
            let base = diu + w;
            let first_hop = if i == u { v } else { next_u[i] };
            for (j, &dvj) in row_v.iter().enumerate() {
                if !dvj.is_reachable() {
                    continue;
                }
                let cand = base + dvj;
                if cand < self.dist[(i, j)] {
                    self.dist[(i, j)] = cand;
                    self.next[(i, j)] = first_hop;
                    changed = true;
                    if i == j && negative.is_none() {
                        negative = Some(i);
                    }
                }
            }
        }
        match negative {
            Some(witness) => Err(NegativeCycleError { witness }),
            None => Ok(changed),
        }
    }
}

impl Closure<ExtRatio> {
    /// Builds the closure via [`fast_closure`] (the parallel scaled-`i64`
    /// kernel with generic fallback).
    ///
    /// # Errors
    ///
    /// Returns [`NegativeCycleError`] when the graph has a negative cycle.
    pub fn fast(m: &SquareMatrix<ExtRatio>) -> Result<Closure<ExtRatio>, NegativeCycleError> {
        fast_closure(m).map(|(dist, next)| Closure { dist, next })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstruct_path;

    fn ratio_matrix(n: usize, edges: &[(usize, usize, i128, i128)]) -> SquareMatrix<ExtRatio> {
        let mut m = SquareMatrix::from_fn(n, |i, j| {
            if i == j {
                <ExtRatio as Weight>::zero()
            } else {
                Ext::PosInf
            }
        });
        for &(a, b, num, den) in edges {
            m[(a, b)] = Ext::Finite(Ratio::new(num, den));
        }
        m
    }

    #[test]
    fn fast_closure_matches_generic_on_rationals() {
        let m = ratio_matrix(
            4,
            &[
                (0, 1, 1, 2),
                (1, 2, 3, 2),
                (2, 3, -1, 2),
                (0, 3, 10, 1),
                (3, 0, 5, 1),
            ],
        );
        assert!(
            try_scaled_closure(&m).is_some(),
            "should take the fast path"
        );
        let (fd, fnext) = fast_closure(&m).unwrap();
        let (gd, gnext) = floyd_warshall_with_paths(&m).unwrap();
        assert_eq!(fd, gd);
        assert_eq!(fnext, gnext);
    }

    #[test]
    fn scaling_rejects_neg_inf_and_huge_denominators() {
        let mut m = ratio_matrix(2, &[(0, 1, 1, 1)]);
        m[(1, 0)] = Ext::NegInf;
        assert!(try_scaled_closure(&m).is_none());
        let mut m = ratio_matrix(2, &[(0, 1, 1, 1)]);
        m[(1, 0)] = Ext::Finite(Ratio::new(1, MAX_SCALE * 2 + 1));
        assert!(try_scaled_closure(&m).is_none());
    }

    #[test]
    fn fast_closure_falls_back_when_unscalable() {
        let mut m = ratio_matrix(2, &[(0, 1, 3, 1)]);
        m[(1, 0)] = Ext::Finite(Ratio::new(1, MAX_SCALE * 2 + 1));
        let (d, _) = fast_closure(&m).unwrap();
        assert_eq!(d[(0, 1)], Ext::Finite(Ratio::from_int(3)));
    }

    #[test]
    fn fast_closure_reports_negative_cycles() {
        let m = ratio_matrix(2, &[(0, 1, 1, 1), (1, 0, -2, 1)]);
        assert!(fast_closure(&m).is_err());
    }

    #[test]
    fn relax_edge_matches_full_recompute() {
        let mut m = ratio_matrix(4, &[(0, 1, 4, 1), (1, 2, 4, 1), (2, 3, 4, 1), (3, 0, 4, 1)]);
        let mut c = Closure::new(&m).unwrap();
        // Tighten 1 → 2, then add a brand-new chord 0 → 2.
        for (u, v, w) in [
            (1usize, 2usize, Ratio::from_int(1)),
            (0, 2, Ratio::from_int(2)),
        ] {
            m[(u, v)] = Ext::Finite(w);
            c.relax_edge(u, v, Ext::Finite(w)).unwrap();
            let fresh = Closure::new(&m).unwrap();
            assert_eq!(c.dist(), fresh.dist());
        }
    }

    #[test]
    fn relax_edge_no_op_cases() {
        let m = ratio_matrix(3, &[(0, 1, 2, 1), (1, 2, 2, 1)]);
        let mut c = Closure::new(&m).unwrap();
        let before = c.clone();
        // Worse than the existing estimate, equal to it, unreachable, and a
        // nonnegative self-loop: all no-ops.
        assert!(!c.relax_edge(0, 1, Ext::Finite(Ratio::from_int(7))).unwrap());
        assert!(!c.relax_edge(0, 1, Ext::Finite(Ratio::from_int(2))).unwrap());
        assert!(!c.relax_edge(2, 0, Ext::PosInf).unwrap());
        assert!(!c.relax_edge(1, 1, Ext::Finite(Ratio::ZERO)).unwrap());
        assert_eq!(c, before);
    }

    #[test]
    fn relax_edge_detects_negative_cycles() {
        let m = ratio_matrix(3, &[(0, 1, 2, 1), (1, 2, 2, 1), (2, 0, 2, 1)]);
        let mut c = Closure::new(&m).unwrap();
        // dist(1, 0) = 4; an edge 0 → 1 of weight −5 closes a −1 cycle.
        let err = c
            .relax_edge(0, 1, Ext::Finite(Ratio::from_int(-5)))
            .unwrap_err();
        let _ = err.witness;
        // Negative self-loops are 1-cycles.
        let mut c2 = Closure::new(&m).unwrap();
        assert!(c2
            .relax_edge(1, 1, Ext::Finite(Ratio::from_int(-1)))
            .is_err());
    }

    #[test]
    fn relax_edge_keeps_successors_valid() {
        let m = ratio_matrix(4, &[(0, 1, 4, 1), (1, 2, 4, 1), (2, 3, 4, 1)]);
        let mut c = Closure::new(&m).unwrap();
        c.relax_edge(0, 2, Ext::Finite(Ratio::from_int(3))).unwrap();
        c.relax_edge(1, 3, Ext::Finite(Ratio::from_int(5))).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                match reconstruct_path(c.next(), i, j) {
                    Some(path) => {
                        assert_eq!(path.first(), Some(&i));
                        assert_eq!(path.last(), Some(&j));
                        assert!(c.dist()[(i, j)].is_reachable());
                    }
                    None => assert!(!c.dist()[(i, j)].is_reachable()),
                }
            }
        }
    }

    #[test]
    fn from_parts_round_trips() {
        let m = ratio_matrix(3, &[(0, 1, 1, 1), (1, 2, 1, 1)]);
        let c = Closure::fast(&m).unwrap();
        assert_eq!(c.n(), 3);
        let (d, next) = c.clone().into_parts();
        assert_eq!(Closure::from_parts(d, next), c);
    }
}
