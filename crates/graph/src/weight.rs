//! The weight abstraction shared by all graph algorithms.

use std::fmt::Debug;
use std::ops::Add;

use clocksync_time::{Ext, Nanos, Ratio};

/// An edge-weight domain: a totally ordered additive monoid with a greatest
/// element acting as "unreachable".
///
/// The workspace instantiates this with [`Ext<Ratio>`] (exact extended
/// rationals) and, in tests, with [`Ext<i64>`]. `infinity()` must be
/// absorbing for addition on the values the algorithms combine — the
/// implementations here inherit that from [`Ext`]'s extended arithmetic.
pub trait Weight: Copy + Eq + Ord + Add<Output = Self> + Debug {
    /// The additive identity (weight of the empty path).
    fn zero() -> Self;

    /// The "unreachable" distance: strictly greater than every finite value.
    fn infinity() -> Self;

    /// Returns `true` for values strictly below `infinity()`.
    fn is_reachable(self) -> bool {
        self < Self::infinity()
    }
}

impl Weight for Ext<Ratio> {
    fn zero() -> Self {
        Ext::Finite(Ratio::ZERO)
    }
    fn infinity() -> Self {
        Ext::PosInf
    }
}

impl Weight for Ext<Nanos> {
    fn zero() -> Self {
        Ext::Finite(Nanos::ZERO)
    }
    fn infinity() -> Self {
        Ext::PosInf
    }
}

impl Weight for Ext<i64> {
    fn zero() -> Self {
        Ext::Finite(0)
    }
    fn infinity() -> Self {
        Ext::PosInf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_identity() {
        let w = Ext::Finite(Ratio::new(3, 2));
        assert_eq!(w + Weight::zero(), w);
    }

    #[test]
    fn infinity_dominates_and_absorbs() {
        let inf = <Ext<i64> as Weight>::infinity();
        assert!(Ext::Finite(i64::MAX) < inf);
        assert_eq!(inf + Ext::Finite(5), inf);
        assert!(!inf.is_reachable());
        assert!(Ext::Finite(0i64).is_reachable());
    }
}
