//! Howard's policy-iteration algorithm for the maximum cycle mean.
//!
//! [`karp_max_cycle_mean`](crate::karp_max_cycle_mean) is the paper's
//! reference algorithm with a clean `O(n·m)` bound; Howard's algorithm
//! (policy iteration over successor choices) has a weaker worst-case story
//! but is famously fast in practice — Dasdan's experimental studies place
//! it first on most instance families. The workspace keeps both: Karp as
//! the exact differential oracle that matches the paper, Howard as the
//! default practical SHIFTS kernel, each property-tested against the other
//! and against brute force.
//!
//! All arithmetic is exact [`Ratio`] arithmetic, which also guarantees
//! termination: each iteration strictly improves the policy's value
//! lexicographically `(λ, h)` and there are finitely many policies. That
//! argument does not depend on the starting policy, which is what makes
//! [`howard_solve`]'s warm start sound: resuming from the converged policy
//! of a slightly perturbed matrix is just policy iteration with a
//! different (usually near-optimal) initial point.

use clocksync_time::{Ext, Ratio};

use crate::{CycleMean, SquareMatrix};

/// The converged output of Howard's policy iteration: the answer plus the
/// final policy, reusable as a warm start on a perturbed matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HowardSolution {
    /// The maximum cycle mean and a witness cycle achieving it.
    pub cycle_mean: CycleMean,
    /// The converged successor policy: `policy[v]` is the chosen successor
    /// of `v`, or `usize::MAX` for nodes that cannot reach any cycle.
    pub policy: Vec<usize>,
}

/// Computes the maximum cycle mean of a dense weighted digraph by policy
/// iteration.
///
/// Matrix conventions match [`crate::karp_max_cycle_mean`]: `m[(i,j)]` is
/// the weight of edge `i → j`, `Ext::NegInf` means the edge is absent,
/// self-loops are honored, and `None` is returned when the graph has no
/// cycle.
///
/// # Panics
///
/// Panics if any entry is `Ext::PosInf`.
///
/// # Examples
///
/// ```
/// use clocksync_graph::{SquareMatrix, howard_max_cycle_mean};
/// use clocksync_time::{Ext, Ratio};
///
/// let mut m = SquareMatrix::filled(2, Ext::<Ratio>::NegInf);
/// m[(0, 1)] = Ext::Finite(Ratio::from_int(3));
/// m[(1, 0)] = Ext::Finite(Ratio::from_int(1));
/// assert_eq!(howard_max_cycle_mean(&m), Some(Ratio::from_int(2)));
/// ```
pub fn howard_max_cycle_mean(m: &SquareMatrix<Ext<Ratio>>) -> Option<Ratio> {
    howard_solve(m, None).map(|s| s.cycle_mean.mean)
}

/// Runs Howard's policy iteration, returning the maximum cycle mean with a
/// witness cycle and the converged policy.
///
/// `warm` optionally seeds the iteration with a previous solution's policy
/// (e.g. from the same system before a single estimate tightened). Stale
/// entries — out-of-range successors, missing edges, dead nodes — are
/// repaired to the heaviest live successor, so any slice is safe to pass;
/// the result is always the exact maximum regardless of the seed, only the
/// number of iterations changes. Conventions otherwise match
/// [`howard_max_cycle_mean`].
///
/// # Panics
///
/// Panics if any entry is `Ext::PosInf`.
pub fn howard_solve(
    m: &SquareMatrix<Ext<Ratio>>,
    warm: Option<&[usize]>,
) -> Option<HowardSolution> {
    let n = m.n();
    for (i, j, &w) in m.iter() {
        assert!(
            w != Ext::PosInf,
            "howard_max_cycle_mean: infinite edge {i}->{j}; resolve infinities first"
        );
    }

    let live = live_nodes(m);
    let nodes: Vec<usize> = (0..n).filter(|&v| live[v]).collect();
    if nodes.is_empty() {
        return None;
    }

    // Initial policy: the warm-start successor when still usable, otherwise
    // the heaviest live successor.
    let mut policy: Vec<usize> = vec![usize::MAX; n];
    for &v in &nodes {
        if let Some(seed) = warm {
            let u = seed.get(v).copied().unwrap_or(usize::MAX);
            if u < n && live[u] && m[(v, u)] != Ext::NegInf {
                policy[v] = u;
                continue;
            }
        }
        let mut best: Option<(Ratio, usize)> = None;
        for u in 0..n {
            if !live[u] {
                continue;
            }
            if let Ext::Finite(w) = m[(v, u)] {
                if best.is_none_or(|(bw, _)| w > bw) {
                    best = Some((w, u));
                }
            }
        }
        policy[v] = best.expect("live nodes have live successors").1;
    }

    let mut lambda: Vec<Ratio> = vec![Ratio::ZERO; n];
    let mut h: Vec<Ratio> = vec![Ratio::ZERO; n];

    loop {
        evaluate_policy(m, &nodes, &policy, &mut lambda, &mut h);

        // Improvement phase 1: strictly better cycle value reachable.
        let mut improved = false;
        for &v in &nodes {
            let mut best = lambda[v];
            let mut arg = policy[v];
            for u in 0..n {
                if live[u] && m[(v, u)] != Ext::NegInf && lambda[u] > best {
                    best = lambda[u];
                    arg = u;
                }
            }
            if arg != policy[v] {
                policy[v] = arg;
                improved = true;
            }
        }
        if improved {
            continue;
        }
        // Improvement phase 2: same cycle value, better bias.
        for &v in &nodes {
            let mut best_gain = h[policy[v]]
                + m[(v, policy[v])].finite().expect("policy follows edges")
                - lambda[v];
            let mut arg = policy[v];
            for u in 0..n {
                if !live[u] || lambda[u] != lambda[v] {
                    continue;
                }
                if let Ext::Finite(w) = m[(v, u)] {
                    let gain = h[u] + w - lambda[v];
                    if gain > best_gain {
                        best_gain = gain;
                        arg = u;
                    }
                }
            }
            if arg != policy[v] {
                policy[v] = arg;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    // Witness: λ* is attained on the cycle the converged policy reaches
    // from any argmax node (λ is constant along a policy path), so follow
    // the policy from the first argmax node until a vertex repeats.
    let &v_star = nodes
        .iter()
        .max_by_key(|&&v| lambda[v])
        .expect("nodes is non-empty");
    let mut pos = vec![usize::MAX; n];
    let mut path = Vec::new();
    let mut v = v_star;
    while pos[v] == usize::MAX {
        pos[v] = path.len();
        path.push(v);
        v = policy[v];
    }
    let cycle = path[pos[v]..].to_vec();

    Some(HowardSolution {
        cycle_mean: CycleMean {
            mean: lambda[v_star],
            cycle,
        },
        policy,
    })
}

/// Restricts to "live" nodes — nodes that can reach a cycle — by
/// iteratively stripping nodes whose out-edges all lead out of the live
/// set. Out-degree counters plus a worklist make this `O(n²)` total (each
/// stripped node scans its in-column once) where the old full-rescan loop
/// was `O(n³)` worst case on long dead chains.
fn live_nodes(m: &SquareMatrix<Ext<Ratio>>) -> Vec<bool> {
    let n = m.n();
    let mut outdeg: Vec<usize> = (0..n)
        .map(|v| (0..n).filter(|&u| m[(v, u)] != Ext::NegInf).count())
        .collect();
    let mut live = vec![true; n];
    let mut worklist: Vec<usize> = (0..n).filter(|&v| outdeg[v] == 0).collect();
    for &v in &worklist {
        live[v] = false;
    }
    while let Some(v) = worklist.pop() {
        for u in 0..n {
            if live[u] && m[(u, v)] != Ext::NegInf {
                outdeg[u] -= 1;
                if outdeg[u] == 0 {
                    live[u] = false;
                    worklist.push(u);
                }
            }
        }
    }
    live
}

/// Policy evaluation: each node's policy path leads to exactly one cycle
/// of the functional graph; set `λ(v)` to that cycle's mean and `h(v)` to
/// the relative value `h(v) = w(v,π(v)) + h(π(v)) − λ(v)` with `h = 0` at
/// the cycle's anchor node.
fn evaluate_policy(
    m: &SquareMatrix<Ext<Ratio>>,
    nodes: &[usize],
    policy: &[usize],
    lambda: &mut [Ratio],
    h: &mut [Ratio],
) {
    let n = m.n();
    // state: 0 = unvisited, 1 = on current path, 2 = done.
    let mut state = vec![0u8; n];
    for &start in nodes {
        if state[start] == 2 {
            continue;
        }
        // Walk the policy path until hitting a done node or a node on the
        // current path (a fresh cycle).
        let mut path = Vec::new();
        let mut v = start;
        while state[v] == 0 {
            state[v] = 1;
            path.push(v);
            v = policy[v];
        }
        if state[v] == 1 {
            // Fresh cycle: v is its entry point within `path`.
            let cycle_start = path.iter().position(|&x| x == v).expect("on path");
            let cycle = &path[cycle_start..];
            let mut total = Ratio::ZERO;
            for &c in cycle {
                total += m[(c, policy[c])].finite().expect("policy follows edges");
            }
            let mean = total * Ratio::new(1, cycle.len() as i128);
            // Anchor: h(v) = 0, then assign around the cycle backwards.
            lambda[v] = mean;
            h[v] = Ratio::ZERO;
            state[v] = 2;
            // Walk the cycle in reverse order so each node's successor is
            // already evaluated.
            for &c in cycle.iter().rev() {
                if state[c] == 2 {
                    continue;
                }
                lambda[c] = mean;
                h[c] = m[(c, policy[c])].finite().expect("edge") + h[policy[c]] - mean;
                state[c] = 2;
            }
        }
        // Tail nodes (path before the cycle / before the done node), in
        // reverse so successors are evaluated first.
        for &t in path.iter().rev() {
            if state[t] == 2 {
                continue;
            }
            let succ = policy[t];
            lambda[t] = lambda[succ];
            h[t] = m[(t, succ)].finite().expect("edge") + h[succ] - lambda[t];
            state[t] = 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::karp_max_cycle_mean;

    fn matrix(n: usize, edges: &[(usize, usize, i128)]) -> SquareMatrix<Ext<Ratio>> {
        let mut m = SquareMatrix::filled(n, Ext::NegInf);
        for &(a, b, w) in edges {
            m[(a, b)] = Ext::Finite(Ratio::from_int(w));
        }
        m
    }

    fn cycle_mean_of(m: &SquareMatrix<Ext<Ratio>>, cycle: &[usize]) -> Ratio {
        let mut total = Ratio::ZERO;
        for t in 0..cycle.len() {
            let from = cycle[t];
            let to = cycle[(t + 1) % cycle.len()];
            total += m[(from, to)].finite().unwrap();
        }
        total * Ratio::new(1, cycle.len() as i128)
    }

    /// The stripping loop this module replaced, kept as the behavioral
    /// oracle for [`live_nodes`].
    fn live_nodes_rescan(m: &SquareMatrix<Ext<Ratio>>) -> Vec<bool> {
        let n = m.n();
        let mut live = vec![true; n];
        loop {
            let mut changed = false;
            for v in 0..n {
                if !live[v] {
                    continue;
                }
                let has_out = (0..n).any(|u| live[u] && m[(v, u)] != Ext::NegInf);
                if !has_out {
                    live[v] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        live
    }

    #[test]
    fn agrees_with_karp_on_basic_cases() {
        let cases = [
            matrix(2, &[(0, 1, 3), (1, 0, 1)]),
            matrix(3, &[(0, 1, 1), (1, 2, 2), (2, 0, 4)]),
            matrix(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (1, 0, 5)]),
            matrix(4, &[(0, 1, 2), (1, 0, 2), (2, 3, 4), (3, 2, 6)]),
            matrix(2, &[(0, 0, 7), (0, 1, 100)]),
            matrix(2, &[(0, 1, -3), (1, 0, -1)]),
            matrix(5, &[(0, 1, 9), (2, 3, 1), (3, 4, 1), (4, 2, 4)]),
        ];
        for m in cases {
            assert_eq!(
                howard_max_cycle_mean(&m),
                karp_max_cycle_mean(&m).map(|r| r.mean),
                "disagreement on {m:?}"
            );
        }
    }

    #[test]
    fn witness_cycle_achieves_the_mean() {
        let cases = [
            matrix(2, &[(0, 1, 3), (1, 0, 1)]),
            matrix(3, &[(0, 1, 1), (1, 2, 2), (2, 0, 4)]),
            matrix(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (1, 0, 5)]),
            matrix(4, &[(0, 1, 2), (1, 0, 2), (2, 3, 4), (3, 2, 6)]),
            matrix(2, &[(0, 0, 7), (0, 1, 100)]),
            matrix(5, &[(0, 1, 9), (2, 3, 1), (3, 4, 1), (4, 2, 4)]),
        ];
        for m in cases {
            let s = howard_solve(&m, None).unwrap();
            assert!(!s.cycle_mean.is_empty());
            assert_eq!(
                cycle_mean_of(&m, &s.cycle_mean.cycle),
                s.cycle_mean.mean,
                "witness does not certify on {m:?}"
            );
        }
    }

    #[test]
    fn warm_start_returns_the_same_answer() {
        let m = matrix(4, &[(0, 1, 2), (1, 0, 2), (2, 3, 4), (3, 2, 6)]);
        let cold = howard_solve(&m, None).unwrap();
        // Its own converged policy, a garbage policy, and a short slice all
        // converge to the same mean.
        for seed in [
            cold.policy.clone(),
            vec![usize::MAX; 4],
            vec![3, 2, 1, 0],
            vec![0],
        ] {
            let warm = howard_solve(&m, Some(&seed)).unwrap();
            assert_eq!(warm.cycle_mean.mean, cold.cycle_mean.mean);
            assert_eq!(
                cycle_mean_of(&m, &warm.cycle_mean.cycle),
                warm.cycle_mean.mean
            );
        }
    }

    #[test]
    fn warm_start_after_tightening_stays_exact() {
        // Converge, tighten one edge so the optimum moves to the other
        // cycle, and re-solve from the stale policy.
        let mut m = matrix(4, &[(0, 1, 2), (1, 0, 2), (2, 3, 4), (3, 2, 6)]);
        let first = howard_solve(&m, None).unwrap();
        assert_eq!(first.cycle_mean.mean, Ratio::from_int(5));
        m[(3, 2)] = Ext::Finite(Ratio::from_int(0));
        let second = howard_solve(&m, Some(&first.policy)).unwrap();
        assert_eq!(second.cycle_mean.mean, Ratio::from_int(2));
        assert_eq!(
            cycle_mean_of(&m, &second.cycle_mean.cycle),
            second.cycle_mean.mean
        );
    }

    #[test]
    fn live_node_stripping_matches_old_rescan_loop() {
        // Deterministic LCG over random digraphs, including edge densities
        // low enough to produce long dead chains.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [0usize, 1, 2, 5, 9, 16] {
            for density in [0u64, 1, 2, 5, 9] {
                let mut m = SquareMatrix::filled(n, Ext::<Ratio>::NegInf);
                for i in 0..n {
                    for j in 0..n {
                        if next() % 10 < density {
                            m[(i, j)] = Ext::Finite(Ratio::from_int((next() % 21) as i128 - 10));
                        }
                    }
                }
                assert_eq!(
                    live_nodes(&m),
                    live_nodes_rescan(&m),
                    "live set mismatch at n={n} density={density}"
                );
            }
        }
    }

    #[test]
    fn acyclic_graphs_have_no_cycle_mean() {
        assert_eq!(
            howard_max_cycle_mean(&matrix(3, &[(0, 1, 5), (1, 2, 5)])),
            None
        );
        assert_eq!(howard_max_cycle_mean(&matrix(0, &[])), None);
        assert_eq!(howard_max_cycle_mean(&matrix(4, &[])), None);
    }

    #[test]
    fn dead_tails_are_ignored() {
        // A cycle plus a long dead-end tail hanging off it.
        let m = matrix(
            5,
            &[(0, 1, 2), (1, 0, 4), (1, 2, 100), (2, 3, 100), (3, 4, 100)],
        );
        assert_eq!(howard_max_cycle_mean(&m), Some(Ratio::from_int(3)));
    }

    #[test]
    #[should_panic(expected = "infinite edge")]
    fn infinite_edge_panics() {
        let mut m = matrix(2, &[(0, 1, 1), (1, 0, 1)]);
        m[(0, 1)] = Ext::PosInf;
        let _ = howard_max_cycle_mean(&m);
    }
}
