//! Howard's policy-iteration algorithm for the maximum cycle mean.
//!
//! [`karp_max_cycle_mean`](crate::karp_max_cycle_mean) is the paper's
//! reference algorithm with a clean `O(n·m)` bound; Howard's algorithm
//! (policy iteration over successor choices) has a weaker worst-case story
//! but is famously fast in practice — Dasdan's experimental studies place
//! it first on most instance families. The workspace keeps both: Karp as
//! the default (predictable, matches the paper), Howard as the
//! high-performance alternative, each property-tested against the other
//! and against brute force.
//!
//! All arithmetic is exact [`Ratio`] arithmetic, which also guarantees
//! termination: each iteration strictly improves the policy's value
//! lexicographically `(λ, h)` and there are finitely many policies.

use clocksync_time::{Ext, Ratio};

use crate::SquareMatrix;

/// Computes the maximum cycle mean of a dense weighted digraph by policy
/// iteration.
///
/// Matrix conventions match [`crate::karp_max_cycle_mean`]: `m[(i,j)]` is
/// the weight of edge `i → j`, `Ext::NegInf` means the edge is absent,
/// self-loops are honored, and `None` is returned when the graph has no
/// cycle.
///
/// # Panics
///
/// Panics if any entry is `Ext::PosInf`.
///
/// # Examples
///
/// ```
/// use clocksync_graph::{SquareMatrix, howard_max_cycle_mean};
/// use clocksync_time::{Ext, Ratio};
///
/// let mut m = SquareMatrix::filled(2, Ext::<Ratio>::NegInf);
/// m[(0, 1)] = Ext::Finite(Ratio::from_int(3));
/// m[(1, 0)] = Ext::Finite(Ratio::from_int(1));
/// assert_eq!(howard_max_cycle_mean(&m), Some(Ratio::from_int(2)));
/// ```
pub fn howard_max_cycle_mean(m: &SquareMatrix<Ext<Ratio>>) -> Option<Ratio> {
    let n = m.n();
    for (i, j, &w) in m.iter() {
        assert!(
            w != Ext::PosInf,
            "howard_max_cycle_mean: infinite edge {i}->{j}; resolve infinities first"
        );
    }

    // Restrict to "live" nodes: nodes that can reach a cycle. Iteratively
    // strip nodes with no outgoing edge into the live set.
    let mut live = vec![true; n];
    loop {
        let mut changed = false;
        for v in 0..n {
            if !live[v] {
                continue;
            }
            let has_out = (0..n).any(|u| live[u] && m[(v, u)] != Ext::NegInf);
            if !has_out {
                live[v] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let nodes: Vec<usize> = (0..n).filter(|&v| live[v]).collect();
    if nodes.is_empty() {
        return None;
    }

    // Initial policy: any live successor (take the heaviest as a warm
    // start).
    let mut policy: Vec<usize> = vec![usize::MAX; n];
    for &v in &nodes {
        let mut best: Option<(Ratio, usize)> = None;
        for u in 0..n {
            if !live[u] {
                continue;
            }
            if let Ext::Finite(w) = m[(v, u)] {
                if best.is_none_or(|(bw, _)| w > bw) {
                    best = Some((w, u));
                }
            }
        }
        policy[v] = best.expect("live nodes have live successors").1;
    }

    let mut lambda: Vec<Ratio> = vec![Ratio::ZERO; n];
    let mut h: Vec<Ratio> = vec![Ratio::ZERO; n];

    loop {
        evaluate_policy(m, &nodes, &policy, &mut lambda, &mut h);

        // Improvement phase 1: strictly better cycle value reachable.
        let mut improved = false;
        for &v in &nodes {
            let mut best = lambda[v];
            let mut arg = policy[v];
            for u in 0..n {
                if live[u] && m[(v, u)] != Ext::NegInf && lambda[u] > best {
                    best = lambda[u];
                    arg = u;
                }
            }
            if arg != policy[v] {
                policy[v] = arg;
                improved = true;
            }
        }
        if improved {
            continue;
        }
        // Improvement phase 2: same cycle value, better bias.
        for &v in &nodes {
            let mut best_gain = h[policy[v]]
                + m[(v, policy[v])].finite().expect("policy follows edges")
                - lambda[v];
            let mut arg = policy[v];
            for u in 0..n {
                if !live[u] || lambda[u] != lambda[v] {
                    continue;
                }
                if let Ext::Finite(w) = m[(v, u)] {
                    let gain = h[u] + w - lambda[v];
                    if gain > best_gain {
                        best_gain = gain;
                        arg = u;
                    }
                }
            }
            if arg != policy[v] {
                policy[v] = arg;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    nodes.iter().map(|&v| lambda[v]).max()
}

/// Policy evaluation: each node's policy path leads to exactly one cycle
/// of the functional graph; set `λ(v)` to that cycle's mean and `h(v)` to
/// the relative value `h(v) = w(v,π(v)) + h(π(v)) − λ(v)` with `h = 0` at
/// the cycle's anchor node.
fn evaluate_policy(
    m: &SquareMatrix<Ext<Ratio>>,
    nodes: &[usize],
    policy: &[usize],
    lambda: &mut [Ratio],
    h: &mut [Ratio],
) {
    let n = m.n();
    // state: 0 = unvisited, 1 = on current path, 2 = done.
    let mut state = vec![0u8; n];
    for &start in nodes {
        if state[start] == 2 {
            continue;
        }
        // Walk the policy path until hitting a done node or a node on the
        // current path (a fresh cycle).
        let mut path = Vec::new();
        let mut v = start;
        while state[v] == 0 {
            state[v] = 1;
            path.push(v);
            v = policy[v];
        }
        if state[v] == 1 {
            // Fresh cycle: v is its entry point within `path`.
            let cycle_start = path.iter().position(|&x| x == v).expect("on path");
            let cycle = &path[cycle_start..];
            let mut total = Ratio::ZERO;
            for &c in cycle {
                total += m[(c, policy[c])].finite().expect("policy follows edges");
            }
            let mean = total * Ratio::new(1, cycle.len() as i128);
            // Anchor: h(v) = 0, then assign around the cycle backwards.
            lambda[v] = mean;
            h[v] = Ratio::ZERO;
            state[v] = 2;
            // Walk the cycle in reverse order so each node's successor is
            // already evaluated.
            for &c in cycle.iter().rev() {
                if state[c] == 2 {
                    continue;
                }
                lambda[c] = mean;
                h[c] = m[(c, policy[c])].finite().expect("edge") + h[policy[c]] - mean;
                state[c] = 2;
            }
        }
        // Tail nodes (path before the cycle / before the done node), in
        // reverse so successors are evaluated first.
        for &t in path.iter().rev() {
            if state[t] == 2 {
                continue;
            }
            let succ = policy[t];
            lambda[t] = lambda[succ];
            h[t] = m[(t, succ)].finite().expect("edge") + h[succ] - lambda[t];
            state[t] = 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::karp_max_cycle_mean;

    fn matrix(n: usize, edges: &[(usize, usize, i128)]) -> SquareMatrix<Ext<Ratio>> {
        let mut m = SquareMatrix::filled(n, Ext::NegInf);
        for &(a, b, w) in edges {
            m[(a, b)] = Ext::Finite(Ratio::from_int(w));
        }
        m
    }

    #[test]
    fn agrees_with_karp_on_basic_cases() {
        let cases = [
            matrix(2, &[(0, 1, 3), (1, 0, 1)]),
            matrix(3, &[(0, 1, 1), (1, 2, 2), (2, 0, 4)]),
            matrix(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (1, 0, 5)]),
            matrix(4, &[(0, 1, 2), (1, 0, 2), (2, 3, 4), (3, 2, 6)]),
            matrix(2, &[(0, 0, 7), (0, 1, 100)]),
            matrix(2, &[(0, 1, -3), (1, 0, -1)]),
            matrix(5, &[(0, 1, 9), (2, 3, 1), (3, 4, 1), (4, 2, 4)]),
        ];
        for m in cases {
            assert_eq!(
                howard_max_cycle_mean(&m),
                karp_max_cycle_mean(&m).map(|r| r.mean),
                "disagreement on {m:?}"
            );
        }
    }

    #[test]
    fn acyclic_graphs_have_no_cycle_mean() {
        assert_eq!(
            howard_max_cycle_mean(&matrix(3, &[(0, 1, 5), (1, 2, 5)])),
            None
        );
        assert_eq!(howard_max_cycle_mean(&matrix(0, &[])), None);
        assert_eq!(howard_max_cycle_mean(&matrix(4, &[])), None);
    }

    #[test]
    fn dead_tails_are_ignored() {
        // A cycle plus a long dead-end tail hanging off it.
        let m = matrix(
            5,
            &[(0, 1, 2), (1, 0, 4), (1, 2, 100), (2, 3, 100), (3, 4, 100)],
        );
        assert_eq!(howard_max_cycle_mean(&m), Some(Ratio::from_int(3)));
    }

    #[test]
    #[should_panic(expected = "infinite edge")]
    fn infinite_edge_panics() {
        let mut m = matrix(2, &[(0, 1, 1), (1, 0, 1)]);
        m[(0, 1)] = Ext::PosInf;
        let _ = howard_max_cycle_mean(&m);
    }
}
