//! A weighted directed graph over contiguous node indices.

use serde::{Deserialize, Serialize};

use crate::{SquareMatrix, Weight};

/// A directed edge with weight `W`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge<W> {
    /// Source node index.
    pub from: usize,
    /// Target node index.
    pub to: usize,
    /// Edge weight.
    pub weight: W,
}

/// A weighted directed graph with nodes `0..n`.
///
/// Parallel edges are allowed and preserved (the synchronizer never creates
/// them, but protocols may legitimately probe a link several times and some
/// tests rely on keeping every observation). Algorithms that need a single
/// weight per pair use [`DiGraph::to_matrix`], which keeps the *minimum*
/// parallel weight — the only sensible reduction for shortest-path
/// semantics.
///
/// # Examples
///
/// ```
/// use clocksync_graph::DiGraph;
/// use clocksync_time::Ext;
///
/// let mut g: DiGraph<Ext<i64>> = DiGraph::new(2);
/// g.add_edge(0, 1, Ext::Finite(3));
/// assert_eq!(g.edge_count(), 1);
/// assert_eq!(g.out_edges(0).count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiGraph<W> {
    n: usize,
    edges: Vec<Edge<W>>,
}

impl<W: Weight> DiGraph<W> {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            n,
            edges: Vec::new(),
        }
    }

    /// The number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a directed edge.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` is not a node of the graph.
    pub fn add_edge(&mut self, from: usize, to: usize, weight: W) {
        assert!(from < self.n && to < self.n, "edge endpoint out of range");
        self.edges.push(Edge { from, to, weight });
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = &Edge<W>> {
        self.edges.iter()
    }

    /// Iterates over the edges leaving `node`.
    pub fn out_edges(&self, node: usize) -> impl Iterator<Item = &Edge<W>> {
        self.edges.iter().filter(move |e| e.from == node)
    }

    /// Converts to a dense weight matrix: `m[(i,j)]` is the minimum weight
    /// among parallel `i→j` edges, `W::infinity()` if there is none, and
    /// `W::zero()` on the diagonal.
    pub fn to_matrix(&self) -> SquareMatrix<W> {
        let mut m = SquareMatrix::from_fn(
            self.n,
            |i, j| {
                if i == j {
                    W::zero()
                } else {
                    W::infinity()
                }
            },
        );
        for e in &self.edges {
            if e.weight < m[(e.from, e.to)] {
                m[(e.from, e.to)] = e.weight;
            }
        }
        m
    }

    /// Builds a graph from a dense matrix, adding one edge per reachable
    /// off-diagonal entry.
    pub fn from_matrix(m: &SquareMatrix<W>) -> Self {
        let mut g = DiGraph::new(m.n());
        for (i, j, &w) in m.iter_off_diagonal() {
            if w.is_reachable() {
                g.add_edge(i, j, w);
            }
        }
        g
    }

    /// Returns `true` if every node can reach every other node following
    /// edges with reachable (non-infinite) weights.
    pub fn is_strongly_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let forward = self.reachable_from(0, false);
        let backward = self.reachable_from(0, true);
        forward.iter().all(|&r| r) && backward.iter().all(|&r| r)
    }

    fn reachable_from(&self, start: usize, reversed: bool) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(v) = stack.pop() {
            for e in &self.edges {
                if !e.weight.is_reachable() {
                    continue;
                }
                let (src, dst) = if reversed {
                    (e.to, e.from)
                } else {
                    (e.from, e.to)
                };
                if src == v && !seen[dst] {
                    seen[dst] = true;
                    stack.push(dst);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksync_time::Ext;

    fn w(x: i64) -> Ext<i64> {
        Ext::Finite(x)
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, w(1));
        g.add_edge(0, 2, w(2));
        g.add_edge(1, 2, w(3));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_edges(0).count(), 2);
        assert_eq!(g.out_edges(2).count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_panics() {
        let mut g: DiGraph<Ext<i64>> = DiGraph::new(1);
        g.add_edge(0, 1, w(0));
    }

    #[test]
    fn matrix_roundtrip_keeps_min_parallel_weight() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, w(5));
        g.add_edge(0, 1, w(3));
        let m = g.to_matrix();
        assert_eq!(m[(0, 1)], w(3));
        assert_eq!(m[(1, 0)], Ext::PosInf);
        assert_eq!(m[(0, 0)], w(0));
        let g2 = DiGraph::from_matrix(&m);
        assert_eq!(g2.edge_count(), 1);
    }

    #[test]
    fn strong_connectivity() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, w(1));
        g.add_edge(1, 2, w(1));
        assert!(!g.is_strongly_connected());
        g.add_edge(2, 0, w(1));
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn infinite_edges_do_not_connect() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, w(1));
        g.add_edge(1, 0, Ext::PosInf);
        assert!(!g.is_strongly_connected());
    }

    #[test]
    fn empty_graph_is_trivially_connected() {
        let g: DiGraph<Ext<i64>> = DiGraph::new(0);
        assert!(g.is_strongly_connected());
    }
}
