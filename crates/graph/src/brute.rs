//! Brute-force reference implementations.
//!
//! These are exponential-time oracles used by the property-test suites (and
//! a few benches) to validate the production algorithms on small instances.
//! They are exported so integration tests and benches outside this crate
//! can reuse them; they are not part of the synchronization pipeline.

use clocksync_time::{Ext, Ratio};

use crate::SquareMatrix;

/// Enumerates every simple directed cycle of the dense graph `m`
/// (`Ext::NegInf` = absent edge), invoking `visit` with each cycle as a node
/// sequence `c_0, …, c_{k-1}` starting from its minimal node.
///
/// Complexity is exponential; intended for `n ≤ 8`.
pub fn for_each_simple_cycle(m: &SquareMatrix<Ext<Ratio>>, mut visit: impl FnMut(&[usize])) {
    let n = m.n();
    let mut path = Vec::new();
    let mut on_path = vec![false; n];
    for start in 0..n {
        // Self-loop cycles.
        if m[(start, start)] != Ext::NegInf {
            visit(&[start]);
        }
        path.push(start);
        on_path[start] = true;
        dfs(m, start, start, &mut path, &mut on_path, &mut visit);
        on_path[start] = false;
        path.pop();
    }
}

fn dfs(
    m: &SquareMatrix<Ext<Ratio>>,
    start: usize,
    current: usize,
    path: &mut Vec<usize>,
    on_path: &mut Vec<bool>,
    visit: &mut impl FnMut(&[usize]),
) {
    for next in 0..m.n() {
        if m[(current, next)] == Ext::NegInf || next == current {
            continue;
        }
        if next == start && path.len() >= 2 {
            visit(path);
        } else if next > start && !on_path[next] {
            // Restricting to nodes > start enumerates each cycle exactly
            // once, rooted at its minimal node.
            path.push(next);
            on_path[next] = true;
            dfs(m, start, next, path, on_path, visit);
            on_path[next] = false;
            path.pop();
        }
    }
}

/// Returns the exact mean weight of `cycle` in `m`.
///
/// # Panics
///
/// Panics if the cycle is empty or traverses an absent edge.
pub fn cycle_mean(m: &SquareMatrix<Ext<Ratio>>, cycle: &[usize]) -> Ratio {
    assert!(!cycle.is_empty(), "cycle must be nonempty");
    let mut total = Ratio::ZERO;
    for t in 0..cycle.len() {
        let from = cycle[t];
        let to = cycle[(t + 1) % cycle.len()];
        total += m[(from, to)]
            .finite()
            .expect("cycle traverses an absent edge");
    }
    total * Ratio::new(1, cycle.len() as i128)
}

/// Brute-force maximum cycle mean by enumerating all simple cycles.
///
/// The maximum cycle mean is always attained by a simple cycle, so this is
/// a sound oracle for [`crate::karp_max_cycle_mean`]. Returns `None` when
/// the graph is acyclic.
pub fn max_cycle_mean_brute(m: &SquareMatrix<Ext<Ratio>>) -> Option<Ratio> {
    let mut best: Option<Ratio> = None;
    for_each_simple_cycle(m, |cycle| {
        let mean = cycle_mean(m, cycle);
        best = Some(match best {
            Some(b) => b.max(mean),
            None => mean,
        });
    });
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(n: usize, edges: &[(usize, usize, i128)]) -> SquareMatrix<Ext<Ratio>> {
        let mut m = SquareMatrix::filled(n, Ext::NegInf);
        for &(a, b, w) in edges {
            m[(a, b)] = Ext::Finite(Ratio::from_int(w));
        }
        m
    }

    #[test]
    fn enumerates_each_cycle_once() {
        // Triangle plus an embedded 2-cycle: exactly 2 simple cycles.
        let m = matrix(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (1, 0, 1)]);
        let mut cycles = Vec::new();
        for_each_simple_cycle(&m, |c| cycles.push(c.to_vec()));
        cycles.sort();
        assert_eq!(cycles, vec![vec![0, 1], vec![0, 1, 2]]);
    }

    #[test]
    fn self_loops_are_cycles() {
        let m = matrix(2, &[(1, 1, 5)]);
        let mut cycles = Vec::new();
        for_each_simple_cycle(&m, |c| cycles.push(c.to_vec()));
        assert_eq!(cycles, vec![vec![1]]);
    }

    #[test]
    fn brute_max_mean_matches_hand_computation() {
        let m = matrix(3, &[(0, 1, 1), (1, 2, 2), (2, 0, 4), (1, 0, 5)]);
        // Cycles: (0,1,2) mean 7/3; (0,1) mean 3.
        assert_eq!(max_cycle_mean_brute(&m), Some(Ratio::from_int(3)));
    }

    #[test]
    fn acyclic_graph_yields_none() {
        let m = matrix(3, &[(0, 1, 1), (0, 2, 1), (1, 2, 1)]);
        assert_eq!(max_cycle_mean_brute(&m), None);
    }
}
