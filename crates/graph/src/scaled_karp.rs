//! The scaled-`i64` fast path for Karp's maximum cycle mean.
//!
//! Mirrors the closure subsystem's architecture (see `closure.rs`): rescale
//! the rational weight matrix by the least common denominator to plain
//! `i64`, run a cache-friendly integer kernel — parallelized over
//! destination vertices with rayon — and map the answer back. Scaling by a
//! positive constant multiplies every walk weight by that constant, so
//! every comparison Karp's recurrence makes is preserved *exactly*: the
//! scaled kernel's `D_k` tables, parent pointers, argmax vertex, and
//! witness walk are the scaled images of the exact kernel's, and dividing
//! the resulting `λ*` by the scale recovers the exact rational answer
//! bit-for-bit ([`Ratio`] is canonical). When scaling would overflow —
//! oversized common denominator or magnitudes too close to the sentinel —
//! [`fast_max_cycle_mean`] falls back to the exact
//! [`karp_max_cycle_mean`](crate::karp_max_cycle_mean).

use rayon::prelude::*;

use clocksync_time::{Ext, Ratio};

use crate::karp::extract_cycle_prefix_scan;
use crate::{karp_max_cycle_mean, CycleMean, SquareMatrix};

/// Sentinel for "no edge" / "no walk" in the `i64` Karp kernel. Far enough
/// from `i64::MIN` that no intermediate the kernel forms can wrap.
pub const NO_EDGE: i64 = i64::MIN / 4;

/// Largest common denominator the scaling pass will build (same bound as
/// the closure fast path; estimate matrices have denominators 1 or 2).
const MAX_SCALE: i128 = 1 << 40;

/// Matrices at least this large relax each round's destinations in
/// parallel; below it the rayon fork/join overhead outweighs the row work.
const PAR_THRESHOLD: usize = 128;

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

/// The result of the integer maximum-cycle-mean kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleMeanI64 {
    /// Numerator of `λ*` (a difference of walk weights; not reduced).
    pub num: i64,
    /// Denominator of `λ*` (a cycle-length difference, `1..=n`).
    pub den: i64,
    /// A witness cycle achieving the mean, conventions as [`CycleMean`].
    pub cycle: Vec<usize>,
}

/// Exactly rescales a `NegInf`-absent rational weight matrix to
/// sentinel-encoded `i64`, returning the scaled matrix and the common
/// denominator. `None` when the matrix cannot be represented safely: a
/// `PosInf` entry, an oversized common denominator, or magnitudes big
/// enough that an `(n+1)`-edge walk sum could approach the sentinel.
fn scaled_cycle_weights(m: &SquareMatrix<Ext<Ratio>>) -> Option<(SquareMatrix<i64>, i128)> {
    let n = m.n();
    let mut scale: i128 = 1;
    for (_, _, &w) in m.iter() {
        match w {
            Ext::Finite(r) => {
                let den = r.denominator();
                scale = scale.checked_mul(den / gcd(scale, den))?;
                if scale > MAX_SCALE {
                    return None;
                }
            }
            // Defer the "resolve infinities first" contract to the exact
            // kernel the caller falls back to.
            Ext::PosInf => return None,
            Ext::NegInf => {}
        }
    }
    // Walks have at most n edges and the extraction sums at most n more, so
    // keep every |weight| small enough that (n+1)-term sums stay far from
    // the sentinel.
    let limit = (i64::MAX / 4) / (n as i64 + 1);
    let mut out = SquareMatrix::filled(n, NO_EDGE);
    for (i, j, &w) in m.iter() {
        if let Ext::Finite(r) = w {
            let scaled = r.numerator().checked_mul(scale / r.denominator())?;
            let v = i64::try_from(scaled).ok()?;
            if !(-limit..=limit).contains(&v) {
                return None;
            }
            out[(i, j)] = v;
        }
    }
    Some((out, scale))
}

/// Compares the fractions `a1/b1` and `a2/b2` (positive denominators) by
/// `i128` cross-multiplication — exact, and far from overflow for the
/// kernel's walk-weight differences.
fn cmp_frac(a1: i64, b1: i64, a2: i64, b2: i64) -> std::cmp::Ordering {
    (a1 as i128 * b2 as i128).cmp(&(a2 as i128 * b1 as i128))
}

/// Karp's maximum cycle mean over a dense `i64` weight matrix; entries
/// equal to [`NO_EDGE`] mark absent edges, everything else is an edge
/// weight (callers must keep weights small enough that `n`-term sums
/// cannot overflow — the rational front end [`try_scaled_karp`] enforces
/// this before delegating here). Returns `None` when the graph has no
/// cycle.
///
/// The recurrence mirrors [`karp_max_cycle_mean`](crate::karp_max_cycle_mean)
/// decision-for-decision (same strict-improvement tie-breaking, same
/// witness extraction), so on a scaled matrix the two kernels produce the
/// *same* walk and witness cycle. Rounds relax all destination vertices
/// independently, in parallel via rayon for `n ≥ 128`.
pub fn karp_max_cycle_mean_i64(m: &SquareMatrix<i64>) -> Option<CycleMeanI64> {
    let n = m.n();
    if n == 0 {
        return None;
    }
    // Transposed weights: row v holds the in-edge weights of v, making each
    // destination's relaxation a contiguous scan.
    let mut wt = vec![NO_EDGE; n * n];
    let mut has_edge = false;
    for (u, v, &w) in m.iter() {
        if w != NO_EDGE {
            wt[v * n + u] = w;
            has_edge = true;
        }
    }
    if !has_edge {
        return None;
    }

    // d[k][v] = max weight of a k-edge walk ending at v (NO_EDGE = none);
    // parent[k][v] is the predecessor realizing it.
    let relax = |v: usize, prev: &[i64]| -> (i64, usize) {
        let mut best = NO_EDGE;
        let mut par = usize::MAX;
        for (u, (&w, &du)) in wt[v * n..(v + 1) * n].iter().zip(prev).enumerate() {
            if w == NO_EDGE || du == NO_EDGE {
                continue;
            }
            let cand = du + w;
            if par == usize::MAX || cand > best {
                best = cand;
                par = u;
            }
        }
        (best, par)
    };
    let mut d: Vec<Vec<i64>> = Vec::with_capacity(n + 1);
    let mut parent: Vec<Vec<usize>> = Vec::with_capacity(n + 1);
    d.push(vec![0; n]);
    parent.push(vec![usize::MAX; n]);
    for k in 1..=n {
        let prev = &d[k - 1];
        let (row, par): (Vec<i64>, Vec<usize>) = if n >= PAR_THRESHOLD {
            let pairs: Vec<(i64, usize)> = (0..n).into_par_iter().map(|v| relax(v, prev)).collect();
            pairs.into_iter().unzip()
        } else {
            (0..n).map(|v| relax(v, prev)).unzip()
        };
        d.push(row);
        parent.push(par);
    }

    // λ* = max_v min_k (D_n(v) − D_k(v)) / (n − k), exactly as the rational
    // kernel computes it (fraction comparisons by cross-multiplication).
    let mut best: Option<(i64, i64, usize)> = None;
    for v in 0..n {
        let dn = d[n][v];
        if dn == NO_EDGE {
            continue;
        }
        let mut v_min: Option<(i64, i64)> = None;
        for (k, dk_row) in d.iter().enumerate().take(n) {
            let dk = dk_row[v];
            if dk == NO_EDGE {
                continue;
            }
            let (num, den) = (dn - dk, (n - k) as i64);
            v_min = Some(match v_min {
                Some((cn, cd)) if cmp_frac(cn, cd, num, den).is_le() => (cn, cd),
                _ => (num, den),
            });
        }
        if let Some((vn, vd)) = v_min {
            match best {
                Some((bn, bd, _)) if cmp_frac(bn, bd, vn, vd).is_ge() => {}
                _ => best = Some((vn, vd, v)),
            }
        }
    }
    let (lambda_num, lambda_den, v_star) = best?;

    // Witness extraction: n parent steps back from v*, then the shared
    // prefix-sum repeated-vertex scan.
    let mut walk = Vec::with_capacity(n + 1);
    let mut v = v_star;
    for k in (0..=n).rev() {
        walk.push(v);
        if k > 0 {
            v = parent[k][v];
        }
    }
    walk.reverse(); // now walk[0] -> walk[1] -> ... -> walk[n] = v*

    let cycle = extract_cycle_prefix_scan(
        &walk,
        0i128,
        |a, b| {
            let w = m[(a, b)];
            debug_assert!(w != NO_EDGE, "walk follows existing edges");
            w as i128
        },
        |sum, len| sum * lambda_den as i128 == lambda_num as i128 * len as i128,
        |s1, l1, s2, l2| (s1 * l2 as i128).cmp(&(s2 * l1 as i128)),
    );
    Some(CycleMeanI64 {
        num: lambda_num,
        den: lambda_den,
        cycle,
    })
}

/// Runs the scaled `i64` Karp kernel if the matrix admits exact scaling.
/// Returns `None` when it does not (the caller should use the exact
/// rational kernel); `Some(None)` means the graph has no cycle. Exposed so
/// the equivalence test suite can tell "fast path taken" apart from
/// "silently fell back".
pub fn try_scaled_karp(m: &SquareMatrix<Ext<Ratio>>) -> Option<Option<CycleMean>> {
    let (scaled, scale) = scaled_cycle_weights(m)?;
    Some(karp_max_cycle_mean_i64(&scaled).map(|r| CycleMean {
        mean: Ratio::new(r.num as i128, r.den as i128 * scale),
        cycle: r.cycle,
    }))
}

/// The maximum cycle mean via the parallel scaled-`i64` kernel whenever the
/// input can be exactly rescaled (the common case for estimate matrices),
/// and via the exact rational [`karp_max_cycle_mean`](crate::karp_max_cycle_mean)
/// otherwise. Both routes produce the identical [`CycleMean`] — mean *and*
/// witness cycle — on every input the fast path accepts.
///
/// # Panics
///
/// Panics if any entry is `Ext::PosInf` (the contract of the exact kernel;
/// the scaled path rejects such matrices and falls back).
///
/// # Examples
///
/// ```
/// use clocksync_graph::{SquareMatrix, fast_max_cycle_mean};
/// use clocksync_time::{Ext, Ratio};
///
/// let mut m = SquareMatrix::filled(2, Ext::<Ratio>::NegInf);
/// m[(0, 1)] = Ext::Finite(Ratio::new(3, 2));
/// m[(1, 0)] = Ext::Finite(Ratio::new(1, 2));
/// let r = fast_max_cycle_mean(&m).expect("graph has a cycle");
/// assert_eq!(r.mean, Ratio::from_int(1));
/// ```
pub fn fast_max_cycle_mean(m: &SquareMatrix<Ext<Ratio>>) -> Option<CycleMean> {
    match try_scaled_karp(m) {
        Some(result) => result,
        None => karp_max_cycle_mean(m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratio_matrix(n: usize, edges: &[(usize, usize, i128, i128)]) -> SquareMatrix<Ext<Ratio>> {
        let mut m = SquareMatrix::filled(n, Ext::<Ratio>::NegInf);
        for &(a, b, num, den) in edges {
            m[(a, b)] = Ext::Finite(Ratio::new(num, den));
        }
        m
    }

    #[test]
    fn scaled_path_matches_exact_karp_exactly() {
        let cases = [
            ratio_matrix(2, &[(0, 1, 3, 1), (1, 0, 1, 1)]),
            ratio_matrix(3, &[(0, 1, 1, 2), (1, 2, 2, 3), (2, 0, 4, 1)]),
            ratio_matrix(4, &[(0, 1, 2, 1), (1, 0, 2, 1), (2, 3, 4, 1), (3, 2, 6, 1)]),
            ratio_matrix(2, &[(0, 0, 7, 2), (0, 1, 100, 1)]),
            ratio_matrix(2, &[(0, 1, -3, 1), (1, 0, -1, 1)]),
            ratio_matrix(5, &[(0, 1, 9, 1), (2, 3, 1, 1), (3, 4, 1, 1), (4, 2, 4, 1)]),
        ];
        for m in cases {
            let fast = try_scaled_karp(&m).expect("should take the fast path");
            assert_eq!(fast, karp_max_cycle_mean(&m), "mismatch on {m:?}");
            assert_eq!(fast, fast_max_cycle_mean(&m));
        }
    }

    #[test]
    fn acyclic_and_empty_graphs() {
        let m = ratio_matrix(3, &[(0, 1, 5, 1), (1, 2, 5, 1)]);
        assert_eq!(try_scaled_karp(&m), Some(None));
        assert_eq!(fast_max_cycle_mean(&m), None);
        assert_eq!(try_scaled_karp(&ratio_matrix(0, &[])), Some(None));
        assert_eq!(try_scaled_karp(&ratio_matrix(3, &[])), Some(None));
    }

    #[test]
    fn scaling_rejects_posinf_and_huge_denominators() {
        let mut m = ratio_matrix(2, &[(0, 1, 1, 1), (1, 0, 1, 1)]);
        m[(0, 1)] = Ext::PosInf;
        assert!(try_scaled_karp(&m).is_none());
        let m = ratio_matrix(2, &[(0, 1, 1, 1), (1, 0, 1, MAX_SCALE * 2 + 1)]);
        assert!(try_scaled_karp(&m).is_none());
        // The public front end falls back to the exact kernel.
        assert_eq!(
            fast_max_cycle_mean(&m),
            karp_max_cycle_mean(&m),
            "fallback must agree with the exact kernel"
        );
    }

    #[test]
    fn scaling_rejects_oversized_magnitudes() {
        let big = (i64::MAX as i128) / 2;
        let m = ratio_matrix(2, &[(0, 1, big, 1), (1, 0, big, 1)]);
        assert!(try_scaled_karp(&m).is_none());
        assert_eq!(fast_max_cycle_mean(&m).unwrap().mean, Ratio::from_int(big));
    }

    #[test]
    fn i64_kernel_direct_conventions() {
        // 0 → 1 → 0 with weights 3, 1; plus an absent-edge row.
        let mut m = SquareMatrix::filled(3, NO_EDGE);
        m[(0, 1)] = 3;
        m[(1, 0)] = 1;
        let r = karp_max_cycle_mean_i64(&m).unwrap();
        assert_eq!((r.num, r.den), (4, 2));
        assert_eq!(r.cycle.len(), 2);
        assert!(karp_max_cycle_mean_i64(&SquareMatrix::filled(2, NO_EDGE)).is_none());
        assert!(karp_max_cycle_mean_i64(&SquareMatrix::<i64>::filled(0, NO_EDGE)).is_none());
    }

    #[test]
    fn parallel_rounds_match_serial_decisions() {
        // n past PAR_THRESHOLD: the rayon path must agree with the exact
        // rational kernel bit-for-bit, witness included.
        let n = PAR_THRESHOLD;
        let mut m = SquareMatrix::filled(n, Ext::<Ratio>::NegInf);
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            for j in 0..n {
                if next() % 4 != 0 {
                    let num = (next() % 41) as i128 - 20;
                    let den = 1 + (next() % 4) as i128;
                    m[(i, j)] = Ext::Finite(Ratio::new(num, den));
                }
            }
        }
        let fast = try_scaled_karp(&m).expect("scalable");
        assert_eq!(fast, karp_max_cycle_mean(&m));
    }
}
