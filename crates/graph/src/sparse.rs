//! Sparse and hierarchical closure backends for large, sparse domains.
//!
//! The dense blocked kernel ([`crate::blocked_floyd_warshall_i64`]) pays
//! `O(n³)` regardless of how many links actually exist. WAN- and
//! toroid-like topologies have `m = O(n)` directed links, so for them this
//! module provides:
//!
//! * [`CsrGraph`] — a compressed-sparse-row digraph over the same
//!   sentinel-encoded `i64` weights the dense kernel uses;
//! * [`sparse_closure_i64`] — Johnson's algorithm: one Bellman–Ford pass
//!   from a virtual source computes potentials that reweight every edge
//!   non-negative, then a binary-heap Dijkstra per source yields all
//!   pairs in `O(n·(m + n log n))`;
//! * [`hierarchical_closure_i64`] — per-weak-component closures composed
//!   through boundary nodes, so a domain of many small components pays
//!   only the sum of its component costs (and the boundary graph's);
//! * [`SparseClosure`] — the component-blocked, incrementally-maintained
//!   equivalent of [`crate::Closure`]: memory `Σ k_b²` over block sizes
//!   instead of `n²`, and `O(k²)` per [`SparseClosure::relax_edge`]
//!   tightening.
//!
//! All backends agree **exactly** with the dense kernels on distances and
//! reachability (the property suite in `tests/sparse_equivalence.rs`
//! checks this on thousands of random graphs). Successor matrices are
//! derived post-hoc by [`derive_successors_i64`]'s canonical minimum-hop
//! rule, which is deterministic and heap-order-independent but may break
//! equal-weight ties differently than Floyd–Warshall does.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rayon::prelude::*;

use crate::blocked::PAR_THRESHOLD;
use crate::{
    blocked_floyd_warshall_i64, Closure, NegativeCycleError, RelaxOutcome, SquareMatrix, Weight,
    SPARSE_MAX_DENSITY, SPARSE_MIN_N, UNREACHABLE,
};

/// A compressed-sparse-row digraph over sentinel-encoded `i64` weights:
/// the adjacency representation behind the Johnson and hierarchical
/// closures. Within each row the out-edges are sorted by target index,
/// which is what makes the canonical successor derivation deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    n: usize,
    row_ptr: Vec<usize>,
    col: Vec<usize>,
    weight: Vec<i64>,
}

impl CsrGraph {
    /// Builds the CSR form of a sentinel-encoded matrix, keeping every
    /// finite off-diagonal entry. Diagonal entries are kept only when
    /// negative (a 1-cycle the closure kernels must detect); non-negative
    /// self-loops can never shorten a path.
    pub fn from_matrix(m: &SquareMatrix<i64>) -> CsrGraph {
        let n = m.n();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col = Vec::new();
        let mut weight = Vec::new();
        row_ptr.push(0);
        for i in 0..n {
            for (j, &w) in m.row(i).iter().enumerate() {
                if w == UNREACHABLE || (i == j && w >= 0) {
                    continue;
                }
                col.push(j);
                weight.push(w);
            }
            row_ptr.push(col.len());
        }
        CsrGraph {
            n,
            row_ptr,
            col,
            weight,
        }
    }

    /// Builds a CSR graph from an explicit edge list (parallel edges are
    /// merged to their minimum weight; non-negative self-loops dropped).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(usize, usize, i64)]) -> CsrGraph {
        let mut weight: Vec<i64> = Vec::new();
        let mut sorted: Vec<(usize, usize, i64)> = edges
            .iter()
            .copied()
            .filter(|&(u, v, w)| {
                assert!(u < n && v < n, "edge endpoint out of range");
                u != v || w < 0
            })
            .collect();
        sorted.sort_unstable();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col = Vec::new();
        row_ptr.push(0);
        let mut at = 0usize;
        for i in 0..n {
            while at < sorted.len() && sorted[at].0 == i {
                let (_, v, w) = sorted[at];
                if col.len() > row_ptr[i] && *col.last().expect("nonempty") == v {
                    let last = weight.last_mut().expect("nonempty");
                    *last = (*last).min(w);
                } else {
                    col.push(v);
                    weight.push(w);
                }
                at += 1;
            }
            row_ptr.push(col.len());
        }
        CsrGraph {
            n,
            row_ptr,
            col,
            weight,
        }
    }

    /// The number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The number of stored directed edges.
    pub fn edge_count(&self) -> usize {
        self.col.len()
    }

    /// Stored edges as a fraction of `n²`.
    pub fn density(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.edge_count() as f64 / (self.n as f64 * self.n as f64)
        }
    }

    /// The out-edges of `u` as `(target, weight)` pairs, sorted by target.
    pub fn out_edges(&self, u: usize) -> impl Iterator<Item = (usize, i64)> + '_ {
        let range = self.row_ptr[u]..self.row_ptr[u + 1];
        self.col[range.clone()]
            .iter()
            .copied()
            .zip(self.weight[range].iter().copied())
    }

    /// The reversed graph (every edge `u → v` becomes `v → u`).
    pub fn transpose(&self) -> CsrGraph {
        let mut degree = vec![0usize; self.n];
        for &v in &self.col {
            degree[v] += 1;
        }
        let mut row_ptr = Vec::with_capacity(self.n + 1);
        row_ptr.push(0);
        for d in &degree {
            row_ptr.push(row_ptr.last().expect("nonempty") + d);
        }
        let mut cursor = row_ptr[..self.n].to_vec();
        let mut col = vec![0usize; self.col.len()];
        let mut weight = vec![0i64; self.col.len()];
        for u in 0..self.n {
            for (v, w) in self.out_edges(u) {
                col[cursor[v]] = u;
                weight[cursor[v]] = w;
                cursor[v] += 1;
            }
        }
        // Rows come out sorted automatically: u ascends in the outer loop.
        CsrGraph {
            n: self.n,
            row_ptr,
            col,
            weight,
        }
    }
}

/// Bellman–Ford from a virtual source connected to every node by a
/// zero-weight edge: the Johnson potentials. `h[v] ≤ 0` and for every
/// edge `u → v`: `w + h[u] − h[v] ≥ 0`.
fn potentials(g: &CsrGraph) -> Result<Vec<i64>, NegativeCycleError> {
    let n = g.n();
    let mut h = vec![0i64; n];
    for round in 0..n {
        let mut changed = false;
        for u in 0..n {
            let hu = h[u];
            for (v, w) in g.out_edges(u) {
                if hu + w < h[v] {
                    if round + 1 == n {
                        // Still relaxing on the n-th round: negative cycle.
                        return Err(NegativeCycleError { witness: v });
                    }
                    h[v] = hu + w;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ok(h)
}

/// Binary-heap Dijkstra from `s` over the reweighted graph
/// (`w'(u, v) = w + h[u] − h[v] ≥ 0`), returning *reweighted* distances
/// with `i64::MAX` for unreachable.
fn dijkstra_reweighted(g: &CsrGraph, h: &[i64], s: usize) -> Vec<i64> {
    let n = g.n();
    let mut dist = vec![i64::MAX; n];
    let mut heap: BinaryHeap<Reverse<(i64, usize)>> = BinaryHeap::new();
    dist[s] = 0;
    heap.push(Reverse((0, s)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for (v, w) in g.out_edges(u) {
            let nd = d + w + h[u] - h[v];
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// All-pairs distances of a CSR graph via Johnson's algorithm. Errors on
/// negative cycles (detected by the Bellman–Ford potential pass).
fn sparse_distances(g: &CsrGraph) -> Result<SquareMatrix<i64>, NegativeCycleError> {
    let n = g.n();
    let h = potentials(g)?;
    let row = |s: usize| -> Vec<i64> {
        let mut d = dijkstra_reweighted(g, &h, s);
        for (t, entry) in d.iter_mut().enumerate() {
            *entry = if *entry == i64::MAX {
                UNREACHABLE
            } else {
                // Undo the reweighting: d(s,t) = d'(s,t) − h[s] + h[t].
                *entry - h[s] + h[t]
            };
        }
        d
    };
    let rows: Vec<Vec<i64>> = if n >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
        (0..n).into_par_iter().map(row).collect()
    } else {
        (0..n).map(row).collect()
    };
    let mut flat = Vec::with_capacity(n * n);
    for r in rows {
        flat.extend_from_slice(&r);
    }
    Ok(SquareMatrix::from_vec(n, flat))
}

/// Derives a canonical successor matrix from a graph and its exact
/// all-pairs distance closure, matching the conventions of
/// [`crate::floyd_warshall_with_paths`]: `next[(i, j)]` is the node after
/// `i` on a shortest `i → j` path, `usize::MAX` iff unreachable or
/// `i == j`.
///
/// The rule is the **minimum-hop tie-break**: among the out-edges of `i`
/// that lie on some shortest `i → j` path ("tight" edges, `w(i, v) +
/// dist(v, j) = dist(i, j)`), pick the smallest-indexed `v` whose tight
/// hop count to `j` is exactly one less than `i`'s. Hop counts come from a
/// BFS over reversed tight edges per target, so following `next` strictly
/// decreases the hop count — the successor matrix can never loop, even
/// through zero-weight cycles, and the result is independent of any heap
/// or thread ordering.
pub fn derive_successors_i64(g: &CsrGraph, dist: &SquareMatrix<i64>) -> SquareMatrix<usize> {
    let n = g.n();
    let rev = g.transpose();
    // Column j of `dist`, contiguous: dist_t.row(j)[u] = dist[(u, j)].
    let dist_t = SquareMatrix::from_fn(n, |a, b| dist[(b, a)]);
    let column = |j: usize| -> Vec<usize> {
        let dcol = dist_t.row(j);
        let mut hops = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        hops[j] = 0;
        queue.push_back(j);
        while let Some(x) = queue.pop_front() {
            let hx = hops[x];
            let dxj = dcol[x];
            for (u, w) in rev.out_edges(x) {
                if hops[u] != usize::MAX || dcol[u] == UNREACHABLE {
                    continue;
                }
                if w + dxj == dcol[u] {
                    hops[u] = hx + 1;
                    queue.push_back(u);
                }
            }
        }
        let mut col = vec![usize::MAX; n];
        for u in 0..n {
            if u == j || dcol[u] == UNREACHABLE {
                continue;
            }
            let hu = hops[u];
            debug_assert_ne!(hu, usize::MAX, "finite-distance node missed by tight BFS");
            for (v, w) in g.out_edges(u) {
                let dvj = dcol[v];
                if dvj != UNREACHABLE && w + dvj == dcol[u] && hops[v] == hu - 1 {
                    col[u] = v;
                    break;
                }
            }
            debug_assert_ne!(col[u], usize::MAX, "no tight successor found");
        }
        col
    };
    let columns: Vec<Vec<usize>> = if n >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
        (0..n).into_par_iter().map(column).collect()
    } else {
        (0..n).map(column).collect()
    };
    SquareMatrix::from_fn(n, |i, j| columns[j][i])
}

/// All-pairs shortest paths over sentinel-encoded `i64` weights via
/// Johnson's algorithm — the sparse counterpart of
/// [`crate::blocked_floyd_warshall_i64`], with identical conventions
/// ([`UNREACHABLE`] sentinel, diagonal normalized to `min(0, input)`,
/// `usize::MAX` successors) and bit-identical distances. Successors are
/// canonical minimum-hop ones (see [`derive_successors_i64`]), valid but
/// not necessarily the Floyd–Warshall tie-break.
///
/// # Errors
///
/// Returns [`NegativeCycleError`] when the graph contains a negative
/// cycle (including a negative diagonal entry).
///
/// # Examples
///
/// ```
/// use clocksync_graph::{sparse_closure_i64, SquareMatrix, UNREACHABLE};
///
/// let mut w = SquareMatrix::filled(3, UNREACHABLE);
/// for i in 0..3 { w[(i, i)] = 0; }
/// w[(0, 1)] = 4;
/// w[(1, 2)] = -1;
/// let (dist, next) = sparse_closure_i64(&w)?;
/// assert_eq!(dist[(0, 2)], 3);
/// assert_eq!(next[(0, 2)], 1);
/// assert_eq!(dist[(2, 0)], UNREACHABLE);
/// # Ok::<(), clocksync_graph::NegativeCycleError>(())
/// ```
pub fn sparse_closure_i64(
    weights: &SquareMatrix<i64>,
) -> Result<(SquareMatrix<i64>, SquareMatrix<usize>), NegativeCycleError> {
    let g = CsrGraph::from_matrix(weights);
    let dist = sparse_distances(&g)?;
    let next = derive_successors_i64(&g, &dist);
    Ok((dist, next))
}

/// The weakly-connected components (over finite off-diagonal entries) of
/// a sentinel-encoded matrix, each sorted, in order of smallest member.
pub fn weak_components_i64(weights: &SquareMatrix<i64>) -> Vec<Vec<usize>> {
    let n = weights.n();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (i, j, &w) in weights.iter_off_diagonal() {
        if w == UNREACHABLE {
            continue;
        }
        let (a, b) = (find(&mut parent, i), find(&mut parent, j));
        if a != b {
            parent[a] = b;
        }
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_of = vec![usize::MAX; n];
    for i in 0..n {
        let r = find(&mut parent, i);
        if group_of[r] == usize::MAX {
            group_of[r] = groups.len();
            groups.push(Vec::new());
        }
        groups[group_of[r]].push(i);
    }
    groups
}

/// Distances of one cluster's induced sub-matrix, density-dispatched:
/// Johnson for large sparse clusters, the dense blocked kernel otherwise.
fn cluster_distances(sub: &SquareMatrix<i64>) -> Result<SquareMatrix<i64>, NegativeCycleError> {
    let k = sub.n();
    if k >= SPARSE_MIN_N {
        let g = CsrGraph::from_matrix(sub);
        if g.density() <= SPARSE_MAX_DENSITY {
            return sparse_distances(&g);
        }
    }
    blocked_floyd_warshall_i64(sub).map(|(d, _)| d)
}

/// All-pairs shortest paths composed hierarchically from per-component
/// closures: the default partition is the graph's weak components (see
/// [`weak_components_i64`]), so a multi-component domain pays only the sum
/// of its per-component closure costs instead of one monolithic `O(n³)`.
/// Same conventions and distance guarantees as [`sparse_closure_i64`].
///
/// # Errors
///
/// Returns [`NegativeCycleError`] when the graph contains a negative
/// cycle.
pub fn hierarchical_closure_i64(
    weights: &SquareMatrix<i64>,
) -> Result<(SquareMatrix<i64>, SquareMatrix<usize>), NegativeCycleError> {
    let clusters = weak_components_i64(weights);
    hierarchical_closure_i64_with_partition(weights, &clusters)
}

/// All-pairs shortest paths composed through the boundary nodes of an
/// **arbitrary** node partition.
///
/// Any shortest path decomposes into maximal intra-cluster segments
/// separated by inter-cluster edges. So: close each cluster over its
/// intra-cluster edges; build the *boundary graph* whose nodes are the
/// endpoints of inter-cluster edges, with those edges plus the
/// intra-cluster closure distances between same-cluster boundary nodes as
/// super-edges; close it; then every pair composes as
///
/// `d(i, j) = min(d_intra(i, j),  min over boundary b₁ ∈ C(i), b₂ ∈ C(j)
/// of  d_intra(i, b₁) + d_B(b₁, b₂) + d_intra(b₂, j))`
///
/// (the boundary closure's zero diagonal makes the second term subsume
/// single-crossing routes). A negative cycle always surfaces in a cluster
/// closure or the boundary closure — never silently.
///
/// # Errors
///
/// Returns [`NegativeCycleError`] when the graph contains a negative
/// cycle.
///
/// # Panics
///
/// Panics unless `clusters` is a partition of `0..n` (every node exactly
/// once, all in range).
pub fn hierarchical_closure_i64_with_partition(
    weights: &SquareMatrix<i64>,
    clusters: &[Vec<usize>],
) -> Result<(SquareMatrix<i64>, SquareMatrix<usize>), NegativeCycleError> {
    let n = weights.n();
    let mut cluster_of = vec![usize::MAX; n];
    let mut local_of = vec![0usize; n];
    for (ci, members) in clusters.iter().enumerate() {
        for (li, &x) in members.iter().enumerate() {
            assert!(x < n, "cluster member out of range");
            assert_eq!(cluster_of[x], usize::MAX, "node repeated across clusters");
            cluster_of[x] = ci;
            local_of[x] = li;
        }
    }
    assert!(
        cluster_of.iter().all(|&c| c != usize::MAX),
        "clusters must cover every node"
    );
    for i in 0..n {
        if weights[(i, i)] < 0 {
            return Err(NegativeCycleError { witness: i });
        }
    }

    // Per-cluster closures over intra-cluster edges only.
    let close_one = |members: &Vec<usize>| -> Result<SquareMatrix<i64>, NegativeCycleError> {
        let k = members.len();
        let sub = SquareMatrix::from_fn(k, |a, b| {
            if a == b {
                0
            } else {
                weights[(members[a], members[b])]
            }
        });
        cluster_distances(&sub).map_err(|e| NegativeCycleError {
            witness: members[e.witness],
        })
    };
    let results: Vec<Result<SquareMatrix<i64>, NegativeCycleError>> =
        if n >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
            clusters.par_iter().map(close_one).collect()
        } else {
            clusters.iter().map(close_one).collect()
        };
    let intra: Vec<SquareMatrix<i64>> = results.into_iter().collect::<Result<_, _>>()?;

    // Boundary nodes: endpoints of inter-cluster edges.
    let mut b_of = vec![usize::MAX; n];
    let mut inter_edges: Vec<(usize, usize, i64)> = Vec::new();
    for (i, j, &w) in weights.iter_off_diagonal() {
        if w != UNREACHABLE && cluster_of[i] != cluster_of[j] {
            inter_edges.push((i, j, w));
        }
    }
    let mut boundary: Vec<usize> = Vec::new();
    for &(u, v, _) in &inter_edges {
        for x in [u, v] {
            if b_of[x] == usize::MAX {
                b_of[x] = usize::MAX - 1; // mark; numbered after the scan
                boundary.push(x);
            }
        }
    }
    boundary.sort_unstable();
    for (bi, &x) in boundary.iter().enumerate() {
        b_of[x] = bi;
    }

    // Splice the intra closures into the full matrix.
    let mut dist = SquareMatrix::filled(n, UNREACHABLE);
    for (ci, members) in clusters.iter().enumerate() {
        for (a, &x) in members.iter().enumerate() {
            for (b, &y) in members.iter().enumerate() {
                dist[(x, y)] = intra[ci][(a, b)];
            }
        }
    }

    if !boundary.is_empty() {
        let nb = boundary.len();
        let mut bg = SquareMatrix::filled(nb, UNREACHABLE);
        for b in 0..nb {
            bg[(b, b)] = 0;
        }
        for &(u, v, w) in &inter_edges {
            let (a, b) = (b_of[u], b_of[v]);
            if w < bg[(a, b)] {
                bg[(a, b)] = w;
            }
        }
        for (a, &x) in boundary.iter().enumerate() {
            for (b, &y) in boundary.iter().enumerate() {
                if a != b && cluster_of[x] == cluster_of[y] {
                    let d = intra[cluster_of[x]][(local_of[x], local_of[y])];
                    if d < bg[(a, b)] {
                        bg[(a, b)] = d;
                    }
                }
            }
        }
        let b_dist = cluster_distances(&bg).map_err(|e| NegativeCycleError {
            witness: boundary[e.witness],
        })?;

        // Boundary indices grouped per cluster, for the composition scans.
        let mut bic: Vec<Vec<usize>> = vec![Vec::new(); clusters.len()];
        for (bi, &x) in boundary.iter().enumerate() {
            bic[cluster_of[x]].push(bi);
        }

        // d(i, j) ← min over b₂ ∈ B(C(j)) of D1(i, b₂) + d_intra(b₂, j),
        // where D1(i, b₂) = min over b₁ ∈ B(C(i)) of d_intra(i, b₁) +
        // d_B(b₁, b₂). Zero boundary diagonal subsumes the single-crossing
        // and same-cluster-return routes.
        let rows: Vec<usize> = (0..n).collect();
        let compose_row = |&i: &usize| -> Vec<i64> {
            let ci = cluster_of[i];
            let li = local_of[i];
            let mut d1 = vec![UNREACHABLE; nb];
            for &b1 in &bic[ci] {
                let to_b1 = intra[ci][(li, local_of[boundary[b1]])];
                if to_b1 == UNREACHABLE {
                    continue;
                }
                for b2 in 0..nb {
                    let via = b_dist[(b1, b2)];
                    if via != UNREACHABLE && to_b1 + via < d1[b2] {
                        d1[b2] = to_b1 + via;
                    }
                }
            }
            let mut out: Vec<i64> = dist.row(i).to_vec();
            for (cj, members) in clusters.iter().enumerate() {
                for &b2 in &bic[cj] {
                    let head = d1[b2];
                    if head == UNREACHABLE {
                        continue;
                    }
                    let lb2 = local_of[boundary[b2]];
                    for (b, &y) in members.iter().enumerate() {
                        let tail = intra[cj][(lb2, b)];
                        if tail != UNREACHABLE && head + tail < out[y] {
                            out[y] = head + tail;
                        }
                    }
                }
            }
            out
        };
        let composed: Vec<Vec<i64>> = if n >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
            rows.par_iter().map(compose_row).collect()
        } else {
            rows.iter().map(compose_row).collect()
        };
        let mut flat = Vec::with_capacity(n * n);
        for r in composed {
            flat.extend_from_slice(&r);
        }
        dist = SquareMatrix::from_vec(n, flat);
        // The boundary closure succeeded, so no negative cycle exists and
        // composition cannot drive the diagonal negative (any such route
        // would be a boundary-graph negative cycle). Keep the guard anyway.
        for i in 0..n {
            debug_assert!(dist[(i, i)] >= 0, "composed diagonal went negative");
            if dist[(i, i)] < 0 {
                return Err(NegativeCycleError { witness: i });
            }
        }
    }

    let g = CsrGraph::from_matrix(weights);
    let next = derive_successors_i64(&g, &dist);
    Ok((dist, next))
}

/// The component-blocked, sparse-representation equivalent of the dense
/// [`Closure`] cache: one dense sub-closure per weakly-connected block,
/// nothing at all for cross-block pairs (they are `+∞` by definition).
///
/// Memory is `Σ k_b²` over block sizes instead of `n²`, and a
/// [`SparseClosure::relax_edge`] tightening costs `O(k²)` in its block —
/// which is what keeps steady-state online resynchronization incremental
/// on domains of many small components (a 10⁵-node domain of 100-node
/// components holds 10⁷ entries instead of 10¹⁰). A cross-block edge
/// insertion merges the two blocks and is exact: the closure of a
/// disjoint union plus one connecting edge is precisely what
/// [`Closure::relax_edge`] computes over the merged matrix.
///
/// # Examples
///
/// ```
/// use clocksync_graph::{RelaxOutcome, SparseClosure};
/// use clocksync_time::Ext;
///
/// let mut c: SparseClosure<Ext<i64>> = SparseClosure::new(4);
/// assert_eq!(c.block_count(), 4);
/// c.relax_edge(0, 1, Ext::Finite(3))?;
/// c.relax_edge(1, 2, Ext::Finite(4))?;
/// assert_eq!(c.dist(0, 2), Ext::Finite(7));
/// assert_eq!(c.dist(0, 3), Ext::PosInf); // cross-block: stored nowhere
/// assert_eq!(c.block_count(), 2);
/// # Ok::<(), clocksync_graph::NegativeCycleError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SparseClosure<W> {
    block_of: Vec<usize>,
    blocks: Vec<Option<Block<W>>>,
}

#[derive(Debug, Clone)]
struct Block<W> {
    /// Sorted global node ids.
    members: Vec<usize>,
    /// Dense closure over the members' local indices.
    closure: Closure<W>,
}

impl<W: Weight> Block<W> {
    fn local(&self, global: usize) -> usize {
        self.members
            .binary_search(&global)
            .expect("node not in its own block")
    }
}

impl<W: Weight> SparseClosure<W> {
    /// An edgeless cache over `n` nodes: `n` singleton blocks.
    pub fn new(n: usize) -> SparseClosure<W> {
        let blocks = (0..n)
            .map(|i| {
                Some(Block {
                    members: vec![i],
                    closure: Closure::from_parts(
                        SquareMatrix::filled(1, W::zero()),
                        SquareMatrix::filled(1, usize::MAX),
                    ),
                })
            })
            .collect();
        SparseClosure {
            block_of: (0..n).collect(),
            blocks,
        }
    }

    /// Builds the cache by relaxing an edge list into [`SparseClosure::new`].
    ///
    /// # Errors
    ///
    /// Returns [`NegativeCycleError`] when the edges close a negative
    /// cycle.
    pub fn from_edges(
        n: usize,
        edges: &[(usize, usize, W)],
    ) -> Result<SparseClosure<W>, NegativeCycleError> {
        let mut c = SparseClosure::new(n);
        for &(u, v, w) in edges {
            c.relax_edge(u, v, w)?;
        }
        Ok(c)
    }

    /// The number of nodes.
    pub fn n(&self) -> usize {
        self.block_of.len()
    }

    /// The number of live blocks (weakly-connected groups merged so far).
    pub fn block_count(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_some()).count()
    }

    /// The sorted members of the block containing `i`.
    pub fn block_members(&self, i: usize) -> &[usize] {
        let b = self.blocks[self.block_of[i]]
            .as_ref()
            .expect("live node points at a dead block");
        &b.members
    }

    /// Total closure entries held — the `Σ k_b²` memory footprint the
    /// blocked representation pays instead of `n²`.
    pub fn retained_entries(&self) -> usize {
        self.blocks
            .iter()
            .flatten()
            .map(|b| b.members.len() * b.members.len())
            .sum()
    }

    /// The closure distance from `i` to `j` (`+∞` across blocks).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn dist(&self, i: usize, j: usize) -> W {
        let bi = self.block_of[i];
        if bi != self.block_of[j] {
            return W::infinity();
        }
        let b = self.blocks[bi].as_ref().expect("live node, dead block");
        b.closure.dist()[(b.local(i), b.local(j))]
    }

    /// The node after `i` on a shortest `i → j` path, or `None` when
    /// unreachable or `i == j` (the [`crate::reconstruct_path`]
    /// convention, lifted to global indices).
    pub fn next_hop(&self, i: usize, j: usize) -> Option<usize> {
        let bi = self.block_of[i];
        if bi != self.block_of[j] {
            return None;
        }
        let b = self.blocks[bi].as_ref().expect("live node, dead block");
        let s = b.closure.next()[(b.local(i), b.local(j))];
        if s == usize::MAX {
            None
        } else {
            Some(b.members[s])
        }
    }

    /// Incorporates an edge `u → v` of weight `w` — the sparse counterpart
    /// of [`Closure::relax_edge`], with the same [`RelaxOutcome`]
    /// staleness contract. Within a block this is the `O(k²)` dense
    /// relaxation; across blocks it first merges the two blocks (the
    /// closure of a disjoint union is the block-diagonal composite) and
    /// then relaxes the connecting edge, which is exact.
    ///
    /// # Errors
    ///
    /// Returns [`NegativeCycleError`] when the edge closes a negative
    /// cycle. As with the dense cache, the closure state is then
    /// unspecified and must be discarded.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn relax_edge(
        &mut self,
        u: usize,
        v: usize,
        w: W,
    ) -> Result<RelaxOutcome, NegativeCycleError> {
        let n = self.n();
        assert!(u < n && v < n, "edge endpoint out of range");
        if u == v {
            return if w < W::zero() {
                Err(NegativeCycleError { witness: u })
            } else {
                Ok(RelaxOutcome::Unchanged)
            };
        }
        let (bu, bv) = (self.block_of[u], self.block_of[v]);
        if bu == bv {
            let b = self.blocks[bu].as_mut().expect("live node, dead block");
            let (lu, lv) = (b.local(u), b.local(v));
            return b.closure.relax_edge(lu, lv, w);
        }
        if !w.is_reachable() {
            // An unreachable edge across blocks changes nothing — and the
            // cross-block distance is already +∞, so nothing can be stale.
            return Ok(RelaxOutcome::Unchanged);
        }
        // Merge the two blocks, then relax the connecting edge.
        let a = self.blocks[bu].take().expect("live node, dead block");
        let b = self.blocks[bv].take().expect("live node, dead block");
        let mut members = Vec::with_capacity(a.members.len() + b.members.len());
        members.extend_from_slice(&a.members);
        members.extend_from_slice(&b.members);
        members.sort_unstable();
        let k = members.len();
        let mut dist = SquareMatrix::filled(k, W::infinity());
        let mut next = SquareMatrix::filled(k, usize::MAX);
        for part in [&a, &b] {
            let remap: Vec<usize> = part
                .members
                .iter()
                .map(|&g| members.binary_search(&g).expect("member of the union"))
                .collect();
            let (pd, pn) = (part.closure.dist(), part.closure.next());
            for x in 0..part.members.len() {
                for y in 0..part.members.len() {
                    dist[(remap[x], remap[y])] = pd[(x, y)];
                    let s = pn[(x, y)];
                    next[(remap[x], remap[y])] = if s == usize::MAX {
                        usize::MAX
                    } else {
                        remap[s]
                    };
                }
            }
        }
        let new_id = self.blocks.len();
        for &m in &members {
            self.block_of[m] = new_id;
        }
        let block = Block {
            members,
            closure: Closure::from_parts(dist, next),
        };
        self.blocks.push(Some(block));
        let b = self.blocks[new_id].as_mut().expect("just inserted");
        let (lu, lv) = (b.local(u), b.local(v));
        b.closure.relax_edge(lu, lv, w)
    }

    /// Materializes the dense `(dist, next)` pair (global indices,
    /// [`crate::floyd_warshall_with_paths`] conventions) — for
    /// equivalence tests and small-n interop; at large `n` this is the
    /// `n²` the blocked representation exists to avoid.
    pub fn to_dense(&self) -> (SquareMatrix<W>, SquareMatrix<usize>) {
        let n = self.n();
        let mut dist =
            SquareMatrix::from_fn(n, |i, j| if i == j { W::zero() } else { W::infinity() });
        let mut next = SquareMatrix::filled(n, usize::MAX);
        for b in self.blocks.iter().flatten() {
            let (bd, bn) = (b.closure.dist(), b.closure.next());
            for (x, &gx) in b.members.iter().enumerate() {
                for (y, &gy) in b.members.iter().enumerate() {
                    dist[(gx, gy)] = bd[(x, y)];
                    let s = bn[(x, y)];
                    next[(gx, gy)] = if s == usize::MAX {
                        usize::MAX
                    } else {
                        b.members[s]
                    };
                }
            }
        }
        (dist, next)
    }
}
