//! Single-source shortest paths with negative weights (Bellman–Ford).

use std::error::Error;
use std::fmt;

use crate::{DiGraph, Weight};

/// Error returned when a negative-weight cycle is reachable from the source.
///
/// In the synchronization pipeline this can only happen when the caller's
/// delay observations contradict the promised bounds (the paper proves the
/// weights `A_max − m̃s` have no negative cycle for consistent inputs), so
/// the core crate surfaces it as an inconsistency diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NegativeCycleError {
    /// A node on (or reachable from) the offending cycle.
    pub witness: usize,
}

impl fmt::Display for NegativeCycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "negative-weight cycle reachable from source (witness node {})",
            self.witness
        )
    }
}

impl Error for NegativeCycleError {}

/// Computes shortest-path distances from `source` to every node.
///
/// Unreachable nodes get `W::infinity()`. Runs in `O(n · m)`.
///
/// # Errors
///
/// Returns [`NegativeCycleError`] if a negative cycle is reachable from
/// `source`.
///
/// # Panics
///
/// Panics if `source` is not a node of `g`.
///
/// # Examples
///
/// ```
/// use clocksync_graph::{DiGraph, bellman_ford};
/// use clocksync_time::Ext;
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1, Ext::Finite(4i64));
/// g.add_edge(0, 2, Ext::Finite(10));
/// g.add_edge(1, 2, Ext::Finite(-3));
/// let d = bellman_ford(&g, 0)?;
/// assert_eq!(d[2], Ext::Finite(1));
/// # Ok::<(), clocksync_graph::NegativeCycleError>(())
/// ```
pub fn bellman_ford<W: Weight>(
    g: &DiGraph<W>,
    source: usize,
) -> Result<Vec<W>, NegativeCycleError> {
    let n = g.node_count();
    assert!(source < n, "source out of range");
    let mut dist = vec![W::infinity(); n];
    dist[source] = W::zero();

    for round in 0..n {
        let mut changed = false;
        for e in g.edges() {
            if !dist[e.from].is_reachable() || !e.weight.is_reachable() {
                continue;
            }
            let candidate = dist[e.from] + e.weight;
            if candidate < dist[e.to] {
                if round == n - 1 {
                    return Err(NegativeCycleError { witness: e.to });
                }
                dist[e.to] = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksync_time::Ext;

    fn w(x: i64) -> Ext<i64> {
        Ext::Finite(x)
    }

    #[test]
    fn simple_shortest_paths() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, w(1));
        g.add_edge(1, 2, w(2));
        g.add_edge(0, 2, w(10));
        g.add_edge(2, 3, w(3));
        let d = bellman_ford(&g, 0).unwrap();
        assert_eq!(d, vec![w(0), w(1), w(3), w(6)]);
    }

    #[test]
    fn negative_edges_without_cycle() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, w(5));
        g.add_edge(1, 2, w(-4));
        g.add_edge(0, 2, w(2));
        let d = bellman_ford(&g, 0).unwrap();
        assert_eq!(d[2], w(1));
    }

    #[test]
    fn unreachable_nodes_are_infinite() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, w(1));
        let d = bellman_ford(&g, 0).unwrap();
        assert_eq!(d[2], Ext::PosInf);
    }

    #[test]
    fn detects_negative_cycle() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, w(1));
        g.add_edge(1, 2, w(-2));
        g.add_edge(2, 1, w(1));
        let err = bellman_ford(&g, 0).unwrap_err();
        assert!(err.to_string().contains("negative-weight cycle"));
    }

    #[test]
    fn unreachable_negative_cycle_is_ignored() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, w(1));
        // Cycle 2 <-> 3 is negative but not reachable from 0.
        g.add_edge(2, 3, w(-2));
        g.add_edge(3, 2, w(1));
        let d = bellman_ford(&g, 0).unwrap();
        assert_eq!(d[1], w(1));
        assert_eq!(d[2], Ext::PosInf);
    }

    #[test]
    fn zero_weight_self_loop_is_harmless() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 0, w(0));
        g.add_edge(0, 1, w(7));
        let d = bellman_ford(&g, 0).unwrap();
        assert_eq!(d, vec![w(0), w(7)]);
    }

    #[test]
    fn single_node_graph() {
        let g: DiGraph<Ext<i64>> = DiGraph::new(1);
        assert_eq!(bellman_ford(&g, 0).unwrap(), vec![w(0)]);
    }
}
