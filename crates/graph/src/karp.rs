//! Karp's maximum cycle mean algorithm.
//!
//! The optimal precision of the PODC'93 synchronizer is
//! `A_max = max_θ m̃s(θ)/|θ|` over cyclic sequences of processors (paper
//! §4.3). The paper points to Karp's characterization of the minimum cycle
//! mean (Karp, *Discrete Math.* 23, 1978); we implement the maximization
//! variant directly:
//!
//! `λ* = max_v min_{0≤k<n} ( D_n(v) − D_k(v) ) / (n − k)`
//!
//! where `D_k(v)` is the maximum weight of any walk of exactly `k` edges
//! ending at `v` (starting anywhere; this is the usual super-source
//! formulation). All arithmetic is exact [`Ratio`] arithmetic.

use clocksync_time::{Ext, Ratio};

use crate::SquareMatrix;

/// The result of a maximum-cycle-mean computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleMean {
    /// The maximum mean weight over all directed cycles.
    pub mean: Ratio,
    /// A witness cycle achieving the mean, as a node sequence
    /// `c_0, c_1, …, c_{k-1}` (the closing edge `c_{k-1} → c_0` is
    /// implicit). Never empty.
    pub cycle: Vec<usize>,
}

impl CycleMean {
    /// The number of edges on the witness cycle.
    pub fn len(&self) -> usize {
        self.cycle.len()
    }

    /// Whether the witness cycle is empty. Every `CycleMean` the algorithms
    /// construct carries a non-empty witness, so this is `false` for them;
    /// it reports on the actual data rather than hard-coding that invariant.
    pub fn is_empty(&self) -> bool {
        self.cycle.is_empty()
    }
}

/// Computes the maximum cycle mean of a dense weighted digraph.
///
/// Matrix conventions: `m[(i,j)]` is the weight of edge `i → j`;
/// `Ext::NegInf` means the edge is absent. Diagonal entries are honored as
/// self-loops (a self-loop of weight `w` is a length-1 cycle of mean `w`).
/// Returns `None` when the graph has no cycle at all.
///
/// Runs in `O(n·m)` time and `O(n²)` space (the full `D_k` table is kept to
/// extract a witness cycle).
///
/// # Panics
///
/// Panics if any entry is `Ext::PosInf`; callers must resolve infinities
/// before asking for a cycle mean (an infinite entry means the answer is
/// `+∞` and no finite witness exists).
///
/// # Examples
///
/// ```
/// use clocksync_graph::{SquareMatrix, karp_max_cycle_mean};
/// use clocksync_time::{Ext, Ratio};
///
/// // Two-node cycle with weights 3 and 1: mean (3+1)/2 = 2.
/// let mut m = SquareMatrix::filled(2, Ext::<Ratio>::NegInf);
/// m[(0, 1)] = Ext::Finite(Ratio::from_int(3));
/// m[(1, 0)] = Ext::Finite(Ratio::from_int(1));
/// let result = karp_max_cycle_mean(&m).expect("graph has a cycle");
/// assert_eq!(result.mean, Ratio::from_int(2));
/// assert_eq!(result.len(), 2);
/// ```
pub fn karp_max_cycle_mean(m: &SquareMatrix<Ext<Ratio>>) -> Option<CycleMean> {
    let n = m.n();
    if n == 0 {
        return None;
    }
    for (i, j, &w) in m.iter() {
        assert!(
            w != Ext::PosInf,
            "karp_max_cycle_mean: infinite edge {i}->{j}; resolve infinities first"
        );
    }

    // Dense edge list (absent edges skipped once, not per round).
    let edges: Vec<(usize, usize, Ratio)> = m
        .iter()
        .filter_map(|(i, j, &w)| w.finite().map(|w| (i, j, w)))
        .collect();
    if edges.is_empty() {
        return None;
    }

    // d[k][v] = max weight of a k-edge walk ending at v; parent[k][v] is the
    // predecessor realizing it.
    let mut d: Vec<Vec<Ext<Ratio>>> = Vec::with_capacity(n + 1);
    let mut parent: Vec<Vec<usize>> = Vec::with_capacity(n + 1);
    d.push(vec![Ext::Finite(Ratio::ZERO); n]);
    parent.push(vec![usize::MAX; n]);
    for k in 1..=n {
        let mut row = vec![Ext::<Ratio>::NegInf; n];
        let mut par = vec![usize::MAX; n];
        for &(u, v, w) in &edges {
            if let Ext::Finite(du) = d[k - 1][u] {
                let cand = Ext::Finite(du + w);
                if cand > row[v] {
                    row[v] = cand;
                    par[v] = u;
                }
            }
        }
        d.push(row);
        parent.push(par);
    }

    // λ* = max_v min_k (D_n(v) − D_k(v)) / (n − k).
    let mut best: Option<(Ratio, usize)> = None;
    for v in 0..n {
        let dn = match d[n][v] {
            Ext::Finite(x) => x,
            _ => continue,
        };
        let mut v_min: Option<Ratio> = None;
        for (k, dk_row) in d.iter().enumerate().take(n) {
            if let Ext::Finite(dk) = dk_row[v] {
                let mean = (dn - dk) * Ratio::new(1, (n - k) as i128);
                v_min = Some(match v_min {
                    Some(cur) => cur.min(mean),
                    None => mean,
                });
            }
        }
        if let Some(vm) = v_min {
            match best {
                Some((b, _)) if b >= vm => {}
                _ => best = Some((vm, v)),
            }
        }
    }
    let (lambda, v_star) = best?;

    // Witness extraction: walk n parent steps back from v*; every cycle on a
    // maximal n-walk has mean ≤ λ*, and at least one achieves it.
    let mut walk = Vec::with_capacity(n + 1);
    let mut v = v_star;
    for k in (0..=n).rev() {
        walk.push(v);
        if k > 0 {
            v = parent[k][v];
        }
    }
    walk.reverse(); // now walk[0] -> walk[1] -> ... -> walk[n] = v*

    let cycle = extract_best_cycle(&walk, m, lambda);
    Some(CycleMean {
        mean: lambda,
        cycle,
    })
}

/// Returns a repeated-vertex segment of `walk` (as a cycle) whose mean
/// equals `lambda`.
fn extract_best_cycle(walk: &[usize], m: &SquareMatrix<Ext<Ratio>>, lambda: Ratio) -> Vec<usize> {
    extract_cycle_prefix_scan(
        walk,
        Ratio::ZERO,
        |a, b| m[(a, b)].finite().expect("walk follows existing edges"),
        |sum, len| sum == lambda * Ratio::from_int(len as i128),
        |s1, l1, s2, l2| {
            // s1/l1 vs s2/l2 with positive lengths: cross-multiply.
            (s1 * Ratio::from_int(l2 as i128)).cmp(&(s2 * Ratio::from_int(l1 as i128)))
        },
    )
}

/// The witness-extraction core shared by the rational and `i64` Karp
/// kernels.
///
/// Prefix sums over the walk make each candidate segment `O(1)`: when
/// `walk[i] == walk[j]`, the segment `walk[i..j]` is a cycle — its closing
/// edge `walk[j-1] → walk[j] = walk[i]` is itself a walk edge — with total
/// weight `prefix[j] − prefix[i]`. Scanning end positions in order and
/// keeping every earlier occurrence of each vertex visits `O(n²)`
/// candidates worst case (`O(n)` when the first repeat already achieves
/// the target mean, the common case) instead of re-summing each segment
/// from scratch, which made the old extraction `O(n³)` `Ratio` work.
///
/// Returns the first segment whose `(sum, len)` satisfies `is_lambda`,
/// falling back to the best segment under `cmp` (fraction comparison of
/// `(sum, len)` pairs); by Karp's theorem a maximal walk carries a cycle of
/// mean `λ*`, so the fallback also certifies when `is_lambda` tests `λ*`.
pub(crate) fn extract_cycle_prefix_scan<S>(
    walk: &[usize],
    zero: S,
    mut edge_weight: impl FnMut(usize, usize) -> S,
    is_lambda: impl Fn(S, usize) -> bool,
    cmp: impl Fn(S, usize, S, usize) -> std::cmp::Ordering,
) -> Vec<usize>
where
    S: Copy + std::ops::Add<Output = S> + std::ops::Sub<Output = S>,
{
    // prefix[t] = total weight of the first t edges of the walk.
    let mut prefix = Vec::with_capacity(walk.len());
    prefix.push(zero);
    for t in 1..walk.len() {
        let w = edge_weight(walk[t - 1], walk[t]);
        prefix.push(prefix[t - 1] + w);
    }

    let nodes = walk.iter().copied().max().map_or(0, |v| v + 1);
    let mut occurrences: Vec<Vec<usize>> = vec![Vec::new(); nodes];
    let mut best_cycle: Option<(S, usize, usize)> = None;
    for (j, &v) in walk.iter().enumerate() {
        for &i in &occurrences[v] {
            let (sum, len) = (prefix[j] - prefix[i], j - i);
            if is_lambda(sum, len) {
                return walk[i..j].to_vec();
            }
            match best_cycle {
                Some((bs, bi, bj)) if cmp(bs, bj - bi, sum, len).is_ge() => {}
                _ => best_cycle = Some((sum, i, j)),
            }
        }
        occurrences[v].push(j);
    }
    // Fall back to the best cycle found.
    let (_, i, j) = best_cycle.expect("an n-edge walk over n nodes must repeat a vertex");
    walk[i..j].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(n: usize, edges: &[(usize, usize, i128)]) -> SquareMatrix<Ext<Ratio>> {
        let mut m = SquareMatrix::filled(n, Ext::NegInf);
        for &(a, b, w) in edges {
            m[(a, b)] = Ext::Finite(Ratio::from_int(w));
        }
        m
    }

    fn cycle_mean_of(m: &SquareMatrix<Ext<Ratio>>, cycle: &[usize]) -> Ratio {
        let mut total = Ratio::ZERO;
        for t in 0..cycle.len() {
            let from = cycle[t];
            let to = cycle[(t + 1) % cycle.len()];
            total += m[(from, to)].finite().unwrap();
        }
        total * Ratio::new(1, cycle.len() as i128)
    }

    #[test]
    fn two_cycle() {
        let m = matrix(2, &[(0, 1, 3), (1, 0, 1)]);
        let r = karp_max_cycle_mean(&m).unwrap();
        assert_eq!(r.mean, Ratio::from_int(2));
        assert_eq!(cycle_mean_of(&m, &r.cycle), r.mean);
    }

    #[test]
    fn picks_heavier_of_two_cycles() {
        // Cycle A: 0-1 mean 2; cycle B: 2-3 mean 5.
        let m = matrix(4, &[(0, 1, 2), (1, 0, 2), (2, 3, 4), (3, 2, 6)]);
        let r = karp_max_cycle_mean(&m).unwrap();
        assert_eq!(r.mean, Ratio::from_int(5));
        assert_eq!(cycle_mean_of(&m, &r.cycle), r.mean);
    }

    #[test]
    fn fractional_mean() {
        // Triangle with weights 1, 2, 4: mean 7/3.
        let m = matrix(3, &[(0, 1, 1), (1, 2, 2), (2, 0, 4)]);
        let r = karp_max_cycle_mean(&m).unwrap();
        assert_eq!(r.mean, Ratio::new(7, 3));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn short_heavy_cycle_beats_long_light_one() {
        // Triangle mean 1; embedded 2-cycle mean 3.
        let m = matrix(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (1, 0, 5)]);
        let r = karp_max_cycle_mean(&m).unwrap();
        assert_eq!(r.mean, Ratio::from_int(3));
        assert_eq!(cycle_mean_of(&m, &r.cycle), r.mean);
    }

    #[test]
    fn self_loop_counts_as_cycle() {
        let m = matrix(2, &[(0, 0, 7), (0, 1, 100)]);
        let r = karp_max_cycle_mean(&m).unwrap();
        assert_eq!(r.mean, Ratio::from_int(7));
        assert_eq!(r.cycle, vec![0]);
    }

    #[test]
    fn acyclic_graph_has_no_cycle_mean() {
        let m = matrix(3, &[(0, 1, 5), (1, 2, 5), (0, 2, 9)]);
        assert!(karp_max_cycle_mean(&m).is_none());
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        assert!(karp_max_cycle_mean(&matrix(0, &[])).is_none());
        assert!(karp_max_cycle_mean(&matrix(3, &[])).is_none());
    }

    #[test]
    fn negative_cycle_means_are_found() {
        let m = matrix(2, &[(0, 1, -3), (1, 0, -1)]);
        let r = karp_max_cycle_mean(&m).unwrap();
        assert_eq!(r.mean, Ratio::from_int(-2));
    }

    #[test]
    #[should_panic(expected = "infinite edge")]
    fn infinite_edge_panics() {
        let mut m = matrix(2, &[(0, 1, 1), (1, 0, 1)]);
        m[(0, 1)] = Ext::PosInf;
        let _ = karp_max_cycle_mean(&m);
    }

    #[test]
    fn disconnected_components() {
        // One component acyclic, the other with a cycle.
        let m = matrix(5, &[(0, 1, 9), (2, 3, 1), (3, 4, 1), (4, 2, 4)]);
        let r = karp_max_cycle_mean(&m).unwrap();
        assert_eq!(r.mean, Ratio::from_int(2));
        assert_eq!(r.len(), 3);
    }
}
