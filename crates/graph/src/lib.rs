//! Graph algorithms for the `clocksync` workspace.
//!
//! The synchronization pipeline of Attiya–Herzberg–Rajsbaum (PODC 1993) is,
//! computationally, three graph problems:
//!
//! 1. **GLOBAL ESTIMATES** (paper §5.3): all-pairs shortest paths over the
//!    per-link local-shift estimates — [`floyd_warshall`].
//! 2. **`A_max`** (paper §4.3–4.4): the maximum cycle mean of the resulting
//!    metric closure — [`karp_max_cycle_mean`] (Karp 1978, `O(n·m)`).
//! 3. **SHIFTS** (paper §4.4): single-source shortest paths under weights
//!    `w(p,q) = A_max − m̃s(p,q)`, which may be negative but contain no
//!    negative cycle — [`bellman_ford`].
//!
//! Weights are generic over the [`Weight`] trait; the workspace instantiates
//! it with [`clocksync_time::ExtRatio`] so every computation is exact.
//! Brute-force oracles used by the test suites and benches live in
//! [`brute`].
//!
//! For the GLOBAL ESTIMATES hot path there is a performance layer on top of
//! the generic kernels: [`fast_closure`] scales rational matrices to plain
//! `i64` and runs the parallel [`blocked_floyd_warshall_i64`] kernel
//! (falling back to the generic one when exact scaling is impossible), and
//! [`Closure`] caches a computed closure so single-edge tightenings can be
//! absorbed in `O(n²)` via [`Closure::relax_edge`] instead of a full
//! `O(n³)` recompute. The `A_max` stage has the same two-tier design:
//! [`fast_max_cycle_mean`] rescales to the `i64` Karp kernel
//! ([`karp_max_cycle_mean_i64`]) with exact fallback, and [`howard_solve`]
//! runs policy iteration with a witness cycle and a warm-startable policy.
//!
//! # Examples
//!
//! ```
//! use clocksync_graph::{DiGraph, bellman_ford};
//! use clocksync_time::{Ext, Ratio};
//!
//! let mut g = DiGraph::new(3);
//! g.add_edge(0, 1, Ext::Finite(Ratio::from_int(2)));
//! g.add_edge(1, 2, Ext::Finite(Ratio::from_int(-1)));
//! let dist = bellman_ford(&g, 0).expect("no negative cycle");
//! assert_eq!(dist[2], Ext::Finite(Ratio::from_int(1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bellman_ford;
mod blocked;
pub mod brute;
mod closure;
mod digraph;
mod floyd_warshall;
mod howard;
mod karp;
mod matrix;
mod scaled_karp;
mod sparse;
mod weight;

pub use bellman_ford::{bellman_ford, NegativeCycleError};
pub use blocked::{blocked_floyd_warshall_i64, UNREACHABLE};
pub use closure::{
    dispatch_closure_i64, fast_closure, plan_closure_kernel, scaled_weights, try_scaled_closure,
    try_scaled_closure_explained, Closure, ClosureKernel, ClosureResult, RelaxOutcome,
    ScaleBailout, SPARSE_MAX_DENSITY, SPARSE_MIN_N,
};
pub use digraph::{DiGraph, Edge};
pub use floyd_warshall::{floyd_warshall, floyd_warshall_with_paths, reconstruct_path};
pub use howard::{howard_max_cycle_mean, howard_solve, HowardSolution};
pub use karp::{karp_max_cycle_mean, CycleMean};
pub use matrix::SquareMatrix;
pub use scaled_karp::{
    fast_max_cycle_mean, karp_max_cycle_mean_i64, try_scaled_karp, CycleMeanI64, NO_EDGE,
};
pub use sparse::{
    derive_successors_i64, hierarchical_closure_i64, hierarchical_closure_i64_with_partition,
    sparse_closure_i64, weak_components_i64, CsrGraph, SparseClosure,
};
pub use weight::Weight;
