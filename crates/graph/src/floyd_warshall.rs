//! All-pairs shortest paths (Floyd–Warshall) producing the metric closure.

use crate::{NegativeCycleError, SquareMatrix, Weight};

/// Computes the all-pairs shortest-path closure of a dense weight matrix.
///
/// Input conventions (as produced by [`crate::DiGraph::to_matrix`]): the
/// diagonal holds `W::zero()` and absent edges hold `W::infinity()`. The
/// output `d[(i,j)]` is the weight of the shortest `i → j` path (`zero` on
/// the diagonal, `infinity` when unreachable). Runs in `O(n³)`.
///
/// This is the paper's **GLOBAL ESTIMATES** step (§5.3): maximal global
/// shift estimates are the shortest-path closure of the per-link local
/// estimates, and the closure satisfies the triangle inequality by
/// construction.
///
/// # Errors
///
/// Returns [`NegativeCycleError`] if the graph contains a negative-weight
/// cycle (detected as a negative diagonal entry).
///
/// # Examples
///
/// ```
/// use clocksync_graph::{DiGraph, floyd_warshall};
/// use clocksync_time::Ext;
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1, Ext::Finite(1i64));
/// g.add_edge(1, 2, Ext::Finite(2));
/// let d = floyd_warshall(&g.to_matrix())?;
/// assert_eq!(d[(0, 2)], Ext::Finite(3));
/// assert_eq!(d[(2, 0)], Ext::PosInf);
/// # Ok::<(), clocksync_graph::NegativeCycleError>(())
/// ```
pub fn floyd_warshall<W: Weight>(
    m: &SquareMatrix<W>,
) -> Result<SquareMatrix<W>, NegativeCycleError> {
    floyd_warshall_with_paths(m).map(|(d, _)| d)
}

/// Like [`floyd_warshall`], additionally returning a successor matrix for
/// path reconstruction: `next[(i, j)]` is the node after `i` on a shortest
/// `i → j` path (`usize::MAX` when unreachable or `i == j`). Use
/// [`reconstruct_path`] to expand it.
///
/// The synchronizer uses this to *explain* a pair's bound: the
/// reconstructed path is the chain of link constraints whose composition
/// limits how far the pair's clocks can drift apart.
///
/// # Errors
///
/// Returns [`NegativeCycleError`] if the graph contains a negative-weight
/// cycle.
pub fn floyd_warshall_with_paths<W: Weight>(
    m: &SquareMatrix<W>,
) -> Result<(SquareMatrix<W>, SquareMatrix<usize>), NegativeCycleError> {
    let n = m.n();
    let mut d = m.clone();
    let mut next = SquareMatrix::from_fn(n, |i, j| {
        if i != j && m[(i, j)].is_reachable() {
            j
        } else {
            usize::MAX
        }
    });
    // Normalize the diagonal: a path of length zero always exists.
    for i in 0..n {
        if W::zero() < d[(i, i)] {
            d[(i, i)] = W::zero();
        }
    }
    for k in 0..n {
        for i in 0..n {
            if !d[(i, k)].is_reachable() {
                continue;
            }
            for j in 0..n {
                if !d[(k, j)].is_reachable() {
                    continue;
                }
                let via = d[(i, k)] + d[(k, j)];
                if via < d[(i, j)] {
                    d[(i, j)] = via;
                    next[(i, j)] = next[(i, k)];
                }
            }
        }
    }
    for i in 0..n {
        if d[(i, i)] < W::zero() {
            return Err(NegativeCycleError { witness: i });
        }
    }
    Ok((d, next))
}

/// Expands a successor matrix into the node sequence of a shortest
/// `from → to` path (inclusive of both endpoints). Returns `None` when
/// `to` is unreachable from `from`; `Some(vec![from])` when `from == to`.
pub fn reconstruct_path(next: &SquareMatrix<usize>, from: usize, to: usize) -> Option<Vec<usize>> {
    if from == to {
        return Some(vec![from]);
    }
    if next[(from, to)] == usize::MAX {
        return None;
    }
    let mut path = vec![from];
    let mut cur = from;
    while cur != to {
        cur = next[(cur, to)];
        path.push(cur);
        assert!(
            path.len() <= next.n(),
            "successor matrix contains a routing loop"
        );
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiGraph;
    use clocksync_time::Ext;

    fn w(x: i64) -> Ext<i64> {
        Ext::Finite(x)
    }

    fn graph(n: usize, edges: &[(usize, usize, i64)]) -> SquareMatrix<Ext<i64>> {
        let mut g = DiGraph::new(n);
        for &(a, b, c) in edges {
            g.add_edge(a, b, w(c));
        }
        g.to_matrix()
    }

    #[test]
    fn closure_of_a_path() {
        let d = floyd_warshall(&graph(3, &[(0, 1, 1), (1, 2, 2)])).unwrap();
        assert_eq!(d[(0, 2)], w(3));
        assert_eq!(d[(0, 1)], w(1));
        assert_eq!(d[(1, 0)], Ext::PosInf);
        assert_eq!(d[(0, 0)], w(0));
    }

    #[test]
    fn picks_cheaper_indirect_route() {
        let d = floyd_warshall(&graph(3, &[(0, 2, 10), (0, 1, 2), (1, 2, 3)])).unwrap();
        assert_eq!(d[(0, 2)], w(5));
    }

    #[test]
    fn handles_negative_edges() {
        let d = floyd_warshall(&graph(3, &[(0, 1, 5), (1, 2, -4), (0, 2, 2)])).unwrap();
        assert_eq!(d[(0, 2)], w(1));
    }

    #[test]
    fn detects_negative_cycle() {
        let err = floyd_warshall(&graph(2, &[(0, 1, 1), (1, 0, -2)])).unwrap_err();
        let _ = err.witness;
    }

    #[test]
    fn zero_cycle_is_not_negative() {
        let d = floyd_warshall(&graph(2, &[(0, 1, 3), (1, 0, -3)])).unwrap();
        assert_eq!(d[(0, 0)], w(0));
        assert_eq!(d[(0, 1)], w(3));
    }

    #[test]
    fn triangle_inequality_holds_on_closure() {
        let d = floyd_warshall(&graph(
            4,
            &[(0, 1, 2), (1, 2, 2), (2, 3, 2), (3, 0, 2), (0, 2, 7)],
        ))
        .unwrap();
        let n = d.n();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    if d[(i, k)].is_reachable() && d[(k, j)].is_reachable() {
                        assert!(d[(i, j)] <= d[(i, k)] + d[(k, j)]);
                    }
                }
            }
        }
    }

    #[test]
    fn empty_matrix() {
        let m: SquareMatrix<Ext<i64>> = SquareMatrix::filled(0, Ext::PosInf);
        assert!(floyd_warshall(&m).is_ok());
    }

    #[test]
    fn path_reconstruction_follows_shortest_routes() {
        let (d, next) =
            floyd_warshall_with_paths(&graph(4, &[(0, 1, 2), (1, 2, 2), (0, 2, 10), (2, 3, 1)]))
                .unwrap();
        assert_eq!(d[(0, 3)], w(5));
        assert_eq!(reconstruct_path(&next, 0, 3), Some(vec![0, 1, 2, 3]));
        assert_eq!(reconstruct_path(&next, 0, 0), Some(vec![0]));
        assert_eq!(reconstruct_path(&next, 3, 0), None);
        // Direct edge wins when it is cheapest.
        let (_, next2) =
            floyd_warshall_with_paths(&graph(3, &[(0, 1, 1), (1, 2, 5), (0, 2, 2)])).unwrap();
        assert_eq!(reconstruct_path(&next2, 0, 2), Some(vec![0, 2]));
    }

    #[test]
    fn reconstructed_path_weight_matches_distance() {
        let m = graph(
            5,
            &[
                (0, 1, 3),
                (1, 2, 4),
                (2, 3, 1),
                (3, 4, 2),
                (0, 2, 9),
                (1, 4, 20),
            ],
        );
        let (d, next) = floyd_warshall_with_paths(&m).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                if let Some(path) = reconstruct_path(&next, i, j) {
                    let mut total = w(0);
                    for pair in path.windows(2) {
                        total = total + m[(pair[0], pair[1])];
                    }
                    assert_eq!(total, d[(i, j)], "path {path:?}");
                } else {
                    assert_eq!(d[(i, j)], Ext::PosInf);
                }
            }
        }
    }
}
