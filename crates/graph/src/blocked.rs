//! A parallel, flat-`i64` Floyd–Warshall kernel for the GLOBAL ESTIMATES
//! hot path.
//!
//! The generic [`crate::floyd_warshall_with_paths`] kernel pays for exact
//! arithmetic on every relaxation: an [`clocksync_time::Ratio`] addition
//! costs a gcd plus several checked `i128` multiplications, and the
//! `Ext<…>` wrapper adds a branch per operation. This module is the fast
//! path behind [`crate::fast_closure`]: weights are pre-scaled to plain
//! `i64` (possible whenever the matrix has a common denominator of
//! reasonable size — always the case for estimate matrices derived from
//! integer-nanosecond observations), "unreachable" is the sentinel
//! [`UNREACHABLE`], and each `k`-round relaxes the `(i, j)` plane as
//! independent row blocks in parallel via rayon.
//!
//! # Scheduling and exact equivalence
//!
//! The schedule is deliberately **level-synchronous**: `k` advances one
//! level at a time, with row `k` snapshotted before the row blocks run.
//! Classic three-phase tiled Floyd–Warshall also blocks the `k` dimension,
//! which changes *when* (at which `k`-level) a given improvement is first
//! seen; distances come out the same, but the successor matrix can then
//! differ from the reference kernel's on equal-weight ties. Keeping `k`
//! level-synchronous makes every relaxation here fire at exactly the same
//! `(k, i, j)` as in [`crate::floyd_warshall_with_paths`], so on inputs
//! without a negative cycle the kernel is **bit-identical** to the generic
//! reference in both the distance and the successor matrix (the property
//! suite in `tests/closure_equivalence.rs` checks this on thousands of
//! random graphs). On negative-cycle inputs both kernels report an error,
//! though possibly with different witness vertices.
//!
//! Within a level, rows are independent: relaxing row `i` reads only row
//! `i` itself and the row-`k` snapshot (`d[i][k]` lives in row `i`), so
//! the row blocks can run on separate threads without locks or `unsafe`
//! (this crate is `#![forbid(unsafe_code)]`).

use rayon::prelude::*;

use crate::{NegativeCycleError, SquareMatrix};

/// The sentinel distance meaning "no path". Chosen so that
/// `UNREACHABLE + |any admissible finite value|` cannot overflow and any
/// partially-poisoned sum still compares above every finite distance;
/// [`crate::fast_closure`] rejects inputs whose scaled magnitudes could
/// get anywhere near it.
pub const UNREACHABLE: i64 = i64::MAX / 4;

/// Below this dimension the kernels stay on the calling thread: an
/// `n³` of ~2M relaxations runs in about a millisecond, which per-level
/// fork/join overhead would only dilute. Shared with the sparse backends,
/// whose per-source fan-out has the same overhead profile.
pub(crate) const PAR_THRESHOLD: usize = 192;

/// One working row: distances and successors, both contiguous.
struct Row {
    dist: Vec<i64>,
    next: Vec<usize>,
}

/// Applies one `k`-level of relaxations to a single row.
///
/// `row_k` is the snapshot of distance row `k` taken at the start of the
/// level. Mirrors the generic kernel exactly: skip when `d[i][k]` is
/// unreachable, skip unreachable `d[k][j]`, strict `<` improvement,
/// successor inherited from `next[i][k]`.
fn relax_row(row: &mut Row, k: usize, row_k: &[i64]) {
    let n = row_k.len();
    let dist = &mut row.dist[..n];
    let next = &mut row.next[..n];
    let dik = dist[k];
    if dik == UNREACHABLE {
        return;
    }
    let nik = next[k];
    for j in 0..n {
        let dkj = row_k[j];
        if dkj == UNREACHABLE {
            continue;
        }
        let via = dik + dkj;
        if via < dist[j] {
            dist[j] = via;
            next[j] = nik;
        }
    }
}

/// All-pairs shortest paths over sentinel-encoded `i64` weights, with the
/// same conventions as [`crate::floyd_warshall_with_paths`]: the output is
/// `(dist, next)` where `next[(i, j)]` is the node after `i` on a shortest
/// `i → j` path and `usize::MAX` means unreachable (or `i == j`). The
/// diagonal is normalized to `min(0, input)` before the main loop.
///
/// Callers must keep finite weight magnitudes far below [`UNREACHABLE`]
/// (specifically `|w| · n` must not approach it); [`crate::fast_closure`]
/// enforces this when it scales rational matrices down to this kernel.
///
/// # Errors
///
/// Returns [`NegativeCycleError`] when the graph contains a negative
/// cycle, detected as a negative diagonal entry after the run.
///
/// # Examples
///
/// ```
/// use clocksync_graph::{blocked_floyd_warshall_i64, SquareMatrix, UNREACHABLE};
///
/// let mut w = SquareMatrix::filled(3, UNREACHABLE);
/// for i in 0..3 { w[(i, i)] = 0; }
/// w[(0, 1)] = 4;
/// w[(1, 2)] = -1;
/// let (dist, next) = blocked_floyd_warshall_i64(&w)?;
/// assert_eq!(dist[(0, 2)], 3);
/// assert_eq!(next[(0, 2)], 1);
/// assert_eq!(dist[(2, 0)], UNREACHABLE);
/// # Ok::<(), clocksync_graph::NegativeCycleError>(())
/// ```
pub fn blocked_floyd_warshall_i64(
    weights: &SquareMatrix<i64>,
) -> Result<(SquareMatrix<i64>, SquareMatrix<usize>), NegativeCycleError> {
    let n = weights.n();
    let mut rows: Vec<Row> = (0..n)
        .map(|i| {
            let dist = weights.row(i).to_vec();
            let next = (0..n)
                .map(|j| {
                    if i != j && dist[j] != UNREACHABLE {
                        j
                    } else {
                        usize::MAX
                    }
                })
                .collect();
            Row { dist, next }
        })
        .collect();
    // A zero-length path always exists.
    for (i, row) in rows.iter_mut().enumerate() {
        if row.dist[i] > 0 {
            row.dist[i] = 0;
        }
    }

    let threads = rayon::current_num_threads();
    let parallel = n >= PAR_THRESHOLD && threads > 1;
    let block = if parallel { n.div_ceil(threads) } else { n };
    let mut row_k = vec![0i64; n];
    for k in 0..n {
        row_k.copy_from_slice(&rows[k].dist);
        if parallel {
            let snapshot = &row_k;
            rows.par_chunks_mut(block)
                .for_each(|rows_block: &mut [Row]| {
                    for row in rows_block {
                        relax_row(row, k, snapshot);
                    }
                });
        } else {
            for row in rows.iter_mut() {
                relax_row(row, k, &row_k);
            }
        }
    }

    for (i, row) in rows.iter().enumerate() {
        if row.dist[i] < 0 {
            return Err(NegativeCycleError { witness: i });
        }
    }

    let mut dist = Vec::with_capacity(n * n);
    let mut next = Vec::with_capacity(n * n);
    for row in rows {
        dist.extend_from_slice(&row.dist);
        next.extend_from_slice(&row.next);
    }
    Ok((
        SquareMatrix::from_vec(n, dist),
        SquareMatrix::from_vec(n, next),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{floyd_warshall_with_paths, reconstruct_path};
    use clocksync_time::Ext;

    fn sentinel_matrix(n: usize, edges: &[(usize, usize, i64)]) -> SquareMatrix<i64> {
        let mut m = SquareMatrix::filled(n, UNREACHABLE);
        for i in 0..n {
            m[(i, i)] = 0;
        }
        for &(a, b, w) in edges {
            m[(a, b)] = w;
        }
        m
    }

    fn ext_matrix(m: &SquareMatrix<i64>) -> SquareMatrix<Ext<i64>> {
        SquareMatrix::from_fn(m.n(), |i, j| {
            let v = m[(i, j)];
            if v == UNREACHABLE {
                Ext::PosInf
            } else {
                Ext::Finite(v)
            }
        })
    }

    fn assert_matches_generic(m: &SquareMatrix<i64>) {
        let blocked = blocked_floyd_warshall_i64(m);
        let generic = floyd_warshall_with_paths(&ext_matrix(m));
        match (blocked, generic) {
            (Ok((d, next)), Ok((gd, gnext))) => {
                for (i, j, &v) in d.iter() {
                    let expected = match gd[(i, j)] {
                        Ext::Finite(x) => x,
                        Ext::PosInf => UNREACHABLE,
                        Ext::NegInf => panic!("generic produced -inf"),
                    };
                    assert_eq!(v, expected, "dist mismatch at ({i},{j})");
                }
                assert_eq!(next, gnext, "successor mismatch");
            }
            (Err(_), Err(_)) => {}
            (b, g) => panic!("outcome mismatch: blocked {b:?} vs generic {g:?}"),
        }
    }

    #[test]
    fn matches_generic_on_small_graphs() {
        assert_matches_generic(&sentinel_matrix(3, &[(0, 1, 1), (1, 2, 2)]));
        assert_matches_generic(&sentinel_matrix(3, &[(0, 2, 10), (0, 1, 2), (1, 2, 3)]));
        assert_matches_generic(&sentinel_matrix(3, &[(0, 1, 5), (1, 2, -4), (0, 2, 2)]));
        assert_matches_generic(&sentinel_matrix(2, &[(0, 1, 3), (1, 0, -3)]));
        assert_matches_generic(&sentinel_matrix(0, &[]));
        assert_matches_generic(&sentinel_matrix(1, &[]));
    }

    #[test]
    fn detects_negative_cycles() {
        let m = sentinel_matrix(2, &[(0, 1, 1), (1, 0, -2)]);
        assert!(blocked_floyd_warshall_i64(&m).is_err());
    }

    #[test]
    fn successors_reconstruct_shortest_paths() {
        let m = sentinel_matrix(
            5,
            &[
                (0, 1, 3),
                (1, 2, 4),
                (2, 3, 1),
                (3, 4, 2),
                (0, 2, 9),
                (1, 4, 20),
            ],
        );
        let (d, next) = blocked_floyd_warshall_i64(&m).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                if let Some(path) = reconstruct_path(&next, i, j) {
                    let mut total = 0i64;
                    for pair in path.windows(2) {
                        total += m[(pair[0], pair[1])];
                    }
                    assert_eq!(total, d[(i, j)], "path {path:?}");
                } else {
                    assert_eq!(d[(i, j)], UNREACHABLE);
                }
            }
        }
    }

    #[test]
    fn parallel_path_agrees_with_sequential() {
        // Big enough to cross PAR_THRESHOLD; ring plus deterministic chords.
        let n = PAR_THRESHOLD + 8;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, (i + 1) % n, 1 + (i as i64 % 7)));
        }
        for i in (0..n).step_by(3) {
            edges.push((i, (i * 5 + 2) % n, 2 + (i as i64 % 11)));
        }
        let m = sentinel_matrix(n, &edges);
        assert_matches_generic(&m);
    }

    #[test]
    fn positive_diagonal_is_normalized() {
        let mut m = sentinel_matrix(2, &[(0, 1, 5)]);
        m[(1, 1)] = 17;
        let (d, _) = blocked_floyd_warshall_i64(&m).unwrap();
        assert_eq!(d[(1, 1)], 0);
    }
}
