//! Property equivalence of the closure fast paths against the generic
//! reference kernel — the correctness contract of the perf layer:
//!
//! * [`blocked_floyd_warshall_i64`] must be **bit-identical** to
//!   [`floyd_warshall_with_paths`] (distances *and* successors) on every
//!   graph without a negative cycle, and must agree error-for-error on
//!   graphs with one.
//! * [`fast_closure`]'s scaling front-end must preserve that identity
//!   through rational weights of mixed denominators.
//! * [`Closure::relax_edge`] must leave the cache equal (in distance) to a
//!   full recompute after any sequence of edge decreases, with a successor
//!   matrix that still reconstructs genuine shortest paths.
//!
//! Each suite runs 1000 random cases.

use clocksync_graph::{
    blocked_floyd_warshall_i64, fast_closure, floyd_warshall_with_paths, reconstruct_path,
    try_scaled_closure, Closure, SquareMatrix, Weight, UNREACHABLE,
};
use clocksync_time::{Ext, Ratio};
use proptest::prelude::*;

type W = Ext<Ratio>;

/// A random sentinel-`i64` digraph: `n ≤ 12`, each off-diagonal pair
/// absent or weighted in `[-20, 20]` (negative cycles included on
/// purpose), diagonal occasionally positive to exercise normalization.
fn sentinel_graph() -> impl Strategy<Value = SquareMatrix<i64>> {
    (1usize..=12).prop_flat_map(|n| {
        proptest::collection::vec(
            prop_oneof![
                2 => Just(UNREACHABLE),
                5 => -20i64..=20,
            ],
            n * n,
        )
        .prop_map(move |cells| {
            let mut k = 0;
            SquareMatrix::from_fn(n, |i, j| {
                let v = cells[k];
                k += 1;
                if i == j && v != UNREACHABLE {
                    // Mostly zero diagonals, sometimes positive (the kernel
                    // must normalize), never negative (that is just a
                    // trivial negative cycle, covered by off-diagonal ones).
                    v.rem_euclid(3)
                } else {
                    v
                }
            })
        })
    })
}

/// A random rational digraph with denominators in `{1, 2, 4}` — always
/// scalable, so [`fast_closure`] takes the `i64` kernel.
fn rational_graph() -> impl Strategy<Value = SquareMatrix<W>> {
    (1usize..=10).prop_flat_map(|n| {
        proptest::collection::vec(
            prop_oneof![
                2 => Just(Ext::PosInf),
                5 => (-40i128..=40, 0usize..=2).prop_map(|(num, d)| {
                    Ext::Finite(Ratio::new(num, 1 << d))
                }),
            ],
            n * n,
        )
        .prop_map(move |cells| {
            let mut k = 0;
            SquareMatrix::from_fn(n, |i, j| {
                let v = cells[k];
                k += 1;
                if i == j {
                    <W as Weight>::zero()
                } else {
                    v
                }
            })
        })
    })
}

/// A rational digraph guaranteed free of negative cycles (nonnegative
/// weights), plus a sequence of candidate edge updates to relax in.
fn closure_with_updates() -> impl Strategy<Value = (SquareMatrix<W>, Vec<(usize, usize, i128)>)> {
    (2usize..=8).prop_flat_map(|n| {
        let matrix = proptest::collection::vec(
            prop_oneof![
                2 => Just(Ext::PosInf),
                5 => (0i128..=40).prop_map(|w| Ext::Finite(Ratio::from_int(w))),
            ],
            n * n,
        )
        .prop_map(move |cells| {
            let mut k = 0;
            SquareMatrix::from_fn(n, |i, j| {
                let v = cells[k];
                k += 1;
                if i == j {
                    <W as Weight>::zero()
                } else {
                    v
                }
            })
        });
        // Raw endpoints are reduced mod n; weights may go negative, so some
        // sequences close negative cycles — both kernels must agree then.
        let updates = proptest::collection::vec((0usize..1000, 0usize..1000, -10i128..=40), 1..=5);
        (matrix, updates)
    })
}

fn ext_of(m: &SquareMatrix<i64>) -> SquareMatrix<Ext<i64>> {
    SquareMatrix::from_fn(m.n(), |i, j| {
        let v = m[(i, j)];
        if v == UNREACHABLE {
            Ext::PosInf
        } else {
            Ext::Finite(v)
        }
    })
}

/// Asserts that `next` reconstructs, for every pair, a real path in `m`
/// whose total weight is exactly `dist[(i, j)]` — or that the pair is
/// genuinely unreachable.
fn assert_successors_valid(
    m: &SquareMatrix<W>,
    dist: &SquareMatrix<W>,
    next: &SquareMatrix<usize>,
) -> Result<(), TestCaseError> {
    let n = m.n();
    for i in 0..n {
        for j in 0..n {
            match reconstruct_path(next, i, j) {
                Some(path) => {
                    prop_assert_eq!(path[0], i);
                    prop_assert_eq!(*path.last().unwrap(), j);
                    let mut total = <W as Weight>::zero();
                    for pair in path.windows(2) {
                        let w = m[(pair[0], pair[1])];
                        prop_assert!(w.is_reachable(), "path uses absent edge");
                        total = total + w;
                    }
                    prop_assert_eq!(total, dist[(i, j)], "path weight != dist at ({},{})", i, j);
                }
                None => prop_assert!(
                    !dist[(i, j)].is_reachable(),
                    "no path reconstructed for reachable pair ({},{})",
                    i,
                    j
                ),
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// The blocked `i64` kernel is bit-identical to the generic kernel:
    /// same distances, same successor matrix, same error outcomes.
    #[test]
    fn blocked_kernel_matches_generic(m in sentinel_graph()) {
        let blocked = blocked_floyd_warshall_i64(&m);
        let generic = floyd_warshall_with_paths(&ext_of(&m));
        match (blocked, generic) {
            (Ok((bd, bnext)), Ok((gd, gnext))) => {
                for (i, j, &v) in bd.iter() {
                    let g = match gd[(i, j)] {
                        Ext::Finite(x) => x,
                        Ext::PosInf => UNREACHABLE,
                        Ext::NegInf => unreachable!("generic never yields -inf here"),
                    };
                    prop_assert_eq!(v, g, "dist mismatch at ({},{})", i, j);
                }
                prop_assert_eq!(bnext, gnext, "successor matrices differ");
            }
            (Err(_), Err(_)) => {}
            (b, g) => prop_assert!(false, "outcome mismatch: {:?} vs {:?}", b, g),
        }
    }

    /// The scaling front-end preserves the identity through mixed
    /// denominators: `fast_closure` equals the generic kernel exactly, and
    /// these inputs really exercise the scaled path.
    #[test]
    fn fast_closure_matches_generic(m in rational_graph()) {
        prop_assert!(try_scaled_closure(&m).is_some(), "input unexpectedly unscalable");
        match (fast_closure(&m), floyd_warshall_with_paths(&m)) {
            (Ok((fd, fnext)), Ok((gd, gnext))) => {
                prop_assert_eq!(fd, gd, "distances differ");
                prop_assert_eq!(fnext, gnext, "successors differ");
            }
            (Err(_), Err(_)) => {}
            (f, g) => prop_assert!(false, "outcome mismatch: {:?} vs {:?}", f, g),
        }
    }

    /// Incremental `relax_edge` equals a full recompute after every edge
    /// decrease: identical distances, valid successors, and agreement on
    /// negative-cycle detection.
    #[test]
    fn relax_edge_matches_full_recompute((mut m, updates) in closure_with_updates()) {
        let n = m.n();
        let mut cache = Closure::new(&m).expect("nonnegative start has no negative cycle");
        for (ur, vr, wi) in updates {
            let (u, v) = (ur % n, vr % n);
            let w = Ext::Finite(Ratio::from_int(wi));
            // The graph relax_edge models: the edge lowered to min(old, w).
            let merged = if w < m[(u, v)] { w } else { m[(u, v)] };
            match cache.relax_edge(u, v, w) {
                Ok(_) => {
                    m[(u, v)] = merged;
                    let fresh = Closure::new(&m)
                        .expect("relax_edge accepted, so no negative cycle exists");
                    prop_assert_eq!(cache.dist(), fresh.dist(), "dist diverged at ({},{})", u, v);
                    assert_successors_valid(&m, cache.dist(), cache.next())?;
                }
                Err(_) => {
                    m[(u, v)] = merged;
                    // The cache is poisoned; the full kernel must confirm
                    // the negative cycle, and the protocol is to rebuild.
                    prop_assert!(
                        Closure::new(&m).is_err(),
                        "relax_edge reported a cycle the full kernel does not see"
                    );
                    return Ok(());
                }
            }
        }
    }
}
