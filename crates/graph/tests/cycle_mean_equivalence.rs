//! Property equivalence of the `A_max` fast paths against the exact
//! reference kernels — the correctness contract of the SHIFTS perf layer
//! (DESIGN.md §4c):
//!
//! * [`fast_max_cycle_mean`] (Karp over scaled `i64` weights) must be
//!   **bit-identical** to [`karp_max_cycle_mean`] — the same `λ*` *and*
//!   the same witness cycle — whenever scaling applies, and must fall back
//!   to it (hence stay identical trivially) when it does not.
//! * [`howard_solve`] must find the same `λ*`, with a witness cycle whose
//!   mean equals it exactly, from a cold start and from any warm-start
//!   policy.
//! * On small graphs, all of them must agree with the exhaustive
//!   [`brute::max_cycle_mean_brute`] oracle over simple cycles.
//!
//! Each suite runs 1000 random cases.

use clocksync_graph::{
    brute, fast_max_cycle_mean, howard_solve, karp_max_cycle_mean, try_scaled_karp, SquareMatrix,
    Weight,
};
use clocksync_time::{Ext, Ratio};
use proptest::prelude::*;

type W = Ext<Ratio>;

/// A random rational digraph: `n ≤ 7`, each edge absent (`−∞` in the
/// max-plus convention of the cycle-mean kernels) or a fraction with
/// denominator in `{1, 2, 4}` — small enough for the brute oracle, always
/// scalable, cycles not guaranteed (acyclic cases must agree too).
fn small_graph() -> impl Strategy<Value = SquareMatrix<W>> {
    (1usize..=7).prop_flat_map(|n| {
        proptest::collection::vec(
            prop_oneof![
                2 => Just(Ext::NegInf),
                5 => (-40i128..=40, 0usize..=2).prop_map(|(num, d)| {
                    Ext::Finite(Ratio::new(num, 1 << d))
                }),
            ],
            n * n,
        )
        .prop_map(move |cells| {
            let mut k = 0;
            SquareMatrix::from_fn(n, |_, _| {
                let v = cells[k];
                k += 1;
                v
            })
        })
    })
}

/// A closure-shaped matrix: all entries finite, zero diagonal — the shape
/// SHIFTS feeds the kernels. Mixed denominators exercise the scaler's
/// common-denominator search.
fn closure_shaped() -> impl Strategy<Value = SquareMatrix<W>> {
    (2usize..=7).prop_flat_map(|n| {
        proptest::collection::vec(
            (0i128..=60, 0usize..=2).prop_map(|(num, d)| Ext::Finite(Ratio::new(num, 1 << d))),
            n * n,
        )
        .prop_map(move |cells| {
            let mut k = 0;
            SquareMatrix::from_fn(n, |i, j| {
                let v = cells[k];
                k += 1;
                if i == j {
                    <W as Weight>::zero()
                } else {
                    v
                }
            })
        })
    })
}

/// A random policy vector for warm-start fuzzing: arbitrary successors,
/// deliberately not required to be valid edges (the solver must sanitize).
fn garbage_policy(max_n: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..max_n * 2 + 1, 0..=max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    #[test]
    fn scaled_karp_is_bit_identical_to_exact_karp(m in small_graph()) {
        let exact = karp_max_cycle_mean(&m);
        let fast = fast_max_cycle_mean(&m);
        // Full equality: mean AND witness cycle, not just the number.
        prop_assert_eq!(&fast, &exact);
        if let Some(inner) = try_scaled_karp(&m) {
            // When scaling applied, the i64 path itself (no fallback
            // involved) already matched.
            prop_assert_eq!(&inner, &exact);
        }
    }

    #[test]
    fn all_kernels_agree_with_the_brute_oracle(m in small_graph()) {
        let oracle = brute::max_cycle_mean_brute(&m);
        let exact = karp_max_cycle_mean(&m);
        prop_assert_eq!(exact.as_ref().map(|cm| cm.mean), oracle);
        prop_assert_eq!(fast_max_cycle_mean(&m).map(|cm| cm.mean), oracle);
        prop_assert_eq!(
            howard_solve(&m, None).map(|s| s.cycle_mean.mean),
            oracle
        );
        // Every reported witness achieves the reported mean exactly.
        if let Some(cm) = &exact {
            prop_assert_eq!(brute::cycle_mean(&m, &cm.cycle), cm.mean);
        }
        if let Some(sol) = howard_solve(&m, None) {
            prop_assert_eq!(
                brute::cycle_mean(&m, &sol.cycle_mean.cycle),
                sol.cycle_mean.mean
            );
        }
    }

    #[test]
    fn howard_warm_start_is_answer_invariant(
        m in small_graph(),
        seed in garbage_policy(7),
    ) {
        let cold = howard_solve(&m, None);
        let warm = howard_solve(&m, Some(&seed));
        prop_assert_eq!(
            cold.as_ref().map(|s| s.cycle_mean.mean),
            warm.as_ref().map(|s| s.cycle_mean.mean)
        );
        if let Some(w) = &warm {
            prop_assert_eq!(brute::cycle_mean(&m, &w.cycle_mean.cycle), w.cycle_mean.mean);
            // The converged policy is a valid live policy: re-seeding with
            // it converges immediately to the same mean.
            let reseeded = howard_solve(&m, Some(&w.policy)).expect("cycle exists");
            prop_assert_eq!(reseeded.cycle_mean.mean, w.cycle_mean.mean);
        }
    }

    #[test]
    fn closure_shaped_matrices_always_take_the_scaled_path(m in closure_shaped()) {
        // The SHIFTS input shape: finite, zero diagonal, denominators
        // powers of two. Scaling must apply, and every kernel must agree
        // bit-for-bit on λ* (the self-loop-free complete graph always has
        // a cycle, so all of them return Some).
        let inner = try_scaled_karp(&m);
        prop_assert!(inner.is_some(), "scaling unexpectedly fell back");
        let exact = karp_max_cycle_mean(&m).expect("complete graph has cycles");
        prop_assert_eq!(inner.unwrap().as_ref().map(|cm| cm.mean), Some(exact.mean));
        let howard = howard_solve(&m, None).expect("complete graph has cycles");
        prop_assert_eq!(howard.cycle_mean.mean, exact.mean);
        prop_assert_eq!(brute::cycle_mean(&m, &howard.cycle_mean.cycle), exact.mean);
    }
}
