//! Property-based cross-validation of the graph algorithms.

use clocksync_graph::brute::{cycle_mean, max_cycle_mean_brute};
use clocksync_graph::{
    bellman_ford, floyd_warshall, karp_max_cycle_mean, DiGraph, SquareMatrix, Weight,
};
use clocksync_time::{Ext, Ratio};
use proptest::prelude::*;

type W = Ext<Ratio>;

/// A random dense graph on `n ≤ 6` nodes: each ordered pair independently
/// gets an integer weight in `[-20, 20]` or no edge.
fn small_graph() -> impl Strategy<Value = SquareMatrix<W>> {
    (1usize..=6).prop_flat_map(|n| {
        proptest::collection::vec(
            prop_oneof![
                2 => Just(Ext::NegInf),
                5 => (-20i128..=20).prop_map(|w| Ext::Finite(Ratio::from_int(w))),
            ],
            n * n,
        )
        .prop_map(move |cells| {
            let mut k = 0;
            SquareMatrix::from_fn(n, |_, _| {
                let v = cells[k];
                k += 1;
                v
            })
        })
    })
}

/// The same distribution restricted to nonnegative weights (guaranteed free
/// of negative cycles), mapped into shortest-path convention
/// (absent = `PosInf`).
fn nonneg_sp_matrix() -> impl Strategy<Value = SquareMatrix<W>> {
    (1usize..=6).prop_flat_map(|n| {
        proptest::collection::vec(
            prop_oneof![
                2 => Just(Ext::PosInf),
                5 => (0i128..=20).prop_map(|w| Ext::Finite(Ratio::from_int(w))),
            ],
            n * n,
        )
        .prop_map(move |cells| {
            let mut k = 0;
            SquareMatrix::from_fn(n, |i, j| {
                let v = cells[k];
                k += 1;
                if i == j {
                    <W as Weight>::zero()
                } else {
                    v
                }
            })
        })
    })
}

proptest! {
    /// Karp's algorithm agrees with exhaustive simple-cycle enumeration.
    #[test]
    fn karp_matches_brute_force(m in small_graph()) {
        let brute = max_cycle_mean_brute(&m);
        let karp = karp_max_cycle_mean(&m);
        match (brute, karp) {
            (None, None) => {}
            (Some(b), Some(k)) => {
                prop_assert_eq!(b, k.mean);
                // The witness cycle truly achieves the reported mean.
                prop_assert_eq!(cycle_mean(&m, &k.cycle), k.mean);
            }
            (b, k) => prop_assert!(false, "brute={b:?} karp={k:?}"),
        }
    }

    /// Howard's policy iteration agrees exactly with Karp (and hence with
    /// brute force) on every random instance.
    #[test]
    fn howard_matches_karp(m in small_graph()) {
        prop_assert_eq!(
            clocksync_graph::howard_max_cycle_mean(&m),
            karp_max_cycle_mean(&m).map(|r| r.mean)
        );
    }

    /// Floyd–Warshall distances agree with per-source Bellman–Ford.
    #[test]
    fn closure_matches_bellman_ford(m in nonneg_sp_matrix()) {
        let closure = floyd_warshall(&m).expect("nonnegative weights");
        let g = DiGraph::from_matrix(&m);
        for src in 0..m.n() {
            let bf = bellman_ford(&g, src).expect("nonnegative weights");
            for dst in 0..m.n() {
                prop_assert_eq!(closure[(src, dst)], bf[dst],
                    "src={} dst={}", src, dst);
            }
        }
    }

    /// The closure satisfies the triangle inequality and has a zero diagonal
    /// for nonnegative inputs.
    #[test]
    fn closure_is_a_premetric(m in nonneg_sp_matrix()) {
        let d = floyd_warshall(&m).expect("nonnegative weights");
        let n = d.n();
        for i in 0..n {
            prop_assert_eq!(d[(i, i)], <W as Weight>::zero());
            for j in 0..n {
                for k in 0..n {
                    if d[(i, k)].is_reachable() && d[(k, j)].is_reachable() {
                        prop_assert!(d[(i, j)] <= d[(i, k)] + d[(k, j)]);
                    }
                }
            }
        }
    }

    /// Closing a closure is a no-op (idempotence).
    #[test]
    fn closure_is_idempotent(m in nonneg_sp_matrix()) {
        let once = floyd_warshall(&m).expect("nonnegative weights");
        let twice = floyd_warshall(&once).expect("closure stays consistent");
        prop_assert_eq!(once, twice);
    }

    /// Bellman–Ford distances are never improvable by one more relaxation.
    #[test]
    fn bellman_ford_is_a_fixpoint(m in nonneg_sp_matrix()) {
        let g = DiGraph::from_matrix(&m);
        let d = bellman_ford(&g, 0).expect("nonnegative weights");
        for e in g.edges() {
            if d[e.from].is_reachable() {
                prop_assert!(d[e.to] <= d[e.from] + e.weight);
            }
        }
    }
}
