//! Property equivalence of the sparse closure backends against the dense
//! blocked kernel — the correctness contract of the large-`n` perf layer:
//!
//! * [`sparse_closure_i64`] (Johnson) and [`hierarchical_closure_i64`]
//!   (per-component closures composed through boundary nodes) must produce
//!   **bit-identical distances** to [`blocked_floyd_warshall_i64`] on every
//!   graph without a negative cycle — including disconnected components,
//!   sink rows (no out-edges), and sentinel `+∞` — and must agree
//!   error-for-error on graphs with one.
//! * The hierarchical composition must hold for **arbitrary** partitions,
//!   not just the weak-component one.
//! * Successor matrices (canonical minimum-hop rule, which may break
//!   equal-weight ties differently than Floyd–Warshall) must still
//!   reconstruct genuine shortest paths of exactly the closure weight.
//! * [`SparseClosure`] must stay equal to the dense [`Closure`] cache
//!   through any interleaving of intra-block tightenings, cross-block
//!   merges, and stale loosenings.
//!
//! Each suite runs 1000 random cases.

use clocksync_graph::{
    blocked_floyd_warshall_i64, hierarchical_closure_i64, hierarchical_closure_i64_with_partition,
    reconstruct_path, sparse_closure_i64, weak_components_i64, Closure, SparseClosure,
    SquareMatrix, Weight, UNREACHABLE,
};
use clocksync_time::Ext;
use proptest::prelude::*;

/// A random *sparse* sentinel-`i64` digraph: `n ≤ 16` with an edge list of
/// roughly `O(n)` edges, so disconnected components and sink rows arise
/// constantly; weights in `[-20, 20]` (negative cycles included on
/// purpose); some nodes additionally forced into pure sinks (every
/// out-edge removed — a whole `+∞` row).
fn sparse_sentinel_graph() -> impl Strategy<Value = SquareMatrix<i64>> {
    (1usize..=16).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, -20i64..=20), 0..=2 * n);
        let sinks = proptest::collection::vec(0..n, 0..=n / 4);
        (edges, sinks).prop_map(move |(edges, sinks)| {
            let mut m = SquareMatrix::filled(n, UNREACHABLE);
            for i in 0..n {
                m[(i, i)] = 0;
            }
            for (u, v, w) in edges {
                if u != v && w < m[(u, v)] {
                    m[(u, v)] = w;
                }
            }
            for s in sinks {
                for j in 0..n {
                    if s != j {
                        m[(s, j)] = UNREACHABLE;
                    }
                }
            }
            m
        })
    })
}

/// A sparse graph plus a random partition of its nodes (cluster count and
/// assignment both arbitrary — deliberately *not* the weak components).
fn graph_with_partition() -> impl Strategy<Value = (SquareMatrix<i64>, Vec<Vec<usize>>)> {
    sparse_sentinel_graph().prop_flat_map(|m| {
        let n = m.n();
        proptest::collection::vec(0..n, n).prop_map(move |assign| {
            let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); n];
            for (node, &c) in assign.iter().enumerate() {
                clusters[c].push(node);
            }
            clusters.retain(|c| !c.is_empty());
            (m.clone(), clusters)
        })
    })
}

/// An edge sequence to relax into an initially edgeless `n`-node cache:
/// mostly non-negative (so runs usually stay cycle-free long enough to
/// exercise merges), occasionally negative (both caches must agree on the
/// resulting negative cycle), occasionally `+∞` (cross-block no-op).
fn relax_sequence() -> impl Strategy<Value = (usize, Vec<(usize, usize, Option<i64>)>)> {
    (2usize..=10).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (
                0..n,
                0..n,
                prop_oneof![
                    1 => Just(None),
                    8 => (0i64..=30).prop_map(Some),
                    2 => (-5i64..=-1).prop_map(Some),
                ],
            ),
            0..=3 * n,
        );
        (Just(n), edges)
    })
}

/// Asserts that `next` reconstructs, for every pair, a real path in `m`
/// whose total weight is exactly `dist[(i, j)]` — or that the pair is
/// genuinely unreachable. (The sparse backends' minimum-hop successors
/// need not *equal* the Floyd–Warshall ones, only be valid.)
fn assert_successors_valid(
    m: &SquareMatrix<i64>,
    dist: &SquareMatrix<i64>,
    next: &SquareMatrix<usize>,
) -> Result<(), TestCaseError> {
    let n = m.n();
    for i in 0..n {
        for j in 0..n {
            match reconstruct_path(next, i, j) {
                Some(path) => {
                    prop_assert_eq!(path[0], i);
                    prop_assert_eq!(*path.last().unwrap(), j);
                    let mut total = 0i64;
                    for pair in path.windows(2) {
                        let w = m[(pair[0], pair[1])];
                        prop_assert!(w != UNREACHABLE, "path uses absent edge");
                        total += w;
                    }
                    prop_assert_eq!(total, dist[(i, j)], "path weight != dist at ({},{})", i, j);
                }
                None => prop_assert!(
                    dist[(i, j)] == UNREACHABLE,
                    "no path reconstructed for reachable pair ({},{})",
                    i,
                    j
                ),
            }
        }
    }
    Ok(())
}

/// Runs one sparse backend against the dense reference on `m`: distances
/// bit-identical, successors valid, errors agree.
fn assert_backend_matches_dense(
    m: &SquareMatrix<i64>,
    backend: impl Fn(
        &SquareMatrix<i64>,
    ) -> Result<
        (SquareMatrix<i64>, SquareMatrix<usize>),
        clocksync_graph::NegativeCycleError,
    >,
    label: &str,
) -> Result<(), TestCaseError> {
    match (backend(m), blocked_floyd_warshall_i64(m)) {
        (Ok((sd, snext)), Ok((dd, _))) => {
            prop_assert_eq!(&sd, &dd, "{} distances differ from dense", label);
            assert_successors_valid(m, &sd, &snext)?;
        }
        (Err(_), Err(_)) => {}
        (s, d) => prop_assert!(
            false,
            "{} outcome mismatch: {:?} vs dense {:?}",
            label,
            s.map(|(dist, _)| dist),
            d.map(|(dist, _)| dist)
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// Johnson's algorithm equals the dense kernel exactly on sparse
    /// topologies, including disconnected components and sink rows.
    #[test]
    fn sparse_johnson_matches_dense(m in sparse_sentinel_graph()) {
        assert_backend_matches_dense(&m, sparse_closure_i64, "sparse")?;
    }

    /// The hierarchical closure over the default weak-component partition
    /// equals the dense kernel exactly; the partition really is one.
    #[test]
    fn hierarchical_matches_dense(m in sparse_sentinel_graph()) {
        let components = weak_components_i64(&m);
        let covered: usize = components.iter().map(|c| c.len()).sum();
        prop_assert_eq!(covered, m.n(), "components are not a partition");
        assert_backend_matches_dense(&m, hierarchical_closure_i64, "hierarchical")?;
    }

    /// The boundary-node composition is exact for *arbitrary* partitions,
    /// not just weak components — clusters may split real components and
    /// glue unrelated nodes together.
    #[test]
    fn hierarchical_arbitrary_partition_matches_dense(
        (m, clusters) in graph_with_partition()
    ) {
        assert_backend_matches_dense(
            &m,
            |w| hierarchical_closure_i64_with_partition(w, &clusters),
            "partitioned",
        )?;
    }

    /// The component-blocked [`SparseClosure`] cache stays equal to the
    /// dense [`Closure`] cache — distances, relax outcomes, and
    /// negative-cycle detection — through any interleaving of intra-block
    /// tightenings, cross-block merges, and stale loosenings.
    #[test]
    fn sparse_cache_matches_dense_cache((n, edges) in relax_sequence()) {
        let empty = SquareMatrix::from_fn(n, |i, j| {
            if i == j {
                <Ext<i64> as Weight>::zero()
            } else {
                <Ext<i64> as Weight>::infinity()
            }
        });
        let mut dense = Closure::new(&empty).expect("edgeless graph has no negative cycle");
        let mut sparse: SparseClosure<Ext<i64>> = SparseClosure::new(n);
        for (u, v, w) in edges {
            let w = match w {
                Some(x) => Ext::Finite(x),
                None => Ext::PosInf,
            };
            let (ds, ss) = (dense.relax_edge(u, v, w), sparse.relax_edge(u, v, w));
            match (ds, ss) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "relax outcomes diverge at ({},{})", u, v),
                (Err(_), Err(_)) => return Ok(()), // both poisoned; protocol is to rebuild
                (a, b) => prop_assert!(false, "cycle detection diverges: {:?} vs {:?}", a, b),
            }
            let (sd, snext) = sparse.to_dense();
            prop_assert_eq!(&sd, dense.dist(), "dist diverged after ({},{})", u, v);
            for i in 0..n {
                for j in 0..n {
                    prop_assert_eq!(
                        sparse.dist(i, j), sd[(i, j)],
                        "accessor disagrees with to_dense at ({},{})", i, j
                    );
                    let hop = snext[(i, j)];
                    prop_assert_eq!(
                        sparse.next_hop(i, j),
                        if hop == usize::MAX { None } else { Some(hop) }
                    );
                }
            }
            // Blocked memory never exceeds the dense footprint.
            prop_assert!(sparse.retained_entries() <= n * n);
        }
        // Every surviving block is internally weakly connected in the
        // sense that its members were merged by real edges; cross-block
        // distances must be +∞ both ways.
        for i in 0..n {
            for j in 0..n {
                if sparse.block_members(i) != sparse.block_members(j) {
                    prop_assert_eq!(sparse.dist(i, j), Ext::PosInf);
                }
            }
        }
    }
}
