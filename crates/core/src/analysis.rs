//! Per-instance optimality analysis (paper §3).
//!
//! The paper measures a correction vector `x̄` on execution `α` by
//! `ρ̄_α(x̄) = sup { ρ(α', x̄) : α' ≡ α admissible }` — the worst
//! discrepancy over all executions the processors cannot distinguish from
//! `α`. Claim 4.2 plus the attainability of maximal shifts give the closed
//! form implemented here:
//!
//! `ρ̄_α(x̄) = max_{p,q} ( m̃s_α(p,q) − x_p + x_q )`,
//!
//! which is computable from the views alone. This makes optimality a
//! *checkable* property: the test suites verify both that the SHIFTS
//! corrections achieve `ρ̄ = A_max` and that no alternative vector does
//! better.

use clocksync_graph::SquareMatrix;
use clocksync_model::ProcessorId;
use clocksync_time::{Ext, ExtRatio, Ratio};

/// Evaluates `ρ̄(x̄)` for an arbitrary correction vector against a closure
/// of global shift estimates.
///
/// Returns `+∞` iff some pair is unboundable (`m̃s = +∞`), `0` for systems
/// with fewer than two processors.
///
/// # Panics
///
/// Panics if `corrections.len() != closure.n()`.
pub fn rho_bar(closure: &SquareMatrix<ExtRatio>, corrections: &[Ratio]) -> ExtRatio {
    assert_eq!(
        corrections.len(),
        closure.n(),
        "correction vector has wrong length"
    );
    let mut worst: ExtRatio = Ext::Finite(Ratio::ZERO);
    for (i, j, &ms) in closure.iter_off_diagonal() {
        let bound = ms + Ext::Finite(corrections[j] - corrections[i]);
        worst = worst.max(bound);
    }
    worst
}

/// The ordered pair attaining `ρ̄(x̄)`, or `None` for systems with fewer
/// than two processors.
///
/// # Panics
///
/// Panics if `corrections.len() != closure.n()`.
pub fn worst_pair(
    closure: &SquareMatrix<ExtRatio>,
    corrections: &[Ratio],
) -> Option<(ProcessorId, ProcessorId)> {
    assert_eq!(
        corrections.len(),
        closure.n(),
        "correction vector has wrong length"
    );
    let mut best: Option<(ExtRatio, (usize, usize))> = None;
    for (i, j, &ms) in closure.iter_off_diagonal() {
        let bound = ms + Ext::Finite(corrections[j] - corrections[i]);
        match best {
            Some((b, _)) if b >= bound => {}
            _ => best = Some((bound, (i, j))),
        }
    }
    best.map(|(_, (i, j))| (ProcessorId(i), ProcessorId(j)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksync_graph::Weight;

    fn fin(x: i128) -> ExtRatio {
        Ext::Finite(Ratio::from_int(x))
    }

    fn two_node(a: i128, b: i128) -> SquareMatrix<ExtRatio> {
        let mut m = SquareMatrix::filled(2, <ExtRatio as Weight>::zero());
        m[(0, 1)] = fin(a);
        m[(1, 0)] = fin(b);
        m
    }

    #[test]
    fn rho_bar_of_zero_corrections_is_max_estimate() {
        let c = two_node(6, 2);
        assert_eq!(rho_bar(&c, &[Ratio::ZERO, Ratio::ZERO]), fin(6));
    }

    #[test]
    fn rho_bar_sees_corrections() {
        let c = two_node(6, 2);
        // x = (0, −2): bounds are 6−0−2 = 4 and 2−(−2)+0 = 4.
        assert_eq!(rho_bar(&c, &[Ratio::ZERO, Ratio::from_int(-2)]), fin(4));
        // Over-correcting makes the other direction worse.
        assert_eq!(rho_bar(&c, &[Ratio::ZERO, Ratio::from_int(-6)]), fin(8));
    }

    #[test]
    fn rho_bar_is_infinite_when_a_pair_is_unboundable() {
        let mut c = two_node(6, 2);
        c[(0, 1)] = Ext::PosInf;
        assert_eq!(rho_bar(&c, &[Ratio::ZERO, Ratio::ZERO]), Ext::PosInf);
    }

    #[test]
    fn rho_bar_never_negative() {
        // m̃s(0,1) = −5, m̃s(1,0) = 5: a tight one-sided constraint. The
        // pairwise sum is 0 so some direction is always ≥ 0.
        let c = two_node(-5, 5);
        let x = [Ratio::ZERO, Ratio::from_int(5)];
        assert_eq!(rho_bar(&c, &x), fin(0));
    }

    #[test]
    fn single_node_has_zero_rho_bar() {
        let c = SquareMatrix::filled(1, <ExtRatio as Weight>::zero());
        assert_eq!(rho_bar(&c, &[Ratio::ZERO]), fin(0));
        assert_eq!(worst_pair(&c, &[Ratio::ZERO]), None);
    }

    #[test]
    fn worst_pair_identifies_bottleneck() {
        let c = two_node(6, 2);
        assert_eq!(
            worst_pair(&c, &[Ratio::ZERO, Ratio::ZERO]),
            Some((ProcessorId(0), ProcessorId(1)))
        );
        assert_eq!(
            worst_pair(&c, &[Ratio::ZERO, Ratio::from_int(-6)]),
            Some((ProcessorId(1), ProcessorId(0)))
        );
    }
}
