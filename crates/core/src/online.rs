//! Incremental synchronization from a stream of observations.
//!
//! Practical deployments (the Kopetz–Ochsenreiter style periodic
//! resynchronization the paper cites) do not hand over complete views in
//! one batch: timestamped messages trickle in and the corrections are
//! recomputed on demand. [`OnlineSynchronizer`] maintains the per-link
//! evidence incrementally and keeps the GLOBAL ESTIMATES closure *cached*:
//! each new observation re-estimates only the link it travelled on and
//! folds the (monotonically tighter) edge into the cached closure with
//! [`clocksync_graph::Closure::relax_edge`] in `O(n²)`, so steady-state
//! resynchronization never pays the `O(n³)` full recompute.
//!
//! Because the estimators depend on the views only through per-link
//! evidence (Lemmas 6.2/6.5), feeding observations incrementally is
//! *exactly* as good as batch synchronization over the same messages — a
//! property the test below checks — and each additional observation can
//! only tighten the certificate. That monotonicity is precisely what makes
//! the incremental closure update exact: a tightened link is an edge-weight
//! decrease, the one operation `relax_edge` absorbs without error. Should
//! an estimate ever loosen (no built-in assumption does this, but the cache
//! does not assume it), the cache is invalidated and the next
//! [`OnlineSynchronizer::outcome`] call rebuilds from scratch.
//!
//! The `A_max` stage is cached the same way: alongside the closure the
//! synchronizer keeps each component's certified critical cycle and
//! converged Howard policy. Because a `relax_edge` tightening only ever
//! *decreases* closure entries, every cycle mean can only drop — so when
//! the cached critical cycle's mean is unchanged it is still the maximum
//! and `A_max` is reused after an `O(n)` revalidation; when it dropped,
//! Howard restarts from the cached policy instead of from scratch. Either
//! way the result is bit-identical to a cold computation (the equivalence
//! tests check this), only faster.

use clocksync_graph::Closure;
use clocksync_model::{LinkObservations, MsgSample, ProcessorId, ViewSet};
use clocksync_time::{ClockTime, ExtRatio, Nanos};

use crate::degradation::classify_degradations;
use crate::shifts::{shifts_howard_warm, synchronizable_components, ShiftsState};
use crate::{estimated_local_shifts, Network, SyncError, SyncOutcome};

/// Cached SHIFTS state of the last [`OnlineSynchronizer::outcome`] call:
/// the component partition it was computed under and one warm-startable
/// [`ShiftsState`] per component (aligned with `components`). Valid only
/// while the closure evolves by pure tightenings; invalidated together
/// with the closure cache otherwise.
#[derive(Debug, Clone)]
struct ShiftsCache {
    components: Vec<Vec<ProcessorId>>,
    states: Vec<ShiftsState>,
}

/// An incrementally-fed synchronizer with a cached closure.
///
/// # Examples
///
/// ```
/// use clocksync::{Network, LinkAssumption, DelayRange, OnlineSynchronizer};
/// use clocksync_model::ProcessorId;
/// use clocksync_time::{ClockTime, Nanos};
///
/// let p = ProcessorId(0);
/// let q = ProcessorId(1);
/// let net = Network::builder(2)
///     .link(p, q, LinkAssumption::symmetric_bounds(
///         DelayRange::new(Nanos::new(0), Nanos::new(100))))
///     .build();
/// let mut online = OnlineSynchronizer::new(net);
///
/// // A probe and its echo, reported as (sender clock, receiver clock).
/// online.observe_message(p, q, ClockTime::from_nanos(1_000), ClockTime::from_nanos(1_010));
/// online.observe_message(q, p, ClockTime::from_nanos(1_020), ClockTime::from_nanos(1_090));
/// let outcome = online.outcome()?;
/// assert!(outcome.precision().is_finite());
/// # Ok::<(), clocksync::SyncError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OnlineSynchronizer {
    network: Network,
    observations: LinkObservations,
    /// The current `m̃ls` matrix, maintained per-link as observations
    /// arrive; always equal to
    /// `estimated_local_shifts(&network, &observations)`.
    local: clocksync_graph::SquareMatrix<ExtRatio>,
    /// The closure of `local`, when valid. `None` after an estimate
    /// loosened or a relaxation surfaced an inconsistency; the next
    /// [`OnlineSynchronizer::outcome`] rebuilds it.
    cached: Option<Closure<ExtRatio>>,
    /// Per-component `A_max` certificates and Howard policies from the
    /// last [`OnlineSynchronizer::outcome`]. Invariant: `Some` only if
    /// since it was written the closure changed solely by `relax_edge`
    /// tightenings (every path that drops `cached` drops this too).
    shifts_cache: Option<ShiftsCache>,
}

impl OnlineSynchronizer {
    /// Creates an online synchronizer with no observations yet.
    pub fn new(network: Network) -> OnlineSynchronizer {
        let n = network.n();
        let observations = LinkObservations::empty(n);
        let local = estimated_local_shifts(&network, &observations);
        OnlineSynchronizer {
            network,
            observations,
            local,
            cached: None,
            shifts_cache: None,
        }
    }

    /// The network specification.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The accumulated observations.
    pub fn observations(&self) -> &LinkObservations {
        &self.observations
    }

    /// Records one delivered message by its two endpoint clock readings.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn observe_message(
        &mut self,
        src: ProcessorId,
        dst: ProcessorId,
        send_clock: ClockTime,
        recv_clock: ClockTime,
    ) {
        self.observations.record_sample(
            src,
            dst,
            MsgSample {
                send_clock,
                recv_clock,
            },
        );
        self.refresh_link(src, dst);
    }

    /// Records one delivered message by its estimated delay only (clock
    /// readings synthesized; sufficient for every assumption except the
    /// windowed bias model, which needs real clock readings).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn observe_estimated_delay(
        &mut self,
        src: ProcessorId,
        dst: ProcessorId,
        estimated_delay: Nanos,
    ) {
        self.observations.record(src, dst, estimated_delay);
        self.refresh_link(src, dst);
    }

    /// Merges every message of a complete view set into the stream.
    ///
    /// A bulk merge touches many links at once, so instead of folding each
    /// message into the cached closure it re-derives every link estimate
    /// and lets the next [`OnlineSynchronizer::outcome`] rebuild the
    /// closure once.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::WrongProcessorCount`] on size mismatch.
    pub fn ingest_views(&mut self, views: &ViewSet) -> Result<(), SyncError> {
        if views.len() != self.network.n() {
            return Err(SyncError::WrongProcessorCount {
                expected: self.network.n(),
                actual: views.len(),
            });
        }
        for m in views.message_observations() {
            self.observations.record_sample(
                m.src,
                m.dst,
                MsgSample {
                    send_clock: m.send_clock,
                    recv_clock: m.recv_clock,
                },
            );
        }
        self.local = estimated_local_shifts(&self.network, &self.observations);
        self.cached = None;
        self.shifts_cache = None;
        Ok(())
    }

    /// Re-estimates the one link a fresh observation travelled on and
    /// folds any change into the cached closure.
    ///
    /// A round-trip sample on link `{a, b}` moves the evidence both ways
    /// (a slow message raises `d̃max`, which tightens the *opposite*
    /// direction's upper-bound slack), so both directed entries are
    /// recomputed. Tightenings relax the cache in `O(n²)`; a loosening or
    /// an inconsistency (negative cycle) drops the cache instead, leaving
    /// the rebuild — and the canonical error report — to
    /// [`OnlineSynchronizer::outcome`].
    fn refresh_link(&mut self, a: ProcessorId, b: ProcessorId) {
        for (p, q) in [(a, b), (b, a)] {
            let Some(assumption) = self.network.assumption(p, q) else {
                continue;
            };
            let evidence = self.observations.evidence(p, q);
            let w = assumption.estimated_mls(&evidence);
            let (u, v) = (p.index(), q.index());
            let old = self.local[(u, v)];
            if w == old {
                continue;
            }
            self.local[(u, v)] = w;
            if w < old {
                if let Some(cache) = self.cached.as_mut() {
                    if cache.relax_edge(u, v, w).is_err() {
                        // Inconsistent observations: the relaxation
                        // poisoned the cache. Estimates only tighten, so
                        // the inconsistency is permanent; outcome() will
                        // recompute and report the canonical witness.
                        self.cached = None;
                        self.shifts_cache = None;
                    }
                }
            } else {
                // An estimate loosened (no built-in assumption does this,
                // but stay exact if one ever does): the cached closure may
                // rest on the retracted bound, and the cached critical
                // cycles on the old closure.
                self.cached = None;
                self.shifts_cache = None;
            }
        }
    }

    /// Rebuilds the cached closure if an invalidation (or nothing yet)
    /// left it empty.
    fn ensure_cache(&mut self) -> Result<&Closure<ExtRatio>, SyncError> {
        if self.cached.is_none() {
            let closure =
                Closure::fast(&self.local).map_err(|e| SyncError::InconsistentObservations {
                    witness: ProcessorId(e.witness),
                })?;
            self.cached = Some(closure);
        }
        Ok(self.cached.as_ref().expect("cache was just rebuilt"))
    }

    /// The current GLOBAL ESTIMATES matrix `m̃s` — each entry bounds how
    /// far its column processor can lag its row processor — served
    /// straight from the incrementally-maintained cache.
    ///
    /// In steady state this costs only the `O(n²)` relaxation already paid
    /// by the last `observe_*` call; nothing is cloned and no corrections
    /// are derived, so prefer it over [`OnlineSynchronizer::outcome`] when
    /// only pair bounds are needed between resynchronizations.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::InconsistentObservations`] if the accumulated
    /// observations contradict the declared assumptions.
    pub fn global_estimates(
        &mut self,
    ) -> Result<&clocksync_graph::SquareMatrix<ExtRatio>, SyncError> {
        Ok(self.ensure_cache()?.dist())
    }

    /// Computes the optimal corrections for everything observed so far.
    ///
    /// The GLOBAL ESTIMATES closure comes from the incremental cache (kept
    /// current by the `observe_*` methods; recomputed via
    /// [`clocksync_graph::fast_closure`] only after an invalidation), and
    /// `A_max` is maintained incrementally: each component first
    /// revalidates the critical cycle cached by the previous call — still
    /// certifying under pure tightenings means `A_max` is unchanged — and
    /// only on a miss runs Howard, warm-started from the cached policy.
    /// Only the final shortest-path pass (the cheap SHIFTS step) is always
    /// recomputed. The result is bit-identical to the batch
    /// [`SyncOutcome::from_global_estimates`] on the same closure, except
    /// that the reported critical cycle may be a different (equally
    /// certifying) witness.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::InconsistentObservations`] if the accumulated
    /// observations contradict the declared assumptions.
    pub fn outcome(&mut self) -> Result<SyncOutcome, SyncError> {
        self.ensure_cache()?;
        let (dist, next) = {
            let cache = self.cached.as_ref().expect("cache was just ensured");
            (cache.dist().clone(), cache.next().clone())
        };
        let components = synchronizable_components(&dist);
        // The warm states only describe the current closure if the
        // partition did not shift under it (a new finite pair merges
        // components and remaps sub-matrix indices wholesale).
        let warm = self
            .shifts_cache
            .take()
            .filter(|c| c.components == components);
        let mut states = Vec::with_capacity(components.len());
        let mut outcome =
            SyncOutcome::from_components_with(dist, components.clone(), |idx, sub| {
                let prev = warm.as_ref().map(|c| &c.states[idx]);
                let (result, state) = shifts_howard_warm(sub, 0, prev);
                states.push(state);
                result
            });
        self.shifts_cache = Some(ShiftsCache { components, states });
        outcome.set_constraint_chains(next);
        outcome.set_degradations(classify_degradations(
            &self.network,
            &self.observations,
            &self.local,
        ));
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayRange, LinkAssumption, Synchronizer};
    use clocksync_model::ExecutionBuilder;
    use clocksync_time::{Ext, Ratio, RealTime};

    const P: ProcessorId = ProcessorId(0);
    const Q: ProcessorId = ProcessorId(1);

    fn net() -> Network {
        Network::builder(2)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(1_000))),
            )
            .build()
    }

    #[test]
    fn streaming_equals_batch() {
        let exec = ExecutionBuilder::new(2)
            .start(Q, RealTime::from_nanos(123))
            .round_trips(
                P,
                Q,
                3,
                RealTime::from_nanos(5_000),
                Nanos::new(997),
                Nanos::new(400),
                Nanos::new(350),
            )
            .build()
            .unwrap();
        let batch = Synchronizer::new(net()).synchronize(exec.views()).unwrap();
        let mut online = OnlineSynchronizer::new(net());
        online.ingest_views(exec.views()).unwrap();
        let streamed = online.outcome().unwrap();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn message_stream_equals_batch() {
        // Same as above, but fed message by message so every observation
        // exercises the incremental relax_edge path (ingest_views rebuilds
        // wholesale instead).
        let exec = ExecutionBuilder::new(2)
            .start(Q, RealTime::from_nanos(123))
            .round_trips(
                P,
                Q,
                3,
                RealTime::from_nanos(5_000),
                Nanos::new(997),
                Nanos::new(400),
                Nanos::new(350),
            )
            .build()
            .unwrap();
        let batch = Synchronizer::new(net()).synchronize(exec.views()).unwrap();
        let mut online = OnlineSynchronizer::new(net());
        // Build the cache up front so the relaxations really are folded in
        // one at a time rather than deferred to a single rebuild.
        let _ = online.outcome().unwrap();
        for m in exec.views().message_observations() {
            online.observe_message(m.src, m.dst, m.send_clock, m.recv_clock);
        }
        let streamed = online.outcome().unwrap();
        assert_eq!(batch.precision(), streamed.precision());
        assert_eq!(batch.corrections(), streamed.corrections());
        assert_eq!(
            batch.global_shift_estimates(),
            streamed.global_shift_estimates()
        );
        // The lightweight accessor serves the same matrix.
        assert_eq!(
            online.global_estimates().unwrap(),
            batch.global_shift_estimates()
        );
    }

    #[test]
    fn observations_monotonically_tighten() {
        let mut online = OnlineSynchronizer::new(net());
        online.observe_estimated_delay(P, Q, Nanos::new(600));
        online.observe_estimated_delay(Q, P, Nanos::new(500));
        let first = online.outcome().unwrap().precision();
        assert_eq!(first, Ext::Finite(Ratio::from_int(450)));
        // A tighter round trip arrives.
        online.observe_estimated_delay(P, Q, Nanos::new(520));
        online.observe_estimated_delay(Q, P, Nanos::new(480));
        let second = online.outcome().unwrap().precision();
        assert!(second <= first);
        // Even a SLOW extra message informs in the bounds model: it raises
        // d̃max, shrinking the other direction's upper-bound slack.
        online.observe_estimated_delay(P, Q, Nanos::new(900));
        let third = online.outcome().unwrap().precision();
        assert!(third <= second);
        assert_eq!(third, Ext::Finite(Ratio::from_int(300)));
    }

    #[test]
    fn starts_unbounded_and_becomes_finite() {
        let mut online = OnlineSynchronizer::new(net());
        assert_eq!(online.outcome().unwrap().precision(), Ext::PosInf);
        // One message already bounds BOTH directions when ub is finite:
        // m̃ls(P,Q) = d̃min = 100, m̃ls(Q,P) = ub − d̃max = 900.
        online.observe_estimated_delay(P, Q, Nanos::new(100));
        assert_eq!(
            online.outcome().unwrap().precision(),
            Ext::Finite(Ratio::from_int(500))
        );
        // The echo tightens it to min-RTT/2 territory.
        online.observe_estimated_delay(Q, P, Nanos::new(100));
        assert_eq!(
            online.outcome().unwrap().precision(),
            Ext::Finite(Ratio::from_int(100))
        );
    }

    #[test]
    fn inconsistent_stream_is_reported() {
        let net = Network::builder(2)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(400), Nanos::new(500))),
            )
            .build();
        let mut online = OnlineSynchronizer::new(net);
        // Round trip estimate sums to 100 < 2·lb = 800: impossible.
        online.observe_estimated_delay(P, Q, Nanos::new(60));
        online.observe_estimated_delay(Q, P, Nanos::new(40));
        assert!(matches!(
            online.outcome(),
            Err(SyncError::InconsistentObservations { .. })
        ));
        // The inconsistency is permanent: asking again still reports it.
        assert!(online.outcome().is_err());
    }

    #[test]
    fn inconsistency_found_incrementally_matches_rebuild() {
        // Same stream, but with a warm cache so the negative cycle is first
        // noticed inside relax_edge rather than by the full kernel.
        let net = Network::builder(2)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(400), Nanos::new(500))),
            )
            .build();
        let mut online = OnlineSynchronizer::new(net);
        let _ = online.outcome().unwrap();
        online.observe_estimated_delay(P, Q, Nanos::new(60));
        online.observe_estimated_delay(Q, P, Nanos::new(40));
        assert!(matches!(
            online.outcome(),
            Err(SyncError::InconsistentObservations { .. })
        ));
    }

    #[test]
    fn incremental_a_max_matches_batch_at_every_step() {
        // A three-node chain fed message by message: each outcome() call
        // after the first takes the warm path (cached critical cycle or
        // warm-started Howard) and must still agree with a cold batch
        // computation on the same closure, step by step.
        let r = ProcessorId(2);
        let net = Network::builder(3)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(1_000))),
            )
            .link(
                Q,
                r,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(1_000))),
            )
            .build();
        let mut online = OnlineSynchronizer::new(net);
        let stream = [
            (P, Q, 600),
            (Q, P, 500),
            (Q, r, 700),
            (r, Q, 650),
            (P, Q, 520), // tightens the critical P–Q cycle: A_max drops
            (Q, P, 480),
            (Q, r, 900), // slow echo still tightens the opposite slack
            (P, Q, 519), // tiny tightening off the new critical cycle
        ];
        let mut last = Ext::PosInf;
        for (src, dst, d) in stream {
            online.observe_estimated_delay(src, dst, Nanos::new(d));
            let incremental = online.outcome().unwrap();
            let cold =
                SyncOutcome::from_global_estimates(incremental.global_shift_estimates().clone());
            assert_eq!(incremental.precision(), cold.precision());
            assert_eq!(incremental.corrections(), cold.corrections());
            for (a, b) in incremental.components().iter().zip(cold.components()) {
                assert_eq!(a.members, b.members);
                assert_eq!(a.precision, b.precision);
            }
            assert!(incremental.precision() <= last);
            last = incremental.precision();
        }
        assert!(last.is_finite());
    }

    #[test]
    fn warm_cache_is_dropped_when_components_merge() {
        // P–Q synchronize first; r joins later, merging the partition from
        // {{P,Q},{r}} to one component. The stale two-component cache must
        // not be consulted for the merged sub-matrix.
        let r = ProcessorId(2);
        let net = Network::builder(3)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(1_000))),
            )
            .link(
                Q,
                r,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(1_000))),
            )
            .build();
        let mut online = OnlineSynchronizer::new(net);
        online.observe_estimated_delay(P, Q, Nanos::new(600));
        online.observe_estimated_delay(Q, P, Nanos::new(500));
        let split = online.outcome().unwrap();
        assert_eq!(split.components().len(), 2);
        online.observe_estimated_delay(Q, r, Nanos::new(700));
        let merged = online.outcome().unwrap();
        assert_eq!(merged.components().len(), 1);
        let cold = SyncOutcome::from_global_estimates(merged.global_shift_estimates().clone());
        assert_eq!(merged.precision(), cold.precision());
        assert_eq!(merged.corrections(), cold.corrections());
    }

    #[test]
    fn size_mismatch_on_ingest() {
        let mut online = OnlineSynchronizer::new(net());
        let exec = ExecutionBuilder::new(3).build().unwrap();
        assert!(matches!(
            online.ingest_views(exec.views()),
            Err(SyncError::WrongProcessorCount { .. })
        ));
    }
}
