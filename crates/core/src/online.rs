//! Incremental synchronization from a stream of observations.
//!
//! Practical deployments (the Kopetz–Ochsenreiter style periodic
//! resynchronization the paper cites) do not hand over complete views in
//! one batch: timestamped messages trickle in and the corrections are
//! recomputed on demand. [`OnlineSynchronizer`] maintains the per-link
//! evidence incrementally and keeps the GLOBAL ESTIMATES closure *cached*:
//! each new observation re-estimates only the link it travelled on and
//! folds the (monotonically tighter) edge into the cached closure with
//! [`clocksync_graph::Closure::relax_edge`] in `O(n²)`, so steady-state
//! resynchronization never pays the `O(n³)` full recompute.
//!
//! Because the estimators depend on the views only through per-link
//! evidence (Lemmas 6.2/6.5), feeding observations incrementally is
//! *exactly* as good as batch synchronization over the same messages — a
//! property the test below checks — and each additional observation can
//! only tighten the certificate. That monotonicity is precisely what makes
//! the incremental closure update exact: a tightened link is an edge-weight
//! decrease, the one operation `relax_edge` absorbs without error. Should
//! an estimate ever loosen (no built-in assumption does this, but the cache
//! does not assume it), the cache is invalidated and the next
//! [`OnlineSynchronizer::outcome`] call rebuilds from scratch.
//!
//! The `A_max` stage is cached the same way: alongside the closure the
//! synchronizer keeps each component's certified critical cycle and
//! converged Howard policy. Because a `relax_edge` tightening only ever
//! *decreases* closure entries, every cycle mean can only drop — so when
//! the cached critical cycle's mean is unchanged it is still the maximum
//! and `A_max` is reused after an `O(n)` revalidation; when it dropped,
//! Howard restarts from the cached policy instead of from scratch. Either
//! way the result is bit-identical to a cold computation (the equivalence
//! tests check this), only faster.

use std::collections::{BTreeSet, HashMap, VecDeque};

use clocksync_graph::{Closure, RelaxOutcome, SquareMatrix};
use clocksync_model::{LinkObservations, ModelError, MsgSample, ProcessorId, ViewSet};
use clocksync_time::{ClockTime, ExtRatio, Nanos};

use crate::degradation::classify_degradations;
use crate::shifts::{shifts_howard_warm, synchronizable_components, ShiftsState};
use crate::{estimated_local_shifts, Network, SyncError, SyncOutcome};

/// One message observation of an ingestion batch: the two endpoint clock
/// readings of a delivered message, exactly as an untrusted reporter would
/// hand them over. Validated (endpoint range, delay representability) by
/// [`OnlineSynchronizer::ingest_batch`] before anything is recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchObservation {
    /// The sender.
    pub src: ProcessorId,
    /// The receiver.
    pub dst: ProcessorId,
    /// The sender's clock reading at the send step.
    pub send_clock: ClockTime,
    /// The receiver's clock reading at the receive step.
    pub recv_clock: ClockTime,
}

/// An incrementally-fed synchronizer with a cached closure.
///
/// # Examples
///
/// ```
/// use clocksync::{Network, LinkAssumption, DelayRange, OnlineSynchronizer};
/// use clocksync_model::ProcessorId;
/// use clocksync_time::{ClockTime, Nanos};
///
/// let p = ProcessorId(0);
/// let q = ProcessorId(1);
/// let net = Network::builder(2)
///     .link(p, q, LinkAssumption::symmetric_bounds(
///         DelayRange::new(Nanos::new(0), Nanos::new(100))))
///     .build();
/// let mut online = OnlineSynchronizer::new(net);
///
/// // A probe and its echo, reported as (sender clock, receiver clock).
/// online.observe_message(p, q, ClockTime::from_nanos(1_000), ClockTime::from_nanos(1_010));
/// online.observe_message(q, p, ClockTime::from_nanos(1_020), ClockTime::from_nanos(1_090));
/// let outcome = online.outcome()?;
/// assert!(outcome.precision().is_finite());
/// # Ok::<(), clocksync::SyncError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OnlineSynchronizer {
    network: Network,
    observations: LinkObservations,
    /// The current `m̃ls` matrix, maintained per-link as observations
    /// arrive; always equal to
    /// `estimated_local_shifts(&network, &observations)`.
    local: clocksync_graph::SquareMatrix<ExtRatio>,
    /// The closure of `local`, when valid. Tightenings are folded in by
    /// `relax_edge`, loosenings by a component-scoped patch; `None` after
    /// a bulk view merge or an inconsistency, until the next
    /// [`OnlineSynchronizer::outcome`] rebuilds it.
    cached: Option<Closure<ExtRatio>>,
    /// Per-component `A_max` certificates and Howard policies from the
    /// last [`OnlineSynchronizer::outcome`], keyed by the component's
    /// sorted member list. Invariant: an entry exists only if, since it
    /// was written, the closure entries among its members changed solely
    /// by tightenings (loosenings evict exactly the keys that intersect
    /// the affected component; see `invalidate_loosened`).
    shifts_states: HashMap<Vec<ProcessorId>, ShiftsState>,
}

impl OnlineSynchronizer {
    /// Creates an online synchronizer with no observations yet.
    pub fn new(network: Network) -> OnlineSynchronizer {
        let n = network.n();
        let observations = LinkObservations::empty(n);
        let local = estimated_local_shifts(&network, &observations);
        OnlineSynchronizer {
            network,
            observations,
            local,
            cached: None,
            shifts_states: HashMap::new(),
        }
    }

    /// The network specification.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The accumulated observations.
    pub fn observations(&self) -> &LinkObservations {
        &self.observations
    }

    /// The current `m̃ls` matrix of estimated maximal *local* shifts —
    /// entry `(p, q)` is the Lemma 6.2/6.5 single-link bound on how far
    /// `q` can lag `p`, before the GLOBAL ESTIMATES closure composes
    /// bounds along paths. Maintained incrementally as observations
    /// arrive; invariantly equal to
    /// `estimated_local_shifts(network, observations)`. Exposed so
    /// invariant oracles (the scenario fuzzer's estimate-soundness check)
    /// can audit the pre-closure estimates directly.
    pub fn local_estimates(&self) -> &clocksync_graph::SquareMatrix<ExtRatio> {
        &self.local
    }

    /// Message samples currently retained across all links (the evidence
    /// footprint [`OnlineSynchronizer::compact_evidence`] bounds).
    pub fn retained_samples(&self) -> usize {
        self.observations.retained_samples()
    }

    /// Records one delivered message by its two endpoint clock readings.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn observe_message(
        &mut self,
        src: ProcessorId,
        dst: ProcessorId,
        send_clock: ClockTime,
        recv_clock: ClockTime,
    ) {
        self.observations.record_sample(
            src,
            dst,
            MsgSample {
                send_clock,
                recv_clock,
            },
        );
        self.refresh_link(src, dst);
    }

    /// Records one delivered message by its estimated delay only (clock
    /// readings synthesized; sufficient for every assumption except the
    /// windowed bias model, which needs real clock readings).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn observe_estimated_delay(
        &mut self,
        src: ProcessorId,
        dst: ProcessorId,
        estimated_delay: Nanos,
    ) {
        self.observations.record(src, dst, estimated_delay);
        self.refresh_link(src, dst);
    }

    /// Records one delivered message from *untrusted* clock readings.
    ///
    /// Unlike [`OnlineSynchronizer::observe_message`] this never panics:
    /// out-of-range endpoints and clock readings whose difference is not
    /// representable are reported as errors, and on error nothing is
    /// recorded.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::Model`] ([`ModelError::UnknownProcessor`]) for
    /// an out-of-range endpoint and [`SyncError::Overflow`] when the
    /// estimated delay `recv_clock − send_clock` overflows.
    pub fn try_observe_message(
        &mut self,
        src: ProcessorId,
        dst: ProcessorId,
        send_clock: ClockTime,
        recv_clock: ClockTime,
    ) -> Result<(), SyncError> {
        self.ingest_batch(&[BatchObservation {
            src,
            dst,
            send_clock,
            recv_clock,
        }])
        .map(|_| ())
    }

    /// Ingests a batch of message observations in one relaxation pass.
    ///
    /// Equivalent to [`OnlineSynchronizer::try_observe_message`] for each
    /// element (the estimators depend on the evidence only through
    /// per-link aggregates, so the outcome is bit-identical), but each
    /// touched link is re-estimated and folded into the cached closure
    /// *once* rather than once per message — the batch discount the
    /// sharded ingestion service is built on. Returns the number of
    /// observations applied.
    ///
    /// The batch is applied atomically: every observation is validated
    /// up front, and on error none of them is recorded.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::Model`] ([`ModelError::UnknownProcessor`]) for
    /// an out-of-range endpoint and [`SyncError::Overflow`] when an
    /// estimated delay `recv_clock − send_clock` overflows.
    pub fn ingest_batch(&mut self, batch: &[BatchObservation]) -> Result<usize, SyncError> {
        for obs in batch {
            for endpoint in [obs.src, obs.dst] {
                if endpoint.index() >= self.network.n() {
                    return Err(SyncError::Model(ModelError::UnknownProcessor {
                        processor: endpoint,
                    }));
                }
            }
            if obs.recv_clock.checked_sub(obs.send_clock).is_none() {
                return Err(SyncError::Overflow {
                    src: obs.src,
                    dst: obs.dst,
                });
            }
        }
        let mut touched: BTreeSet<(usize, usize)> = BTreeSet::new();
        for obs in batch {
            self.observations.record_sample(
                obs.src,
                obs.dst,
                MsgSample {
                    send_clock: obs.send_clock,
                    recv_clock: obs.recv_clock,
                },
            );
            let (a, b) = (obs.src.index(), obs.dst.index());
            touched.insert((a.min(b), a.max(b)));
        }
        for (a, b) in touched {
            self.refresh_link(ProcessorId(a), ProcessorId(b));
        }
        Ok(batch.len())
    }

    /// Drops dominated evidence: on every link whose assumption is
    /// [extrema-only](crate::LinkAssumption::extrema_only), retains per
    /// direction the `d̃min`/`d̃max` witness samples plus the `window` most
    /// recent ones, and drops the rest. Returns the number of samples
    /// dropped.
    ///
    /// Never changes any estimate: the per-link extrema are maintained
    /// incrementally and never recomputed from the retained samples, and
    /// links whose estimator scans the full sample lists — windowed-bias
    /// pairing and Marzullo quorum fusion, where every retained sample is
    /// a *vote* and dropping one could flip the quorum — are left
    /// untouched — so every `m̃ls`, the cached closure, the cached
    /// `A_max` certificates and all future outcomes are bit-identical to
    /// the uncompacted run. `tests/service.rs` proptests exactly that.
    pub fn compact_evidence(&mut self, window: usize) -> usize {
        let mut dropped = 0;
        for (p, q, assumption) in self.network.links() {
            if !assumption.extrema_only() {
                continue;
            }
            dropped += self.observations.compact_samples(p, q, window);
            dropped += self.observations.compact_samples(q, p, window);
        }
        dropped
    }

    /// Retracts every observation of the undirected link `{p, q}` — the
    /// operator action for a replaced or re-cabled link whose historical
    /// evidence no longer describes the hardware. Both directions'
    /// estimates loosen back to their assumption-only values; this is the
    /// one place estimates loosen in practice, and it exercises the
    /// component-scoped cache invalidation. Returns the number of samples
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `q` is out of range.
    pub fn forget_link(&mut self, p: ProcessorId, q: ProcessorId) -> usize {
        let dropped = self.observations.clear_link(p, q);
        self.refresh_link(p, q);
        dropped
    }

    /// Drops the cached closure and every cached `A_max` certificate, so
    /// the next [`OnlineSynchronizer::outcome`] recomputes everything from
    /// the `m̃ls` matrix. Never changes any result — the caches are pure
    /// accelerators — which is exactly what makes this the reference
    /// implementation for differential tests of the scoped invalidation.
    pub fn invalidate_caches(&mut self) {
        self.cached = None;
        self.shifts_states.clear();
    }

    /// Merges every message of a complete view set into the stream.
    ///
    /// A bulk merge touches many links at once, so instead of folding each
    /// message into the cached closure it re-derives every link estimate
    /// and lets the next [`OnlineSynchronizer::outcome`] rebuild the
    /// closure once.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::WrongProcessorCount`] on size mismatch.
    pub fn ingest_views(&mut self, views: &ViewSet) -> Result<(), SyncError> {
        if views.len() != self.network.n() {
            return Err(SyncError::WrongProcessorCount {
                expected: self.network.n(),
                actual: views.len(),
            });
        }
        for m in views.message_observations() {
            self.observations.record_sample(
                m.src,
                m.dst,
                MsgSample {
                    send_clock: m.send_clock,
                    recv_clock: m.recv_clock,
                },
            );
        }
        self.local = estimated_local_shifts(&self.network, &self.observations);
        self.cached = None;
        // The A_max states stay: adding observations only tightens the
        // estimates, and the warm-start contract tolerates tightenings.
        Ok(())
    }

    /// Re-estimates the one link a fresh observation travelled on and
    /// folds any change into the cached closure.
    ///
    /// A round-trip sample on link `{a, b}` moves the evidence both ways
    /// (a slow message raises `d̃max`, which tightens the *opposite*
    /// direction's upper-bound slack), so both directed entries are
    /// recomputed. Tightenings relax the cache in `O(n²)`; a loosening or
    /// an inconsistency (negative cycle) drops the cache instead, leaving
    /// the rebuild — and the canonical error report — to
    /// [`OnlineSynchronizer::outcome`].
    fn refresh_link(&mut self, a: ProcessorId, b: ProcessorId) {
        for (p, q) in [(a, b), (b, a)] {
            let Some(assumption) = self.network.assumption(p, q) else {
                continue;
            };
            let evidence = self.observations.evidence(p, q);
            let w = assumption.estimated_mls(&evidence);
            let (u, v) = (p.index(), q.index());
            let old = self.local[(u, v)];
            if w == old {
                continue;
            }
            self.local[(u, v)] = w;
            if w < old {
                if self.cached.is_some() {
                    // A real tightening below the cached path metric pays
                    // the relaxation loop; scope it to the edge's weak
                    // component at large n — entries outside it cannot
                    // change (they lack a finite path to u or from v), so
                    // steady state costs O(k²), not O(n²). The common
                    // no-op case (w at or above the cached distance) skips
                    // the component scan and hits relax_edge's O(1) exit.
                    let members = {
                        let cache = self.cached.as_ref().expect("checked above");
                        let tightens = w < cache.dist()[(u, v)];
                        if tightens && self.network.n() >= clocksync_graph::SPARSE_MIN_N {
                            Some(self.undirected_component(u, v))
                        } else {
                            None
                        }
                    };
                    let cache = self.cached.as_mut().expect("checked above");
                    let relaxed = match &members {
                        Some(m) => cache.relax_edge_within(u, v, w, m),
                        None => cache.relax_edge(u, v, w),
                    };
                    match relaxed {
                        Err(_) => {
                            // Inconsistent observations: the relaxation
                            // poisoned the cache. Estimates only tighten,
                            // so the inconsistency is permanent; outcome()
                            // will recompute and report the canonical
                            // witness.
                            self.invalidate_caches();
                        }
                        Ok(RelaxOutcome::StaleLoosening) => {
                            // Reachable and harmless: w < old guarantees
                            // the underlying edge tightened; the cached
                            // path metric is simply already below w, so
                            // per the RelaxOutcome contract there is
                            // nothing to patch.
                        }
                        Ok(RelaxOutcome::Tightened | RelaxOutcome::Unchanged) => {}
                    }
                }
            } else {
                // An estimate loosened (evidence was retracted via
                // forget_link, or a custom assumption did it): only the
                // component the edge lives in can be affected, so patch
                // the caches there and keep the rest warm.
                self.invalidate_loosened(u, v);
            }
        }
    }

    /// Repairs the caches after the local estimate of edge `(u, v)`
    /// loosened, touching only the affected component.
    ///
    /// A loosened edge `(u, v)` can change a closure entry `(x, y)` only
    /// if the old closure had finite `d(x, u)` and `d(v, y)`: both demand
    /// a path of finite local edges, so `x`, `y` — and every alternative
    /// path that could now become the shortest — lie inside the connected
    /// component of `{u, v}` in the *undirected* finite-local-edge graph.
    /// (Seeding the search with both endpoints reproduces the old
    /// component even when the loosening to `+∞` just disconnected them,
    /// and synchronizable components never straddle its boundary because
    /// mutual finiteness implies undirected connectivity.) So: recompute
    /// the closure of that component's sub-matrix, splice it into the
    /// cached closure, and evict exactly the `A_max` states whose members
    /// intersect it. Everything outside is untouched and stays warm.
    fn invalidate_loosened(&mut self, u: usize, v: usize) {
        let members = self.undirected_component(u, v);
        let mut affected = vec![false; self.network.n()];
        for &m in &members {
            affected[m] = true;
        }
        self.shifts_states
            .retain(|key, _| key.iter().all(|p| !affected[p.index()]));
        let Some(cache) = self.cached.take() else {
            return;
        };
        let k = members.len();
        let sub_local = SquareMatrix::from_fn(k, |i, j| self.local[(members[i], members[j])]);
        match Closure::fast(&sub_local) {
            Ok(sub) => {
                let (mut dist, mut next) = cache.into_parts();
                let (sub_dist, sub_next) = sub.into_parts();
                for i in 0..k {
                    for j in 0..k {
                        dist[(members[i], members[j])] = sub_dist[(i, j)];
                        let s = sub_next[(i, j)];
                        next[(members[i], members[j])] = if s == usize::MAX {
                            usize::MAX
                        } else {
                            members[s]
                        };
                    }
                }
                self.cached = Some(Closure::from_parts(dist, next));
            }
            Err(_) => {
                // A negative cycle cannot appear from a pure loosening,
                // but stay safe if it somehow does: fall back to the full
                // rebuild (and the canonical error report) in outcome().
                self.invalidate_caches();
            }
        }
    }

    /// The sorted connected component of `{u, v}` in the undirected graph
    /// whose edges are the pairs with a finite local estimate in either
    /// direction.
    fn undirected_component(&self, u: usize, v: usize) -> Vec<usize> {
        let n = self.network.n();
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        for seed in [u, v] {
            if !seen[seed] {
                seen[seed] = true;
                queue.push_back(seed);
            }
        }
        while let Some(i) = queue.pop_front() {
            for (j, seen_j) in seen.iter_mut().enumerate() {
                if !*seen_j && (self.local[(i, j)].is_finite() || self.local[(j, i)].is_finite()) {
                    *seen_j = true;
                    queue.push_back(j);
                }
            }
        }
        (0..n).filter(|&i| seen[i]).collect()
    }

    /// Rebuilds the cached closure if an invalidation (or nothing yet)
    /// left it empty.
    fn ensure_cache(&mut self) -> Result<&Closure<ExtRatio>, SyncError> {
        if self.cached.is_none() {
            let closure =
                Closure::fast(&self.local).map_err(|e| SyncError::InconsistentObservations {
                    witness: ProcessorId(e.witness),
                })?;
            self.cached = Some(closure);
        }
        Ok(self.cached.as_ref().expect("cache was just rebuilt"))
    }

    /// The current GLOBAL ESTIMATES matrix `m̃s` — each entry bounds how
    /// far its column processor can lag its row processor — served
    /// straight from the incrementally-maintained cache.
    ///
    /// In steady state this costs only the `O(n²)` relaxation already paid
    /// by the last `observe_*` call; nothing is cloned and no corrections
    /// are derived, so prefer it over [`OnlineSynchronizer::outcome`] when
    /// only pair bounds are needed between resynchronizations.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::InconsistentObservations`] if the accumulated
    /// observations contradict the declared assumptions.
    pub fn global_estimates(
        &mut self,
    ) -> Result<&clocksync_graph::SquareMatrix<ExtRatio>, SyncError> {
        Ok(self.ensure_cache()?.dist())
    }

    /// Computes the optimal corrections for everything observed so far.
    ///
    /// The GLOBAL ESTIMATES closure comes from the incremental cache (kept
    /// current by the `observe_*` methods; recomputed via
    /// [`clocksync_graph::fast_closure`] only after an invalidation), and
    /// `A_max` is maintained incrementally: each component first
    /// revalidates the critical cycle cached by the previous call — still
    /// certifying under pure tightenings means `A_max` is unchanged — and
    /// only on a miss runs Howard, warm-started from the cached policy.
    /// Only the final shortest-path pass (the cheap SHIFTS step) is always
    /// recomputed. The result is bit-identical to the batch
    /// [`SyncOutcome::from_global_estimates`] on the same closure, except
    /// that the reported critical cycle may be a different (equally
    /// certifying) witness.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::InconsistentObservations`] if the accumulated
    /// observations contradict the declared assumptions.
    pub fn outcome(&mut self) -> Result<SyncOutcome, SyncError> {
        self.ensure_cache()?;
        let (dist, next) = {
            let cache = self.cached.as_ref().expect("cache was just ensured");
            (cache.dist().clone(), cache.next().clone())
        };
        let components = synchronizable_components(&dist);
        // Warm states are keyed by member list: a component that merged or
        // split since its state was written gets a different key (its
        // sub-matrix indices remapped wholesale) and misses to a cold
        // Howard run; a component whose membership is unchanged has only
        // seen tightenings — or nothing — since, which the warm-start
        // contract tolerates. Rebuilding the map from scratch keeps only
        // the current partition's keys, so stale keys never accumulate.
        let prev = std::mem::take(&mut self.shifts_states);
        let mut fresh = HashMap::with_capacity(components.len());
        let keys = components.clone();
        let mut outcome =
            SyncOutcome::from_components_with(dist, components.clone(), |idx, sub| {
                let (result, state) = shifts_howard_warm(sub, 0, prev.get(&keys[idx]));
                fresh.insert(keys[idx].clone(), state);
                result
            });
        self.shifts_states = fresh;
        outcome.set_constraint_chains(next);
        outcome.set_degradations(classify_degradations(
            &self.network,
            &self.observations,
            &self.local,
        ));
        outcome.set_edges(self.network.links().map(|(p, q, _)| (p, q)).collect());
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayRange, LinkAssumption, Synchronizer};
    use clocksync_model::ExecutionBuilder;
    use clocksync_time::{Ext, Ratio, RealTime};

    const P: ProcessorId = ProcessorId(0);
    const Q: ProcessorId = ProcessorId(1);

    fn net() -> Network {
        Network::builder(2)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(1_000))),
            )
            .build()
    }

    #[test]
    fn streaming_equals_batch() {
        let exec = ExecutionBuilder::new(2)
            .start(Q, RealTime::from_nanos(123))
            .round_trips(
                P,
                Q,
                3,
                RealTime::from_nanos(5_000),
                Nanos::new(997),
                Nanos::new(400),
                Nanos::new(350),
            )
            .build()
            .unwrap();
        let batch = Synchronizer::new(net()).synchronize(exec.views()).unwrap();
        let mut online = OnlineSynchronizer::new(net());
        online.ingest_views(exec.views()).unwrap();
        let streamed = online.outcome().unwrap();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn message_stream_equals_batch() {
        // Same as above, but fed message by message so every observation
        // exercises the incremental relax_edge path (ingest_views rebuilds
        // wholesale instead).
        let exec = ExecutionBuilder::new(2)
            .start(Q, RealTime::from_nanos(123))
            .round_trips(
                P,
                Q,
                3,
                RealTime::from_nanos(5_000),
                Nanos::new(997),
                Nanos::new(400),
                Nanos::new(350),
            )
            .build()
            .unwrap();
        let batch = Synchronizer::new(net()).synchronize(exec.views()).unwrap();
        let mut online = OnlineSynchronizer::new(net());
        // Build the cache up front so the relaxations really are folded in
        // one at a time rather than deferred to a single rebuild.
        let _ = online.outcome().unwrap();
        for m in exec.views().message_observations() {
            online.observe_message(m.src, m.dst, m.send_clock, m.recv_clock);
        }
        let streamed = online.outcome().unwrap();
        assert_eq!(batch.precision(), streamed.precision());
        assert_eq!(batch.corrections(), streamed.corrections());
        assert_eq!(
            batch.global_shift_estimates(),
            streamed.global_shift_estimates()
        );
        // The lightweight accessor serves the same matrix.
        assert_eq!(
            online.global_estimates().unwrap(),
            batch.global_shift_estimates()
        );
    }

    #[test]
    fn observations_monotonically_tighten() {
        let mut online = OnlineSynchronizer::new(net());
        online.observe_estimated_delay(P, Q, Nanos::new(600));
        online.observe_estimated_delay(Q, P, Nanos::new(500));
        let first = online.outcome().unwrap().precision();
        assert_eq!(first, Ext::Finite(Ratio::from_int(450)));
        // A tighter round trip arrives.
        online.observe_estimated_delay(P, Q, Nanos::new(520));
        online.observe_estimated_delay(Q, P, Nanos::new(480));
        let second = online.outcome().unwrap().precision();
        assert!(second <= first);
        // Even a SLOW extra message informs in the bounds model: it raises
        // d̃max, shrinking the other direction's upper-bound slack.
        online.observe_estimated_delay(P, Q, Nanos::new(900));
        let third = online.outcome().unwrap().precision();
        assert!(third <= second);
        assert_eq!(third, Ext::Finite(Ratio::from_int(300)));
    }

    #[test]
    fn starts_unbounded_and_becomes_finite() {
        let mut online = OnlineSynchronizer::new(net());
        assert_eq!(online.outcome().unwrap().precision(), Ext::PosInf);
        // One message already bounds BOTH directions when ub is finite:
        // m̃ls(P,Q) = d̃min = 100, m̃ls(Q,P) = ub − d̃max = 900.
        online.observe_estimated_delay(P, Q, Nanos::new(100));
        assert_eq!(
            online.outcome().unwrap().precision(),
            Ext::Finite(Ratio::from_int(500))
        );
        // The echo tightens it to min-RTT/2 territory.
        online.observe_estimated_delay(Q, P, Nanos::new(100));
        assert_eq!(
            online.outcome().unwrap().precision(),
            Ext::Finite(Ratio::from_int(100))
        );
    }

    #[test]
    fn inconsistent_stream_is_reported() {
        let net = Network::builder(2)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(400), Nanos::new(500))),
            )
            .build();
        let mut online = OnlineSynchronizer::new(net);
        // Round trip estimate sums to 100 < 2·lb = 800: impossible.
        online.observe_estimated_delay(P, Q, Nanos::new(60));
        online.observe_estimated_delay(Q, P, Nanos::new(40));
        assert!(matches!(
            online.outcome(),
            Err(SyncError::InconsistentObservations { .. })
        ));
        // The inconsistency is permanent: asking again still reports it.
        assert!(online.outcome().is_err());
    }

    #[test]
    fn inconsistency_found_incrementally_matches_rebuild() {
        // Same stream, but with a warm cache so the negative cycle is first
        // noticed inside relax_edge rather than by the full kernel.
        let net = Network::builder(2)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(400), Nanos::new(500))),
            )
            .build();
        let mut online = OnlineSynchronizer::new(net);
        let _ = online.outcome().unwrap();
        online.observe_estimated_delay(P, Q, Nanos::new(60));
        online.observe_estimated_delay(Q, P, Nanos::new(40));
        assert!(matches!(
            online.outcome(),
            Err(SyncError::InconsistentObservations { .. })
        ));
    }

    #[test]
    fn incremental_a_max_matches_batch_at_every_step() {
        // A three-node chain fed message by message: each outcome() call
        // after the first takes the warm path (cached critical cycle or
        // warm-started Howard) and must still agree with a cold batch
        // computation on the same closure, step by step.
        let r = ProcessorId(2);
        let net = Network::builder(3)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(1_000))),
            )
            .link(
                Q,
                r,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(1_000))),
            )
            .build();
        let mut online = OnlineSynchronizer::new(net);
        let stream = [
            (P, Q, 600),
            (Q, P, 500),
            (Q, r, 700),
            (r, Q, 650),
            (P, Q, 520), // tightens the critical P–Q cycle: A_max drops
            (Q, P, 480),
            (Q, r, 900), // slow echo still tightens the opposite slack
            (P, Q, 519), // tiny tightening off the new critical cycle
        ];
        let mut last = Ext::PosInf;
        for (src, dst, d) in stream {
            online.observe_estimated_delay(src, dst, Nanos::new(d));
            let incremental = online.outcome().unwrap();
            let cold =
                SyncOutcome::from_global_estimates(incremental.global_shift_estimates().clone());
            assert_eq!(incremental.precision(), cold.precision());
            assert_eq!(incremental.corrections(), cold.corrections());
            for (a, b) in incremental.components().iter().zip(cold.components()) {
                assert_eq!(a.members, b.members);
                assert_eq!(a.precision, b.precision);
            }
            assert!(incremental.precision() <= last);
            last = incremental.precision();
        }
        assert!(last.is_finite());
    }

    #[test]
    fn warm_cache_is_dropped_when_components_merge() {
        // P–Q synchronize first; r joins later, merging the partition from
        // {{P,Q},{r}} to one component. The stale two-component cache must
        // not be consulted for the merged sub-matrix.
        let r = ProcessorId(2);
        let net = Network::builder(3)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(1_000))),
            )
            .link(
                Q,
                r,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(1_000))),
            )
            .build();
        let mut online = OnlineSynchronizer::new(net);
        online.observe_estimated_delay(P, Q, Nanos::new(600));
        online.observe_estimated_delay(Q, P, Nanos::new(500));
        let split = online.outcome().unwrap();
        assert_eq!(split.components().len(), 2);
        online.observe_estimated_delay(Q, r, Nanos::new(700));
        let merged = online.outcome().unwrap();
        assert_eq!(merged.components().len(), 1);
        let cold = SyncOutcome::from_global_estimates(merged.global_shift_estimates().clone());
        assert_eq!(merged.precision(), cold.precision());
        assert_eq!(merged.corrections(), cold.corrections());
    }

    #[test]
    fn size_mismatch_on_ingest() {
        let mut online = OnlineSynchronizer::new(net());
        let exec = ExecutionBuilder::new(3).build().unwrap();
        assert!(matches!(
            online.ingest_views(exec.views()),
            Err(SyncError::WrongProcessorCount { .. })
        ));
    }

    fn obs(src: ProcessorId, dst: ProcessorId, send: i64, recv: i64) -> BatchObservation {
        BatchObservation {
            src,
            dst,
            send_clock: ClockTime::from_nanos(send),
            recv_clock: ClockTime::from_nanos(recv),
        }
    }

    #[test]
    fn batch_ingest_equals_per_message() {
        let stream = [
            obs(P, Q, 1_000, 1_600),
            obs(Q, P, 1_700, 2_200),
            obs(P, Q, 3_000, 3_520),
            obs(Q, P, 3_600, 4_080),
        ];
        let mut per_message = OnlineSynchronizer::new(net());
        let _ = per_message.outcome().unwrap();
        for o in stream {
            per_message.observe_message(o.src, o.dst, o.send_clock, o.recv_clock);
        }
        let mut batched = OnlineSynchronizer::new(net());
        let _ = batched.outcome().unwrap();
        assert_eq!(batched.ingest_batch(&stream).unwrap(), 4);
        assert_eq!(per_message.outcome().unwrap(), batched.outcome().unwrap());
        assert_eq!(batched.retained_samples(), 4);
    }

    #[test]
    fn batch_ingest_is_atomic_on_bad_input() {
        let mut online = OnlineSynchronizer::new(net());
        let overflow = [
            obs(P, Q, 1_000, 1_600),
            obs(P, Q, i64::MIN, i64::MAX), // delay not representable
        ];
        assert_eq!(
            online.ingest_batch(&overflow),
            Err(SyncError::Overflow { src: P, dst: Q })
        );
        let unknown = [obs(P, ProcessorId(9), 0, 1)];
        assert!(matches!(
            online.ingest_batch(&unknown),
            Err(SyncError::Model(ModelError::UnknownProcessor { .. }))
        ));
        // Nothing from the failed batches was recorded.
        assert_eq!(online.retained_samples(), 0);
        assert_eq!(online.outcome().unwrap().precision(), Ext::PosInf);
        // try_observe_message reports the same errors without panicking.
        assert!(online
            .try_observe_message(
                P,
                Q,
                ClockTime::from_nanos(i64::MAX),
                ClockTime::from_nanos(i64::MIN)
            )
            .is_err());
    }

    #[test]
    fn compaction_preserves_outcome_bit_for_bit() {
        let mut online = OnlineSynchronizer::new(net());
        for i in 0..40i64 {
            online.observe_message(
                P,
                Q,
                ClockTime::from_nanos(100 * i),
                ClockTime::from_nanos(100 * i + 500 + i),
            );
            online.observe_message(
                Q,
                P,
                ClockTime::from_nanos(100 * i + 50),
                ClockTime::from_nanos(100 * i + 550 - i),
            );
        }
        let before = online.outcome().unwrap();
        let retained_before = online.retained_samples();
        let dropped = online.compact_evidence(4);
        assert!(dropped > 0);
        assert_eq!(online.retained_samples(), retained_before - dropped);
        let after = online.outcome().unwrap();
        assert_eq!(before, after);
        // Later observations land on identical estimates too.
        online.observe_estimated_delay(P, Q, Nanos::new(400));
        assert!(online.outcome().unwrap().precision() <= before.precision());
    }

    #[test]
    fn compaction_never_touches_interval_fusing_links() {
        // Every retained sample on a Marzullo link is a quorum vote;
        // dropping any could flip the fused interval, so compaction must
        // skip the link entirely (the `extrema_only` gate).
        let range = DelayRange::new(Nanos::ZERO, Nanos::new(1_000));
        let net = Network::builder(2)
            .link(P, Q, LinkAssumption::marzullo_quorum(range, range, 1))
            .build();
        let mut online = OnlineSynchronizer::new(net);
        for i in 0..40i64 {
            online.observe_message(
                P,
                Q,
                ClockTime::from_nanos(100 * i),
                ClockTime::from_nanos(100 * i + 500 + i),
            );
            online.observe_message(
                Q,
                P,
                ClockTime::from_nanos(100 * i + 50),
                ClockTime::from_nanos(100 * i + 550 - i),
            );
        }
        let before = online.outcome().unwrap();
        let retained = online.retained_samples();
        assert_eq!(online.compact_evidence(4), 0);
        assert_eq!(online.retained_samples(), retained);
        assert_eq!(online.outcome().unwrap(), before);
    }

    #[test]
    fn forget_link_loosens_and_scoped_invalidation_matches_full() {
        // Two independent pairs: P–Q and r–s. Forgetting P–Q must loosen
        // that component back to unbounded while leaving r–s warm, and the
        // scoped cache patch must agree with a full invalidation.
        let (r, s) = (ProcessorId(2), ProcessorId(3));
        let range = DelayRange::new(Nanos::ZERO, Nanos::new(1_000));
        let net = Network::builder(4)
            .link(P, Q, LinkAssumption::symmetric_bounds(range))
            .link(r, s, LinkAssumption::symmetric_bounds(range))
            .build();
        let mut online = OnlineSynchronizer::new(net);
        online.observe_estimated_delay(P, Q, Nanos::new(600));
        online.observe_estimated_delay(Q, P, Nanos::new(500));
        online.observe_estimated_delay(r, s, Nanos::new(300));
        online.observe_estimated_delay(s, r, Nanos::new(200));
        let tight = online.outcome().unwrap();
        let pq = |o: &SyncOutcome| {
            o.components()
                .iter()
                .find(|c| c.members.contains(&P))
                .map(|c| (c.members.clone(), c.precision))
                .unwrap()
        };
        assert_eq!(pq(&tight), (vec![P, Q], Ratio::from_int(450)));
        let dropped = online.forget_link(P, Q);
        assert_eq!(dropped, 2);
        let mut reference = online.clone();
        reference.invalidate_caches();
        let scoped = online.outcome().unwrap();
        let full = reference.outcome().unwrap();
        assert_eq!(scoped, full);
        // P–Q is back to assumption-only knowledge (no observations means
        // no finite m̃ls): the pair split into singleton components, while
        // the untouched r–s component stays synchronized and tight.
        assert_eq!(pq(&scoped), (vec![P], Ratio::ZERO));
        let rs = scoped
            .components()
            .iter()
            .find(|c| c.members.contains(&r))
            .unwrap();
        assert_eq!(rs.precision, Ratio::from_int(250));
        // Fresh evidence re-tightens through the patched cache exactly as
        // through a rebuilt one.
        online.observe_estimated_delay(P, Q, Nanos::new(100));
        reference.observe_estimated_delay(P, Q, Nanos::new(100));
        online.observe_estimated_delay(Q, P, Nanos::new(100));
        reference.observe_estimated_delay(Q, P, Nanos::new(100));
        assert_eq!(online.outcome().unwrap(), reference.outcome().unwrap());
    }

    #[test]
    fn forget_link_after_bulk_ingest_patches_without_cache() {
        // Loosening with no cached closure (fresh synchronizer state after
        // ingest_views dropped it) must still evict the right A_max states
        // and produce the same outcome as the reference.
        let exec = ExecutionBuilder::new(2)
            .start(Q, RealTime::from_nanos(123))
            .round_trips(
                P,
                Q,
                2,
                RealTime::from_nanos(5_000),
                Nanos::new(997),
                Nanos::new(400),
                Nanos::new(350),
            )
            .build()
            .unwrap();
        let mut online = OnlineSynchronizer::new(net());
        let _ = online.outcome().unwrap();
        online.ingest_views(exec.views()).unwrap();
        online.forget_link(P, Q);
        let mut reference = online.clone();
        reference.invalidate_caches();
        assert_eq!(online.outcome().unwrap(), reference.outcome().unwrap());
        assert_eq!(online.outcome().unwrap().precision(), Ext::PosInf);
    }
}
