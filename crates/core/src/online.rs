//! Incremental synchronization from a stream of observations.
//!
//! Practical deployments (the Kopetz–Ochsenreiter style periodic
//! resynchronization the paper cites) do not hand over complete views in
//! one batch: timestamped messages trickle in and the corrections are
//! recomputed on demand. [`OnlineSynchronizer`] maintains the per-link
//! evidence incrementally and reruns the (cheap, `O(n³)`) correction
//! computation whenever asked.
//!
//! Because the estimators depend on the views only through per-link
//! evidence (Lemmas 6.2/6.5), feeding observations incrementally is
//! *exactly* as good as batch synchronization over the same messages — a
//! property the test below checks — and each additional observation can
//! only tighten the certificate.

use clocksync_model::{LinkObservations, MsgSample, ProcessorId, ViewSet};
use clocksync_time::{ClockTime, Nanos};

use crate::{estimated_local_shifts, Network, SyncError, SyncOutcome};

/// An incrementally-fed synchronizer.
///
/// # Examples
///
/// ```
/// use clocksync::{Network, LinkAssumption, DelayRange, OnlineSynchronizer};
/// use clocksync_model::ProcessorId;
/// use clocksync_time::{ClockTime, Nanos};
///
/// let p = ProcessorId(0);
/// let q = ProcessorId(1);
/// let net = Network::builder(2)
///     .link(p, q, LinkAssumption::symmetric_bounds(
///         DelayRange::new(Nanos::new(0), Nanos::new(100))))
///     .build();
/// let mut online = OnlineSynchronizer::new(net);
///
/// // A probe and its echo, reported as (sender clock, receiver clock).
/// online.observe_message(p, q, ClockTime::from_nanos(1_000), ClockTime::from_nanos(1_010));
/// online.observe_message(q, p, ClockTime::from_nanos(1_020), ClockTime::from_nanos(1_090));
/// let outcome = online.outcome()?;
/// assert!(outcome.precision().is_finite());
/// # Ok::<(), clocksync::SyncError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OnlineSynchronizer {
    network: Network,
    observations: LinkObservations,
}

impl OnlineSynchronizer {
    /// Creates an online synchronizer with no observations yet.
    pub fn new(network: Network) -> OnlineSynchronizer {
        let n = network.n();
        OnlineSynchronizer {
            network,
            observations: LinkObservations::empty(n),
        }
    }

    /// The network specification.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The accumulated observations.
    pub fn observations(&self) -> &LinkObservations {
        &self.observations
    }

    /// Records one delivered message by its two endpoint clock readings.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn observe_message(
        &mut self,
        src: ProcessorId,
        dst: ProcessorId,
        send_clock: ClockTime,
        recv_clock: ClockTime,
    ) {
        self.observations.record_sample(
            src,
            dst,
            MsgSample {
                send_clock,
                recv_clock,
            },
        );
    }

    /// Records one delivered message by its estimated delay only (clock
    /// readings synthesized; sufficient for every assumption except the
    /// windowed bias model, which needs real clock readings).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn observe_estimated_delay(
        &mut self,
        src: ProcessorId,
        dst: ProcessorId,
        estimated_delay: Nanos,
    ) {
        self.observations.record(src, dst, estimated_delay);
    }

    /// Merges every message of a complete view set into the stream.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::WrongProcessorCount`] on size mismatch.
    pub fn ingest_views(&mut self, views: &ViewSet) -> Result<(), SyncError> {
        if views.len() != self.network.n() {
            return Err(SyncError::WrongProcessorCount {
                expected: self.network.n(),
                actual: views.len(),
            });
        }
        for m in views.message_observations() {
            self.observe_message(m.src, m.dst, m.send_clock, m.recv_clock);
        }
        Ok(())
    }

    /// Computes the optimal corrections for everything observed so far.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::InconsistentObservations`] if the accumulated
    /// observations contradict the declared assumptions.
    pub fn outcome(&self) -> Result<SyncOutcome, SyncError> {
        let local = estimated_local_shifts(&self.network, &self.observations);
        let (closure, chains) = crate::global_estimates_with_chains(&local)?;
        let mut outcome = SyncOutcome::from_global_estimates(closure);
        outcome.set_constraint_chains(chains);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayRange, LinkAssumption, Synchronizer};
    use clocksync_model::ExecutionBuilder;
    use clocksync_time::{Ext, Ratio, RealTime};

    const P: ProcessorId = ProcessorId(0);
    const Q: ProcessorId = ProcessorId(1);

    fn net() -> Network {
        Network::builder(2)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(1_000))),
            )
            .build()
    }

    #[test]
    fn streaming_equals_batch() {
        let exec = ExecutionBuilder::new(2)
            .start(Q, RealTime::from_nanos(123))
            .round_trips(P, Q, 3, RealTime::from_nanos(5_000), Nanos::new(997), Nanos::new(400), Nanos::new(350))
            .build()
            .unwrap();
        let batch = Synchronizer::new(net()).synchronize(exec.views()).unwrap();
        let mut online = OnlineSynchronizer::new(net());
        online.ingest_views(exec.views()).unwrap();
        let streamed = online.outcome().unwrap();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn observations_monotonically_tighten() {
        let mut online = OnlineSynchronizer::new(net());
        online.observe_estimated_delay(P, Q, Nanos::new(600));
        online.observe_estimated_delay(Q, P, Nanos::new(500));
        let first = online.outcome().unwrap().precision();
        assert_eq!(first, Ext::Finite(Ratio::from_int(450)));
        // A tighter round trip arrives.
        online.observe_estimated_delay(P, Q, Nanos::new(520));
        online.observe_estimated_delay(Q, P, Nanos::new(480));
        let second = online.outcome().unwrap().precision();
        assert!(second <= first);
        // Even a SLOW extra message informs in the bounds model: it raises
        // d̃max, shrinking the other direction's upper-bound slack.
        online.observe_estimated_delay(P, Q, Nanos::new(900));
        let third = online.outcome().unwrap().precision();
        assert!(third <= second);
        assert_eq!(third, Ext::Finite(Ratio::from_int(300)));
    }

    #[test]
    fn starts_unbounded_and_becomes_finite() {
        let mut online = OnlineSynchronizer::new(net());
        assert_eq!(online.outcome().unwrap().precision(), Ext::PosInf);
        // One message already bounds BOTH directions when ub is finite:
        // m̃ls(P,Q) = d̃min = 100, m̃ls(Q,P) = ub − d̃max = 900.
        online.observe_estimated_delay(P, Q, Nanos::new(100));
        assert_eq!(
            online.outcome().unwrap().precision(),
            Ext::Finite(Ratio::from_int(500))
        );
        // The echo tightens it to min-RTT/2 territory.
        online.observe_estimated_delay(Q, P, Nanos::new(100));
        assert_eq!(
            online.outcome().unwrap().precision(),
            Ext::Finite(Ratio::from_int(100))
        );
    }

    #[test]
    fn inconsistent_stream_is_reported() {
        let net = Network::builder(2)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(
                    Nanos::new(400),
                    Nanos::new(500),
                )),
            )
            .build();
        let mut online = OnlineSynchronizer::new(net);
        // Round trip estimate sums to 100 < 2·lb = 800: impossible.
        online.observe_estimated_delay(P, Q, Nanos::new(60));
        online.observe_estimated_delay(Q, P, Nanos::new(40));
        assert!(matches!(
            online.outcome(),
            Err(SyncError::InconsistentObservations { .. })
        ));
    }

    #[test]
    fn size_mismatch_on_ingest() {
        let mut online = OnlineSynchronizer::new(net());
        let exec = ExecutionBuilder::new(3).build().unwrap();
        assert!(matches!(
            online.ingest_views(exec.views()),
            Err(SyncError::WrongProcessorCount { .. })
        ));
    }
}
