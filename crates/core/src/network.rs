//! The network specification: which links exist and what each assumes.

use std::collections::BTreeMap;

use clocksync_model::{Execution, ProcessorId};
use serde::{Deserialize, Serialize};

use crate::LinkAssumption;

/// A system specification: `n` processors and a delay assumption per
/// declared bidirectional link.
///
/// Links are unordered pairs; each stores its assumption oriented from the
/// lower-indexed endpoint. Declaring the same link twice *conjoins* the
/// assumptions (Theorem 5.6), which is exactly how the paper composes
/// multiple delay restrictions on one link.
///
/// # Examples
///
/// ```
/// use clocksync::{Network, LinkAssumption, DelayRange};
/// use clocksync_model::ProcessorId;
/// use clocksync_time::Nanos;
///
/// let net = Network::builder(3)
///     .link(ProcessorId(0), ProcessorId(1),
///           LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(1), Nanos::new(9))))
///     .link(ProcessorId(1), ProcessorId(2), LinkAssumption::no_bounds())
///     .build();
/// assert_eq!(net.n(), 3);
/// assert_eq!(net.link_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    n: usize,
    links: BTreeMap<(usize, usize), LinkAssumption>,
}

impl Network {
    /// Starts building a network over `n` processors.
    pub fn builder(n: usize) -> NetworkBuilder {
        NetworkBuilder {
            net: Network {
                n,
                links: BTreeMap::new(),
            },
        }
    }

    /// The number of processors.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The number of declared links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterates over declared links as `(low, high, assumption)` with the
    /// assumption oriented `low → high`.
    pub fn links(&self) -> impl Iterator<Item = (ProcessorId, ProcessorId, &LinkAssumption)> {
        self.links
            .iter()
            .map(|(&(a, b), asm)| (ProcessorId(a), ProcessorId(b), asm))
    }

    /// The assumption on the link `{p, q}` oriented `p → q`, if the link
    /// was declared.
    pub fn assumption(&self, p: ProcessorId, q: ProcessorId) -> Option<LinkAssumption> {
        let key = (p.index().min(q.index()), p.index().max(q.index()));
        self.links.get(&key).map(|a| {
            if p.index() <= q.index() {
                a.clone()
            } else {
                a.reversed()
            }
        })
    }

    /// Whether the true delays of `exec` satisfy every declared link
    /// assumption. Traffic between undeclared pairs is unconstrained.
    ///
    /// This is the global admissibility predicate of a *local* system
    /// (paper §5.1): admissible iff locally admissible on every pair.
    pub fn admits(&self, exec: &Execution) -> bool {
        self.links().all(|(p, q, asm)| {
            let fwd = exec.link_messages(p, q);
            let bwd = exec.link_messages(q, p);
            asm.admits(&fwd, &bwd)
        })
    }
}

/// Builder for [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    net: Network,
}

impl NetworkBuilder {
    /// Declares (or refines) the link `{p, q}` with `assumption` oriented
    /// `p → q`. Declaring an existing link conjoins the new assumption
    /// with the previous ones.
    ///
    /// # Panics
    ///
    /// Panics if `p == q` or either endpoint is out of range.
    pub fn link(mut self, p: ProcessorId, q: ProcessorId, assumption: LinkAssumption) -> Self {
        assert!(p != q, "a link needs two distinct endpoints");
        assert!(
            p.index() < self.net.n && q.index() < self.net.n,
            "link endpoint out of range"
        );
        let key = (p.index().min(q.index()), p.index().max(q.index()));
        let oriented = if p.index() <= q.index() {
            assumption
        } else {
            assumption.reversed()
        };
        self.net
            .links
            .entry(key)
            .and_modify(|existing| {
                let prev = existing.clone();
                *existing = match prev {
                    LinkAssumption::All(mut parts) => {
                        parts.push(oriented.clone());
                        LinkAssumption::All(parts)
                    }
                    other => LinkAssumption::All(vec![other, oriented.clone()]),
                };
            })
            .or_insert(oriented);
        self
    }

    /// Finishes building.
    pub fn build(self) -> Network {
        self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DelayRange;
    use clocksync_model::ExecutionBuilder;
    use clocksync_time::{Nanos, RealTime};

    const P: ProcessorId = ProcessorId(0);
    const Q: ProcessorId = ProcessorId(1);
    const R: ProcessorId = ProcessorId(2);

    fn bounds(lo: i64, hi: i64) -> LinkAssumption {
        LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(lo), Nanos::new(hi)))
    }

    #[test]
    fn links_are_unordered_pairs() {
        let net = Network::builder(2).link(Q, P, bounds(0, 5)).build();
        assert_eq!(net.link_count(), 1);
        assert!(net.assumption(P, Q).is_some());
        assert!(net.assumption(Q, P).is_some());
        assert_eq!(net.assumption(P, R), None);
    }

    #[test]
    fn asymmetric_assumptions_orient_correctly() {
        let asym = LinkAssumption::bounds(
            DelayRange::new(Nanos::new(1), Nanos::new(2)),
            DelayRange::new(Nanos::new(3), Nanos::new(4)),
        );
        // Declare oriented q → p: forward [1,2] applies to q → p traffic.
        let net = Network::builder(2).link(Q, P, asym).build();
        let from_p = net.assumption(P, Q).unwrap();
        match from_p {
            LinkAssumption::Bounds { forward, backward } => {
                assert_eq!(forward.lower(), Nanos::new(3));
                assert_eq!(backward.lower(), Nanos::new(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn redeclaring_a_link_conjoins() {
        let net = Network::builder(2)
            .link(P, Q, bounds(0, 100))
            .link(P, Q, LinkAssumption::rtt_bias(Nanos::new(5)))
            .build();
        assert_eq!(net.link_count(), 1);
        match net.assumption(P, Q).unwrap() {
            LinkAssumption::All(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected conjunction, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn self_link_panics() {
        let _ = Network::builder(2).link(P, P, bounds(0, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_link_panics() {
        let _ = Network::builder(2).link(P, R, bounds(0, 1));
    }

    #[test]
    fn admits_checks_every_declared_link() {
        let net = Network::builder(3)
            .link(P, Q, bounds(0, 10))
            .link(Q, R, bounds(0, 10))
            .build();
        let ok = ExecutionBuilder::new(3)
            .message(P, Q, RealTime::from_nanos(100), Nanos::new(5))
            .message(Q, R, RealTime::from_nanos(200), Nanos::new(10))
            .build()
            .unwrap();
        assert!(net.admits(&ok));
        let bad = ExecutionBuilder::new(3)
            .message(P, Q, RealTime::from_nanos(100), Nanos::new(11))
            .build()
            .unwrap();
        assert!(!net.admits(&bad));
    }

    #[test]
    fn undeclared_traffic_is_unconstrained() {
        let net = Network::builder(3).link(P, Q, bounds(0, 10)).build();
        let exec = ExecutionBuilder::new(3)
            .message(P, R, RealTime::from_nanos(100), Nanos::from_secs(10))
            .build()
            .unwrap();
        assert!(net.admits(&exec));
    }
}
