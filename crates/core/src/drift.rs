//! Drift-aware outcomes: certificates that stay sound after sync time.
//!
//! A [`SyncOutcome`] is exact at the instant the views were recorded. On
//! drifting hardware every bound then decays: two clocks whose rates are
//! bounded by `ρ̄_p` and `ρ̄_q` ppm diverge by at most
//! `(ρ̄_p + ρ̄_q)·Δt/10⁶` over an interval `Δt`, so the Lemma 6.2/6.5
//! estimates, the `m̃s` closure entries and every pair bound widen by
//! exactly that term. [`DriftingOutcome`] packages an outcome with its
//! validity timestamp and per-processor drift bounds, answering queries
//! at any later real time with bounds that remain sound — the decayed
//! certificate the simulator's drift workload and the `drift-soundness`
//! vopr oracle check against ground truth.
//!
//! Every query is O(1) per pair: one rational multiply-add on top of the
//! already-O(1) [`SyncOutcome::pair_bound`]. With all rates zero the
//! decay terms are exactly `0` and every answer is bit-identical to the
//! underlying drift-free outcome.

use clocksync_model::ProcessorId;
use clocksync_time::{DriftBound, DriftingEstimate, Ext, ExtRatio, RealTime};

use crate::synchronizer::LocalSkew;
use crate::SyncOutcome;

/// A synchronization certificate with a validity timestamp and
/// per-processor drift bounds, queryable at any later real time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftingOutcome {
    outcome: SyncOutcome,
    valid_at: RealTime,
    rates: Vec<DriftBound>,
}

impl DriftingOutcome {
    /// Wraps `outcome`, exact at `valid_at`, with one drift bound per
    /// processor.
    ///
    /// # Panics
    ///
    /// Panics if `rates.len()` differs from the outcome's processor
    /// count.
    pub fn new(outcome: SyncOutcome, valid_at: RealTime, rates: Vec<DriftBound>) -> DriftingOutcome {
        assert_eq!(
            rates.len(),
            outcome.corrections().len(),
            "one drift bound per processor"
        );
        DriftingOutcome {
            outcome,
            valid_at,
            rates,
        }
    }

    /// Wraps `outcome` with the same drift bound for every processor.
    pub fn uniform(outcome: SyncOutcome, valid_at: RealTime, rate: DriftBound) -> DriftingOutcome {
        let n = outcome.corrections().len();
        DriftingOutcome::new(outcome, valid_at, vec![rate; n])
    }

    /// The underlying (undecayed) outcome.
    pub fn outcome(&self) -> &SyncOutcome {
        &self.outcome
    }

    /// The instant at which the underlying outcome is exact.
    pub fn valid_at(&self) -> RealTime {
        self.valid_at
    }

    /// The per-processor drift bounds.
    pub fn rates(&self) -> &[DriftBound] {
        &self.rates
    }

    /// The combined divergence rate of a pair: `ρ̄_p + ρ̄_q`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `q` is out of range.
    pub fn pair_rate(&self, p: ProcessorId, q: ProcessorId) -> DriftBound {
        self.rates[p.index()].combined(self.rates[q.index()])
    }

    /// The pair bound of `(p, q)` as a decaying estimate: its value is
    /// [`SyncOutcome::pair_bound`], valid at [`DriftingOutcome::valid_at`],
    /// decaying at the pair's combined rate.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `q` is out of range.
    pub fn drifting_pair_bound(&self, p: ProcessorId, q: ProcessorId) -> DriftingEstimate {
        DriftingEstimate::new(
            self.outcome.pair_bound(p, q),
            self.valid_at,
            self.pair_rate(p, q),
        )
    }

    /// The sound worst-case corrected-clock difference of `(p, q)` at
    /// real time `t`: the sync-time pair bound widened by the pair's
    /// accumulated drift. O(1).
    ///
    /// # Panics
    ///
    /// Panics if `p` or `q` is out of range.
    pub fn pair_bound_at(&self, p: ProcessorId, q: ProcessorId, t: RealTime) -> ExtRatio {
        self.drifting_pair_bound(p, q).value_at(t)
    }

    /// The per-edge local skew at real time `t` — identical to
    /// [`DriftingOutcome::pair_bound_at`]; see
    /// [`SyncOutcome::local_skew`] for the definition.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `q` is out of range.
    pub fn local_skew_at(&self, p: ProcessorId, q: ProcessorId, t: RealTime) -> ExtRatio {
        self.pair_bound_at(p, q, t)
    }

    /// The `m̃s(p, q)` global shift estimate as a decaying estimate: the
    /// closure entry, valid at sync time, decaying at the pair's
    /// combined rate (widening Lemma 6.2/6.5 through the §5.3 closure).
    ///
    /// # Panics
    ///
    /// Panics if `p` or `q` is out of range.
    pub fn global_estimate_at(&self, p: ProcessorId, q: ProcessorId, t: RealTime) -> ExtRatio {
        DriftingEstimate::new(
            self.outcome.global_shift_estimates()[(p.index(), q.index())],
            self.valid_at,
            self.pair_rate(p, q),
        )
        .value_at(t)
    }

    /// The global precision at real time `t`: the sync-time precision
    /// widened by the worst pair's accumulated drift (twice the largest
    /// per-processor bound).
    pub fn precision_at(&self, t: RealTime) -> ExtRatio {
        let worst = self
            .rates
            .iter()
            .fold(DriftBound::ZERO, |acc, &r| acc.max(r));
        match self.outcome.precision() {
            Ext::Finite(p) => Ext::Finite(p + worst.combined(worst).decay_over(t - self.valid_at)),
            inf => inf,
        }
    }

    /// Per-declared-edge local skews at real time `t`, in edge order —
    /// the decayed counterpart of [`SyncOutcome::local_skews`].
    pub fn local_skews_at(&self, t: RealTime) -> Vec<LocalSkew> {
        self.outcome
            .edges()
            .iter()
            .map(|&(a, b)| LocalSkew {
                a,
                b,
                skew: self.pair_bound_at(a, b, t),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayRange, LinkAssumption, Network, Synchronizer};
    use clocksync_model::ExecutionBuilder;
    use clocksync_time::{Nanos, Ratio};

    const P: ProcessorId = ProcessorId(0);
    const Q: ProcessorId = ProcessorId(1);

    fn outcome() -> SyncOutcome {
        let net = Network::builder(2)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(100))),
            )
            .build();
        let exec = ExecutionBuilder::new(2)
            .message(P, Q, RealTime::from_nanos(1_000), Nanos::new(40))
            .message(Q, P, RealTime::from_nanos(2_000), Nanos::new(40))
            .build()
            .unwrap();
        Synchronizer::new(net).synchronize(exec.views()).unwrap()
    }

    #[test]
    fn zero_rates_degenerate_bit_exactly() {
        let base = outcome();
        let d = DriftingOutcome::uniform(base.clone(), RealTime::from_nanos(2_040), DriftBound::ZERO);
        let much_later = RealTime::from_nanos(2_040) + Nanos::from_secs(3_600);
        assert_eq!(d.pair_bound_at(P, Q, much_later), base.pair_bound(P, Q));
        assert_eq!(d.precision_at(much_later), base.precision());
        assert_eq!(
            d.global_estimate_at(P, Q, much_later),
            base.global_shift_estimates()[(0, 1)]
        );
        assert_eq!(d.local_skews_at(much_later), base.local_skews());
    }

    #[test]
    fn decay_grows_linearly_and_respects_pair_rates() {
        let base = outcome();
        let t0 = RealTime::from_nanos(2_040);
        let d = DriftingOutcome::new(
            base.clone(),
            t0,
            vec![DriftBound::from_ppm(30), DriftBound::from_ppm(50)],
        );
        assert_eq!(d.pair_rate(P, Q).ppm(), 80);
        let at = |secs: i64| d.pair_bound_at(P, Q, t0 + Nanos::from_secs(secs));
        // 80 ppm over 1s = 80µs of decay, exactly.
        assert_eq!(
            at(1),
            base.pair_bound(P, Q) + Ext::Finite(Ratio::from_int(80_000))
        );
        assert!(at(10) > at(1));
        // Precision decays at twice the worst single rate (2 × 50 ppm).
        assert_eq!(
            d.precision_at(t0 + Nanos::from_secs(1)),
            base.precision() + Ext::Finite(Ratio::from_int(100_000))
        );
    }

    #[test]
    #[should_panic(expected = "one drift bound per processor")]
    fn mismatched_rate_count_is_rejected() {
        let _ = DriftingOutcome::new(outcome(), RealTime::ZERO, vec![DriftBound::ZERO]);
    }
}
