//! The SHIFTS function (paper §4.4): optimal corrections from global shift
//! estimates.
//!
//! The stage splits into two steps: `A_max` (a maximum cycle mean) and a
//! single-source shortest-path pass. For `A_max` three interchangeable
//! kernels exist — see [`ShiftsKernel`]. All of them are exact and agree on
//! every input; [`shifts`] runs Howard's policy iteration, the fastest in
//! practice, and keeps Karp (the paper's algorithm) as the differential
//! oracle the test suite races it against. DESIGN.md §4c spells out the
//! scaling bound, the fallback rule, and the warm-start invariant.

use clocksync_graph::{
    bellman_ford, fast_max_cycle_mean, howard_solve, karp_max_cycle_mean, CycleMean, DiGraph,
    SquareMatrix,
};
use clocksync_model::ProcessorId;
use clocksync_time::{Ext, ExtRatio, Ratio};

/// The output of [`shifts`] on one synchronizable component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShiftsResult {
    /// Optimal correction for each member, in `members` order.
    pub corrections: Vec<Ratio>,
    /// The optimal precision `A_max` of the component.
    pub precision: Ratio,
    /// A cyclic processor sequence achieving the maximum average shift —
    /// the bottleneck that *forces* the precision (Theorem 4.4). Indices
    /// are into `members`.
    pub critical_cycle: Vec<usize>,
}

/// Which maximum-cycle-mean engine computes `A_max` inside [`shifts`].
///
/// Every kernel is exact: `A_max` and the corrections are bit-identical
/// across all three on every input (a property the equivalence suite
/// checks); only the witness cycle may differ, and each kernel's witness
/// certifies the same precision. They differ solely in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShiftsKernel {
    /// Howard's policy iteration — the default practical kernel, fastest
    /// on closure-shaped (dense, metric) instances and warm-startable.
    #[default]
    Howard,
    /// Karp through the scaled-`i64` kernel
    /// ([`clocksync_graph::fast_max_cycle_mean`]), falling back to the
    /// exact rational Karp when scaling would overflow.
    KarpScaled,
    /// The exact-rational Karp recurrence — the paper's algorithm, kept as
    /// the differential oracle for the fast kernels.
    KarpExact,
}

impl ShiftsKernel {
    /// Stable short name, recorded on the `sync.shifts` observability span.
    pub fn name(self) -> &'static str {
        match self {
            ShiftsKernel::Howard => "howard",
            ShiftsKernel::KarpScaled => "karp-scaled-i64",
            ShiftsKernel::KarpExact => "karp-rational",
        }
    }
}

/// Cached SHIFTS state of one component, in component-local indices: the
/// certified `A_max` with its witness cycle, and the converged Howard
/// policy for warm-starting the next resynchronization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ShiftsState {
    pub(crate) a_max: Ratio,
    pub(crate) cycle: Vec<usize>,
    pub(crate) policy: Vec<usize>,
}

/// Runs the SHIFTS function on a *finite* closure of global shift
/// estimates (all entries of `closure` must be finite):
///
/// 1. `A_max = max_θ m̃s(θ)/|θ|` over cyclic sequences — a maximum cycle
///    mean on the complete graph of estimates (by Lemma 4.5 this equals
///    the true `A_max` over actual maximal shifts), computed by the
///    default [`ShiftsKernel::Howard`];
/// 2. corrections are shortest-path distances from `root` under
///    `w(p,q) = A_max − m̃s(p,q)` (no negative cycles by construction).
///
/// The caller (the synchronizer) is responsible for splitting the system
/// into components with finite mutual estimates first.
///
/// # Panics
///
/// Panics if any closure entry is infinite, or if the closure admits a
/// negative cycle under the derived weights (impossible for a closure that
/// passed [`crate::global_estimates`]).
pub fn shifts(closure: &SquareMatrix<ExtRatio>, root: usize) -> ShiftsResult {
    shifts_with_kernel(closure, root, ShiftsKernel::default())
}

/// [`shifts`] with an explicit `A_max` kernel choice — the hook the
/// equivalence tests and benches use to race the engines against each
/// other. Contract and panics as [`shifts`].
pub fn shifts_with_kernel(
    closure: &SquareMatrix<ExtRatio>,
    root: usize,
    kernel: ShiftsKernel,
) -> ShiftsResult {
    let n = closure.n();
    assert!(root < n, "root out of range");
    if n == 1 {
        return trivial_result();
    }
    // All entries are finite and the diagonal is 0, so a cycle always
    // exists and A_max ≥ 0.
    let cm: CycleMean = match kernel {
        ShiftsKernel::Howard => {
            howard_solve(closure, None)
                .expect("closure always contains cycles")
                .cycle_mean
        }
        ShiftsKernel::KarpScaled => {
            fast_max_cycle_mean(closure).expect("closure always contains cycles")
        }
        ShiftsKernel::KarpExact => {
            karp_max_cycle_mean(closure).expect("closure always contains cycles")
        }
    };
    ShiftsResult {
        corrections: corrections_under(closure, root, cm.mean),
        precision: cm.mean,
        critical_cycle: cm.cycle,
    }
}

/// The Howard-kernel SHIFTS with incremental `A_max`, for the online
/// synchronizer: returns the result plus the [`ShiftsState`] to warm-start
/// the next call.
///
/// When `warm` is given, the caller asserts that since that state was
/// computed the closure evolved **only by entrywise tightenings under the
/// same component partition** (the online synchronizer's `relax_edge`
/// regime). Then every cycle mean is ≤ its cached value, so if the cached
/// critical cycle's mean is unchanged it is still the maximum — `A_max`,
/// witness, and policy are reused without running any cycle-mean kernel at
/// all (`O(n)` revalidation). Otherwise Howard restarts from the cached
/// policy, which is still a valid policy (finite entries stay finite) and
/// usually one improvement step from optimal.
///
/// # Panics
///
/// As [`shifts`].
pub(crate) fn shifts_howard_warm(
    closure: &SquareMatrix<ExtRatio>,
    root: usize,
    warm: Option<&ShiftsState>,
) -> (ShiftsResult, ShiftsState) {
    let n = closure.n();
    assert!(root < n, "root out of range");
    if n == 1 {
        let state = ShiftsState {
            a_max: Ratio::ZERO,
            cycle: vec![0],
            policy: vec![0],
        };
        return (trivial_result(), state);
    }
    let revalidated = warm.filter(|s| {
        s.policy.len() == n
            && !s.cycle.is_empty()
            && s.cycle.iter().all(|&v| v < n)
            && cycle_mean(closure, &s.cycle) == s.a_max
    });
    let state = match revalidated {
        Some(s) => s.clone(),
        None => {
            let sol = howard_solve(closure, warm.map(|s| s.policy.as_slice()))
                .expect("closure always contains cycles");
            ShiftsState {
                a_max: sol.cycle_mean.mean,
                cycle: sol.cycle_mean.cycle,
                policy: sol.policy,
            }
        }
    };
    let result = ShiftsResult {
        corrections: corrections_under(closure, root, state.a_max),
        precision: state.a_max,
        critical_cycle: state.cycle.clone(),
    };
    (result, state)
}

fn trivial_result() -> ShiftsResult {
    ShiftsResult {
        corrections: vec![Ratio::ZERO],
        precision: Ratio::ZERO,
        critical_cycle: vec![0],
    }
}

/// The mean weight of a cyclic node sequence over the closure.
fn cycle_mean(closure: &SquareMatrix<ExtRatio>, cycle: &[usize]) -> Ratio {
    let mut total = Ratio::ZERO;
    for t in 0..cycle.len() {
        let (from, to) = (cycle[t], cycle[(t + 1) % cycle.len()]);
        total += closure[(from, to)].expect_finite("shifts requires a finite closure");
    }
    total * Ratio::new(1, cycle.len() as i128)
}

/// Step 2 of SHIFTS: distances from `root` under `w(p,q) = A_max − m̃s(p,q)`.
fn corrections_under(closure: &SquareMatrix<ExtRatio>, root: usize, a_max: Ratio) -> Vec<Ratio> {
    let n = closure.n();
    let mut g = DiGraph::new(n);
    for (i, j, &w) in closure.iter_off_diagonal() {
        let w = w.expect_finite("shifts requires a finite closure");
        g.add_edge(i, j, Ext::Finite(a_max - w));
    }
    let dist = bellman_ford(&g, root)
        .expect("A_max-shifted closure has no negative cycles by Theorem 4.4");
    dist.into_iter()
        .map(|d| d.expect_finite("complete graph distances are finite"))
        .collect()
}

/// Groups processors into *synchronizable components*: `p` and `q` belong
/// together iff both `m̃s(p,q)` and `m̃s(q,p)` are finite, i.e. a two-sided
/// bound between their clocks exists. The relation is transitive by the
/// triangle inequality of the closure, so this is a partition.
///
/// Components are returned sorted by smallest member, members sorted
/// ascending.
pub fn synchronizable_components(closure: &SquareMatrix<ExtRatio>) -> Vec<Vec<ProcessorId>> {
    let n = closure.n();
    let mut assigned = vec![false; n];
    let mut components = Vec::new();
    for i in 0..n {
        if assigned[i] {
            continue;
        }
        let mut members = vec![ProcessorId(i)];
        assigned[i] = true;
        for j in (i + 1)..n {
            if !assigned[j] && closure[(i, j)].is_finite() && closure[(j, i)].is_finite() {
                members.push(ProcessorId(j));
                assigned[j] = true;
            }
        }
        components.push(members);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksync_graph::Weight;

    fn fin(x: i128) -> ExtRatio {
        Ext::Finite(Ratio::from_int(x))
    }

    /// Closure of a two-node system with m̃s(0,1)=a, m̃s(1,0)=b.
    fn two_node(a: i128, b: i128) -> SquareMatrix<ExtRatio> {
        let mut m = SquareMatrix::filled(2, <ExtRatio as Weight>::zero());
        m[(0, 1)] = fin(a);
        m[(1, 0)] = fin(b);
        m
    }

    #[test]
    fn two_node_precision_is_half_the_uncertainty() {
        // A_max = (a + b)/2; the classic ±uncertainty/2 bound.
        let r = shifts(&two_node(6, 2), 0);
        assert_eq!(r.precision, Ratio::from_int(4));
        // Correction of root is 0; the other gets w(0,1) = A_max − m̃s(0,1).
        assert_eq!(r.corrections[0], Ratio::ZERO);
        assert_eq!(r.corrections[1], Ratio::from_int(-2));
        assert_eq!(r.critical_cycle.len(), 2);
    }

    #[test]
    fn all_kernels_agree_on_precision_and_corrections() {
        let mut tri = SquareMatrix::filled(3, <ExtRatio as Weight>::zero());
        tri[(0, 1)] = fin(10);
        tri[(1, 2)] = fin(10);
        tri[(2, 0)] = fin(10);
        tri[(1, 0)] = fin(1);
        tri[(2, 1)] = fin(1);
        tri[(0, 2)] = fin(11);
        let closures = [two_node(6, 2), two_node(0, 0), two_node(100, 1), tri];
        for c in &closures {
            let reference = shifts_with_kernel(c, 0, ShiftsKernel::KarpExact);
            for kernel in [ShiftsKernel::Howard, ShiftsKernel::KarpScaled] {
                let r = shifts_with_kernel(c, 0, kernel);
                assert_eq!(r.precision, reference.precision, "{kernel:?} on {c:?}");
                assert_eq!(r.corrections, reference.corrections, "{kernel:?} on {c:?}");
                // Every kernel's witness certifies the same precision.
                assert_eq!(cycle_mean(c, &r.critical_cycle), r.precision);
            }
        }
    }

    #[test]
    fn kernel_names_are_stable() {
        assert_eq!(ShiftsKernel::default().name(), "howard");
        assert_eq!(ShiftsKernel::KarpScaled.name(), "karp-scaled-i64");
        assert_eq!(ShiftsKernel::KarpExact.name(), "karp-rational");
    }

    #[test]
    fn warm_state_revalidates_after_harmless_tightening() {
        // First call: cold. Tighten an entry that does NOT touch the
        // critical cycle: the cached cycle revalidates and A_max is reused.
        let mut c = two_node(6, 2);
        let (first, state) = shifts_howard_warm(&c, 0, None);
        c[(0, 1)] = fin(6); // no-op tightening
        let (second, state2) = shifts_howard_warm(&c, 0, Some(&state));
        assert_eq!(first, second);
        assert_eq!(state, state2);
    }

    #[test]
    fn warm_state_recomputes_when_the_critical_cycle_drops() {
        let mut c = two_node(6, 2);
        let (_, state) = shifts_howard_warm(&c, 0, None);
        // Tighten an edge on the critical cycle: A_max falls from 4 to 3.
        c[(0, 1)] = fin(4);
        let (warm, new_state) = shifts_howard_warm(&c, 0, Some(&state));
        let cold = shifts(&c, 0);
        assert_eq!(warm.precision, Ratio::from_int(3));
        assert_eq!(warm.precision, cold.precision);
        assert_eq!(warm.corrections, cold.corrections);
        assert_eq!(new_state.a_max, warm.precision);
    }

    #[test]
    fn warm_state_with_mismatched_size_is_ignored() {
        let c = two_node(6, 2);
        let stale = ShiftsState {
            a_max: Ratio::from_int(99),
            cycle: vec![0, 1, 2],
            policy: vec![0],
        };
        let (r, _) = shifts_howard_warm(&c, 0, Some(&stale));
        assert_eq!(r, shifts(&c, 0));
    }

    #[test]
    fn guarantee_inequality_holds_for_all_pairs() {
        // For every p, q: m̃s(p,q) − x_p + x_q ≤ A_max (proof of Thm 4.6).
        let closures = [two_node(6, 2), two_node(0, 0), two_node(100, 1)];
        for c in closures {
            let r = shifts(&c, 0);
            for (i, j, &w) in c.iter_off_diagonal() {
                let w = w.finite().unwrap();
                assert!(
                    w - r.corrections[i] + r.corrections[j] <= r.precision,
                    "violated at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn root_choice_shifts_corrections_by_a_constant_effect() {
        // Different roots may change the corrections, but the guarantee
        // (and hence optimality) is root-independent.
        let c = two_node(6, 2);
        let r0 = shifts(&c, 0);
        let r1 = shifts(&c, 1);
        assert_eq!(r0.precision, r1.precision);
        for (i, j, &w) in c.iter_off_diagonal() {
            let w = w.finite().unwrap();
            assert!(w - r1.corrections[i] + r1.corrections[j] <= r1.precision);
        }
    }

    #[test]
    fn single_node_component() {
        let m = SquareMatrix::filled(1, <ExtRatio as Weight>::zero());
        let r = shifts(&m, 0);
        assert_eq!(r.precision, Ratio::ZERO);
        assert_eq!(r.corrections, vec![Ratio::ZERO]);
        let (rw, state) = shifts_howard_warm(&m, 0, None);
        assert_eq!(rw, r);
        assert_eq!(state.policy, vec![0]);
    }

    #[test]
    fn triangle_closure_with_asymmetric_estimates() {
        // 3 nodes; dominant 3-cycle mean.
        let mut m = SquareMatrix::filled(3, <ExtRatio as Weight>::zero());
        m[(0, 1)] = fin(10);
        m[(1, 2)] = fin(10);
        m[(2, 0)] = fin(10);
        m[(1, 0)] = fin(1);
        m[(2, 1)] = fin(1);
        m[(0, 2)] = fin(11); // keep triangle inequality: 0→2 ≤ 0→1→2 = 20
        let r = shifts(&m, 0);
        // Cycle 0→1→2→0 has mean 10; all 2-cycles have mean ≤ (11+10)/2=10.5
        // via (0,2),(2,0): (11+10)/2 = 10.5. So A_max = 21/2.
        assert_eq!(r.precision, Ratio::new(21, 2));
        for (i, j, &w) in m.iter_off_diagonal() {
            let w = w.finite().unwrap();
            assert!(w - r.corrections[i] + r.corrections[j] <= r.precision);
        }
    }

    #[test]
    fn components_partition_by_mutual_finiteness() {
        let mut m = SquareMatrix::filled(4, Ext::PosInf);
        for i in 0..4 {
            m[(i, i)] = fin(0);
        }
        // {0,1} mutually bounded, {2,3} mutually bounded, one-way 1→2 only.
        m[(0, 1)] = fin(5);
        m[(1, 0)] = fin(5);
        m[(2, 3)] = fin(5);
        m[(3, 2)] = fin(5);
        m[(1, 2)] = fin(5);
        let comps = synchronizable_components(&m);
        assert_eq!(
            comps,
            vec![
                vec![ProcessorId(0), ProcessorId(1)],
                vec![ProcessorId(2), ProcessorId(3)],
            ]
        );
    }

    #[test]
    fn fully_finite_closure_is_one_component() {
        let comps = synchronizable_components(&two_node(1, 1));
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 2);
    }
}
