//! The SHIFTS function (paper §4.4): optimal corrections from global shift
//! estimates.

use clocksync_graph::{bellman_ford, karp_max_cycle_mean, DiGraph, SquareMatrix};
use clocksync_model::ProcessorId;
use clocksync_time::{Ext, ExtRatio, Ratio};

/// The output of [`shifts`] on one synchronizable component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShiftsResult {
    /// Optimal correction for each member, in `members` order.
    pub corrections: Vec<Ratio>,
    /// The optimal precision `A_max` of the component.
    pub precision: Ratio,
    /// A cyclic processor sequence achieving the maximum average shift —
    /// the bottleneck that *forces* the precision (Theorem 4.4). Indices
    /// are into `members`.
    pub critical_cycle: Vec<usize>,
}

/// Runs the SHIFTS function on a *finite* closure of global shift
/// estimates (all entries of `closure` must be finite):
///
/// 1. `A_max = max_θ m̃s(θ)/|θ|` over cyclic sequences — Karp's algorithm
///    on the complete graph of estimates (by Lemma 4.5 this equals the
///    true `A_max` over actual maximal shifts);
/// 2. corrections are shortest-path distances from `root` under
///    `w(p,q) = A_max − m̃s(p,q)` (no negative cycles by construction).
///
/// The caller (the synchronizer) is responsible for splitting the system
/// into components with finite mutual estimates first.
///
/// # Panics
///
/// Panics if any closure entry is infinite, or if the closure admits a
/// negative cycle under the derived weights (impossible for a closure that
/// passed [`crate::global_estimates`]).
pub fn shifts(closure: &SquareMatrix<ExtRatio>, root: usize) -> ShiftsResult {
    let n = closure.n();
    assert!(root < n, "root out of range");
    if n == 1 {
        return ShiftsResult {
            corrections: vec![Ratio::ZERO],
            precision: Ratio::ZERO,
            critical_cycle: vec![0],
        };
    }

    // Step 1: A_max. All entries are finite and the diagonal is 0, so a
    // cycle always exists and A_max ≥ 0.
    let cm = karp_max_cycle_mean(closure).expect("closure always contains cycles");
    let a_max = cm.mean;

    // Step 2: distances from `root` under w(p,q) = A_max − m̃s(p,q).
    let mut g = DiGraph::new(n);
    for (i, j, &w) in closure.iter_off_diagonal() {
        let w = w.expect_finite("shifts requires a finite closure");
        g.add_edge(i, j, Ext::Finite(a_max - w));
    }
    let dist = bellman_ford(&g, root)
        .expect("A_max-shifted closure has no negative cycles by Theorem 4.4");
    let corrections = dist
        .into_iter()
        .map(|d| d.expect_finite("complete graph distances are finite"))
        .collect();

    ShiftsResult {
        corrections,
        precision: a_max,
        critical_cycle: cm.cycle,
    }
}

/// Groups processors into *synchronizable components*: `p` and `q` belong
/// together iff both `m̃s(p,q)` and `m̃s(q,p)` are finite, i.e. a two-sided
/// bound between their clocks exists. The relation is transitive by the
/// triangle inequality of the closure, so this is a partition.
///
/// Components are returned sorted by smallest member, members sorted
/// ascending.
pub fn synchronizable_components(closure: &SquareMatrix<ExtRatio>) -> Vec<Vec<ProcessorId>> {
    let n = closure.n();
    let mut assigned = vec![false; n];
    let mut components = Vec::new();
    for i in 0..n {
        if assigned[i] {
            continue;
        }
        let mut members = vec![ProcessorId(i)];
        assigned[i] = true;
        for j in (i + 1)..n {
            if !assigned[j] && closure[(i, j)].is_finite() && closure[(j, i)].is_finite() {
                members.push(ProcessorId(j));
                assigned[j] = true;
            }
        }
        components.push(members);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksync_graph::Weight;

    fn fin(x: i128) -> ExtRatio {
        Ext::Finite(Ratio::from_int(x))
    }

    /// Closure of a two-node system with m̃s(0,1)=a, m̃s(1,0)=b.
    fn two_node(a: i128, b: i128) -> SquareMatrix<ExtRatio> {
        let mut m = SquareMatrix::filled(2, <ExtRatio as Weight>::zero());
        m[(0, 1)] = fin(a);
        m[(1, 0)] = fin(b);
        m
    }

    #[test]
    fn two_node_precision_is_half_the_uncertainty() {
        // A_max = (a + b)/2; the classic ±uncertainty/2 bound.
        let r = shifts(&two_node(6, 2), 0);
        assert_eq!(r.precision, Ratio::from_int(4));
        // Correction of root is 0; the other gets w(0,1) = A_max − m̃s(0,1).
        assert_eq!(r.corrections[0], Ratio::ZERO);
        assert_eq!(r.corrections[1], Ratio::from_int(-2));
        assert_eq!(r.critical_cycle.len(), 2);
    }

    #[test]
    fn guarantee_inequality_holds_for_all_pairs() {
        // For every p, q: m̃s(p,q) − x_p + x_q ≤ A_max (proof of Thm 4.6).
        let closures = [two_node(6, 2), two_node(0, 0), two_node(100, 1)];
        for c in closures {
            let r = shifts(&c, 0);
            for (i, j, &w) in c.iter_off_diagonal() {
                let w = w.finite().unwrap();
                assert!(
                    w - r.corrections[i] + r.corrections[j] <= r.precision,
                    "violated at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn root_choice_shifts_corrections_by_a_constant_effect() {
        // Different roots may change the corrections, but the guarantee
        // (and hence optimality) is root-independent.
        let c = two_node(6, 2);
        let r0 = shifts(&c, 0);
        let r1 = shifts(&c, 1);
        assert_eq!(r0.precision, r1.precision);
        for (i, j, &w) in c.iter_off_diagonal() {
            let w = w.finite().unwrap();
            assert!(w - r1.corrections[i] + r1.corrections[j] <= r1.precision);
        }
    }

    #[test]
    fn single_node_component() {
        let m = SquareMatrix::filled(1, <ExtRatio as Weight>::zero());
        let r = shifts(&m, 0);
        assert_eq!(r.precision, Ratio::ZERO);
        assert_eq!(r.corrections, vec![Ratio::ZERO]);
    }

    #[test]
    fn triangle_closure_with_asymmetric_estimates() {
        // 3 nodes; dominant 3-cycle mean.
        let mut m = SquareMatrix::filled(3, <ExtRatio as Weight>::zero());
        m[(0, 1)] = fin(10);
        m[(1, 2)] = fin(10);
        m[(2, 0)] = fin(10);
        m[(1, 0)] = fin(1);
        m[(2, 1)] = fin(1);
        m[(0, 2)] = fin(11); // keep triangle inequality: 0→2 ≤ 0→1→2 = 20
        let r = shifts(&m, 0);
        // Cycle 0→1→2→0 has mean 10; all 2-cycles have mean ≤ (11+10)/2=10.5
        // via (0,2),(2,0): (11+10)/2 = 10.5. So A_max = 21/2.
        assert_eq!(r.precision, Ratio::new(21, 2));
        for (i, j, &w) in m.iter_off_diagonal() {
            let w = w.finite().unwrap();
            assert!(w - r.corrections[i] + r.corrections[j] <= r.precision);
        }
    }

    #[test]
    fn components_partition_by_mutual_finiteness() {
        let mut m = SquareMatrix::filled(4, Ext::PosInf);
        for i in 0..4 {
            m[(i, i)] = fin(0);
        }
        // {0,1} mutually bounded, {2,3} mutually bounded, one-way 1→2 only.
        m[(0, 1)] = fin(5);
        m[(1, 0)] = fin(5);
        m[(2, 3)] = fin(5);
        m[(3, 2)] = fin(5);
        m[(1, 2)] = fin(5);
        let comps = synchronizable_components(&m);
        assert_eq!(
            comps,
            vec![
                vec![ProcessorId(0), ProcessorId(1)],
                vec![ProcessorId(2), ProcessorId(3)],
            ]
        );
    }

    #[test]
    fn fully_finite_closure_is_one_component() {
        let comps = synchronizable_components(&two_node(1, 1));
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 2);
    }
}
