//! Optimal clock synchronization under different delay assumptions.
//!
//! This crate implements the algorithm of Hagit Attiya, Amir Herzberg and
//! Sergio Rajsbaum, *"Optimal Clock Synchronization under Different Delay
//! Assumptions"* (PODC 1993): given the **views** (local message histories)
//! of `n` drift-free processors and a per-link **delay assumption**, it
//! computes clock corrections whose precision is optimal *on every
//! instance* — no correction function computed from the same views can
//! guarantee a smaller worst-case clock disagreement over the executions
//! the processors cannot distinguish from the observed one.
//!
//! # Supported delay assumptions
//!
//! * [`LinkAssumption::bounds`] — known lower/upper delay bounds per
//!   direction, upper bounds optionally infinite (paper models 1–2);
//! * [`LinkAssumption::no_bounds`] — fully asynchronous links (model 3;
//!   worst-case precision is unbounded, yet each instance gets a finite
//!   optimal guarantee);
//! * [`LinkAssumption::rtt_bias`] — a bound on the difference between
//!   delays in opposite directions (model 4, the assumption NTP-like
//!   protocols implicitly make);
//! * [`LinkAssumption::all`] — any conjunction of the above on the same
//!   link (the paper's decomposition theorem), and different links may use
//!   different assumptions freely.
//!
//! # Pipeline
//!
//! [`Synchronizer::synchronize`] composes the paper's four stages:
//!
//! 1. extract per-link estimated-delay extrema from the views (Lemma 6.1);
//! 2. evaluate each link's local shift estimator
//!    ([`LinkAssumption::estimated_mls`], §6);
//! 3. [`global_estimates`] — all-pairs shortest paths (§5.3);
//! 4. SHIFTS (§4.4) — Karp's maximum cycle mean gives the optimal
//!    precision `A_max`, and shortest-path distances under
//!    `A_max − m̃s` give the corrections.
//!
//! # Examples
//!
//! ```
//! use clocksync::{Network, LinkAssumption, DelayRange, Synchronizer};
//! use clocksync_model::{ExecutionBuilder, ProcessorId};
//! use clocksync_time::{Nanos, RealTime};
//!
//! let (p, q, r) = (ProcessorId(0), ProcessorId(1), ProcessorId(2));
//! // A mixed network: p–q has delay bounds, q–r only a round-trip bias
//! // bound — something no prior algorithm handled.
//! let net = Network::builder(3)
//!     .link(p, q, LinkAssumption::symmetric_bounds(
//!         DelayRange::new(Nanos::from_micros(100), Nanos::from_micros(500))))
//!     .link(q, r, LinkAssumption::rtt_bias(Nanos::from_micros(200)))
//!     .build();
//!
//! let exec = ExecutionBuilder::new(3)
//!     .start(q, RealTime::from_micros(40))
//!     .start(r, RealTime::from_micros(-25))
//!     .round_trips(p, q, 1, RealTime::from_micros(1000), Nanos::ZERO,
//!                  Nanos::from_micros(180), Nanos::from_micros(320))
//!     .round_trips(q, r, 1, RealTime::from_micros(2000), Nanos::ZERO,
//!                  Nanos::from_micros(700), Nanos::from_micros(750))
//!     .build()?;
//!
//! let outcome = Synchronizer::new(net).synchronize(exec.views())?;
//! // The guarantee is finite, optimal, and honored by the true offsets.
//! let achieved = exec.discrepancy(outcome.corrections());
//! assert!(clocksync_time::Ext::Finite(achieved) <= outcome.precision());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod assumption;
mod degradation;
mod drift;
mod error;
mod estimates;
mod network;
mod online;
mod shifts;
mod synchronizer;

pub use assumption::{marzullo_fuse, DelayRange, LinkAssumption, MarzulloFusion};
pub use degradation::{classify_degradations, DegradationReason, LinkDegradation};
pub use drift::DriftingOutcome;
pub use error::SyncError;
pub use estimates::{
    estimated_local_shifts, global_estimates, global_estimates_traced, global_estimates_with_chains,
};
pub use network::{Network, NetworkBuilder};
pub use online::{BatchObservation, OnlineSynchronizer};
pub use shifts::{
    shifts, shifts_with_kernel, synchronizable_components, ShiftsKernel, ShiftsResult,
};
pub use synchronizer::{ComponentReport, LocalSkew, SyncOutcome, Synchronizer};
