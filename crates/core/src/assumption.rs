//! Delay assumptions and their local-shift estimators (paper §6).
//!
//! Each [`LinkAssumption`] attaches to one bidirectional link `{p, q}` and
//! knows how to turn the link's observed evidence into the *estimated
//! maximal local shift* `m̃ls` of each endpoint with respect to the other.
//! The estimators are the closed forms of Lemmas 6.2 and 6.5 (plus the
//! windowed generalization the paper sketches at the end of §6.2), and
//! conjunction ([`LinkAssumption::all`]) is the decomposition theorem
//! (Theorem 5.6): the `m̃ls` of an intersection of assumption sets is the
//! minimum of the individual `m̃ls` values.

use clocksync_model::{LinkEvidence, MessageRecord, MsgSample};
use clocksync_time::{Ext, ExtNanos, ExtRatio, Nanos, Ratio};
use serde::{Deserialize, Serialize};

/// An interval of admissible delays for one direction of a link.
///
/// `0 ≤ lower ≤ upper ≤ +∞` (paper §6.1). `upper = +∞` models a link with
/// no upper bound; `lower = 0, upper = +∞` is a fully asynchronous
/// direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelayRange {
    lower: Nanos,
    upper: ExtNanos,
}

impl DelayRange {
    /// Creates a bounded range `[lower, upper]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ lower ≤ upper`.
    pub fn new(lower: Nanos, upper: Nanos) -> DelayRange {
        assert!(
            Nanos::ZERO <= lower && lower <= upper,
            "delay range requires 0 <= lower <= upper"
        );
        DelayRange {
            lower,
            upper: Ext::Finite(upper),
        }
    }

    /// A range with a lower bound only: `[lower, +∞)`.
    ///
    /// # Panics
    ///
    /// Panics if `lower` is negative.
    pub fn at_least(lower: Nanos) -> DelayRange {
        assert!(Nanos::ZERO <= lower, "delay lower bound must be >= 0");
        DelayRange {
            lower,
            upper: Ext::PosInf,
        }
    }

    /// The fully unconstrained range `[0, +∞)` (delays are still
    /// nonnegative, the paper's standing assumption).
    pub fn unbounded() -> DelayRange {
        DelayRange {
            lower: Nanos::ZERO,
            upper: Ext::PosInf,
        }
    }

    /// The lower bound.
    pub fn lower(&self) -> Nanos {
        self.lower
    }

    /// The upper bound (possibly `+∞`).
    pub fn upper(&self) -> ExtNanos {
        self.upper
    }

    /// Whether `delay` lies in the range.
    pub fn contains(&self, delay: Nanos) -> bool {
        delay >= self.lower && Ext::Finite(delay) <= self.upper
    }
}

impl Default for DelayRange {
    /// The default range is [`DelayRange::unbounded`].
    fn default() -> Self {
        DelayRange::unbounded()
    }
}

/// Whether a forward message and a backward message count as "sent around
/// the same time" for the windowed bias model: their clock readings at a
/// *common endpoint* are within `window`. Both criteria are phrased in one
/// processor's own clock, so the pairing is invariant under shifting (and
/// thus well-defined on equivalence classes of executions).
fn within_window(
    fwd_send: clocksync_time::ClockTime,
    fwd_recv: clocksync_time::ClockTime,
    bwd_send: clocksync_time::ClockTime,
    bwd_recv: clocksync_time::ClockTime,
    window: Nanos,
) -> bool {
    // At the forward sender (= backward receiver): send vs receive clocks.
    (fwd_send - bwd_recv).abs() <= window
        // At the forward receiver (= backward sender).
        || (fwd_recv - bwd_send).abs() <= window
}

fn samples_paired(mf: &MsgSample, mb: &MsgSample, window: Nanos) -> bool {
    within_window(
        mf.send_clock,
        mf.recv_clock,
        mb.send_clock,
        mb.recv_clock,
        window,
    )
}

fn records_paired(mf: &MessageRecord, mb: &MessageRecord, window: Nanos) -> bool {
    within_window(
        mf.send_clock,
        mf.recv_clock,
        mb.send_clock,
        mb.recv_clock,
        window,
    )
}

/// A delay assumption for one bidirectional link `{p, q}`.
///
/// The *forward* direction is `p → q` in the orientation the link was
/// declared with (see [`crate::NetworkBuilder::link`]); `backward` is
/// `q → p`.
///
/// # Examples
///
/// ```
/// use clocksync::{LinkAssumption, DelayRange};
/// use clocksync_time::Nanos;
///
/// // A link with known bounds forward and only a lower bound backward,
/// // additionally promising the round-trip bias is at most 2ms:
/// let a = LinkAssumption::all(vec![
///     LinkAssumption::bounds(
///         DelayRange::new(Nanos::from_micros(100), Nanos::from_micros(900)),
///         DelayRange::at_least(Nanos::from_micros(100)),
///     ),
///     LinkAssumption::rtt_bias(Nanos::from_millis(2)),
/// ]);
/// assert!(format!("{a:?}").contains("RttBias"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkAssumption {
    /// Per-direction delay bounds (paper §6.1, Lemma 6.2), covering the
    /// paper's models 1–3: both bounds known, lower bounds only, or no
    /// bounds at all.
    Bounds {
        /// Admissible delays `p → q`.
        forward: DelayRange,
        /// Admissible delays `q → p`.
        backward: DelayRange,
    },
    /// A bound on the *bias* between delays in opposite directions (paper
    /// §6.2, Lemma 6.5): for every forward message `m_f` and backward
    /// message `m_b`, `|d(m_f) − d(m_b)| ≤ bound`; delays are nonnegative.
    RttBias {
        /// The bias bound `b(p,q) = b(q,p) > 0`.
        bound: Nanos,
    },
    /// The windowed generalization the paper sketches at the end of §6.2:
    /// the bias bound applies only to messages sent *around the same
    /// time* — here, pairs whose clock readings at a common endpoint are
    /// within `window`. Delays are nonnegative. With `window = ∞` this is
    /// exactly [`LinkAssumption::RttBias`].
    PairedRttBias {
        /// The bias bound for messages within the window.
        bound: Nanos,
        /// The pairing window, measured on a common endpoint's clock.
        window: Nanos,
    },
    /// Conjunction of several assumptions on the same link (Theorem 5.6).
    All(Vec<LinkAssumption>),
}

impl LinkAssumption {
    /// Per-direction delay bounds.
    pub fn bounds(forward: DelayRange, backward: DelayRange) -> LinkAssumption {
        LinkAssumption::Bounds { forward, backward }
    }

    /// The same delay bounds in both directions.
    pub fn symmetric_bounds(range: DelayRange) -> LinkAssumption {
        LinkAssumption::Bounds {
            forward: range,
            backward: range,
        }
    }

    /// No bounds at all (model 3): only nonnegativity of delays.
    pub fn no_bounds() -> LinkAssumption {
        LinkAssumption::symmetric_bounds(DelayRange::unbounded())
    }

    /// A round-trip bias bound (model 4).
    ///
    /// # Panics
    ///
    /// Panics unless `bound > 0` (the paper requires a positive bias
    /// bound).
    pub fn rtt_bias(bound: Nanos) -> LinkAssumption {
        assert!(bound > Nanos::ZERO, "rtt bias bound must be positive");
        LinkAssumption::RttBias { bound }
    }

    /// A windowed round-trip bias bound (the §6.2 generalization).
    ///
    /// # Panics
    ///
    /// Panics unless `bound > 0` and `window > 0`.
    pub fn paired_rtt_bias(bound: Nanos, window: Nanos) -> LinkAssumption {
        assert!(bound > Nanos::ZERO, "rtt bias bound must be positive");
        assert!(window > Nanos::ZERO, "pairing window must be positive");
        LinkAssumption::PairedRttBias { bound, window }
    }

    /// The conjunction of `parts` (each must hold).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn all(parts: Vec<LinkAssumption>) -> LinkAssumption {
        assert!(!parts.is_empty(), "conjunction of zero assumptions");
        LinkAssumption::All(parts)
    }

    /// The assumption for the same link with the orientation reversed.
    pub fn reversed(&self) -> LinkAssumption {
        match self {
            LinkAssumption::Bounds { forward, backward } => LinkAssumption::Bounds {
                forward: *backward,
                backward: *forward,
            },
            LinkAssumption::RttBias { bound } => LinkAssumption::RttBias { bound: *bound },
            LinkAssumption::PairedRttBias { bound, window } => LinkAssumption::PairedRttBias {
                bound: *bound,
                window: *window,
            },
            LinkAssumption::All(parts) => {
                LinkAssumption::All(parts.iter().map(|a| a.reversed()).collect())
            }
        }
    }

    /// Returns `true` when [`LinkAssumption::estimated_mls`] depends on
    /// the evidence only through the per-direction extrema `d̃min`/`d̃max`
    /// (Lemmas 6.2 and 6.5). Extrema-only links tolerate sample GC: the
    /// extrema are maintained incrementally and never recomputed from the
    /// retained samples, so dropping dominated samples cannot change any
    /// `m̃ls`. [`LinkAssumption::PairedRttBias`] scans the full sample
    /// lists for in-window pairs and must keep its history.
    ///
    /// Orientation-invariant: `a.extrema_only() == a.reversed().extrema_only()`.
    pub fn extrema_only(&self) -> bool {
        match self {
            LinkAssumption::Bounds { .. } | LinkAssumption::RttBias { .. } => true,
            LinkAssumption::PairedRttBias { .. } => false,
            LinkAssumption::All(parts) => parts.iter().all(LinkAssumption::extrema_only),
        }
    }

    /// The estimated maximal local shift `m̃ls(p, q)` of the link's far
    /// endpoint `q` with respect to `p`, computed from the link's observed
    /// evidence (`evidence.forward` = `p → q` direction).
    ///
    /// Implements Lemma 6.2 / Corollary 6.3 for [`LinkAssumption::Bounds`]:
    ///
    /// `m̃ls(p,q) = min( ub(q,p) − d̃max(q,p), d̃min(p,q) − lb(p,q) )`
    ///
    /// Lemma 6.5 / Corollary 6.6 for [`LinkAssumption::RttBias`]:
    ///
    /// `m̃ls(p,q) = min( d̃min(p,q), (b + d̃min(p,q) − d̃max(q,p)) / 2 )`
    ///
    /// the same with the pair minimum restricted to in-window pairs for
    /// [`LinkAssumption::PairedRttBias`], and the Theorem 5.6 minimum for
    /// [`LinkAssumption::All`]. The result is `+∞` exactly when the
    /// observations place no constraint on how far `q` may be shifted away
    /// from `p`.
    pub fn estimated_mls(&self, evidence: &LinkEvidence<'_>) -> ExtRatio {
        match self {
            LinkAssumption::Bounds {
                forward: f_range,
                backward: b_range,
            } => {
                // How much later can q's history slide before a backward
                // (q → p) message would exceed its upper bound…
                let slack_up: ExtRatio = (b_range.upper() - evidence.backward.est_max).into();
                // …or a forward (p → q) message would dip below its lower
                // bound.
                let slack_down: ExtRatio =
                    (evidence.forward.est_min - Ext::Finite(f_range.lower())).into();
                slack_up.min(slack_down)
            }
            LinkAssumption::RttBias { bound } => {
                let nonneg: ExtRatio = evidence.forward.est_min.into();
                let bias_term: ExtRatio = (Ext::Finite(*bound) + evidence.forward.est_min
                    - evidence.backward.est_max)
                    .into();
                let halved = bias_term.map(|r| r * Ratio::new(1, 2));
                nonneg.min(halved)
            }
            LinkAssumption::PairedRttBias { bound, window } => {
                let nonneg: ExtRatio = evidence.forward.est_min.into();
                let mut tightest: ExtRatio = Ext::PosInf;
                for mf in evidence.forward_samples {
                    for mb in evidence.backward_samples {
                        if samples_paired(mf, mb, *window) {
                            let term = (Ratio::from(*bound) + Ratio::from(mf.estimated_delay())
                                - Ratio::from(mb.estimated_delay()))
                                * Ratio::new(1, 2);
                            tightest = tightest.min(Ext::Finite(term));
                        }
                    }
                }
                nonneg.min(tightest)
            }
            LinkAssumption::All(parts) => parts
                .iter()
                .map(|a| a.estimated_mls(evidence))
                .min()
                .expect("All() is never empty"),
        }
    }

    /// Whether the given true message records satisfy this assumption
    /// (`forward` = `p → q` messages, `backward` = `q → p` messages).
    ///
    /// This is the link-local admissibility predicate `A_{p,q}` of the
    /// paper (§5.1); the shift-based lower-bound experiments use it to
    /// check that shifted executions remain admissible.
    pub fn admits(&self, forward: &[MessageRecord], backward: &[MessageRecord]) -> bool {
        match self {
            LinkAssumption::Bounds {
                forward: f_range,
                backward: b_range,
            } => {
                forward.iter().all(|m| f_range.contains(m.delay))
                    && backward.iter().all(|m| b_range.contains(m.delay))
            }
            LinkAssumption::RttBias { bound } => {
                let nonneg = forward
                    .iter()
                    .chain(backward)
                    .all(|m| m.delay >= Nanos::ZERO);
                let within_bias = forward.iter().all(|mf| {
                    backward
                        .iter()
                        .all(|mb| (mf.delay - mb.delay).abs() <= *bound)
                });
                nonneg && within_bias
            }
            LinkAssumption::PairedRttBias { bound, window } => {
                let nonneg = forward
                    .iter()
                    .chain(backward)
                    .all(|m| m.delay >= Nanos::ZERO);
                let within_bias = forward.iter().all(|mf| {
                    backward.iter().all(|mb| {
                        !records_paired(mf, mb, *window) || (mf.delay - mb.delay).abs() <= *bound
                    })
                });
                nonneg && within_bias
            }
            LinkAssumption::All(parts) => parts.iter().all(|a| a.admits(forward, backward)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksync_model::ProcessorId;
    use clocksync_time::{ClockTime, RealTime};

    fn ct(ns: i64) -> ClockTime {
        ClockTime::from_nanos(ns)
    }

    /// Samples whose estimated delays are exactly `ests`, spread out in
    /// clock time (1ms apart, far outside any test window).
    fn far_samples(ests: &[i64]) -> Vec<MsgSample> {
        ests.iter()
            .enumerate()
            .map(|(i, &e)| MsgSample {
                send_clock: ct(i as i64 * 1_000_000),
                recv_clock: ct(i as i64 * 1_000_000 + e),
            })
            .collect()
    }

    fn rec(delay: i64, send_clock: i64, recv_clock: i64) -> MessageRecord {
        MessageRecord {
            src: ProcessorId(0),
            dst: ProcessorId(1),
            send_clock: ct(send_clock),
            recv_clock: ct(recv_clock),
            sent_at: RealTime::ZERO,
            received_at: RealTime::ZERO + Nanos::new(delay),
            delay: Nanos::new(delay),
            estimated_delay: Nanos::new(recv_clock - send_clock),
        }
    }

    fn fin(x: i128) -> ExtRatio {
        Ext::Finite(Ratio::from_int(x))
    }

    fn half(x: i128) -> ExtRatio {
        Ext::Finite(Ratio::new(x, 2))
    }

    #[test]
    fn delay_range_validation() {
        let r = DelayRange::new(Nanos::new(5), Nanos::new(10));
        assert!(r.contains(Nanos::new(5)));
        assert!(r.contains(Nanos::new(10)));
        assert!(!r.contains(Nanos::new(11)));
        assert!(!r.contains(Nanos::new(4)));
        assert!(DelayRange::at_least(Nanos::new(3)).contains(Nanos::new(1_000_000)));
        assert!(DelayRange::unbounded().contains(Nanos::ZERO));
        assert!(!DelayRange::unbounded().contains(Nanos::new(-1)));
    }

    #[test]
    #[should_panic(expected = "0 <= lower <= upper")]
    fn inverted_range_panics() {
        let _ = DelayRange::new(Nanos::new(10), Nanos::new(5));
    }

    #[test]
    #[should_panic(expected = ">= 0")]
    fn negative_lower_bound_panics() {
        let _ = DelayRange::at_least(Nanos::new(-1));
    }

    #[test]
    fn bounds_mls_closed_form() {
        // lb = 2, ub = 10 both ways; forward d̃min = 6, backward d̃max = 7.
        let a = LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(2), Nanos::new(10)));
        let fwd = far_samples(&[6, 9, 8]);
        let bwd = far_samples(&[4, 7, 5]);
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        // min(ub − d̃max(q,p), d̃min(p,q) − lb) = min(10−7, 6−2) = 3.
        assert_eq!(a.estimated_mls(&ev), fin(3));
        // Reversed direction: min(10−9, 4−2) = 1.
        assert_eq!(a.estimated_mls(&ev.reversed()), fin(1));
    }

    #[test]
    fn bounds_mls_with_no_upper_bound_uses_only_lower_slack() {
        let a = LinkAssumption::symmetric_bounds(DelayRange::at_least(Nanos::new(2)));
        let fwd = far_samples(&[6, 9]);
        let bwd = far_samples(&[4, 7]);
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        // ub = ∞ makes the first term +∞; result is d̃min − lb = 4.
        assert_eq!(a.estimated_mls(&ev), fin(4));
    }

    #[test]
    fn no_bounds_mls_is_estimated_min_delay() {
        // Corollary 6.4: with lb = 0, ub = ∞, m̃ls = d̃min(p,q).
        let a = LinkAssumption::no_bounds();
        let fwd = far_samples(&[6, 9]);
        let bwd = far_samples(&[4, 7]);
        assert_eq!(
            a.estimated_mls(&LinkEvidence::from_samples(&fwd, &bwd)),
            fin(6)
        );
    }

    #[test]
    fn silent_link_is_unconstrained() {
        let empty = LinkEvidence::from_samples(&[], &[]);
        assert_eq!(
            LinkAssumption::no_bounds().estimated_mls(&empty),
            Ext::PosInf
        );
        // Even with a finite upper bound: no traffic, no constraint.
        let bounded =
            LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(10)));
        assert_eq!(bounded.estimated_mls(&empty), Ext::PosInf);
    }

    #[test]
    fn one_way_traffic_with_bounds_constrains_one_side() {
        let a = LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(2), Nanos::new(10)));
        let fwd = far_samples(&[6, 9]);
        let ev = LinkEvidence::from_samples(&fwd, &[]);
        // Forward only: m̃ls(p,q) = min(+∞, 6−2) = 4.
        assert_eq!(a.estimated_mls(&ev), fin(4));
        // Reverse: m̃ls(q,p) = min(10−9, +∞) = 1.
        assert_eq!(a.estimated_mls(&ev.reversed()), fin(1));
    }

    #[test]
    fn rtt_bias_mls_closed_form() {
        // b = 4, d̃min(p,q) = 6, d̃max(q,p) = 7:
        // min(6, (4 + 6 − 7)/2) = min(6, 3/2) = 3/2.
        let a = LinkAssumption::rtt_bias(Nanos::new(4));
        let fwd = far_samples(&[6, 9]);
        let bwd = far_samples(&[4, 7]);
        assert_eq!(
            a.estimated_mls(&LinkEvidence::from_samples(&fwd, &bwd)),
            half(3)
        );
    }

    #[test]
    fn rtt_bias_mls_can_be_negative() {
        // Asymmetric clock estimates can make the bias term negative; the
        // estimator must pass that through (estimates, unlike true mls,
        // may be negative because they absorb S_p − S_q).
        let a = LinkAssumption::rtt_bias(Nanos::new(1));
        let fwd = far_samples(&[-10]);
        let bwd = far_samples(&[5]);
        // min(−10, (1 − 10 − 5)/2) = min(−10, −7) = −10.
        assert_eq!(
            a.estimated_mls(&LinkEvidence::from_samples(&fwd, &bwd)),
            fin(-10)
        );
    }

    #[test]
    fn rtt_bias_without_reverse_traffic_degenerates_to_no_bounds() {
        let a = LinkAssumption::rtt_bias(Nanos::new(4));
        let fwd = far_samples(&[6, 9]);
        assert_eq!(
            a.estimated_mls(&LinkEvidence::from_samples(&fwd, &[])),
            fin(6)
        );
    }

    #[test]
    fn paired_bias_ignores_out_of_window_pairs() {
        // Two round trips 1ms apart; window 10ns pairs each probe only
        // with its own echo.
        let fwd = vec![
            MsgSample {
                send_clock: ct(0),
                recv_clock: ct(100),
            },
            MsgSample {
                send_clock: ct(1_000_000),
                recv_clock: ct(1_000_900),
            },
        ];
        let bwd = vec![
            MsgSample {
                send_clock: ct(105),
                recv_clock: ct(210),
            },
            MsgSample {
                send_clock: ct(1_000_905),
                recv_clock: ct(1_001_000),
            },
        ];
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        let b = Nanos::new(50);
        // Estimated delays: fwd 100, 900; bwd 105, 95.
        // Windowed pairs: (fwd0, bwd0) via q clocks |100−105|≤10 and
        // (fwd1, bwd1) via q clocks |1_000_900−1_000_905|≤10.
        // Terms: (50+100−105)/2 = 45/2; (50+900−95)/2 = 855/2.
        // m̃ls = min(d̃min=100, 45/2) = 45/2.
        let windowed = LinkAssumption::paired_rtt_bias(b, Nanos::new(10));
        assert_eq!(windowed.estimated_mls(&ev), half(45));
        // The unwindowed model also sees (fwd0, bwd1): (50+100−95)/2 and
        // (fwd1, bwd0): (50+900−105)/2 — tightest is still 45/2 here, but
        // with a *large* window pairing everything the result matches the
        // plain RttBias closed form: min(100, (50+100−105)/2) = 45/2.
        let plain = LinkAssumption::rtt_bias(b);
        assert_eq!(plain.estimated_mls(&ev), windowed.estimated_mls(&ev));
        // A window pairing nothing leaves only nonnegativity: d̃min = 100.
        // (Use disjoint clock ranges: shift bwd far away.)
        let bwd_far = vec![MsgSample {
            send_clock: ct(50_000_000),
            recv_clock: ct(50_000_095),
        }];
        let ev_far = LinkEvidence::from_samples(&fwd, &bwd_far);
        assert_eq!(
            LinkAssumption::paired_rtt_bias(b, Nanos::new(10)).estimated_mls(&ev_far),
            fin(100)
        );
    }

    #[test]
    fn paired_bias_with_huge_window_equals_plain_bias() {
        let fwd = far_samples(&[6, 9]);
        let bwd = far_samples(&[4, 7]);
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        let plain = LinkAssumption::rtt_bias(Nanos::new(4));
        let windowed = LinkAssumption::paired_rtt_bias(Nanos::new(4), Nanos::from_secs(1));
        assert_eq!(plain.estimated_mls(&ev), windowed.estimated_mls(&ev));
    }

    #[test]
    fn conjunction_takes_the_minimum() {
        // Theorem 5.6: mls under A' ∩ A'' is min(mls', mls'').
        let bounds =
            LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(2), Nanos::new(10)));
        let bias = LinkAssumption::rtt_bias(Nanos::new(4));
        let both = LinkAssumption::all(vec![bounds.clone(), bias.clone()]);
        let fwd = far_samples(&[6, 9]);
        let bwd = far_samples(&[4, 7]);
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        let expected = bounds.estimated_mls(&ev).min(bias.estimated_mls(&ev));
        assert_eq!(both.estimated_mls(&ev), expected);
        assert_eq!(both.estimated_mls(&ev), half(3));
    }

    #[test]
    fn reversed_swaps_directions() {
        let a = LinkAssumption::bounds(
            DelayRange::new(Nanos::new(1), Nanos::new(5)),
            DelayRange::new(Nanos::new(2), Nanos::new(9)),
        );
        let r = a.reversed();
        let fwd = far_samples(&[6, 9]);
        let bwd = far_samples(&[4, 7]);
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        // m̃ls(q,p) under `a` == m̃ls(forward) under the reversed assumption
        // with the evidence reversed: min(ub(p→q) − d̃max(p→q), d̃min(q→p)
        // − lb(q→p)) = min(5 − 9, 4 − 2) = −4.
        assert_eq!(r.estimated_mls(&ev.reversed()), fin(-4));
        // Double reversal is the identity.
        assert_eq!(r.reversed(), a);
    }

    #[test]
    fn admits_bounds() {
        let a = LinkAssumption::bounds(
            DelayRange::new(Nanos::new(1), Nanos::new(5)),
            DelayRange::at_least(Nanos::new(2)),
        );
        assert!(a.admits(&[rec(3, 0, 3)], &[rec(100, 10, 110)]));
        assert!(!a.admits(&[rec(6, 0, 6)], &[rec(100, 10, 110)]));
        assert!(!a.admits(&[rec(3, 0, 3)], &[rec(1, 10, 11)]));
        assert!(a.admits(&[], &[]));
    }

    #[test]
    fn admits_rtt_bias() {
        let a = LinkAssumption::rtt_bias(Nanos::new(4));
        assert!(a.admits(&[rec(10, 0, 10)], &[rec(7, 20, 27)]));
        assert!(!a.admits(&[rec(10, 0, 10)], &[rec(3, 20, 23)]));
        assert!(!a.admits(&[rec(-1, 0, -1)], &[]));
        // Same-direction spread is unconstrained by the bias model.
        assert!(a.admits(&[rec(0, 0, 0), rec(100, 5, 105)], &[]));
    }

    #[test]
    fn admits_paired_bias_only_checks_in_window_pairs() {
        let a = LinkAssumption::paired_rtt_bias(Nanos::new(4), Nanos::new(50));
        // In-window pair violating the bias (clocks at the common endpoint
        // within 50ns): rejected.
        assert!(!a.admits(&[rec(10, 0, 10)], &[rec(3, 20, 23)]));
        // The same delays far apart in time: accepted.
        assert!(a.admits(&[rec(10, 0, 10)], &[rec(3, 9_000_000, 9_000_003)]));
        // Negative delays rejected regardless of pairing.
        assert!(!a.admits(&[rec(-1, 0, -1)], &[]));
    }

    #[test]
    fn admits_conjunction() {
        let a = LinkAssumption::all(vec![
            LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(10))),
            LinkAssumption::rtt_bias(Nanos::new(2)),
        ]);
        assert!(a.admits(&[rec(5, 0, 5)], &[rec(6, 10, 16)]));
        assert!(!a.admits(&[rec(5, 0, 5)], &[rec(9, 10, 19)])); // bias violated
        assert!(!a.admits(&[rec(11, 0, 11)], &[rec(10, 10, 20)])); // bound violated
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_bias_panics() {
        let _ = LinkAssumption::rtt_bias(Nanos::ZERO);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn nonpositive_window_panics() {
        let _ = LinkAssumption::paired_rtt_bias(Nanos::new(1), Nanos::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero assumptions")]
    fn empty_conjunction_panics() {
        let _ = LinkAssumption::all(vec![]);
    }
}
