//! Delay assumptions and their local-shift estimators (paper §6).
//!
//! Each [`LinkAssumption`] attaches to one bidirectional link `{p, q}` and
//! knows how to turn the link's observed evidence into the *estimated
//! maximal local shift* `m̃ls` of each endpoint with respect to the other.
//! The estimators are the closed forms of Lemmas 6.2 and 6.5 (plus the
//! windowed generalization the paper sketches at the end of §6.2), and
//! conjunction ([`LinkAssumption::all`]) is the decomposition theorem
//! (Theorem 5.6): the `m̃ls` of an intersection of assumption sets is the
//! minimum of the individual `m̃ls` values.

use clocksync_model::{LinkEvidence, MessageRecord, MsgSample};
use clocksync_time::{Ext, ExtNanos, ExtRatio, Nanos, Ratio};
use serde::{Deserialize, Serialize};

/// An interval of admissible delays for one direction of a link.
///
/// `lower ≤ upper ≤ +∞` (paper §6.1). `upper = +∞` models a link with no
/// upper bound; `lower = 0, upper = +∞` is a fully asynchronous
/// direction. *True* delays are nonnegative (the paper's standing
/// assumption), but a declared range may carry a **negative lower
/// bound**: a drift-widened declaration must admit *estimated* delays up
/// to the reading-error margin below the true minimum, and clamping the
/// declared lower bound at zero would silently tighten the §6 estimate
/// `d̃min − lower` past what drifted evidence supports. A negative lower
/// bound only ever loosens estimates, so it is always sound to declare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelayRange {
    lower: Nanos,
    upper: ExtNanos,
}

impl DelayRange {
    /// Creates a bounded range `[lower, upper]`. A negative `lower` is a
    /// virtual declaration (see the type docs): vacuous about true
    /// delays, but honest about how low a drifted *estimated* delay may
    /// appear.
    ///
    /// # Panics
    ///
    /// Panics unless `lower ≤ upper`.
    pub fn new(lower: Nanos, upper: Nanos) -> DelayRange {
        assert!(lower <= upper, "delay range requires lower <= upper");
        DelayRange {
            lower,
            upper: Ext::Finite(upper),
        }
    }

    /// A range with a lower bound only: `[lower, +∞)`. As with
    /// [`DelayRange::new`], `lower` may be negative.
    pub fn at_least(lower: Nanos) -> DelayRange {
        DelayRange {
            lower,
            upper: Ext::PosInf,
        }
    }

    /// The fully unconstrained range `[0, +∞)` (delays are still
    /// nonnegative, the paper's standing assumption).
    pub fn unbounded() -> DelayRange {
        DelayRange {
            lower: Nanos::ZERO,
            upper: Ext::PosInf,
        }
    }

    /// The lower bound.
    pub fn lower(&self) -> Nanos {
        self.lower
    }

    /// The upper bound (possibly `+∞`).
    pub fn upper(&self) -> ExtNanos {
        self.upper
    }

    /// Whether `delay` lies in the range.
    pub fn contains(&self, delay: Nanos) -> bool {
        delay >= self.lower && Ext::Finite(delay) <= self.upper
    }
}

impl Default for DelayRange {
    /// The default range is [`DelayRange::unbounded`].
    fn default() -> Self {
        DelayRange::unbounded()
    }
}

/// Whether a forward message and a backward message count as "sent around
/// the same time" for the windowed bias model: their clock readings at a
/// *common endpoint* are within `window`. Both criteria are phrased in one
/// processor's own clock, so the pairing is invariant under shifting (and
/// thus well-defined on equivalence classes of executions).
fn within_window(
    fwd_send: clocksync_time::ClockTime,
    fwd_recv: clocksync_time::ClockTime,
    bwd_send: clocksync_time::ClockTime,
    bwd_recv: clocksync_time::ClockTime,
    window: Nanos,
) -> bool {
    // At the forward sender (= backward receiver): send vs receive clocks.
    (fwd_send - bwd_recv).abs() <= window
        // At the forward receiver (= backward sender).
        || (fwd_recv - bwd_send).abs() <= window
}

fn records_paired(mf: &MessageRecord, mb: &MessageRecord, window: Nanos) -> bool {
    within_window(
        mf.send_clock,
        mf.recv_clock,
        mb.send_clock,
        mb.recv_clock,
        window,
    )
}

/// The minimum of `d̃(m_f) − d̃(m_b)` over all in-window pairs (the
/// [`within_window`] pairing), or `None` when no pair is in-window.
///
/// The pairing predicate is a union of two window joins — forward-*send*
/// vs backward-*receive* clocks, and forward-*receive* vs backward-*send*
/// clocks — and each join is evaluated by sorting both sides on its key
/// and sliding the `±window` interval over the backward samples with a
/// monotonic deque tracking the maximal backward delay estimate. That
/// makes the scan `O(F log F + B log B)` where the naive all-pairs product
/// is `O(F·B)`; a pair matching both joins is simply seen twice, which
/// cannot change a minimum.
fn min_paired_gap(fwd: &[MsgSample], bwd: &[MsgSample], window: Nanos) -> Option<i128> {
    let w = window.as_nanos() as i128;
    let join = |fkey: fn(&MsgSample) -> i64, bkey: fn(&MsgSample) -> i64| -> Option<i128> {
        let mut fs: Vec<(i128, i64)> = fwd
            .iter()
            .map(|m| (fkey(m) as i128, m.estimated_delay().as_nanos()))
            .collect();
        let mut bs: Vec<(i128, i64)> = bwd
            .iter()
            .map(|m| (bkey(m) as i128, m.estimated_delay().as_nanos()))
            .collect();
        fs.sort_unstable();
        bs.sort_unstable();
        let mut best: Option<i128> = None;
        let (mut lo, mut hi) = (0usize, 0usize);
        // Indices into `bs` with strictly decreasing delay estimates; the
        // front is the window maximum.
        let mut deque: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &(fk, fe) in &fs {
            while hi < bs.len() && bs[hi].0 <= fk + w {
                while deque.back().is_some_and(|&b| bs[b].1 <= bs[hi].1) {
                    deque.pop_back();
                }
                deque.push_back(hi);
                hi += 1;
            }
            while lo < hi && bs[lo].0 < fk - w {
                if deque.front() == Some(&lo) {
                    deque.pop_front();
                }
                lo += 1;
            }
            if let Some(&front) = deque.front() {
                let gap = fe as i128 - bs[front].1 as i128;
                best = Some(best.map_or(gap, |b| b.min(gap)));
            }
        }
        best
    };
    let a = join(|m| m.send_clock.as_nanos(), |m| m.recv_clock.as_nanos());
    let b = join(|m| m.recv_clock.as_nanos(), |m| m.send_clock.as_nanos());
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    }
}

/// The per-sample uncertainty intervals a Marzullo link contributes, in
/// `Δ = o_q − o_p` space (the far clock's offset relative to the near
/// one). An honest forward sample with estimated delay `d̃ = d + Δ` and
/// true delay `d ∈ [lo_f, hi_f]` pins `Δ ∈ [d̃ − hi_f, d̃ − lo_f]`; an
/// honest backward sample with `d̃ = d − Δ` pins
/// `Δ ∈ [lo_b − d̃, hi_b − d̃]`. Unbounded range uppers make the matching
/// interval edge infinite.
fn offset_intervals(
    forward: &DelayRange,
    backward: &DelayRange,
    evidence: &LinkEvidence<'_>,
) -> Vec<(Ext<i128>, Ext<i128>)> {
    let mut out =
        Vec::with_capacity(evidence.forward_samples.len() + evidence.backward_samples.len());
    let f_lo = forward.lower().as_nanos() as i128;
    for mf in evidence.forward_samples {
        let d = mf.estimated_delay().as_nanos() as i128;
        let lo = match forward.upper() {
            Ext::Finite(hi) => Ext::Finite(d - hi.as_nanos() as i128),
            _ => Ext::NegInf,
        };
        out.push((lo, Ext::Finite(d - f_lo)));
    }
    let b_lo = backward.lower().as_nanos() as i128;
    for mb in evidence.backward_samples {
        let d = mb.estimated_delay().as_nanos() as i128;
        let hi = match backward.upper() {
            Ext::Finite(hi) => Ext::Finite(hi.as_nanos() as i128 - d),
            _ => Ext::PosInf,
        };
        out.push((Ext::Finite(b_lo - d), hi));
    }
    out
}

fn ext_i128_to_ratio(x: Ext<i128>) -> ExtRatio {
    match x {
        Ext::NegInf => Ext::NegInf,
        Ext::Finite(v) => Ext::Finite(Ratio::from_int(v)),
        Ext::PosInf => Ext::PosInf,
    }
}

/// A delay assumption for one bidirectional link `{p, q}`.
///
/// The *forward* direction is `p → q` in the orientation the link was
/// declared with (see [`crate::NetworkBuilder::link`]); `backward` is
/// `q → p`.
///
/// # Examples
///
/// ```
/// use clocksync::{LinkAssumption, DelayRange};
/// use clocksync_time::Nanos;
///
/// // A link with known bounds forward and only a lower bound backward,
/// // additionally promising the round-trip bias is at most 2ms:
/// let a = LinkAssumption::all(vec![
///     LinkAssumption::bounds(
///         DelayRange::new(Nanos::from_micros(100), Nanos::from_micros(900)),
///         DelayRange::at_least(Nanos::from_micros(100)),
///     ),
///     LinkAssumption::rtt_bias(Nanos::from_millis(2)),
/// ]);
/// assert!(format!("{a:?}").contains("RttBias"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkAssumption {
    /// Per-direction delay bounds (paper §6.1, Lemma 6.2), covering the
    /// paper's models 1–3: both bounds known, lower bounds only, or no
    /// bounds at all.
    Bounds {
        /// Admissible delays `p → q`.
        forward: DelayRange,
        /// Admissible delays `q → p`.
        backward: DelayRange,
    },
    /// A bound on the *bias* between delays in opposite directions (paper
    /// §6.2, Lemma 6.5): for every forward message `m_f` and backward
    /// message `m_b`, `|d(m_f) − d(m_b)| ≤ bound`; delays are nonnegative.
    RttBias {
        /// The bias bound `b(p,q) = b(q,p) > 0`.
        bound: Nanos,
    },
    /// The windowed generalization the paper sketches at the end of §6.2:
    /// the bias bound applies only to messages sent *around the same
    /// time* — here, pairs whose clock readings at a common endpoint are
    /// within `window`. Delays are nonnegative. With `window = ∞` this is
    /// exactly [`LinkAssumption::RttBias`].
    PairedRttBias {
        /// The bias bound for messages within the window.
        bound: Nanos,
        /// The pairing window, measured on a common endpoint's clock.
        window: Nanos,
    },
    /// Fault-tolerant multi-source fusion: per-direction delay bounds as
    /// in [`LinkAssumption::Bounds`], but up to `max_faulty` of the link's
    /// retained samples may come from faulty sources whose delays violate
    /// the declared ranges arbitrarily. Each retained sample contributes
    /// an uncertainty interval for the far clock's offset; Marzullo's
    /// sweep over the `2·k` interval endpoints ([`marzullo_fuse`]) keeps
    /// exactly the offsets consistent with at least `k − max_faulty`
    /// sources, and the fused interval's edges become the `m̃ls`
    /// contributions. With `max_faulty = 0` on jointly-consistent evidence
    /// this degenerates to the Lemma 6.2 closed form; with contradictory
    /// evidence it degrades to "no constraint" (`+∞`) instead of the
    /// negative-cycle error the strict `Bounds` estimator produces.
    MarzulloQuorum {
        /// Admissible delays `p → q` for honest sources.
        forward: DelayRange,
        /// Admissible delays `q → p` for honest sources.
        backward: DelayRange,
        /// How many of the link's samples may be faulty.
        max_faulty: usize,
    },
    /// Conjunction of several assumptions on the same link (Theorem 5.6).
    All(Vec<LinkAssumption>),
}

/// One endpoint's view of a Marzullo fusion, for observability: how many
/// sources voted, what quorum was required, and how many sources the fused
/// interval discarded as outvoted. Produced by
/// [`LinkAssumption::fusion_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarzulloFusion {
    /// Total sample intervals that voted (both directions).
    pub sources: usize,
    /// Required agreement, `sources − max_faulty` (0 when `sources` is no
    /// larger than `max_faulty`, i.e. no quorum is possible).
    pub quorum: usize,
    /// Whether any offset was consistent with a full quorum.
    pub quorum_reached: bool,
    /// Sources whose interval is disjoint from the fused interval — the
    /// outvoted (presumed faulty) ones. `0` when no quorum was reached.
    pub discarded: usize,
    /// Lower edge of the fused offset interval (`−∞` when unconstrained).
    pub fused_lo: Ext<i128>,
    /// Upper edge of the fused offset interval (`+∞` when unconstrained).
    pub fused_hi: Ext<i128>,
}

/// Marzullo's endpoint sweep: the hull of all points covered by at least
/// `quorum` of the given closed intervals, or `None` when no point reaches
/// the quorum.
///
/// Endpoints are swept in sorted order with starts before ends at equal
/// values, so closed intervals touching in a single point count as
/// overlapping there; the tie-break is deterministic and the arithmetic is
/// exact (`i128` endpoints, no rationals needed). Taking the *hull* of the
/// quorum-consistent region — rather than the smallest maximal-overlap
/// segment of the classic formulation — is what makes the result sound
/// against every honest subset: any `quorum`-sized subset of honest sources
/// has its intersection inside the hull, so an edge of the hull is never
/// tighter than the tightest bound some honest quorum allows.
///
/// # Panics
///
/// Panics if `quorum` is zero (a zero quorum constrains nothing; callers
/// map that case to "unconstrained" before the sweep) or if an interval is
/// empty (`lo > hi`).
pub fn marzullo_fuse(
    intervals: &[(Ext<i128>, Ext<i128>)],
    quorum: usize,
) -> Option<(Ext<i128>, Ext<i128>)> {
    assert!(quorum > 0, "marzullo quorum must be positive");
    if intervals.len() < quorum {
        return None;
    }
    // Intervals with a `−∞` lower edge are active before any event.
    let mut count = 0usize;
    let mut starts: Vec<i128> = Vec::with_capacity(intervals.len());
    let mut ends: Vec<i128> = Vec::with_capacity(intervals.len());
    for (lo, hi) in intervals {
        assert!(lo <= hi, "empty interval in marzullo_fuse");
        match lo {
            Ext::NegInf => count += 1,
            Ext::Finite(v) => starts.push(*v),
            Ext::PosInf => unreachable!("lo <= hi rules out lo = +inf"),
        }
        match hi {
            // Uppers at +∞ never produce an end event, so they keep the
            // count raised past the last finite end.
            Ext::PosInf => {}
            Ext::Finite(v) => ends.push(*v),
            Ext::NegInf => unreachable!("lo <= hi rules out hi = -inf"),
        }
    }
    starts.sort_unstable();
    ends.sort_unstable();

    let mut lo_edge: Option<Ext<i128>> = (count >= quorum).then_some(Ext::NegInf);
    let mut hi_edge: Option<Ext<i128>> = None;
    let (mut si, mut ei) = (0usize, 0usize);
    while si < starts.len() || ei < ends.len() {
        // Starts before ends at equal values: `[a, b]` and `[b, c]` overlap
        // at `b`.
        let take_start = si < starts.len() && (ei >= ends.len() || starts[si] <= ends[ei]);
        if take_start {
            count += 1;
            if count == quorum && lo_edge.is_none() {
                lo_edge = Some(Ext::Finite(starts[si]));
            }
            si += 1;
        } else {
            if count == quorum {
                // Dropping below quorum: the point we leave is the last
                // quorum-consistent one seen so far (later events may
                // re-reach the quorum and overwrite this).
                hi_edge = Some(Ext::Finite(ends[ei]));
            }
            count = count
                .checked_sub(1)
                .expect("end event without matching start");
            ei += 1;
        }
    }
    let lo = lo_edge?;
    // If the count still meets the quorum after all finite ends, at least
    // `quorum` intervals extend to `+∞` (count = open_ended here).
    let hi = if count >= quorum {
        Ext::PosInf
    } else {
        hi_edge.expect("quorum was reached, so it was also left")
    };
    Some((lo, hi))
}

impl LinkAssumption {
    /// Per-direction delay bounds.
    pub fn bounds(forward: DelayRange, backward: DelayRange) -> LinkAssumption {
        LinkAssumption::Bounds { forward, backward }
    }

    /// The same delay bounds in both directions.
    pub fn symmetric_bounds(range: DelayRange) -> LinkAssumption {
        LinkAssumption::Bounds {
            forward: range,
            backward: range,
        }
    }

    /// No bounds at all (model 3): only nonnegativity of delays.
    pub fn no_bounds() -> LinkAssumption {
        LinkAssumption::symmetric_bounds(DelayRange::unbounded())
    }

    /// A round-trip bias bound (model 4).
    ///
    /// # Panics
    ///
    /// Panics unless `bound > 0` (the paper requires a positive bias
    /// bound).
    pub fn rtt_bias(bound: Nanos) -> LinkAssumption {
        assert!(bound > Nanos::ZERO, "rtt bias bound must be positive");
        LinkAssumption::RttBias { bound }
    }

    /// A windowed round-trip bias bound (the §6.2 generalization).
    ///
    /// # Panics
    ///
    /// Panics unless `bound > 0` and `window > 0`.
    pub fn paired_rtt_bias(bound: Nanos, window: Nanos) -> LinkAssumption {
        assert!(bound > Nanos::ZERO, "rtt bias bound must be positive");
        assert!(window > Nanos::ZERO, "pairing window must be positive");
        LinkAssumption::PairedRttBias { bound, window }
    }

    /// Fault-tolerant per-direction delay bounds: up to `max_faulty` of
    /// the link's retained samples may violate them arbitrarily, and the
    /// estimator fuses the rest with Marzullo's sweep
    /// ([`LinkAssumption::MarzulloQuorum`]).
    pub fn marzullo_quorum(
        forward: DelayRange,
        backward: DelayRange,
        max_faulty: usize,
    ) -> LinkAssumption {
        LinkAssumption::MarzulloQuorum {
            forward,
            backward,
            max_faulty,
        }
    }

    /// The conjunction of `parts` (each must hold).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn all(parts: Vec<LinkAssumption>) -> LinkAssumption {
        assert!(!parts.is_empty(), "conjunction of zero assumptions");
        LinkAssumption::All(parts)
    }

    /// The assumption for the same link with the orientation reversed.
    pub fn reversed(&self) -> LinkAssumption {
        match self {
            LinkAssumption::Bounds { forward, backward } => LinkAssumption::Bounds {
                forward: *backward,
                backward: *forward,
            },
            LinkAssumption::RttBias { bound } => LinkAssumption::RttBias { bound: *bound },
            LinkAssumption::PairedRttBias { bound, window } => LinkAssumption::PairedRttBias {
                bound: *bound,
                window: *window,
            },
            LinkAssumption::MarzulloQuorum {
                forward,
                backward,
                max_faulty,
            } => LinkAssumption::MarzulloQuorum {
                forward: *backward,
                backward: *forward,
                max_faulty: *max_faulty,
            },
            LinkAssumption::All(parts) => {
                LinkAssumption::All(parts.iter().map(|a| a.reversed()).collect())
            }
        }
    }

    /// Returns `true` when [`LinkAssumption::estimated_mls`] depends on
    /// the evidence only through the per-direction extrema `d̃min`/`d̃max`
    /// (Lemmas 6.2 and 6.5). Extrema-only links tolerate sample GC: the
    /// extrema are maintained incrementally and never recomputed from the
    /// retained samples, so dropping dominated samples cannot change any
    /// `m̃ls`. [`LinkAssumption::PairedRttBias`] scans the full sample
    /// lists for in-window pairs and must keep its history, and
    /// [`LinkAssumption::MarzulloQuorum`] needs every sample's interval as
    /// a vote — dropping a dominated sample would change the quorum
    /// arithmetic, so both must keep their per-source witnesses.
    ///
    /// Orientation-invariant: `a.extrema_only() == a.reversed().extrema_only()`.
    pub fn extrema_only(&self) -> bool {
        match self {
            LinkAssumption::Bounds { .. } | LinkAssumption::RttBias { .. } => true,
            LinkAssumption::PairedRttBias { .. } | LinkAssumption::MarzulloQuorum { .. } => false,
            LinkAssumption::All(parts) => parts.iter().all(LinkAssumption::extrema_only),
        }
    }

    /// The estimated maximal local shift `m̃ls(p, q)` of the link's far
    /// endpoint `q` with respect to `p`, computed from the link's observed
    /// evidence (`evidence.forward` = `p → q` direction).
    ///
    /// Implements Lemma 6.2 / Corollary 6.3 for [`LinkAssumption::Bounds`]:
    ///
    /// `m̃ls(p,q) = min( ub(q,p) − d̃max(q,p), d̃min(p,q) − lb(p,q) )`
    ///
    /// Lemma 6.5 / Corollary 6.6 for [`LinkAssumption::RttBias`]:
    ///
    /// `m̃ls(p,q) = min( d̃min(p,q), (b + d̃min(p,q) − d̃max(q,p)) / 2 )`
    ///
    /// the same with the pair minimum restricted to in-window pairs for
    /// [`LinkAssumption::PairedRttBias`], the fused-interval upper edge of
    /// [`marzullo_fuse`] for [`LinkAssumption::MarzulloQuorum`], and the
    /// Theorem 5.6 minimum for [`LinkAssumption::All`]. The result is `+∞`
    /// exactly when the observations place no constraint on how far `q`
    /// may be shifted away from `p`.
    pub fn estimated_mls(&self, evidence: &LinkEvidence<'_>) -> ExtRatio {
        match self {
            LinkAssumption::Bounds {
                forward: f_range,
                backward: b_range,
            } => {
                // How much later can q's history slide before a backward
                // (q → p) message would exceed its upper bound…
                let slack_up: ExtRatio = (b_range.upper() - evidence.backward.est_max).into();
                // …or a forward (p → q) message would dip below its lower
                // bound.
                let slack_down: ExtRatio =
                    (evidence.forward.est_min - Ext::Finite(f_range.lower())).into();
                slack_up.min(slack_down)
            }
            LinkAssumption::RttBias { bound } => {
                let nonneg: ExtRatio = evidence.forward.est_min.into();
                let bias_term: ExtRatio = (Ext::Finite(*bound) + evidence.forward.est_min
                    - evidence.backward.est_max)
                    .into();
                let halved = bias_term.map(|r| r * Ratio::new(1, 2));
                nonneg.min(halved)
            }
            LinkAssumption::PairedRttBias { bound, window } => {
                let nonneg: ExtRatio = evidence.forward.est_min.into();
                let tightest = match min_paired_gap(
                    evidence.forward_samples,
                    evidence.backward_samples,
                    *window,
                ) {
                    Some(gap) => Ext::Finite(Ratio::new(bound.as_nanos() as i128 + gap, 2)),
                    None => Ext::PosInf,
                };
                nonneg.min(tightest)
            }
            LinkAssumption::MarzulloQuorum {
                forward,
                backward,
                max_faulty,
            } => {
                let intervals = offset_intervals(forward, backward, evidence);
                let quorum = intervals.len().saturating_sub(*max_faulty);
                if quorum == 0 {
                    // Fewer votes than tolerated faults: every sample may
                    // be lying, so the evidence constrains nothing.
                    return Ext::PosInf;
                }
                match marzullo_fuse(&intervals, quorum) {
                    Some((_, hi)) => ext_i128_to_ratio(hi),
                    None => Ext::PosInf,
                }
            }
            LinkAssumption::All(parts) => parts
                .iter()
                .map(|a| a.estimated_mls(evidence))
                .min()
                .expect("All() is never empty"),
        }
    }

    /// Observability hook for the Marzullo estimator: the fusion's quorum
    /// arithmetic and fused interval on the given evidence, or `None` when
    /// this assumption (recursively, for [`LinkAssumption::All`]) contains
    /// no [`LinkAssumption::MarzulloQuorum`] part. The fused interval is
    /// over `Δ = o_q − o_p`, the far clock's offset relative to the near
    /// one; its upper edge is the Marzullo part's `m̃ls(p,q)` contribution
    /// and its negated lower edge the `m̃ls(q,p)` one.
    pub fn fusion_stats(&self, evidence: &LinkEvidence<'_>) -> Option<MarzulloFusion> {
        match self {
            LinkAssumption::MarzulloQuorum {
                forward,
                backward,
                max_faulty,
            } => {
                let intervals = offset_intervals(forward, backward, evidence);
                let sources = intervals.len();
                let quorum = sources.saturating_sub(*max_faulty);
                let fused = if quorum == 0 {
                    None
                } else {
                    marzullo_fuse(&intervals, quorum)
                };
                let (quorum_reached, fused_lo, fused_hi) = match fused {
                    Some((lo, hi)) => (true, lo, hi),
                    None => (false, Ext::NegInf, Ext::PosInf),
                };
                let discarded = if quorum_reached {
                    intervals
                        .iter()
                        .filter(|(lo, hi)| *hi < fused_lo || fused_hi < *lo)
                        .count()
                } else {
                    0
                };
                Some(MarzulloFusion {
                    sources,
                    quorum,
                    quorum_reached,
                    discarded,
                    fused_lo,
                    fused_hi,
                })
            }
            LinkAssumption::All(parts) => parts.iter().find_map(|a| a.fusion_stats(evidence)),
            _ => None,
        }
    }

    /// Whether the given true message records satisfy this assumption
    /// (`forward` = `p → q` messages, `backward` = `q → p` messages).
    ///
    /// This is the link-local admissibility predicate `A_{p,q}` of the
    /// paper (§5.1); the shift-based lower-bound experiments use it to
    /// check that shifted executions remain admissible.
    pub fn admits(&self, forward: &[MessageRecord], backward: &[MessageRecord]) -> bool {
        match self {
            LinkAssumption::Bounds {
                forward: f_range,
                backward: b_range,
            } => {
                forward.iter().all(|m| f_range.contains(m.delay))
                    && backward.iter().all(|m| b_range.contains(m.delay))
            }
            LinkAssumption::RttBias { bound } => {
                let nonneg = forward
                    .iter()
                    .chain(backward)
                    .all(|m| m.delay >= Nanos::ZERO);
                let within_bias = forward.iter().all(|mf| {
                    backward
                        .iter()
                        .all(|mb| (mf.delay - mb.delay).abs() <= *bound)
                });
                nonneg && within_bias
            }
            LinkAssumption::PairedRttBias { bound, window } => {
                let nonneg = forward
                    .iter()
                    .chain(backward)
                    .all(|m| m.delay >= Nanos::ZERO);
                let within_bias = forward.iter().all(|mf| {
                    backward.iter().all(|mb| {
                        !records_paired(mf, mb, *window) || (mf.delay - mb.delay).abs() <= *bound
                    })
                });
                nonneg && within_bias
            }
            LinkAssumption::MarzulloQuorum {
                forward: f_range,
                backward: b_range,
                max_faulty,
            } => {
                // Admissible iff the bounds hold for all but at most
                // `max_faulty` messages (the tolerated faulty sources).
                let violations = forward
                    .iter()
                    .filter(|m| !f_range.contains(m.delay))
                    .count()
                    + backward
                        .iter()
                        .filter(|m| !b_range.contains(m.delay))
                        .count();
                violations <= *max_faulty
            }
            LinkAssumption::All(parts) => parts.iter().all(|a| a.admits(forward, backward)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksync_model::ProcessorId;
    use clocksync_time::{ClockTime, RealTime};

    fn ct(ns: i64) -> ClockTime {
        ClockTime::from_nanos(ns)
    }

    /// Samples whose estimated delays are exactly `ests`, spread out in
    /// clock time (1ms apart, far outside any test window).
    fn far_samples(ests: &[i64]) -> Vec<MsgSample> {
        ests.iter()
            .enumerate()
            .map(|(i, &e)| MsgSample {
                send_clock: ct(i as i64 * 1_000_000),
                recv_clock: ct(i as i64 * 1_000_000 + e),
            })
            .collect()
    }

    fn rec(delay: i64, send_clock: i64, recv_clock: i64) -> MessageRecord {
        MessageRecord {
            src: ProcessorId(0),
            dst: ProcessorId(1),
            send_clock: ct(send_clock),
            recv_clock: ct(recv_clock),
            sent_at: RealTime::ZERO,
            received_at: RealTime::ZERO + Nanos::new(delay),
            delay: Nanos::new(delay),
            estimated_delay: Nanos::new(recv_clock - send_clock),
        }
    }

    fn fin(x: i128) -> ExtRatio {
        Ext::Finite(Ratio::from_int(x))
    }

    fn half(x: i128) -> ExtRatio {
        Ext::Finite(Ratio::new(x, 2))
    }

    #[test]
    fn delay_range_validation() {
        let r = DelayRange::new(Nanos::new(5), Nanos::new(10));
        assert!(r.contains(Nanos::new(5)));
        assert!(r.contains(Nanos::new(10)));
        assert!(!r.contains(Nanos::new(11)));
        assert!(!r.contains(Nanos::new(4)));
        assert!(DelayRange::at_least(Nanos::new(3)).contains(Nanos::new(1_000_000)));
        assert!(DelayRange::unbounded().contains(Nanos::ZERO));
        assert!(!DelayRange::unbounded().contains(Nanos::new(-1)));
    }

    #[test]
    #[should_panic(expected = "lower <= upper")]
    fn inverted_range_panics() {
        let _ = DelayRange::new(Nanos::new(10), Nanos::new(5));
    }

    #[test]
    fn a_negative_lower_bound_only_loosens_the_estimate() {
        // Drift-widened declarations push the lower bound below zero; the
        // §6 slack `d̃min − lower` must grow accordingly, never clamp.
        let fwd = far_samples(&[6]);
        let ev = LinkEvidence::from_samples(&fwd, &[]);
        let tight =
            LinkAssumption::symmetric_bounds(DelayRange::at_least(Nanos::new(2)));
        let virt =
            LinkAssumption::symmetric_bounds(DelayRange::at_least(Nanos::new(-3)));
        assert_eq!(tight.estimated_mls(&ev), fin(4));
        assert_eq!(virt.estimated_mls(&ev), fin(9));
        assert!(DelayRange::at_least(Nanos::new(-3)).contains(Nanos::ZERO));
    }

    #[test]
    fn bounds_mls_closed_form() {
        // lb = 2, ub = 10 both ways; forward d̃min = 6, backward d̃max = 7.
        let a = LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(2), Nanos::new(10)));
        let fwd = far_samples(&[6, 9, 8]);
        let bwd = far_samples(&[4, 7, 5]);
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        // min(ub − d̃max(q,p), d̃min(p,q) − lb) = min(10−7, 6−2) = 3.
        assert_eq!(a.estimated_mls(&ev), fin(3));
        // Reversed direction: min(10−9, 4−2) = 1.
        assert_eq!(a.estimated_mls(&ev.reversed()), fin(1));
    }

    #[test]
    fn bounds_mls_with_no_upper_bound_uses_only_lower_slack() {
        let a = LinkAssumption::symmetric_bounds(DelayRange::at_least(Nanos::new(2)));
        let fwd = far_samples(&[6, 9]);
        let bwd = far_samples(&[4, 7]);
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        // ub = ∞ makes the first term +∞; result is d̃min − lb = 4.
        assert_eq!(a.estimated_mls(&ev), fin(4));
    }

    #[test]
    fn no_bounds_mls_is_estimated_min_delay() {
        // Corollary 6.4: with lb = 0, ub = ∞, m̃ls = d̃min(p,q).
        let a = LinkAssumption::no_bounds();
        let fwd = far_samples(&[6, 9]);
        let bwd = far_samples(&[4, 7]);
        assert_eq!(
            a.estimated_mls(&LinkEvidence::from_samples(&fwd, &bwd)),
            fin(6)
        );
    }

    #[test]
    fn silent_link_is_unconstrained() {
        let empty = LinkEvidence::from_samples(&[], &[]);
        assert_eq!(
            LinkAssumption::no_bounds().estimated_mls(&empty),
            Ext::PosInf
        );
        // Even with a finite upper bound: no traffic, no constraint.
        let bounded =
            LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(10)));
        assert_eq!(bounded.estimated_mls(&empty), Ext::PosInf);
    }

    #[test]
    fn one_way_traffic_with_bounds_constrains_one_side() {
        let a = LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(2), Nanos::new(10)));
        let fwd = far_samples(&[6, 9]);
        let ev = LinkEvidence::from_samples(&fwd, &[]);
        // Forward only: m̃ls(p,q) = min(+∞, 6−2) = 4.
        assert_eq!(a.estimated_mls(&ev), fin(4));
        // Reverse: m̃ls(q,p) = min(10−9, +∞) = 1.
        assert_eq!(a.estimated_mls(&ev.reversed()), fin(1));
    }

    #[test]
    fn rtt_bias_mls_closed_form() {
        // b = 4, d̃min(p,q) = 6, d̃max(q,p) = 7:
        // min(6, (4 + 6 − 7)/2) = min(6, 3/2) = 3/2.
        let a = LinkAssumption::rtt_bias(Nanos::new(4));
        let fwd = far_samples(&[6, 9]);
        let bwd = far_samples(&[4, 7]);
        assert_eq!(
            a.estimated_mls(&LinkEvidence::from_samples(&fwd, &bwd)),
            half(3)
        );
    }

    #[test]
    fn rtt_bias_mls_can_be_negative() {
        // Asymmetric clock estimates can make the bias term negative; the
        // estimator must pass that through (estimates, unlike true mls,
        // may be negative because they absorb S_p − S_q).
        let a = LinkAssumption::rtt_bias(Nanos::new(1));
        let fwd = far_samples(&[-10]);
        let bwd = far_samples(&[5]);
        // min(−10, (1 − 10 − 5)/2) = min(−10, −7) = −10.
        assert_eq!(
            a.estimated_mls(&LinkEvidence::from_samples(&fwd, &bwd)),
            fin(-10)
        );
    }

    #[test]
    fn rtt_bias_without_reverse_traffic_degenerates_to_no_bounds() {
        let a = LinkAssumption::rtt_bias(Nanos::new(4));
        let fwd = far_samples(&[6, 9]);
        assert_eq!(
            a.estimated_mls(&LinkEvidence::from_samples(&fwd, &[])),
            fin(6)
        );
    }

    #[test]
    fn paired_bias_ignores_out_of_window_pairs() {
        // Two round trips 1ms apart; window 10ns pairs each probe only
        // with its own echo.
        let fwd = vec![
            MsgSample {
                send_clock: ct(0),
                recv_clock: ct(100),
            },
            MsgSample {
                send_clock: ct(1_000_000),
                recv_clock: ct(1_000_900),
            },
        ];
        let bwd = vec![
            MsgSample {
                send_clock: ct(105),
                recv_clock: ct(210),
            },
            MsgSample {
                send_clock: ct(1_000_905),
                recv_clock: ct(1_001_000),
            },
        ];
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        let b = Nanos::new(50);
        // Estimated delays: fwd 100, 900; bwd 105, 95.
        // Windowed pairs: (fwd0, bwd0) via q clocks |100−105|≤10 and
        // (fwd1, bwd1) via q clocks |1_000_900−1_000_905|≤10.
        // Terms: (50+100−105)/2 = 45/2; (50+900−95)/2 = 855/2.
        // m̃ls = min(d̃min=100, 45/2) = 45/2.
        let windowed = LinkAssumption::paired_rtt_bias(b, Nanos::new(10));
        assert_eq!(windowed.estimated_mls(&ev), half(45));
        // The unwindowed model also sees (fwd0, bwd1): (50+100−95)/2 and
        // (fwd1, bwd0): (50+900−105)/2 — tightest is still 45/2 here, but
        // with a *large* window pairing everything the result matches the
        // plain RttBias closed form: min(100, (50+100−105)/2) = 45/2.
        let plain = LinkAssumption::rtt_bias(b);
        assert_eq!(plain.estimated_mls(&ev), windowed.estimated_mls(&ev));
        // A window pairing nothing leaves only nonnegativity: d̃min = 100.
        // (Use disjoint clock ranges: shift bwd far away.)
        let bwd_far = vec![MsgSample {
            send_clock: ct(50_000_000),
            recv_clock: ct(50_000_095),
        }];
        let ev_far = LinkEvidence::from_samples(&fwd, &bwd_far);
        assert_eq!(
            LinkAssumption::paired_rtt_bias(b, Nanos::new(10)).estimated_mls(&ev_far),
            fin(100)
        );
    }

    #[test]
    fn paired_bias_with_huge_window_equals_plain_bias() {
        let fwd = far_samples(&[6, 9]);
        let bwd = far_samples(&[4, 7]);
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        let plain = LinkAssumption::rtt_bias(Nanos::new(4));
        let windowed = LinkAssumption::paired_rtt_bias(Nanos::new(4), Nanos::from_secs(1));
        assert_eq!(plain.estimated_mls(&ev), windowed.estimated_mls(&ev));
    }

    #[test]
    fn conjunction_takes_the_minimum() {
        // Theorem 5.6: mls under A' ∩ A'' is min(mls', mls'').
        let bounds =
            LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(2), Nanos::new(10)));
        let bias = LinkAssumption::rtt_bias(Nanos::new(4));
        let both = LinkAssumption::all(vec![bounds.clone(), bias.clone()]);
        let fwd = far_samples(&[6, 9]);
        let bwd = far_samples(&[4, 7]);
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        let expected = bounds.estimated_mls(&ev).min(bias.estimated_mls(&ev));
        assert_eq!(both.estimated_mls(&ev), expected);
        assert_eq!(both.estimated_mls(&ev), half(3));
    }

    #[test]
    fn reversed_swaps_directions() {
        let a = LinkAssumption::bounds(
            DelayRange::new(Nanos::new(1), Nanos::new(5)),
            DelayRange::new(Nanos::new(2), Nanos::new(9)),
        );
        let r = a.reversed();
        let fwd = far_samples(&[6, 9]);
        let bwd = far_samples(&[4, 7]);
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        // m̃ls(q,p) under `a` == m̃ls(forward) under the reversed assumption
        // with the evidence reversed: min(ub(p→q) − d̃max(p→q), d̃min(q→p)
        // − lb(q→p)) = min(5 − 9, 4 − 2) = −4.
        assert_eq!(r.estimated_mls(&ev.reversed()), fin(-4));
        // Double reversal is the identity.
        assert_eq!(r.reversed(), a);
    }

    #[test]
    fn admits_bounds() {
        let a = LinkAssumption::bounds(
            DelayRange::new(Nanos::new(1), Nanos::new(5)),
            DelayRange::at_least(Nanos::new(2)),
        );
        assert!(a.admits(&[rec(3, 0, 3)], &[rec(100, 10, 110)]));
        assert!(!a.admits(&[rec(6, 0, 6)], &[rec(100, 10, 110)]));
        assert!(!a.admits(&[rec(3, 0, 3)], &[rec(1, 10, 11)]));
        assert!(a.admits(&[], &[]));
    }

    #[test]
    fn admits_rtt_bias() {
        let a = LinkAssumption::rtt_bias(Nanos::new(4));
        assert!(a.admits(&[rec(10, 0, 10)], &[rec(7, 20, 27)]));
        assert!(!a.admits(&[rec(10, 0, 10)], &[rec(3, 20, 23)]));
        assert!(!a.admits(&[rec(-1, 0, -1)], &[]));
        // Same-direction spread is unconstrained by the bias model.
        assert!(a.admits(&[rec(0, 0, 0), rec(100, 5, 105)], &[]));
    }

    #[test]
    fn admits_paired_bias_only_checks_in_window_pairs() {
        let a = LinkAssumption::paired_rtt_bias(Nanos::new(4), Nanos::new(50));
        // In-window pair violating the bias (clocks at the common endpoint
        // within 50ns): rejected.
        assert!(!a.admits(&[rec(10, 0, 10)], &[rec(3, 20, 23)]));
        // The same delays far apart in time: accepted.
        assert!(a.admits(&[rec(10, 0, 10)], &[rec(3, 9_000_000, 9_000_003)]));
        // Negative delays rejected regardless of pairing.
        assert!(!a.admits(&[rec(-1, 0, -1)], &[]));
    }

    #[test]
    fn admits_conjunction() {
        let a = LinkAssumption::all(vec![
            LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(10))),
            LinkAssumption::rtt_bias(Nanos::new(2)),
        ]);
        assert!(a.admits(&[rec(5, 0, 5)], &[rec(6, 10, 16)]));
        assert!(!a.admits(&[rec(5, 0, 5)], &[rec(9, 10, 19)])); // bias violated
        assert!(!a.admits(&[rec(11, 0, 11)], &[rec(10, 10, 20)])); // bound violated
    }

    fn fi(lo: i128, hi: i128) -> (Ext<i128>, Ext<i128>) {
        (Ext::Finite(lo), Ext::Finite(hi))
    }

    #[test]
    fn marzullo_sweep_counts_touching_intervals_as_overlapping() {
        // [0,10] and [10,20] share exactly the point 10; with quorum 2 the
        // consistent region is {10} ∪ [15,20], whose hull is [10,20].
        let fused = marzullo_fuse(&[fi(0, 10), fi(10, 20), fi(15, 30)], 2).unwrap();
        assert_eq!(fused, fi(10, 20));
    }

    #[test]
    fn marzullo_sweep_all_disjoint_has_no_quorum() {
        assert_eq!(marzullo_fuse(&[fi(0, 1), fi(10, 11), fi(20, 21)], 2), None);
        // Quorum 1 is just the hull of the union.
        assert_eq!(marzullo_fuse(&[fi(0, 1), fi(10, 11)], 1), Some(fi(0, 11)));
    }

    #[test]
    fn marzullo_sweep_handles_infinite_edges() {
        // Two lowers-only intervals keep the count up forever.
        let fused = marzullo_fuse(
            &[
                (Ext::Finite(0), Ext::PosInf),
                (Ext::Finite(5), Ext::PosInf),
                fi(10, 20),
            ],
            2,
        )
        .unwrap();
        assert_eq!(fused, (Ext::Finite(5), Ext::PosInf));
        // Two uppers-only intervals are active before any start event.
        let fused = marzullo_fuse(
            &[
                (Ext::NegInf, Ext::Finite(5)),
                (Ext::NegInf, Ext::Finite(3)),
                fi(0, 10),
            ],
            2,
        )
        .unwrap();
        assert_eq!(fused, (Ext::NegInf, Ext::Finite(5)));
    }

    #[test]
    #[should_panic(expected = "quorum must be positive")]
    fn marzullo_zero_quorum_panics() {
        let _ = marzullo_fuse(&[fi(0, 1)], 0);
    }

    #[test]
    fn marzullo_with_zero_faults_degenerates_to_bounds() {
        // On jointly-consistent evidence the f = 0 fusion is the
        // intersection of all sample intervals, which is exactly the
        // Lemma 6.2 closed form in both orientations.
        let range = DelayRange::new(Nanos::new(2), Nanos::new(10));
        let bounds = LinkAssumption::symmetric_bounds(range);
        let fused = LinkAssumption::marzullo_quorum(range, range, 0);
        let fwd = far_samples(&[6, 9, 8]);
        let bwd = far_samples(&[4, 7, 5]);
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        assert_eq!(fused.estimated_mls(&ev), bounds.estimated_mls(&ev));
        assert_eq!(fused.estimated_mls(&ev), fin(3));
        assert_eq!(
            fused.reversed().estimated_mls(&ev.reversed()),
            bounds.reversed().estimated_mls(&ev.reversed())
        );
        assert_eq!(fused.reversed().estimated_mls(&ev.reversed()), fin(1));
    }

    #[test]
    fn marzullo_outvotes_a_faulty_sample() {
        // Symmetric bounds [0,10]; honest samples estimate the offset in
        // [−5,5], one wild forward sample (est 1000) claims [990,1000].
        let range = DelayRange::new(Nanos::ZERO, Nanos::new(10));
        let fused = LinkAssumption::marzullo_quorum(range, range, 1);
        let strict = LinkAssumption::symmetric_bounds(range);
        let fwd = far_samples(&[5, 1000]);
        let bwd = far_samples(&[5]);
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        // Reversed orientation: the wild sample drives the strict Bounds
        // estimate to 10 − 1000 = −990, while the quorum fusion discards
        // it and keeps the honest −(−5) = 5.
        assert_eq!(strict.reversed().estimated_mls(&ev.reversed()), fin(-990));
        assert_eq!(fused.reversed().estimated_mls(&ev.reversed()), fin(5));
        assert_eq!(fused.estimated_mls(&ev), fin(5));

        let stats = fused.fusion_stats(&ev).unwrap();
        assert_eq!(stats.sources, 3);
        assert_eq!(stats.quorum, 2);
        assert!(stats.quorum_reached);
        assert_eq!(stats.discarded, 1);
        assert_eq!(stats.fused_lo, Ext::Finite(-5));
        assert_eq!(stats.fused_hi, Ext::Finite(5));
        // Conjunctions surface the stats of their Marzullo part.
        let both = LinkAssumption::all(vec![strict.clone(), fused.clone()]);
        assert_eq!(both.fusion_stats(&ev), Some(stats));
        assert_eq!(strict.fusion_stats(&ev), None);
    }

    #[test]
    fn marzullo_contradictory_evidence_is_unconstrained_not_an_error() {
        // Three mutually disjoint claims with quorum 2: no offset is
        // consistent with any two sources, so the estimator reports +∞
        // (where strict Bounds would later surface a negative cycle).
        let range = DelayRange::new(Nanos::ZERO, Nanos::new(1));
        let fused = LinkAssumption::marzullo_quorum(range, range, 1);
        let fwd = far_samples(&[0, 100, 200]);
        let ev = LinkEvidence::from_samples(&fwd, &[]);
        assert_eq!(fused.estimated_mls(&ev), Ext::PosInf);
        let stats = fused.fusion_stats(&ev).unwrap();
        assert!(!stats.quorum_reached);
        assert_eq!(stats.discarded, 0);
        assert_eq!((stats.fused_lo, stats.fused_hi), (Ext::NegInf, Ext::PosInf));
    }

    #[test]
    fn marzullo_with_too_few_samples_is_unconstrained() {
        let range = DelayRange::new(Nanos::ZERO, Nanos::new(10));
        let fused = LinkAssumption::marzullo_quorum(range, range, 2);
        let empty = LinkEvidence::from_samples(&[], &[]);
        assert_eq!(fused.estimated_mls(&empty), Ext::PosInf);
        // Two samples, two tolerated faults: still no quorum possible.
        let fwd = far_samples(&[5, 6]);
        let ev = LinkEvidence::from_samples(&fwd, &[]);
        assert_eq!(fused.estimated_mls(&ev), Ext::PosInf);
    }

    #[test]
    fn marzullo_extrema_only_is_false_and_reversal_roundtrips() {
        let a = LinkAssumption::marzullo_quorum(
            DelayRange::new(Nanos::new(1), Nanos::new(5)),
            DelayRange::at_least(Nanos::new(2)),
            1,
        );
        assert!(!a.extrema_only());
        assert!(!LinkAssumption::all(vec![LinkAssumption::no_bounds(), a.clone()]).extrema_only());
        assert_eq!(a.reversed().reversed(), a);
    }

    #[test]
    fn admits_marzullo_tolerates_up_to_f_violations() {
        let a = LinkAssumption::marzullo_quorum(
            DelayRange::new(Nanos::ZERO, Nanos::new(10)),
            DelayRange::new(Nanos::ZERO, Nanos::new(10)),
            1,
        );
        assert!(a.admits(&[rec(5, 0, 5)], &[rec(6, 10, 16)]));
        // One out-of-range message in either direction is tolerated…
        assert!(a.admits(&[rec(50, 0, 50)], &[rec(6, 10, 16)]));
        assert!(a.admits(&[rec(5, 0, 5)], &[rec(60, 10, 70)]));
        // …two are not.
        assert!(!a.admits(&[rec(50, 0, 50)], &[rec(60, 10, 70)]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_bias_panics() {
        let _ = LinkAssumption::rtt_bias(Nanos::ZERO);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn nonpositive_window_panics() {
        let _ = LinkAssumption::paired_rtt_bias(Nanos::new(1), Nanos::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero assumptions")]
    fn empty_conjunction_panics() {
        let _ = LinkAssumption::all(vec![]);
    }
}
