//! Error type of the synchronization pipeline.

use std::error::Error;
use std::fmt;

use clocksync_model::{ModelError, ProcessorId};

/// Failure modes of [`crate::Synchronizer::synchronize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncError {
    /// The view set is for a different number of processors than the
    /// network specification.
    WrongProcessorCount {
        /// Processors in the network specification.
        expected: usize,
        /// Processors in the view set.
        actual: usize,
    },
    /// The observations contradict the declared delay assumptions: some
    /// cycle of local-shift estimates has negative total weight, which is
    /// impossible when the views come from an execution that actually
    /// satisfies the assumptions.
    InconsistentObservations {
        /// A processor on the offending cycle.
        witness: ProcessorId,
    },
    /// The views themselves violate the execution model.
    Model(ModelError),
    /// Clock readings of an ingested observation are so far apart that
    /// the estimated delay is not representable in `i64` nanoseconds.
    /// Only reachable from untrusted input (CLI/JSONL batches); views
    /// recorded by real executions keep readings within range.
    Overflow {
        /// Sender of the offending observation.
        src: ProcessorId,
        /// Receiver of the offending observation.
        dst: ProcessorId,
    },
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::WrongProcessorCount { expected, actual } => write!(
                f,
                "network has {expected} processors but the view set has {actual}"
            ),
            SyncError::InconsistentObservations { witness } => write!(
                f,
                "observed delays contradict the declared assumptions (witness {witness})"
            ),
            SyncError::Model(e) => write!(f, "invalid views: {e}"),
            SyncError::Overflow { src, dst } => write!(
                f,
                "clock readings of an observation on link {src}->{dst} overflow \
                 the representable delay range"
            ),
        }
    }
}

impl Error for SyncError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SyncError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SyncError {
    fn from(e: ModelError) -> SyncError {
        SyncError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SyncError::WrongProcessorCount {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(Error::source(&e).is_none());

        let m = ModelError::WrongProcessorCount {
            expected: 1,
            actual: 0,
        };
        let wrapped: SyncError = m.into();
        assert!(Error::source(&wrapped).is_some());
        assert!(wrapped.to_string().contains("invalid views"));
    }
}
