//! Local shift estimates and the GLOBAL ESTIMATES step (paper §5).

use clocksync_graph::{SquareMatrix, Weight};
use clocksync_model::{LinkObservations, ProcessorId};
use clocksync_time::ExtRatio;

use crate::{Network, SyncError};

/// Computes the matrix of estimated maximal *local* shifts `m̃ls(p, q)` for
/// every ordered pair, from the declared link assumptions and the observed
/// estimated-delay extrema (paper §6).
///
/// Pairs without a declared link are locally unconstrained (`+∞`); the
/// diagonal is `0`. Note that `m̃ls` values, unlike true `mls` values, may
/// be negative: they absorb the unknown start-time difference
/// `S_p − S_q`.
///
/// # Panics
///
/// Panics if `network.n() != observations.n()`.
pub fn estimated_local_shifts(
    network: &Network,
    observations: &LinkObservations,
) -> SquareMatrix<ExtRatio> {
    assert_eq!(
        network.n(),
        observations.n(),
        "network and observations disagree on processor count"
    );
    let mut m = SquareMatrix::from_fn(network.n(), |i, j| {
        if i == j {
            <ExtRatio as Weight>::zero()
        } else {
            <ExtRatio as Weight>::infinity()
        }
    });
    for (p, q, assumption) in network.links() {
        let evidence = observations.evidence(p, q);
        m[(p.index(), q.index())] = assumption.estimated_mls(&evidence);
        m[(q.index(), p.index())] = assumption.reversed().estimated_mls(&evidence.reversed());
    }
    m
}

/// The GLOBAL ESTIMATES function (paper §5.3, Theorem 5.5): turns local
/// shift estimates into global ones by an all-pairs shortest-path
/// computation. `m̃s(p,q)` is then the estimate of how far `q` can be
/// shifted from `p` while *every* link stays admissible (Lemma 5.3).
///
/// # Errors
///
/// Returns [`SyncError::InconsistentObservations`] if the estimates contain
/// a negative-weight cycle. For views produced by an execution that truly
/// satisfies the declared assumptions this cannot happen (cycle weights of
/// `m̃ls` equal cycle weights of `mls ≥ 0`, the start terms telescoping
/// away); it indicates delays outside the promised bounds.
pub fn global_estimates(
    local: &SquareMatrix<ExtRatio>,
) -> Result<SquareMatrix<ExtRatio>, SyncError> {
    global_estimates_with_chains(local).map(|(closure, _)| closure)
}

/// Like [`global_estimates`], additionally returning the successor matrix
/// of the shortest-path computation, from which
/// [`crate::SyncOutcome::constraint_chain`] reconstructs *which* sequence
/// of links produces each global bound.
///
/// Computed via [`clocksync_graph::fast_closure`]: estimate matrices have
/// small common denominators (1 or 2 for nanosecond-granularity
/// observations), so the closure runs on the parallel scaled-`i64` kernel;
/// inputs that cannot be scaled exactly fall back to the generic
/// rational-arithmetic kernel with identical results.
///
/// # Errors
///
/// Same conditions as [`global_estimates`].
pub fn global_estimates_with_chains(
    local: &SquareMatrix<ExtRatio>,
) -> Result<(SquareMatrix<ExtRatio>, SquareMatrix<usize>), SyncError> {
    global_estimates_traced(local, &clocksync_obs::Recorder::disabled())
}

/// Like [`global_estimates_with_chains`], recording a
/// `sync.global_estimates` span whose `kernel` field names the closure
/// kernel that actually ran (`scaled-i64`, `sparse-johnson`,
/// `hier-components` or `rational-generic`) — so a BENCH regression on
/// this stage is attributable to a kernel change rather than guessed at.
/// When exact scaling fails and the stage falls off the fast path onto
/// the `O(n³)` generic kernel, a `sync.closure_fallback` event records
/// the [`clocksync_graph::ScaleBailout`] reason, making the perf cliff
/// visible instead of silent.
///
/// # Errors
///
/// Same conditions as [`global_estimates`].
pub fn global_estimates_traced(
    local: &SquareMatrix<ExtRatio>,
    recorder: &clocksync_obs::Recorder,
) -> Result<(SquareMatrix<ExtRatio>, SquareMatrix<usize>), SyncError> {
    let mut span = recorder.span("sync.global_estimates");
    span.field("n", local.n());
    // Mirrors `clocksync_graph::fast_closure`, split open so the kernel
    // choice (and any scaling bailout) is observable.
    let result = match clocksync_graph::try_scaled_closure_explained(local) {
        Ok((kernel, result)) => {
            span.field("kernel", kernel.name());
            result
        }
        Err(reason) => {
            span.field("kernel", "rational-generic");
            span.field("fallback_reason", reason.name());
            recorder.event(
                "sync.closure_fallback",
                [
                    (
                        "kernel",
                        clocksync_obs::FieldValue::from("rational-generic"),
                    ),
                    ("reason", clocksync_obs::FieldValue::from(reason.name())),
                    ("n", clocksync_obs::FieldValue::from(local.n())),
                ],
            );
            clocksync_graph::floyd_warshall_with_paths(local)
        }
    };
    result.map_err(|e| SyncError::InconsistentObservations {
        witness: ProcessorId(e.witness),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayRange, LinkAssumption};
    use clocksync_time::{Ext, Nanos, Ratio};

    const P: ProcessorId = ProcessorId(0);
    const Q: ProcessorId = ProcessorId(1);
    const R: ProcessorId = ProcessorId(2);

    fn fin(x: i128) -> ExtRatio {
        Ext::Finite(Ratio::from_int(x))
    }

    fn chain_network() -> Network {
        Network::builder(3)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(0), Nanos::new(10))),
            )
            .link(
                Q,
                R,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(0), Nanos::new(10))),
            )
            .build()
    }

    fn observations() -> LinkObservations {
        let mut obs = LinkObservations::empty(3);
        obs.record(P, Q, Nanos::new(4));
        obs.record(Q, P, Nanos::new(6));
        obs.record(Q, R, Nanos::new(2));
        obs.record(R, Q, Nanos::new(8));
        obs
    }

    #[test]
    fn local_estimates_follow_lemma_6_2() {
        let m = estimated_local_shifts(&chain_network(), &observations());
        // m̃ls(P,Q) = min(ub − d̃max(Q,P), d̃min(P,Q) − lb) = min(10−6, 4−0) = 4.
        assert_eq!(m[(0, 1)], fin(4));
        // m̃ls(Q,P) = min(10−4, 6−0) = 6.
        assert_eq!(m[(1, 0)], fin(6));
        // m̃ls(Q,R) = min(10−8, 2−0) = 2; m̃ls(R,Q) = min(10−2, 8−0) = 8.
        assert_eq!(m[(1, 2)], fin(2));
        assert_eq!(m[(2, 1)], fin(8));
        // No direct P–R link.
        assert_eq!(m[(0, 2)], Ext::PosInf);
        assert_eq!(m[(0, 0)], fin(0));
    }

    #[test]
    fn global_estimates_compose_along_paths() {
        let local = estimated_local_shifts(&chain_network(), &observations());
        let global = global_estimates(&local).unwrap();
        // m̃s(P,R) = m̃ls(P,Q) + m̃ls(Q,R) = 4 + 2 = 6 (the only path).
        assert_eq!(global[(0, 2)], fin(6));
        assert_eq!(global[(2, 0)], fin(8 + 6));
        // Direct entries are unchanged when no shortcut exists.
        assert_eq!(global[(0, 1)], fin(4));
    }

    #[test]
    fn inconsistent_observations_are_detected() {
        // Observed round trip shorter than the sum of lower bounds ⇒
        // m̃ls(P,Q) + m̃ls(Q,P) < 0 ⇒ negative cycle.
        let net = Network::builder(2)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::new(100), Nanos::new(200))),
            )
            .build();
        let mut obs = LinkObservations::empty(2);
        // d̃(P→Q) + d̃(Q→P) = RTT = 50 < 2·lb = 200: impossible.
        obs.record(P, Q, Nanos::new(30));
        obs.record(Q, P, Nanos::new(20));
        let local = estimated_local_shifts(&net, &obs);
        let err = global_estimates(&local).unwrap_err();
        assert!(matches!(err, SyncError::InconsistentObservations { .. }));
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn size_mismatch_panics() {
        let _ = estimated_local_shifts(&chain_network(), &LinkObservations::empty(2));
    }
}
