//! Structured degradation reports: which declared links failed to produce
//! the bounds their assumptions promised, and why.
//!
//! The estimators of §6 never *fail*: an assumption evaluated over missing
//! or one-sided evidence simply yields `m̃ls = +∞` — "no constraint" — and
//! the rest of the pipeline (GLOBAL ESTIMATES, SHIFTS) degrades to
//! per-component corrections instead of aborting. What a caller loses in
//! that degradation is *information about the guarantee*, so
//! [`crate::SyncOutcome`] carries a [`LinkDegradation`] for every declared
//! link whose evidence fell short, each tagged with a machine-readable
//! [`DegradationReason`]. The degradation lattice itself (bounds →
//! no-bounds → link dropped → component split) is documented in
//! `DESIGN.md` §5.

use std::fmt;

use clocksync_graph::SquareMatrix;
use clocksync_model::{LinkObservations, ProcessorId};
use clocksync_time::ExtRatio;
use serde::{Deserialize, Serialize};

use crate::Network;

/// Why a declared link contributes less constraint than its assumption
/// could have produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationReason {
    /// No message was observed in either direction. The link constrains
    /// nothing and is effectively undeclared — Corollary 6.4 over an empty
    /// evidence set (`m̃ls = d̃min = +∞`).
    Silent,
    /// Traffic was observed, but the assumption and the evidence together
    /// leave one direction unconstrained: `to` may lag `from` by an
    /// arbitrary amount (`m̃ls(from, to) = +∞`). Typical causes are a
    /// declared upper bound of `+∞` with traffic in only one direction, or
    /// a windowed-bias assumption whose pairing window matched nothing.
    Unbounded {
        /// The reference endpoint of the missing bound.
        from: ProcessorId,
        /// The endpoint whose lag behind `from` is unconstrained.
        to: ProcessorId,
    },
    /// The link's estimate report never reached the computing processor
    /// before its deadline (distributed runtime only): crash-stop of the
    /// initiating subtree, message loss, or link churn. The evidence may
    /// exist somewhere, but the correction was computed without it.
    Unreported,
}

impl fmt::Display for DegradationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationReason::Silent => write!(f, "no traffic observed"),
            DegradationReason::Unbounded { from, to } => {
                write!(f, "no bound on how far {to} may lag {from}")
            }
            DegradationReason::Unreported => write!(f, "estimate report never arrived"),
        }
    }
}

/// One declared link that degraded, with the canonical endpoints
/// (`a < b`) and the reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkDegradation {
    /// Lower-indexed endpoint of the link.
    pub a: ProcessorId,
    /// Higher-indexed endpoint of the link.
    pub b: ProcessorId,
    /// What went missing.
    pub reason: DegradationReason,
}

impl fmt::Display for LinkDegradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link {}–{}: {}", self.a, self.b, self.reason)
    }
}

/// Classifies every declared link of `network` against the local-shift
/// estimates actually obtained from `observations` (`local` must be
/// [`crate::estimated_local_shifts`] of the same inputs).
///
/// Healthy links — both directed estimates finite — are omitted; the
/// result lists only degradations, in the network's canonical link order.
/// [`crate::Synchronizer::synchronize`] and
/// [`crate::OnlineSynchronizer::outcome`](crate::OnlineSynchronizer::outcome)
/// both attach exactly this classification to their outcomes, so batch and
/// streaming runs over the same evidence report identical degradations.
pub fn classify_degradations(
    network: &Network,
    observations: &LinkObservations,
    local: &SquareMatrix<ExtRatio>,
) -> Vec<LinkDegradation> {
    let mut out = Vec::new();
    for (p, q, _) in network.links() {
        let fwd = local[(p.index(), q.index())];
        let bwd = local[(q.index(), p.index())];
        if fwd.is_finite() && bwd.is_finite() {
            continue;
        }
        let traffic = observations.stats(p, q).count + observations.stats(q, p).count;
        if traffic == 0 {
            out.push(LinkDegradation {
                a: p,
                b: q,
                reason: DegradationReason::Silent,
            });
            continue;
        }
        if !fwd.is_finite() {
            out.push(LinkDegradation {
                a: p,
                b: q,
                reason: DegradationReason::Unbounded { from: p, to: q },
            });
        }
        if !bwd.is_finite() {
            out.push(LinkDegradation {
                a: p,
                b: q,
                reason: DegradationReason::Unbounded { from: q, to: p },
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{estimated_local_shifts, DelayRange, LinkAssumption};
    use clocksync_time::Nanos;

    const P: ProcessorId = ProcessorId(0);
    const Q: ProcessorId = ProcessorId(1);
    const R: ProcessorId = ProcessorId(2);

    fn net() -> Network {
        Network::builder(3)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(100))),
            )
            .link(Q, R, LinkAssumption::no_bounds())
            .build()
    }

    #[test]
    fn silent_links_are_reported_as_silent() {
        let obs = LinkObservations::empty(3);
        let local = estimated_local_shifts(&net(), &obs);
        let degs = classify_degradations(&net(), &obs, &local);
        assert_eq!(degs.len(), 2);
        assert!(
            degs.iter().all(|d| d.reason == DegradationReason::Silent),
            "{degs:?}"
        );
    }

    #[test]
    fn one_way_traffic_on_a_no_bounds_link_is_half_unbounded() {
        let mut obs = LinkObservations::empty(3);
        // P–Q gets a full round trip: healthy (finite both ways).
        obs.record(P, Q, Nanos::new(40));
        obs.record(Q, P, Nanos::new(60));
        // Q–R carries traffic only Q → R: under no-bounds, m̃ls(R, Q) = +∞.
        obs.record(Q, R, Nanos::new(30));
        let local = estimated_local_shifts(&net(), &obs);
        let degs = classify_degradations(&net(), &obs, &local);
        assert_eq!(
            degs,
            vec![LinkDegradation {
                a: Q,
                b: R,
                reason: DegradationReason::Unbounded { from: R, to: Q },
            }]
        );
        assert!(degs[0].to_string().contains("link p1–p2"));
    }

    #[test]
    fn healthy_network_reports_nothing() {
        let mut obs = LinkObservations::empty(3);
        obs.record(P, Q, Nanos::new(40));
        obs.record(Q, P, Nanos::new(60));
        obs.record(Q, R, Nanos::new(30));
        obs.record(R, Q, Nanos::new(35));
        let local = estimated_local_shifts(&net(), &obs);
        assert!(classify_degradations(&net(), &obs, &local).is_empty());
    }
}
