//! The end-to-end synchronizer: views in, optimal corrections out.

use clocksync_graph::SquareMatrix;
use clocksync_model::{ProcessorId, ViewSet};
use clocksync_time::{ClockTime, Ext, ExtRatio, Ratio};
use serde::{Deserialize, Serialize};

use clocksync_obs::Recorder;

use crate::analysis::{rho_bar, worst_pair};
use crate::degradation::{classify_degradations, LinkDegradation};
use crate::estimates::global_estimates_traced;
use crate::shifts::{shifts, synchronizable_components, ShiftsKernel, ShiftsResult};
use crate::{estimated_local_shifts, Network, SyncError};

/// The optimal clock synchronization algorithm of the paper, specialized
/// to a [`Network`] of delay assumptions.
///
/// `synchronize` composes the paper's pipeline: §6 local estimators →
/// GLOBAL ESTIMATES (§5.3) → SHIFTS (§4.4). By Theorems 4.4/4.6 the result
/// is optimal *per instance*: no correction function computed from the same
/// views can guarantee a smaller worst-case discrepancy over the executions
/// indistinguishable from the observed one.
///
/// # Examples
///
/// ```
/// use clocksync::{Network, LinkAssumption, DelayRange, Synchronizer};
/// use clocksync_model::{ExecutionBuilder, ProcessorId};
/// use clocksync_time::{Nanos, RealTime};
///
/// let p = ProcessorId(0);
/// let q = ProcessorId(1);
/// let net = Network::builder(2)
///     .link(p, q, LinkAssumption::symmetric_bounds(
///         DelayRange::new(Nanos::new(0), Nanos::new(100))))
///     .build();
/// // q actually started 30ns after p; one message each way, delay 40ns.
/// let exec = ExecutionBuilder::new(2)
///     .start(q, RealTime::from_nanos(30))
///     .message(p, q, RealTime::from_nanos(1_000), Nanos::new(40))
///     .message(q, p, RealTime::from_nanos(2_000), Nanos::new(40))
///     .build()?;
/// let outcome = Synchronizer::new(net).synchronize(exec.views())?;
/// // The corrected clocks agree to within the guaranteed precision.
/// let err = exec.discrepancy(outcome.corrections());
/// assert!(clocksync_time::Ext::Finite(err) <= outcome.precision());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Synchronizer {
    network: Network,
    recorder: Recorder,
}

impl Synchronizer {
    /// Creates a synchronizer for the given network specification.
    pub fn new(network: Network) -> Synchronizer {
        Synchronizer {
            network,
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches an observability recorder; each [`synchronize`] call then
    /// emits per-stage spans (`sync.local_estimates`,
    /// `sync.global_estimates` with the closure-kernel choice,
    /// `sync.shifts`, `sync.degradations` — taxonomy in DESIGN.md §6),
    /// a `sync.marzullo_fusion` event per interval-fusing link recording
    /// the quorum size and how many sources the fusion discarded, and a
    /// `sync.local_skew` event per declared edge with the edge's local
    /// skew bound.
    /// Recording never changes the result: the outcome is a pure function
    /// of the views, bit-for-bit (see `tests/observability.rs`).
    ///
    /// [`synchronize`]: Synchronizer::synchronize
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Synchronizer {
        self.recorder = recorder;
        self
    }

    /// The network specification.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Computes optimal corrections for the given views.
    ///
    /// When some pair of processors has no two-sided bound at all (e.g. a
    /// one-directional or silent unbounded link), the instance's optimal
    /// precision is `+∞`; the outcome then reports `precision() == +∞`
    /// but still carries per-[component](SyncOutcome::components)
    /// corrections that are optimal *within* each synchronizable component
    /// — a strictly stronger answer than the paper requires (with
    /// `A_max = ∞` every vector is vacuously optimal).
    ///
    /// # Errors
    ///
    /// * [`SyncError::WrongProcessorCount`] if `views` does not match the
    ///   network size;
    /// * [`SyncError::InconsistentObservations`] if the observed delays
    ///   contradict the declared assumptions.
    pub fn synchronize(&self, views: &ViewSet) -> Result<SyncOutcome, SyncError> {
        if views.len() != self.network.n() {
            return Err(SyncError::WrongProcessorCount {
                expected: self.network.n(),
                actual: views.len(),
            });
        }
        let (observations, local) = {
            let mut span = self.recorder.span("sync.local_estimates");
            span.field("n", views.len());
            let observations = views.link_observations();
            let local = estimated_local_shifts(&self.network, &observations);
            self.record_fusions(&observations);
            (observations, local)
        };
        let (closure, chains) = global_estimates_traced(&local, &self.recorder)?;
        let mut outcome = {
            let mut span = self.recorder.span("sync.shifts");
            span.field("n", views.len());
            span.field("kernel", ShiftsKernel::default().name());
            let mut outcome = SyncOutcome::from_global_estimates(closure);
            span.field("components", outcome.components().len());
            outcome.set_constraint_chains(chains);
            outcome
        };
        {
            let mut span = self.recorder.span("sync.degradations");
            outcome.set_degradations(classify_degradations(&self.network, &observations, &local));
            span.field("degraded_links", outcome.degradations().len());
        }
        outcome.set_edges(self.network.links().map(|(p, q, _)| (p, q)).collect());
        self.record_local_skews(&outcome);
        Ok(outcome)
    }

    /// Emits one `sync.marzullo_fusion` event per link whose assumption
    /// fuses per-source intervals, recording the quorum arithmetic (how
    /// many sources voted, how many the quorum required, whether it was
    /// reached) and how many sources the fused interval discarded as
    /// outliers — the operator-visible trace of fault masking.
    /// Emits one `sync.local_skew` event per declared edge with the
    /// edge's local skew (the gradient-style per-neighbor guarantee;
    /// see [`SyncOutcome::local_skew`]): fields `p`, `q`, `finite`, and
    /// `skew_ns` (omitted for unbounded edges).
    fn record_local_skews(&self, outcome: &SyncOutcome) {
        use clocksync_obs::FieldValue;
        if !self.recorder.is_enabled() {
            return;
        }
        for skew in outcome.local_skews() {
            let mut fields = vec![
                ("p", FieldValue::from(skew.a.index())),
                ("q", FieldValue::from(skew.b.index())),
                ("finite", FieldValue::from(skew.skew.is_finite())),
            ];
            if let Ext::Finite(v) = skew.skew {
                fields.push(("skew_ns", FieldValue::from(v.to_f64())));
            }
            self.recorder.event("sync.local_skew", fields);
        }
    }

    fn record_fusions(&self, observations: &clocksync_model::LinkObservations) {
        use clocksync_obs::FieldValue;
        if !self.recorder.is_enabled() {
            return;
        }
        for (p, q, assumption) in self.network.links() {
            let evidence = observations.evidence(p, q);
            if let Some(stats) = assumption.fusion_stats(&evidence) {
                self.recorder.event(
                    "sync.marzullo_fusion",
                    [
                        ("p", FieldValue::from(p.index())),
                        ("q", FieldValue::from(q.index())),
                        ("sources", FieldValue::from(stats.sources)),
                        ("quorum", FieldValue::from(stats.quorum)),
                        ("quorum_reached", FieldValue::from(stats.quorum_reached)),
                        ("discarded", FieldValue::from(stats.discarded)),
                    ],
                );
            }
        }
    }
}

/// Everything known about one synchronizable component.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentReport {
    /// Members in ascending order.
    pub members: Vec<ProcessorId>,
    /// The component's optimal precision (its `A_max`).
    pub precision: Ratio,
    /// A cyclic processor sequence whose average maximal shift *forces*
    /// `precision` — the bottleneck certified by the lower bound
    /// (Theorem 4.4).
    pub critical_cycle: Vec<ProcessorId>,
}

/// One declared edge's local skew: the tight worst-case corrected-clock
/// difference between its two (adjacent) endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSkew {
    /// Lower endpoint.
    pub a: ProcessorId,
    /// Higher endpoint.
    pub b: ProcessorId,
    /// The edge's skew bound ([`SyncOutcome::local_skew`]).
    pub skew: ExtRatio,
}

/// The result of a synchronization: corrections, guaranteed precision, and
/// the analysis data needed to audit optimality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncOutcome {
    corrections: Vec<Ratio>,
    closure: SquareMatrix<ExtRatio>,
    components: Vec<ComponentReport>,
    chains: Option<SquareMatrix<usize>>,
    degradations: Vec<LinkDegradation>,
    edges: Vec<(ProcessorId, ProcessorId)>,
}

impl SyncOutcome {
    /// Builds an outcome directly from a closure of estimated maximal
    /// global shifts (as produced by [`crate::global_estimates`]). This is
    /// the entry point for callers that obtained the estimates by some
    /// other route than complete views — e.g. the distributed protocol's
    /// leader, which receives per-link estimates in messages.
    pub fn from_global_estimates(closure: SquareMatrix<ExtRatio>) -> SyncOutcome {
        let components = synchronizable_components(&closure);
        SyncOutcome::from_components_with(closure, components, |_, sub| shifts(sub, 0))
    }

    /// The component loop shared by [`SyncOutcome::from_global_estimates`]
    /// and the online synchronizer's incremental path: `run_shifts` is
    /// called once per component (in order, with the component index and
    /// its sub-closure) so the caller can substitute a warm-started SHIFTS.
    pub(crate) fn from_components_with(
        closure: SquareMatrix<ExtRatio>,
        components: Vec<Vec<ProcessorId>>,
        mut run_shifts: impl FnMut(usize, &SquareMatrix<ExtRatio>) -> ShiftsResult,
    ) -> SyncOutcome {
        let n = closure.n();
        let mut corrections = vec![Ratio::ZERO; n];
        let mut reports = Vec::with_capacity(components.len());
        for (idx, members) in components.into_iter().enumerate() {
            let k = members.len();
            let sub =
                SquareMatrix::from_fn(k, |a, b| closure[(members[a].index(), members[b].index())]);
            let result = run_shifts(idx, &sub);
            for (local_idx, p) in members.iter().enumerate() {
                corrections[p.index()] = result.corrections[local_idx];
            }
            reports.push(ComponentReport {
                critical_cycle: result
                    .critical_cycle
                    .iter()
                    .map(|&local| members[local])
                    .collect(),
                members,
                precision: result.precision,
            });
        }
        SyncOutcome {
            corrections,
            closure,
            components: reports,
            chains: None,
            degradations: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Attaches the shortest-path successor matrix so
    /// [`SyncOutcome::constraint_chain`] can explain pair bounds. The
    /// matrix must come from the same local-shift computation as the
    /// closure (see [`crate::global_estimates_with_chains`]).
    pub fn set_constraint_chains(&mut self, chains: SquareMatrix<usize>) {
        self.chains = Some(chains);
    }

    /// Attaches the structured degradation report (see
    /// [`crate::classify_degradations`]). Callers that assemble outcomes
    /// from partial data — e.g. a distributed leader whose report deadline
    /// fired — use this to record *why* entries of the closure are `+∞`.
    pub fn set_degradations(&mut self, degradations: Vec<LinkDegradation>) {
        self.degradations = degradations;
    }

    /// Every declared link whose evidence fell short of its assumption,
    /// with the reason. Empty for a fully healthy run; also empty (not
    /// *diagnosed*) when the outcome was built via
    /// [`SyncOutcome::from_global_estimates`] and no caller attached a
    /// report. The exact guarantee held in each degraded state is spelled
    /// out in `DESIGN.md` §5.
    pub fn degradations(&self) -> &[LinkDegradation] {
        &self.degradations
    }

    /// `true` when every pair of processors has a finite mutual bound —
    /// i.e. a single synchronizable component and a finite
    /// [`precision`](SyncOutcome::precision).
    pub fn is_fully_synchronized(&self) -> bool {
        self.components.len() <= 1
    }

    /// The index into [`components`](SyncOutcome::components) of the
    /// component containing `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn component_of(&self, p: ProcessorId) -> usize {
        assert!(p.index() < self.corrections.len(), "{p} out of range");
        self.components
            .iter()
            .position(|c| c.members.contains(&p))
            .expect("every processor belongs to exactly one component")
    }

    /// The chain of processors whose consecutive link constraints compose
    /// into the bound `m̃s(p, q)` — the *explanation* of why `q` cannot be
    /// shifted further from `p`. Returns `None` when the pair is
    /// unbounded, `p == q` yields `[p]`, and outcomes built directly from
    /// a closure (without the shortest-path bookkeeping, e.g. the
    /// distributed leader's) report `None` for non-adjacent reconstructions.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `q` is out of range.
    pub fn constraint_chain(&self, p: ProcessorId, q: ProcessorId) -> Option<Vec<ProcessorId>> {
        let chains = self.chains.as_ref()?;
        clocksync_graph::reconstruct_path(chains, p.index(), q.index())
            .map(|path| path.into_iter().map(ProcessorId).collect())
    }

    /// The optimal correction `offset_p` for each processor. Adding
    /// `offset_p` to `p`'s clock yields the synchronized logical clock.
    pub fn corrections(&self) -> &[Ratio] {
        &self.corrections
    }

    /// The correction of one processor.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn correction(&self, p: ProcessorId) -> Ratio {
        self.corrections[p.index()]
    }

    /// The synchronized logical clock value corresponding to a raw clock
    /// `reading` at processor `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn corrected_clock(&self, p: ProcessorId, reading: ClockTime) -> Ratio {
        Ratio::from(reading.offset()) + self.correction(p)
    }

    /// Corrections re-based so that processor `anchor`'s correction equals
    /// `anchor_offset` — e.g. when `anchor` has access to a perfect real
    /// time source, pass its known offset from real time and every logical
    /// clock tracks real time within the same (still optimal) precision.
    /// Corrections are translation-invariant, so this changes no guarantee
    /// (the paper's §1 remark that synchronization *to real time* follows
    /// immediately when one perfect clock is available).
    ///
    /// # Panics
    ///
    /// Panics if `anchor` is out of range.
    pub fn anchored_corrections(&self, anchor: ProcessorId, anchor_offset: Ratio) -> Vec<Ratio> {
        let delta = anchor_offset - self.correction(anchor);
        self.corrections.iter().map(|&x| x + delta).collect()
    }

    /// The guaranteed (and optimal) precision `ε(α)`: for *every* admissible
    /// execution indistinguishable from the observed one, all pairs of
    /// corrected clocks agree to within this bound. `+∞` when some pair
    /// has no two-sided bound.
    pub fn precision(&self) -> ExtRatio {
        if self.components.len() > 1 {
            return Ext::PosInf;
        }
        match self.components.first() {
            Some(c) => Ext::Finite(c.precision),
            None => Ext::Finite(Ratio::ZERO),
        }
    }

    /// Per-component reports (one component = maximal set of processors
    /// with pairwise two-sided bounds).
    pub fn components(&self) -> &[ComponentReport] {
        &self.components
    }

    /// The matrix of estimated maximal global shifts `m̃s(p,q)` the outcome
    /// was computed from.
    pub fn global_shift_estimates(&self) -> &SquareMatrix<ExtRatio> {
        &self.closure
    }

    /// The tight worst-case bound on the corrected clock difference of the
    /// specific ordered pair `(p, q)`:
    /// `sup (S'_p − x_p) − (S'_q − x_q) = m̃s(p,q) − x_p + x_q` over
    /// indistinguishable admissible executions.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `q` is out of range.
    pub fn pair_bound(&self, p: ProcessorId, q: ProcessorId) -> ExtRatio {
        let one = self.closure[(p.index(), q.index())]
            + Ext::Finite(self.corrections[q.index()] - self.corrections[p.index()]);
        let other = self.closure[(q.index(), p.index())]
            + Ext::Finite(self.corrections[p.index()] - self.corrections[q.index()]);
        one.max(other)
    }

    /// Attaches the declared network edges so per-edge local skews can
    /// be reported ([`SyncOutcome::local_skews`]). Attached by
    /// [`Synchronizer::synchronize`] and the online synchronizer's
    /// outcome; callers assembling outcomes from bare closures (e.g. the
    /// distributed leader) may attach their own edge list.
    pub fn set_edges(&mut self, edges: Vec<(ProcessorId, ProcessorId)>) {
        self.edges = edges;
    }

    /// The declared network edges attached to this outcome (empty when
    /// no caller attached them — *unreported*, not edgeless).
    pub fn edges(&self) -> &[(ProcessorId, ProcessorId)] {
        &self.edges
    }

    /// The **local skew** of the pair `(p, q)`: the tight worst-case
    /// corrected-clock difference between the two processors, in either
    /// order — the quantity gradient clock synchronization bounds per
    /// *edge* rather than globally (Kuhn–Lenzen–Locher–Oshman; Lenzen's
    /// practically-constant local skew). Numerically identical to
    /// [`SyncOutcome::pair_bound`]; reported per declared edge by
    /// [`SyncOutcome::local_skews`] next to the global
    /// [`precision`](SyncOutcome::precision), because a sparse network
    /// routinely guarantees neighbors far tighter agreement than the
    /// global bound.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `q` is out of range.
    pub fn local_skew(&self, p: ProcessorId, q: ProcessorId) -> ExtRatio {
        self.pair_bound(p, q)
    }

    /// Per-declared-edge local skews, in edge order (empty when no edge
    /// list was [attached](SyncOutcome::set_edges)).
    pub fn local_skews(&self) -> Vec<LocalSkew> {
        self.edges
            .iter()
            .map(|&(a, b)| LocalSkew {
                a,
                b,
                skew: self.local_skew(a, b),
            })
            .collect()
    }

    /// The declared edge with the largest local skew — the worst
    /// neighbor-to-neighbor guarantee, the summary number gradient-style
    /// monitoring alarms on. `None` when no edge list was attached.
    pub fn worst_edge(&self) -> Option<LocalSkew> {
        self.local_skews().into_iter().max_by(|x, y| {
            x.skew
                .partial_cmp(&y.skew)
                .expect("ExtRatio is totally ordered")
        })
    }

    /// Evaluates `ρ̄(x̄)` — the worst discrepancy over indistinguishable
    /// admissible executions — for an *arbitrary* correction vector. By
    /// optimality, `rho_bar(x̄) ≥ precision()` for every `x̄`, with
    /// equality for [`SyncOutcome::corrections`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the processor count.
    pub fn rho_bar(&self, x: &[Ratio]) -> ExtRatio {
        rho_bar(&self.closure, x)
    }

    /// The ordered pair whose bound is tightest against the precision
    /// under our corrections (the synchronization bottleneck), or `None`
    /// for single-processor systems.
    pub fn bottleneck_pair(&self) -> Option<(ProcessorId, ProcessorId)> {
        worst_pair(&self.closure, &self.corrections)
    }
}

impl std::fmt::Display for SyncOutcome {
    /// A one-paragraph human summary: precision, corrections, components.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "precision {} | corrections [", self.precision())?;
        for (i, x) in self.corrections.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "p{i}: {x}")?;
        }
        write!(f, "]")?;
        if self.components.len() > 1 {
            write!(f, " | {} components", self.components.len())?;
        }
        if !self.degradations.is_empty() {
            write!(f, " | {} degraded links", self.degradations.len())?;
        }
        if let Some(worst) = self.worst_edge() {
            write!(f, " | worst edge {}-{}: {}", worst.a, worst.b, worst.skew)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayRange, LinkAssumption};
    use clocksync_model::ExecutionBuilder;
    use clocksync_time::{Nanos, RealTime};

    const P: ProcessorId = ProcessorId(0);
    const Q: ProcessorId = ProcessorId(1);
    const R: ProcessorId = ProcessorId(2);

    fn fin(x: i128) -> ExtRatio {
        Ext::Finite(Ratio::from_int(x))
    }

    /// The classic two-processor instance: bounds [0, U], one message each
    /// way with equal true delay d, true offset σ.
    fn two_node_outcome(u: i64, d: i64, sigma: i64) -> (SyncOutcome, clocksync_model::Execution) {
        let net = Network::builder(2)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(u))),
            )
            .build();
        let exec = ExecutionBuilder::new(2)
            .start(Q, RealTime::from_nanos(sigma))
            .message(
                P,
                Q,
                RealTime::from_nanos(1_000 + sigma.abs()),
                Nanos::new(d),
            )
            .message(
                Q,
                P,
                RealTime::from_nanos(2_000 + sigma.abs()),
                Nanos::new(d),
            )
            .build()
            .unwrap();
        let outcome = Synchronizer::new(net).synchronize(exec.views()).unwrap();
        (outcome, exec)
    }

    #[test]
    fn two_node_bounds_model_matches_hand_computation() {
        // U = 100, d = 40 both ways, σ = 30.
        // d̃(P→Q) = 40 − 30 = 10; d̃(Q→P) = 40 + 30 = 70.
        // m̃ls(P,Q) = min(100 − 70, 10 − 0) = 10.
        // m̃ls(Q,P) = min(100 − 10, 70 − 0) = 70.
        // A_max = (10 + 70)/2 = 40.
        let (outcome, exec) = two_node_outcome(100, 40, 30);
        assert_eq!(outcome.precision(), fin(40));
        // Achieved true discrepancy is within the guarantee.
        let achieved = exec.discrepancy(outcome.corrections());
        assert!(Ext::Finite(achieved) <= outcome.precision());
        // ρ̄ of our corrections equals the precision (tightness).
        assert_eq!(outcome.rho_bar(outcome.corrections()), fin(40));
    }

    #[test]
    fn tighter_bounds_give_better_precision() {
        let (loose, _) = two_node_outcome(1_000, 400, 0);
        let (tight, _) = two_node_outcome(500, 400, 0);
        assert!(tight.precision() < loose.precision());
    }

    #[test]
    fn alternative_corrections_never_beat_ours() {
        let (outcome, _) = two_node_outcome(100, 40, 30);
        let ours = outcome.rho_bar(outcome.corrections());
        for delta in [-50i128, -10, -1, 1, 10, 50] {
            let alt = vec![Ratio::ZERO, outcome.correction(Q) + Ratio::from_int(delta)];
            assert!(outcome.rho_bar(&alt) >= ours, "beaten by delta={delta}");
        }
    }

    #[test]
    fn unlinked_processor_makes_precision_infinite_but_components_fine() {
        let net = Network::builder(3)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(10))),
            )
            .build();
        let exec = ExecutionBuilder::new(3)
            .message(P, Q, RealTime::from_nanos(100), Nanos::new(5))
            .message(Q, P, RealTime::from_nanos(200), Nanos::new(5))
            .build()
            .unwrap();
        let outcome = Synchronizer::new(net).synchronize(exec.views()).unwrap();
        assert_eq!(outcome.precision(), Ext::PosInf);
        assert_eq!(outcome.components().len(), 2);
        let comp = &outcome.components()[0];
        assert_eq!(comp.members, vec![P, Q]);
        assert_eq!(comp.precision, Ratio::from_int(5));
        // R alone is a perfect singleton component.
        assert_eq!(outcome.components()[1].precision, Ratio::ZERO);
    }

    #[test]
    fn silent_link_shows_up_in_degradations_and_components() {
        use crate::DegradationReason;
        // P–Q healthy, Q–R declared but never carried a message.
        let net = Network::builder(3)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(10))),
            )
            .link(
                Q,
                R,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(10))),
            )
            .build();
        let exec = ExecutionBuilder::new(3)
            .message(P, Q, RealTime::from_nanos(100), Nanos::new(5))
            .message(Q, P, RealTime::from_nanos(200), Nanos::new(5))
            .build()
            .unwrap();
        let outcome = Synchronizer::new(net).synchronize(exec.views()).unwrap();
        assert!(!outcome.is_fully_synchronized());
        assert_eq!(
            outcome.degradations(),
            &[crate::LinkDegradation {
                a: Q,
                b: R,
                reason: DegradationReason::Silent,
            }]
        );
        assert_eq!(outcome.component_of(P), outcome.component_of(Q));
        assert_ne!(outcome.component_of(P), outcome.component_of(R));
        assert!(outcome.to_string().contains("1 degraded links"));
    }

    #[test]
    fn wrong_view_count_is_rejected() {
        let net = Network::builder(3).build();
        let exec = ExecutionBuilder::new(2).build().unwrap();
        let err = Synchronizer::new(net)
            .synchronize(exec.views())
            .unwrap_err();
        assert!(matches!(err, SyncError::WrongProcessorCount { .. }));
    }

    #[test]
    fn corrected_clock_applies_offset() {
        let (outcome, _) = two_node_outcome(100, 40, 30);
        let base = outcome.corrected_clock(P, ClockTime::from_nanos(1_000));
        assert_eq!(base, Ratio::from_int(1_000) + outcome.correction(P));
    }

    #[test]
    fn pair_bound_is_symmetric_and_ge_precision_for_bottleneck() {
        let net = Network::builder(3)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(10))),
            )
            .link(
                Q,
                R,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(50))),
            )
            .build();
        let exec = ExecutionBuilder::new(3)
            .round_trips(
                P,
                Q,
                1,
                RealTime::from_nanos(0),
                Nanos::ZERO,
                Nanos::new(5),
                Nanos::new(5),
            )
            .round_trips(
                Q,
                R,
                1,
                RealTime::from_nanos(1_000),
                Nanos::ZERO,
                Nanos::new(25),
                Nanos::new(25),
            )
            .build()
            .unwrap();
        let outcome = Synchronizer::new(net).synchronize(exec.views()).unwrap();
        assert_eq!(outcome.pair_bound(P, Q), outcome.pair_bound(Q, P));
        // The nearby pair is better synchronized than the far pair.
        assert!(outcome.pair_bound(P, Q) < outcome.pair_bound(Q, R));
        let (bp, bq) = outcome.bottleneck_pair().unwrap();
        assert!(outcome.pair_bound(bp, bq) >= outcome.pair_bound(P, Q));
    }

    #[test]
    fn local_skews_report_every_declared_edge_and_the_worst_one() {
        // Path P—Q—R with a tight and a loose link: the per-edge skews
        // differ, the worst edge is the loose one, and non-adjacent
        // pairs are not reported (though local_skew still answers).
        let net = Network::builder(3)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(10))),
            )
            .link(
                Q,
                R,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(50))),
            )
            .build();
        let exec = ExecutionBuilder::new(3)
            .round_trips(
                P,
                Q,
                1,
                RealTime::from_nanos(0),
                Nanos::ZERO,
                Nanos::new(5),
                Nanos::new(5),
            )
            .round_trips(
                Q,
                R,
                1,
                RealTime::from_nanos(1_000),
                Nanos::ZERO,
                Nanos::new(25),
                Nanos::new(25),
            )
            .build()
            .unwrap();
        let outcome = Synchronizer::new(net).synchronize(exec.views()).unwrap();
        assert_eq!(outcome.edges(), &[(P, Q), (Q, R)]);
        let skews = outcome.local_skews();
        assert_eq!(skews.len(), 2);
        assert_eq!(skews[0].skew, outcome.pair_bound(P, Q));
        assert_eq!(skews[1].skew, outcome.pair_bound(Q, R));
        assert!(skews[0].skew < skews[1].skew);
        let worst = outcome.worst_edge().unwrap();
        assert_eq!((worst.a, worst.b), (Q, R));
        assert_eq!(worst.skew, outcome.pair_bound(Q, R));
        // local_skew is pair_bound under another (gradient) name.
        assert_eq!(outcome.local_skew(P, R), outcome.pair_bound(P, R));
        assert!(outcome.to_string().contains("worst edge"));
    }

    #[test]
    fn every_declared_edge_emits_a_local_skew_event() {
        use clocksync_obs::{FieldValue, Recorder};
        let net = Network::builder(3)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(10))),
            )
            .link(
                Q,
                R,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(10))),
            )
            .build();
        // Q–R stays silent: its skew is unbounded, so its event carries
        // `finite: false` and no `skew_ns` field.
        let exec = ExecutionBuilder::new(3)
            .message(P, Q, RealTime::from_nanos(100), Nanos::new(5))
            .message(Q, P, RealTime::from_nanos(200), Nanos::new(5))
            .build()
            .unwrap();
        let recorder = Recorder::enabled();
        Synchronizer::new(net)
            .with_recorder(recorder.clone())
            .synchronize(exec.views())
            .unwrap();
        let trace = recorder.snapshot();
        let events: Vec<_> = trace.events_named("sync.local_skew").collect();
        assert_eq!(events.len(), 2, "one event per declared edge");
        let finite_flags: Vec<bool> = events
            .iter()
            .map(|fields| {
                matches!(
                    fields.iter().find(|(k, _)| k == "finite").unwrap(),
                    (_, FieldValue::Bool(true))
                )
            })
            .collect();
        assert_eq!(finite_flags, vec![true, false]);
        assert!(events[0].iter().any(|(k, _)| k == "skew_ns"));
        assert!(!events[1].iter().any(|(k, _)| k == "skew_ns"));
    }

    #[test]
    fn constraint_chains_explain_pair_bounds() {
        // Path P—Q—R: the P–R bound composes through Q.
        let net = Network::builder(3)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(10))),
            )
            .link(
                Q,
                R,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(10))),
            )
            .build();
        let exec = ExecutionBuilder::new(3)
            .round_trips(
                P,
                Q,
                1,
                RealTime::from_nanos(100),
                Nanos::new(10),
                Nanos::new(5),
                Nanos::new(5),
            )
            .round_trips(
                Q,
                R,
                1,
                RealTime::from_nanos(1_000),
                Nanos::new(10),
                Nanos::new(5),
                Nanos::new(5),
            )
            .build()
            .unwrap();
        let outcome = Synchronizer::new(net).synchronize(exec.views()).unwrap();
        assert_eq!(outcome.constraint_chain(P, R), Some(vec![P, Q, R]));
        assert_eq!(outcome.constraint_chain(P, Q), Some(vec![P, Q]));
        assert_eq!(outcome.constraint_chain(P, P), Some(vec![P]));
        // The chain's link weights sum to the closure entry.
        let closure = outcome.global_shift_estimates();
        let chain = outcome.constraint_chain(R, P).unwrap();
        assert_eq!(chain, vec![R, Q, P]);
        let total = closure[(2, 1)] + closure[(1, 0)];
        assert_eq!(closure[(2, 0)], total);
    }

    #[test]
    fn anchoring_preserves_guarantees_and_pins_the_anchor() {
        let (outcome, exec) = two_node_outcome(100, 40, 30);
        let known = Ratio::from_int(12_345);
        let anchored = outcome.anchored_corrections(P, known);
        assert_eq!(anchored[P.index()], known);
        // Translation-invariance: same ρ̄, same true discrepancy.
        assert_eq!(outcome.rho_bar(&anchored), outcome.precision());
        assert_eq!(
            exec.discrepancy(&anchored),
            exec.discrepancy(outcome.corrections())
        );
    }

    #[test]
    fn display_summarizes_the_outcome() {
        let (outcome, _) = two_node_outcome(100, 40, 30);
        let text = outcome.to_string();
        assert!(text.starts_with("precision 40"));
        assert!(text.contains("p0: 0"));
        assert!(!text.contains("components"), "single component omitted");
    }

    #[test]
    fn empty_system_synchronizes_trivially() {
        let net = Network::builder(0).build();
        let views = ViewSet::new(vec![]).unwrap();
        let outcome = Synchronizer::new(net).synchronize(&views).unwrap();
        assert_eq!(outcome.precision(), fin(0));
        assert!(outcome.corrections().is_empty());
    }

    #[test]
    fn marzullo_links_emit_a_fusion_event_with_quorum_arithmetic() {
        use clocksync_obs::{FieldValue, Recorder};
        let range = DelayRange::new(Nanos::ZERO, Nanos::new(100));
        let net = Network::builder(2)
            .link(P, Q, LinkAssumption::marzullo_quorum(range, range, 1))
            .build();
        let exec = ExecutionBuilder::new(2)
            .message(P, Q, RealTime::from_nanos(1_000), Nanos::new(40))
            .message(P, Q, RealTime::from_nanos(2_000), Nanos::new(50))
            .message(Q, P, RealTime::from_nanos(3_000), Nanos::new(40))
            .build()
            .unwrap();
        let recorder = Recorder::enabled();
        Synchronizer::new(net)
            .with_recorder(recorder.clone())
            .synchronize(exec.views())
            .unwrap();
        let trace = recorder.snapshot();
        let events: Vec<_> = trace.events_named("sync.marzullo_fusion").collect();
        assert_eq!(events.len(), 1, "one fusing link, one event");
        let field = |key: &str| {
            events[0]
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert!(matches!(field("sources"), FieldValue::Int(3)));
        assert!(matches!(field("quorum"), FieldValue::Int(2)));
        assert!(matches!(field("quorum_reached"), FieldValue::Bool(true)));
        assert!(matches!(field("discarded"), FieldValue::Int(0)));
    }

    #[test]
    fn non_fusing_links_emit_no_fusion_event() {
        let recorder = clocksync_obs::Recorder::enabled();
        let net = Network::builder(2)
            .link(
                P,
                Q,
                LinkAssumption::symmetric_bounds(DelayRange::new(Nanos::ZERO, Nanos::new(100))),
            )
            .build();
        let exec = ExecutionBuilder::new(2)
            .message(P, Q, RealTime::from_nanos(1_000), Nanos::new(40))
            .message(Q, P, RealTime::from_nanos(2_000), Nanos::new(40))
            .build()
            .unwrap();
        Synchronizer::new(net)
            .with_recorder(recorder.clone())
            .synchronize(exec.views())
            .unwrap();
        let trace = recorder.snapshot();
        assert_eq!(trace.events_named("sync.marzullo_fusion").count(), 0);
    }
}
