//! Property tests for the Marzullo quorum fusion estimator and the
//! two-pointer `PairedRttBias` scan.
//!
//! The fusion oracle is the subset formulation: a point is consistent with
//! a quorum iff some quorum-sized subset of sample intervals contains it,
//! so the fused interval must equal the hull over all quorum-sized subsets
//! of their (nonempty) intersections — never looser than the loosest
//! honest subset's bound, and never tighter than the tightest one allows.
//! The paired-bias oracle is the original quadratic all-pairs scan.

use clocksync::{DelayRange, LinkAssumption};
use clocksync_model::{LinkEvidence, MsgSample};
use clocksync_time::{ClockTime, Ext, ExtRatio, Nanos, Ratio};
use proptest::prelude::*;

fn sample(send: i64, est: i64) -> MsgSample {
    MsgSample {
        send_clock: ClockTime::from_nanos(send),
        recv_clock: ClockTime::from_nanos(send + est),
    }
}

/// The retired quadratic scan, kept as the equivalence oracle: every
/// (forward, backward) pair whose clock readings at a common endpoint are
/// within the window contributes `(b + d̃_f − d̃_b)/2`.
fn brute_paired_mls(bound: Nanos, window: Nanos, fwd: &[MsgSample], bwd: &[MsgSample]) -> ExtRatio {
    let ev = LinkEvidence::from_samples(fwd, bwd);
    let nonneg: ExtRatio = ev.forward.est_min.into();
    let mut tightest: ExtRatio = Ext::PosInf;
    for mf in fwd {
        for mb in bwd {
            let paired = (mf.send_clock - mb.recv_clock).abs() <= window
                || (mf.recv_clock - mb.send_clock).abs() <= window;
            if paired {
                let term = (Ratio::from(bound) + Ratio::from(mf.estimated_delay())
                    - Ratio::from(mb.estimated_delay()))
                    * Ratio::new(1, 2);
                tightest = tightest.min(Ext::Finite(term));
            }
        }
    }
    nonneg.min(tightest)
}

fn samples_strategy() -> impl Strategy<Value = Vec<MsgSample>> {
    proptest::collection::vec(
        (-1_000_000_000i64..1_000_000_000, -1_000_000i64..1_000_000),
        0..24,
    )
    .prop_map(|raw| raw.into_iter().map(|(s, e)| sample(s, e)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// The sorted two-pointer window join must agree exactly with the
    /// quadratic all-pairs scan it replaced, on every orientation.
    #[test]
    fn paired_bias_two_pointer_matches_brute_force(
        fwd in samples_strategy(),
        bwd in samples_strategy(),
        bound in 1i64..5_000_000,
        window in 1i64..2_000_000_000,
    ) {
        let a = LinkAssumption::paired_rtt_bias(Nanos::new(bound), Nanos::new(window));
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        prop_assert_eq!(
            a.estimated_mls(&ev),
            brute_paired_mls(Nanos::new(bound), Nanos::new(window), &fwd, &bwd)
        );
        prop_assert_eq!(
            a.reversed().estimated_mls(&ev.reversed()),
            brute_paired_mls(Nanos::new(bound), Nanos::new(window), &bwd, &fwd)
        );
    }
}

type ExtI = Ext<i128>;

/// The offset interval (`Δ = o_q − o_p` space) each sample pins, derived
/// independently of the implementation under test.
fn intervals_for(
    forward: &DelayRange,
    backward: &DelayRange,
    fwd: &[MsgSample],
    bwd: &[MsgSample],
) -> Vec<(ExtI, ExtI)> {
    let mut out = Vec::new();
    for m in fwd {
        let d = m.estimated_delay().as_nanos() as i128;
        let lo = match forward.upper() {
            Ext::Finite(hi) => Ext::Finite(d - hi.as_nanos() as i128),
            _ => Ext::NegInf,
        };
        out.push((lo, Ext::Finite(d - forward.lower().as_nanos() as i128)));
    }
    for m in bwd {
        let d = m.estimated_delay().as_nanos() as i128;
        let hi = match backward.upper() {
            Ext::Finite(hi) => Ext::Finite(hi.as_nanos() as i128 - d),
            _ => Ext::PosInf,
        };
        out.push((Ext::Finite(backward.lower().as_nanos() as i128 - d), hi));
    }
    out
}

/// The subset oracle: hull over all quorum-sized subsets with nonempty
/// intersection of that intersection, or `None` when no such subset
/// exists.
fn subset_hull(intervals: &[(ExtI, ExtI)], quorum: usize) -> Option<(ExtI, ExtI)> {
    let k = intervals.len();
    if quorum == 0 || quorum > k {
        return None;
    }
    let mut hull: Option<(ExtI, ExtI)> = None;
    for mask in 0u32..(1 << k) {
        if mask.count_ones() as usize != quorum {
            continue;
        }
        let mut lo: ExtI = Ext::NegInf;
        let mut hi: ExtI = Ext::PosInf;
        for (i, &(ilo, ihi)) in intervals.iter().enumerate() {
            if mask & (1 << i) != 0 {
                lo = lo.max(ilo);
                hi = hi.min(ihi);
            }
        }
        if lo <= hi {
            hull = Some(match hull {
                None => (lo, hi),
                Some((hlo, hhi)) => (hlo.min(lo), hhi.max(hi)),
            });
        }
    }
    hull
}

fn ext_ratio(x: ExtI) -> ExtRatio {
    x.map(Ratio::from_int)
}

fn range_strategy() -> impl Strategy<Value = DelayRange> {
    (0i64..1_000, 0i64..10_000, any::<bool>()).prop_map(|(lo, width, unbounded)| {
        if unbounded {
            DelayRange::at_least(Nanos::new(lo))
        } else {
            DelayRange::new(Nanos::new(lo), Nanos::new(lo + width))
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// Fused-never-looser-than-any-honest-subset, in its exact form: the
    /// fused interval equals the hull of all quorum-consistent subset
    /// intersections, in both orientations, and `fusion_stats` reports
    /// the same edges.
    #[test]
    fn fused_interval_equals_the_subset_hull(
        forward in range_strategy(),
        backward in range_strategy(),
        fwd_ests in proptest::collection::vec(-1_000_000i64..1_000_000, 0..6),
        bwd_ests in proptest::collection::vec(-1_000_000i64..1_000_000, 0..6),
        max_faulty in 0usize..3,
    ) {
        let fwd: Vec<MsgSample> =
            fwd_ests.iter().enumerate().map(|(i, &e)| sample(i as i64 * 1_000, e)).collect();
        let bwd: Vec<MsgSample> =
            bwd_ests.iter().enumerate().map(|(i, &e)| sample(i as i64 * 1_000, e)).collect();
        let a = LinkAssumption::marzullo_quorum(forward, backward, max_faulty);
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        let intervals = intervals_for(&forward, &backward, &fwd, &bwd);
        let quorum = intervals.len().saturating_sub(max_faulty);
        let hull = if quorum == 0 { None } else { subset_hull(&intervals, quorum) };

        let mls_pq = a.estimated_mls(&ev);
        let mls_qp = a.reversed().estimated_mls(&ev.reversed());
        match hull {
            None => {
                prop_assert_eq!(mls_pq, Ext::PosInf);
                prop_assert_eq!(mls_qp, Ext::PosInf);
            }
            Some((lo, hi)) => {
                prop_assert_eq!(mls_pq, ext_ratio(hi));
                // Reversing the orientation negates every interval, so
                // m̃ls(q,p) is the negated lower edge.
                prop_assert_eq!(mls_qp, -ext_ratio(lo));
                let stats = a.fusion_stats(&ev).unwrap();
                prop_assert!(stats.quorum_reached);
                prop_assert_eq!((stats.fused_lo, stats.fused_hi), (lo, hi));
            }
        }
    }

    /// Soundness under faults: when all but at most `max_faulty` samples
    /// are honest (true delay inside the declared range) the true offset
    /// always lies inside the fused interval, no matter what the faulty
    /// samples claim.
    #[test]
    fn fused_interval_contains_the_true_offset(
        offset in -1_000_000i64..1_000_000,
        honest_fwd in proptest::collection::vec(0i64..10_000, 1..5),
        honest_bwd in proptest::collection::vec(0i64..10_000, 1..5),
        faulty_ests in proptest::collection::vec((-2_000_000i64..2_000_000, any::<bool>()), 0..3),
    ) {
        let range = DelayRange::new(Nanos::ZERO, Nanos::new(10_000));
        // Honest samples observe d̃ = d + Δ forward, d̃ = d − Δ backward.
        let mut fwd: Vec<MsgSample> = honest_fwd
            .iter()
            .enumerate()
            .map(|(i, &d)| sample(i as i64 * 1_000, d + offset))
            .collect();
        let mut bwd: Vec<MsgSample> = honest_bwd
            .iter()
            .enumerate()
            .map(|(i, &d)| sample(i as i64 * 1_000, d - offset))
            .collect();
        for (est, to_fwd) in &faulty_ests {
            if *to_fwd {
                fwd.push(sample(0, *est));
            } else {
                bwd.push(sample(0, *est));
            }
        }
        let a = LinkAssumption::marzullo_quorum(range, range, faulty_ests.len());
        let ev = LinkEvidence::from_samples(&fwd, &bwd);
        let stats = a.fusion_stats(&ev).unwrap();
        // Every honest interval contains Δ and there are ≥ quorum of
        // them, so the quorum is always reached and the hull covers Δ.
        prop_assert!(stats.quorum_reached);
        let delta = Ext::Finite(offset as i128);
        prop_assert!(stats.fused_lo <= delta && delta <= stats.fused_hi);
        // And m̃ls stays sound for the shift oracle: Δ ≤ m̃ls(p,q),
        // −Δ ≤ m̃ls(q,p).
        let pq = a.estimated_mls(&ev);
        let qp = a.reversed().estimated_mls(&ev.reversed());
        prop_assert!(Ext::Finite(Ratio::from_int(offset as i128)) <= pq);
        prop_assert!(Ext::Finite(Ratio::from_int(-offset as i128)) <= qp);
    }
}
